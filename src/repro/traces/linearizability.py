"""Linearizability and eps-superlinearizability of register histories.

Section 6 defines linearizability of a timed schedule: a point ``t`` can
be inserted for every operation, between its invocation and response, such
that each READ returns the value of the latest preceding WRITE in the
induced point order. eps-superlinearizability (Section 6.2) additionally
requires each point to be at least ``2*eps`` after the invocation.

Register action conventions (matching :mod:`repro.registers`):

- ``READ_i()`` — read invocation at node ``i``;
- ``RETURN_i(v)`` — read response carrying the returned value;
- ``WRITE_i(v)`` — write invocation carrying the written value;
- ``ACK_i()`` — write response.

The checker reduces to: given one closed interval ``[lo, hi]`` per
operation, does a system of increasing representative points exist whose
order makes every read legal? This is decided by a depth-first search over
"which operation is linearized next" with memoization; candidates at each
step are restricted to operations whose window opens before every other
remaining operation's window closes, which keeps the search shallow for
realistic histories.

Long *live* histories (tens of thousands of operations recorded off a
real service, see :mod:`repro.live`) need the search bounded: a
pathological history could make the DFS visit exponentially many
(remaining, value) states. Every entry point therefore accepts a
``max_nodes`` budget on visited search nodes; exceeding it raises
:class:`SearchBudgetExceeded` (a :class:`SpecificationError`) rather
than spinning, and :func:`analyze_linearizability` reports the visited
count either way so reports can show how hard the check worked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.automata.executions import TimedSequence
from repro.errors import SpecificationError

DEFAULT_NODE_BUDGET = 2_000_000
"""Default visited-node budget of :func:`analyze_linearizability`.

Realistic histories visit roughly one node per operation; the default
leaves orders of magnitude of slack while still guaranteeing the check
terminates in seconds rather than never.
"""


class SearchBudgetExceeded(SpecificationError):
    """The linearization DFS exceeded its visited-node budget.

    Not a verdict: the history may or may not be linearizable; the
    search was cut off after ``visited`` nodes (budget ``max_nodes``).
    """

    def __init__(self, visited: int, max_nodes: int):
        super().__init__(
            f"linearizability search exceeded its node budget: visited "
            f"{visited} search nodes (budget {max_nodes}); the history is "
            f"too adversarial for an exact verdict at this budget"
        )
        self.visited = visited
        self.max_nodes = max_nodes

READ = "READ"
WRITE = "WRITE"
RETURN = "RETURN"
ACK = "ACK"


@dataclass(frozen=True)
class Operation:
    """One complete register operation extracted from a trace."""

    op_id: int
    node: int
    kind: str  # "R" or "W"
    value: object  # value read (for R) or written (for W)
    inv_time: float
    res_time: float

    def window(self, min_after_inv: float = 0.0) -> Tuple[float, float]:
        """The closed interval in which the linearization point may lie."""
        return (self.inv_time + min_after_inv, self.res_time)

    @property
    def latency(self) -> float:
        return self.res_time - self.inv_time

    def __repr__(self) -> str:
        arrow = "->" if self.kind == "R" else "<-"
        return (
            f"Op#{self.op_id}({self.kind}{arrow}{self.value!r} @node{self.node} "
            f"[{self.inv_time:g},{self.res_time:g}])"
        )


class AlternationViolation(SpecificationError):
    """The alternation condition failed (Section 6.1).

    :attr:`by_environment` is ``True`` when the violation is two
    consecutive invocations at a node (the environment misbehaved, so the
    trace is vacuously allowed by problem ``P``).
    """

    def __init__(self, message: str, by_environment: bool):
        super().__init__(message)
        self.by_environment = by_environment


def _is_invocation(name: str) -> bool:
    return name in (READ, WRITE)


def _is_response(name: str) -> bool:
    return name in (RETURN, ACK)


def check_alternation(trace: TimedSequence) -> Optional[str]:
    """Check the alternation condition (Section 6.1).

    Returns ``None`` when invocations and responses alternate correctly
    at every node; otherwise ``"environment"`` when the first violation
    is a double invocation (the environment is at fault) or ``"system"``
    when it is a response without a pending invocation or a mismatched
    response kind.
    """
    pending: Dict[int, Optional[str]] = {}
    for ev in trace:
        name = ev.action.name
        if not (_is_invocation(name) or _is_response(name)):
            continue
        node = ev.action.params[0]
        outstanding = pending.get(node)
        if _is_invocation(name):
            if outstanding is not None:
                return "environment"
            pending[node] = name
        else:
            if outstanding is None:
                return "system"
            expected = RETURN if outstanding == READ else ACK
            if name != expected:
                return "system"
            pending[node] = None
    return None


def extract_operations(trace: TimedSequence) -> List[Operation]:
    """Pair invocations with responses into :class:`Operation` records.

    Incomplete (pending) operations at the end of the trace are dropped,
    mirroring the usual treatment when checking safety of a finite prefix.
    Raises :class:`AlternationViolation` when the alternation condition
    fails, tagging who violated it first.
    """
    verdict = check_alternation(trace)
    if verdict is not None:
        raise AlternationViolation(
            f"alternation condition violated by the {verdict}",
            by_environment=(verdict == "environment"),
        )
    ops: List[Operation] = []
    pending: Dict[int, Tuple[str, object, float]] = {}
    next_id = 0
    for ev in trace:
        name = ev.action.name
        if name == READ:
            node = ev.action.params[0]
            pending[node] = (READ, None, ev.time)
        elif name == WRITE:
            node, value = ev.action.params[0], ev.action.params[1]
            pending[node] = (WRITE, value, ev.time)
        elif name == RETURN:
            node, value = ev.action.params[0], ev.action.params[1]
            _, __, inv_time = pending.pop(node)
            ops.append(Operation(next_id, node, "R", value, inv_time, ev.time))
            next_id += 1
        elif name == ACK:
            node = ev.action.params[0]
            _, value, inv_time = pending.pop(node)
            ops.append(Operation(next_id, node, "W", value, inv_time, ev.time))
            next_id += 1
    return ops


def _search_linearization(
    ops: Sequence[Operation],
    windows: Dict[int, Tuple[float, float]],
    initial_value: object,
    tolerance: float,
    max_nodes: Optional[int] = None,
    counter: Optional[List[int]] = None,
) -> Optional[List[Tuple[int, float]]]:
    """Find increasing points, one per op window, making reads legal.

    Depth-first search with memoization on the (remaining set, value)
    pair; the current time floor is implied by the chosen prefix and is
    folded into the memo key. Returns the linearization as a list of
    ``(op_id, point)`` pairs or ``None``.

    ``max_nodes`` bounds the visited search nodes (each ``recurse`` call
    counts one); exceeding it raises :class:`SearchBudgetExceeded`.
    ``counter``, when given, is a one-element list the visited count is
    accumulated into, so callers can report it.
    """
    by_id = {op.op_id: op for op in ops}
    all_ids = frozenset(by_id)
    memo: Dict[Tuple[FrozenSet[int], object, float], bool] = {}
    visited = counter if counter is not None else [0]

    order: List[Tuple[int, float]] = []

    def recurse(remaining: FrozenSet[int], value: object, floor: float) -> bool:
        if not remaining:
            return True
        visited[0] += 1
        if max_nodes is not None and visited[0] > max_nodes:
            raise SearchBudgetExceeded(visited[0], max_nodes)
        key = (remaining, value, round(floor, 9))
        if key in memo:
            return False  # memo only stores failures; successes return early
        # A candidate must be placeable before every other remaining
        # operation's window closes.
        min_hi = min(windows[i][1] for i in remaining)
        candidates = [
            i
            for i in remaining
            if windows[i][0] <= min_hi + tolerance
            and max(windows[i][0], floor) <= windows[i][1] + tolerance
        ]
        # Prefer earliest-opening windows: heuristics only, completeness
        # comes from trying every candidate.
        candidates.sort(key=lambda i: windows[i][0])
        for i in candidates:
            op = by_id[i]
            if op.kind == "R" and op.value != value:
                continue
            point = max(windows[i][0], floor)
            if point > windows[i][1] + tolerance:
                continue
            new_value = op.value if op.kind == "W" else value
            order.append((i, point))
            if recurse(remaining - {i}, new_value, point):
                return True
            order.pop()
        memo[key] = False
        return False

    if recurse(all_ids, initial_value, 0.0):
        return list(order)
    return None


def find_linearization(
    ops: Sequence[Operation],
    initial_value: object = None,
    min_after_inv: float = 0.0,
    tolerance: float = 1e-9,
    max_nodes: Optional[int] = None,
) -> Optional[List[Tuple[int, float]]]:
    """Find a (super)linearization of complete operations.

    ``min_after_inv`` is ``0`` for plain linearizability and ``2*eps``
    for eps-superlinearizability (Section 6.2). Returns ``(op_id, point)``
    pairs in linearization order, or ``None``. ``max_nodes`` (optional)
    bounds the search; see :class:`SearchBudgetExceeded`.
    """
    windows = {op.op_id: op.window(min_after_inv) for op in ops}
    for op_id, (lo, hi) in windows.items():
        if lo > hi + tolerance:
            return None
    return _search_linearization(
        ops, windows, initial_value, tolerance, max_nodes=max_nodes
    )


@dataclass(frozen=True)
class LinearizationReport:
    """Outcome of a budgeted linearizability check, with search stats."""

    ok: bool
    linearization: Optional[List[Tuple[int, float]]]
    operations: int
    visited: int
    max_nodes: Optional[int]

    def __repr__(self) -> str:
        verdict = "linearizable" if self.ok else "NOT linearizable"
        return (
            f"<LinearizationReport {verdict}: {self.operations} ops, "
            f"{self.visited} search nodes visited>"
        )


def analyze_linearizability(
    history: Iterable,
    initial_value: object = None,
    min_after_inv: float = 0.0,
    tolerance: float = 1e-9,
    max_nodes: Optional[int] = DEFAULT_NODE_BUDGET,
) -> LinearizationReport:
    """Budgeted linearizability check with visited-node statistics.

    The entry point for long live histories: the DFS is bounded by
    ``max_nodes`` (default :data:`DEFAULT_NODE_BUDGET`; ``None``
    disables the guard) and the report carries the visited count, so a
    latency report can state how much work the verdict cost. Raises
    :class:`SearchBudgetExceeded` when the budget is exhausted.
    """
    ops = _coerce_operations(history)
    if ops is None:
        return LinearizationReport(True, None, 0, 0, max_nodes)
    windows = {op.op_id: op.window(min_after_inv) for op in ops}
    counter = [0]
    for op_id, (lo, hi) in windows.items():
        if lo > hi + tolerance:
            return LinearizationReport(
                False, None, len(ops), counter[0], max_nodes
            )
    order = _search_linearization(
        ops, windows, initial_value, tolerance,
        max_nodes=max_nodes, counter=counter,
    )
    return LinearizationReport(
        order is not None, order, len(ops), counter[0], max_nodes
    )


def is_linearizable(
    history: Iterable,
    initial_value: object = None,
    tolerance: float = 1e-9,
    max_nodes: Optional[int] = None,
) -> bool:
    """Whether a history is linearizable (Section 6.1).

    ``history`` may be a :class:`TimedSequence` (operations are extracted
    first; a trace whose alternation condition is violated *by the
    environment* is accepted, per the definition of problem ``P``) or an
    iterable of :class:`Operation`.
    """
    ops = _coerce_operations(history)
    if ops is None:
        return True
    return (
        find_linearization(ops, initial_value, 0.0, tolerance, max_nodes)
        is not None
    )


def is_superlinearizable(
    history: Iterable,
    eps: float,
    initial_value: object = None,
    tolerance: float = 1e-9,
    max_nodes: Optional[int] = None,
) -> bool:
    """Whether a history is eps-superlinearizable (Section 6.2).

    Each linearization point must be at least ``2*eps`` after the
    operation's invocation and no later than its response.
    """
    ops = _coerce_operations(history)
    if ops is None:
        return True
    return (
        find_linearization(ops, initial_value, 2.0 * eps, tolerance, max_nodes)
        is not None
    )


def _coerce_operations(history: Iterable) -> Optional[List[Operation]]:
    """Normalize a trace or operation list; ``None`` means vacuously OK."""
    if isinstance(history, TimedSequence):
        try:
            return extract_operations(history)
        except AlternationViolation as violation:
            if violation.by_environment:
                return None
            raise
    return list(history)


def shift_points_earlier(
    linearization: Sequence[Tuple[int, float]], delta: float
) -> List[Tuple[int, float]]:
    """Shift all linearization points earlier by ``delta``.

    This is the Lemma 6.4 move: a superlinearization of the ``=_eps``
    perturbed trace, shifted earlier by ``eps``, is a linearization of
    the original trace.
    """
    return [(op_id, point - delta) for op_id, point in linearization]

"""Tests for the register problems P and Q, including Lemma 6.4."""

import random

import pytest

from repro.automata.actions import Action
from repro.automata.executions import TimedEvent, TimedSequence, timed_sequence
from repro.registers.spec import (
    linearizable_register_problem,
    superlinearizable_register_problem,
)
from repro.traces.relations import equivalent_eps


def sequential_trace(rounds=4, spacing=2.0, latency=0.9):
    """One writer (node 0) and one reader (node 1), strictly sequential."""
    events = []
    t = 1.0
    last = None
    for k in range(rounds):
        value = ("v", 0, k)
        events.append((Action("WRITE", (0, value)), t))
        events.append((Action("ACK", (0,)), t + latency))
        last = value
        t += spacing
        events.append((Action("READ", (1,)), t))
        events.append((Action("RETURN", (1, last)), t + latency))
        t += spacing
    return timed_sequence(*events)


def perturb(trace, eps, seed):
    """Move each event by at most eps, preserving per-node order."""
    rng = random.Random(seed)
    per_node_last = {}
    events = []
    for ev in trace:
        node = ev.action.params[0]
        lo = max(ev.time - eps, per_node_last.get(node, 0.0))
        hi = ev.time + eps
        t = rng.uniform(lo, hi)
        per_node_last[node] = t
        events.append(TimedEvent(ev.action, t))
    events.sort(key=lambda e: e.time)
    return TimedSequence(events)


class TestProblems:
    def test_sequential_trace_in_p(self):
        problem = linearizable_register_problem(2)
        assert sequential_trace() in problem

    def test_sequential_trace_in_q_with_slack(self):
        # operations last 0.9; eps-superlinearizability needs 2*eps <= 0.9
        problem = superlinearizable_register_problem(2, eps=0.4)
        assert sequential_trace() in problem

    def test_fast_ops_not_in_q(self):
        problem = superlinearizable_register_problem(2, eps=0.5)
        assert sequential_trace() not in problem

    def test_stale_read_not_in_p(self):
        events = [
            (Action("WRITE", (0, "new")), 0.0),
            (Action("ACK", (0,)), 1.0),
            (Action("READ", (1,)), 2.0),
            (Action("RETURN", (1, "old")), 3.0),
        ]
        problem = linearizable_register_problem(2)
        assert timed_sequence(*events) not in problem

    def test_environment_violation_vacuously_in_p(self):
        trace = timed_sequence(
            (Action("READ", (0,)), 0.0), (Action("READ", (0,)), 1.0)
        )
        assert trace in linearizable_register_problem(2)


class TestLemma64:
    """Q_eps ⊆ P: any eps-perturbation of a Q-trace is linearizable."""

    @pytest.mark.parametrize("seed", range(10))
    def test_perturbed_superlinearizable_traces_are_linearizable(self, seed):
        eps = 0.4
        q_problem = superlinearizable_register_problem(2, eps)
        p_problem = linearizable_register_problem(2)
        base = sequential_trace()
        assert base in q_problem
        perturbed = perturb(base, eps, seed)
        # the perturbed trace is =_eps to the base by construction
        kappa = q_problem.kappa
        assert equivalent_eps(base, perturbed, eps, kappa)
        # Lemma 6.4: it is plainly linearizable
        assert perturbed in p_problem

    def test_linearizability_alone_does_not_survive_perturbation(self):
        """Without the 2*eps margin, an eps-perturbation can break
        linearizability — the motivation for superlinearizability.

        Construct a trace with a razor-thin read that only linearizes at
        one instant; a perturbation can slide the read before the write
        completes while the read still returns the new value."""
        events = [
            (Action("WRITE", (0, "new")), 0.0),
            (Action("ACK", (0,)), 0.2),
            (Action("READ", (1,)), 0.21),
            (Action("RETURN", (1, "new")), 0.3),
        ]
        base = timed_sequence(*events)
        p_problem = linearizable_register_problem(2)
        assert base in p_problem
        # adversarial perturbation with eps = 0.3: the whole read slides
        # before the write even starts, yet still returns "new"
        moved = timed_sequence(
            (Action("READ", (1,)), 0.01),
            (Action("RETURN", (1, "new")), 0.05),
            (Action("WRITE", (0, "new")), 0.3),
            (Action("ACK", (0,)), 0.5),
        )
        assert equivalent_eps(base, moved, 0.3, p_problem.kappa)
        assert moved not in p_problem

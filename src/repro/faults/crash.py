"""Crash-stop node failures.

:class:`CrashableEntity` proxies any entity and silences it from its
scheduled crash time onward: no more enabled actions, inputs ignored, no
time-passage constraints. This is the classic crash-stop model; the
paper's Section 7.3 points to Welch [17] for how the first simulation
extends to faulty processes — operationally, a crashed node constrains
nothing, so the transformation machinery is untouched and detectors
built on top of it (``examples/failure_monitor.py``) can now be tested
for completeness (crashed nodes get suspected) as well as accuracy
(live nodes do not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.automata.actions import Action
from repro.components.base import Entity

INFINITY = float("inf")


@dataclass
class CrashSchedule:
    """When (and whether) a node crashes."""

    crash_time: Optional[float] = None  # None: never crashes

    def crashed(self, now: float) -> bool:
        """Whether the node is down at real time ``now``."""
        return self.crash_time is not None and now >= self.crash_time - 1e-12


@dataclass
class CrashableState:
    inner: Any
    crashed: bool = False


class CrashableEntity(Entity):
    """An entity that stops dead at ``schedule.crash_time``."""

    # The crash check makes the deadline a function of ``now`` (the
    # schedule's crash time caps it), so the deadline promises are
    # pinned to the conservative False no matter what the inner entity
    # declares; only pure_enabled carries over (see __init__).
    static_deadline = False
    wakes_at_deadline = False

    def __init__(self, inner: Entity, schedule: CrashSchedule):
        super().__init__(inner.name, inner.signature)
        self.inner = inner
        self.schedule = schedule
        # Queries delegate to the inner entity, so its purity promise
        # carries over; the crash check makes the deadline depend on
        # ``now``, so the static-deadline promises do not.
        self.pure_enabled = getattr(inner, "pure_enabled", True)

    def initial_state(self) -> CrashableState:
        return CrashableState(inner=self.inner.initial_state())

    def _check_crash(self, state: CrashableState, now: float) -> bool:
        if not state.crashed and self.schedule.crashed(now):
            state.crashed = True
        return state.crashed

    def apply_input(self, state: CrashableState, action: Action, now: float) -> None:
        if self._check_crash(state, now):
            return  # inputs fall on deaf ears
        self.inner.apply_input(state.inner, action, now)

    def enabled(self, state: CrashableState, now: float) -> List[Action]:
        if self._check_crash(state, now):
            return []
        return self.inner.enabled(state.inner, now)

    def fire(self, state: CrashableState, action: Action, now: float) -> None:
        if self._check_crash(state, now):
            return
        self.inner.fire(state.inner, action, now)

    def deadline(self, state: CrashableState, now: float) -> float:
        if self._check_crash(state, now):
            return INFINITY
        inner_deadline = self.inner.deadline(state.inner, now)
        if self.schedule.crash_time is None:
            return inner_deadline
        # the crash instant itself is a scheduling boundary: time may
        # not silently pass it while the node still owes urgent actions
        return min(inner_deadline, max(self.schedule.crash_time, now))

    def advance(self, state: CrashableState, old_now: float, new_now: float) -> None:
        if state.crashed:
            return
        if self.schedule.crash_time is not None and new_now >= self.schedule.crash_time:
            self.inner.advance(state.inner, old_now, self.schedule.crash_time)
            state.crashed = True
            return
        self.inner.advance(state.inner, old_now, new_now)

    def clock_value(self, state: CrashableState, now: float):
        return self.inner.clock_value(state.inner, now)

    def __repr__(self) -> str:
        return f"<CrashableEntity {self.name} crash@{self.schedule.crash_time}>"

"""Tests for delay models and schedulers."""

import pytest

from repro.automata.actions import Action
from repro.errors import ScheduleError
from repro.sim.delay import (
    AlternatingExtremesDelay,
    ConstantFractionDelay,
    JitteredDelay,
    MaximalDelay,
    MinimalDelay,
    UniformDelay,
)
from repro.sim.scheduler import (
    DeterministicScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)


class FakeEntity:
    def __init__(self, name):
        self.name = name


class TestDelayModels:
    @pytest.mark.parametrize(
        "model",
        [
            ConstantFractionDelay(0.3),
            MinimalDelay(),
            MaximalDelay(),
            UniformDelay(seed=1),
            AlternatingExtremesDelay(),
            JitteredDelay(seed=2),
        ],
    )
    def test_samples_within_bounds(self, model):
        for k in range(50):
            delay = model.sample((0, 1), ("m", k), float(k), 0.5, 2.0)
            assert 0.5 - 1e-12 <= delay <= 2.0 + 1e-12

    def test_constant_fraction_value(self):
        assert ConstantFractionDelay(0.5).sample((0, 1), "m", 0.0, 1.0, 3.0) == 2.0

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            ConstantFractionDelay(1.5)

    def test_uniform_reproducible(self):
        a = UniformDelay(seed=7)
        b = UniformDelay(seed=7)
        for _ in range(10):
            assert a.sample((0, 1), "m", 0.0, 0.0, 1.0) == b.sample(
                (0, 1), "m", 0.0, 0.0, 1.0
            )

    def test_alternating_per_edge(self):
        model = AlternatingExtremesDelay()
        first = model.sample((0, 1), "a", 0.0, 1.0, 2.0)
        second = model.sample((0, 1), "b", 0.0, 1.0, 2.0)
        other_edge = model.sample((1, 0), "c", 0.0, 1.0, 2.0)
        assert first == 1.0 and second == 2.0
        assert other_edge == 1.0  # independent toggle per edge


class TestSchedulers:
    def candidates(self):
        return [
            (FakeEntity("b"), Action("Y")),
            (FakeEntity("a"), Action("X")),
            (FakeEntity("a"), Action("Z")),
        ]

    def test_deterministic_picks_least(self):
        entity, action = DeterministicScheduler().pick(self.candidates(), 0.0)
        assert entity.name == "a" and action.name == "X"

    def test_empty_candidates_raise(self):
        with pytest.raises(ScheduleError):
            DeterministicScheduler().pick([], 0.0)
        with pytest.raises(ScheduleError):
            RandomScheduler().pick([], 0.0)

    def test_random_reproducible(self):
        picks1 = [RandomScheduler(seed=5).pick(self.candidates(), 0.0)[1].name]
        picks2 = [RandomScheduler(seed=5).pick(self.candidates(), 0.0)[1].name]
        assert picks1 == picks2

    def test_random_choice_independent_of_input_order(self):
        cands = self.candidates()
        a = RandomScheduler(seed=3).pick(cands, 0.0)
        b = RandomScheduler(seed=3).pick(list(reversed(cands)), 0.0)
        assert a[1] == b[1]

    def test_round_robin_rotates(self):
        scheduler = RoundRobinScheduler()
        first = scheduler.pick(self.candidates(), 0.0)
        second = scheduler.pick(self.candidates(), 0.0)
        assert first[0].name == "a"
        assert second[0].name == "b"

    def test_round_robin_wraps_around(self):
        # After serving the lexicographically last entity, priority must
        # wrap back to the first instead of sticking at the end.
        scheduler = RoundRobinScheduler()
        picked = [
            scheduler.pick(self.candidates(), 0.0)[0].name for _ in range(5)
        ]
        assert picked == ["a", "b", "a", "b", "a"]

    def test_round_robin_wraps_when_last_served_leaves(self):
        # The remembered entity need not be among the candidates at all:
        # anything <= it is skipped, then the wrap serves the head.
        scheduler = RoundRobinScheduler()
        scheduler._last_entity_name = "z"
        entity, _ = scheduler.pick(self.candidates(), 0.0)
        assert entity.name == "a"

    def test_random_seed_stable_under_reordering(self):
        # A full pick *sequence* (consuming RNG state each step) must not
        # depend on the order the engine happens to gather candidates in.
        def sequence(shuffle):
            scheduler = RandomScheduler(seed=11)
            picked = []
            for step in range(8):
                cands = self.candidates()
                if shuffle:
                    cands = list(reversed(cands))
                entity, action = scheduler.pick(cands, 0.0)
                picked.append((entity.name, action.name))
            return picked

        assert sequence(False) == sequence(True)

    def test_interned_sort_keys_match_computed(self):
        # The engine passes 3-tuple candidates carrying the interned
        # (entity name, action repr) key; schedulers must order them
        # exactly as they order bare 2-tuples.
        bare = self.candidates()
        interned = [
            (entity, action, (entity.name, repr(action)))
            for entity, action in bare
        ]
        det_bare = DeterministicScheduler().pick(bare, 0.0)
        det_interned = DeterministicScheduler().pick(interned, 0.0)
        assert det_bare[0].name == det_interned[0].name
        assert det_bare[1] == det_interned[1]
        rnd_bare = RandomScheduler(seed=9).pick(bare, 0.0)
        rnd_interned = RandomScheduler(seed=9).pick(interned, 0.0)
        assert rnd_bare[1] == rnd_interned[1]

"""Tests for the system builders and guarantee bookkeeping."""

import pytest

from helpers import pinger_process_factory, pinger_topology
from repro.automata.actions import Action
from repro.core.pipeline import (
    SystemSpec,
    build_clock_system,
    build_mmt_system,
    build_native_clock_system,
    build_timed_system,
    simulation1_delay_bounds,
    simulation2_shift_bound,
)
from repro.clocks.sources import PerfectClockSource
from repro.sim.clock_drivers import PerfectClockDriver
from repro.sim.delay import MinimalDelay


class TestBounds:
    def test_simulation1_widening(self):
        assert simulation1_delay_bounds(0.5, 2.0, 0.1) == (0.3, 2.2)

    def test_simulation1_floor_at_zero(self):
        assert simulation1_delay_bounds(0.1, 2.0, 0.2) == (0.0, 2.4)

    def test_simulation1_zero_eps_identity(self):
        assert simulation1_delay_bounds(0.5, 2.0, 0.0) == (0.5, 2.0)

    def test_simulation2_shift(self):
        assert simulation2_shift_bound(3, 0.1, 0.05) == pytest.approx(
            3 * 0.1 + 0.1 + 0.3
        )


class TestBuilders:
    def test_timed_entities(self):
        spec = build_timed_system(
            pinger_topology(), pinger_process_factory(1, 1.0), 0.1, 1.0
        )
        names = {e.name for e in spec.entities}
        assert "pinger(0)" in names and "echo(1)" in names
        assert "chan[0->1]" in names and "chan[1->0]" in names
        assert set(spec.node_entities) == {0, 1}

    def test_clock_entities(self):
        spec = build_clock_system(
            pinger_topology(), pinger_process_factory(1, 1.0), 0.1,
            0.1, 1.0, lambda i: PerfectClockDriver(0.1),
        )
        names = {e.name for e in spec.entities}
        assert "pinger(0)^c" in names
        assert any(name.startswith("chan[0->1]") for name in names)

    def test_native_clock_entities(self):
        spec = build_native_clock_system(
            pinger_topology(), pinger_process_factory(1, 1.0), 0.1,
            0.1, 1.0, lambda i: PerfectClockDriver(0.1),
        )
        assert any("@clock" in e.name for e in spec.entities)

    def test_mmt_entities_include_ticks(self):
        spec = build_mmt_system(
            pinger_topology(), pinger_process_factory(1, 1.0), 0.1,
            0.1, 1.0, step_bound=0.05,
            sources=lambda i: PerfectClockSource(),
        )
        names = {e.name for e in spec.entities}
        assert "tick(0)" in names and "tick(1)" in names
        assert "pinger(0)^m" in names

    def test_hidden_sets(self):
        timed = build_timed_system(
            pinger_topology(), pinger_process_factory(1, 1.0), 0.1, 1.0
        )
        assert Action("SENDMSG", (0, 1, "m")) in timed.hidden
        assert Action("PING", (0, 1)) not in timed.hidden

        clock = build_clock_system(
            pinger_topology(), pinger_process_factory(1, 1.0), 0.1,
            0.1, 1.0, lambda i: PerfectClockDriver(0.1),
        )
        assert Action("ESENDMSG", (0, 1, ("m", 1.0))) in clock.hidden

        mmt = build_mmt_system(
            pinger_topology(), pinger_process_factory(1, 1.0), 0.1,
            0.1, 1.0, step_bound=0.05,
            sources=lambda i: PerfectClockSource(),
        )
        assert Action("TICK", (0, 1.0)) in mmt.hidden


class TestSystemSpec:
    def make(self):
        return build_timed_system(
            pinger_topology(), pinger_process_factory(2, 1.0), 0.1, 1.0,
            MinimalDelay(),
        )

    def test_add_returns_new_spec(self):
        spec = self.make()
        from repro.components.base import Entity
        from repro.automata.signature import Signature

        class Dummy(Entity):
            def __init__(self):
                super().__init__("dummy", Signature())

            def initial_state(self):
                return {}

            def enabled(self, state, now):
                return []

            def fire(self, state, action, now):
                raise AssertionError

            def apply_input(self, state, action, now):
                raise AssertionError

        extended = spec.add(Dummy())
        assert len(extended.entities) == len(spec.entities) + 1
        assert len(spec.entities) == 4  # original untouched (2 nodes, 2 channels)

    def test_run_convenience(self):
        result = self.make().run(5.0)
        assert result.completed()
        assert result.recorder.count("PING") == 2

    def test_max_steps_threading(self):
        from repro.errors import SimulationLimitError

        with pytest.raises(SimulationLimitError):
            self.make().run(5.0, max_steps=1)

"""Tests for sequential object specifications."""

import pytest

from repro.errors import SpecificationError
from repro.objects.specs import (
    CounterSpec,
    GrowSetSpec,
    LWWMapSpec,
    MaxRegisterSpec,
    PNCounterSpec,
    RegisterSpec,
)


class TestRegisterSpec:
    def test_write_then_read(self):
        spec = RegisterSpec("v0")
        state = spec.initial()
        assert spec.evaluate(state, ("read",)) == "v0"
        state = spec.apply_update(state, ("write", "v1"))
        assert spec.evaluate(state, ("read",)) == "v1"

    def test_unknown_ops_rejected(self):
        spec = RegisterSpec()
        with pytest.raises(SpecificationError):
            spec.apply_update(spec.initial(), ("bump", 1))
        with pytest.raises(SpecificationError):
            spec.evaluate(spec.initial(), ("peek",))


class TestCounterSpec:
    def test_adds_accumulate(self):
        spec = CounterSpec()
        state = spec.initial()
        for k in (1, 2, 3):
            state = spec.apply_update(state, ("add", k))
        assert spec.evaluate(state, ("read",)) == 6

    def test_commutative(self):
        spec = CounterSpec()
        a = spec.apply_update(spec.apply_update(spec.initial(), ("add", 2)), ("add", 5))
        b = spec.apply_update(spec.apply_update(spec.initial(), ("add", 5)), ("add", 2))
        assert a == b


class TestMaxRegisterSpec:
    def test_max_semantics(self):
        spec = MaxRegisterSpec()
        state = spec.initial()
        state = spec.apply_update(state, ("writemax", 7))
        state = spec.apply_update(state, ("writemax", 3))
        assert spec.evaluate(state, ("read",)) == 7

    def test_floor(self):
        assert MaxRegisterSpec(floor=10).initial() == 10


class TestGrowSetSpec:
    def test_add_and_queries(self):
        spec = GrowSetSpec()
        state = spec.apply_update(spec.initial(), ("add", "x"))
        assert spec.evaluate(state, ("contains", "x")) is True
        assert spec.evaluate(state, ("contains", "y")) is False
        assert spec.evaluate(state, ("size",)) == 1

    def test_idempotent_add(self):
        spec = GrowSetSpec()
        state = spec.apply_update(spec.initial(), ("add", "x"))
        state = spec.apply_update(state, ("add", "x"))
        assert spec.evaluate(state, ("size",)) == 1

    def test_state_hashable(self):
        spec = GrowSetSpec()
        state = spec.apply_update(spec.initial(), ("add", (1, "a")))
        hash(state)


class TestPNCounterSpec:
    def test_add_and_sub(self):
        spec = PNCounterSpec()
        state = spec.apply_update(spec.initial(), ("add", 5))
        state = spec.apply_update(state, ("sub", 2))
        assert spec.evaluate(state, ("read",)) == 3


class TestLWWMapSpec:
    def test_put_get_remove(self):
        spec = LWWMapSpec()
        state = spec.apply_update(spec.initial(), ("put", "k", 1))
        assert spec.evaluate(state, ("get", "k")) == 1
        state = spec.apply_update(state, ("put", "k", 2))
        assert spec.evaluate(state, ("get", "k")) == 2
        state = spec.apply_update(state, ("remove", "k"))
        assert spec.evaluate(state, ("get", "k")) is None

    def test_size_and_absent_get(self):
        spec = LWWMapSpec()
        assert spec.evaluate(spec.initial(), ("size",)) == 0
        assert spec.evaluate(spec.initial(), ("get", "missing")) is None

    def test_state_hashable_and_order_independent(self):
        spec = LWWMapSpec()
        a = spec.apply_update(spec.apply_update(spec.initial(), ("put", "a", 1)), ("put", "b", 2))
        b = spec.apply_update(spec.apply_update(spec.initial(), ("put", "b", 2)), ("put", "a", 1))
        assert a == b
        hash(a)

"""Heartbeat sender and deadline monitor processes.

Both are ordinary :class:`~repro.components.base.Process` algorithms in
the paper's programming model — they read only the time handed to them,
so they are eps-time independent and transform with Simulation 1/2
unchanged.

Accuracy analysis (timed model, delays ``[d1', d2']``): heartbeat ``k``
is sent at ``k*P`` and arrives by ``k*P + d2'``, so a monitor with
``timeout >= d2'`` never suspects a live sender. By the Theorem 4.7 rule
this means ``timeout = d2 + 2*eps`` when deployed on a ``[d1, d2]``
network with eps-accurate clocks — :func:`detector_timeout`.

Completeness: if the sender crashes at real time ``T``, no heartbeat
with ``k*P > T + eps`` (clock skew) is ever sent, so the monitor's
deadline for the first missing heartbeat fires by roughly
``T + P + timeout + 2*eps``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.automata.actions import Action
from repro.automata.signature import Signature
from repro.components.base import Process, ProcessContext
from repro.automata.actions import ActionPattern, PatternActionSet
from repro.core.pipeline import SystemSpec, build_clock_system, build_timed_system
from repro.network.topology import Topology

from repro.constants import INFINITY, TOLERANCE as _TOLERANCE


def detector_timeout(d2: float, eps: float) -> float:
    """The deployment timeout per the Theorem 4.7 design rule."""
    return d2 + 2.0 * eps


@dataclass
class SenderState:
    next_beat: int = 1
    pending_send: Optional[int] = None


class HeartbeatSender(Process):
    """Sends heartbeat ``k`` at time ``k * period`` to the monitor.

    Each send is announced by a visible ``BEAT_i(k)`` marker so traces
    expose the sender's schedule.
    """

    def __init__(self, node: int, monitor: int, period: float, count: int):
        if period <= 0:
            raise ValueError("period must be positive")
        signature = Signature(
            outputs=PatternActionSet(
                [ActionPattern("SENDMSG", (node,)), ActionPattern("BEAT", (node,))]
            ),
        )
        super().__init__(node, signature, name=f"hbsender({node})")
        self.monitor = monitor
        self.period = period
        self.count = count

    def initial_state(self) -> SenderState:
        return SenderState()

    def apply_input(self, state, action, ctx):
        raise AssertionError("sender has no inputs")

    def _due(self, state: SenderState) -> float:
        if state.next_beat > self.count:
            return INFINITY
        return state.next_beat * self.period

    def enabled(self, state: SenderState, ctx: ProcessContext) -> List[Action]:
        if state.pending_send is not None:
            return [
                Action(
                    "SENDMSG",
                    (self.node, self.monitor, ("hb", state.pending_send)),
                )
            ]
        # ``>=``, not equality: normally the clock deadline stops the
        # clock exactly at the due time, but a crash–recovery clock
        # jump can land past it — the overdue beats then fire
        # back-to-back at the resumed clock.
        if ctx.time >= self._due(state) - _TOLERANCE:
            return [Action("BEAT", (self.node, state.next_beat))]
        return []

    def fire(self, state: SenderState, action: Action, ctx) -> None:
        if action.name == "BEAT":
            state.pending_send = action.params[1]
            state.next_beat += 1
        else:
            state.pending_send = None

    def deadline(self, state: SenderState, ctx) -> float:
        if state.pending_send is not None:
            return ctx.time
        return self._due(state)


@dataclass
class MonitorState:
    expected: int = 1
    received: Set[int] = field(default_factory=set)
    suspicions: List[int] = field(default_factory=list)


class DeadlineMonitor(Process):
    """Suspects the sender when heartbeat ``k`` misses ``k*P + timeout``."""

    def __init__(self, node: int, period: float, timeout: float, count: int):
        if period <= 0 or timeout < 0:
            raise ValueError("invalid period/timeout")
        signature = Signature(
            inputs=PatternActionSet([ActionPattern("RECVMSG", (node,))]),
            outputs=PatternActionSet([ActionPattern("SUSPECT", (node,))]),
        )
        super().__init__(node, signature, name=f"hbmonitor({node})")
        self.period = period
        self.timeout = timeout
        self.count = count

    def initial_state(self) -> MonitorState:
        return MonitorState()

    def _deadline_for(self, k: int) -> float:
        return k * self.period + self.timeout

    def _advance_expected(self, state: MonitorState) -> None:
        while state.expected in state.received and state.expected <= self.count:
            state.expected += 1

    def apply_input(self, state: MonitorState, action: Action, ctx) -> None:
        _, k = action.params[2]
        state.received.add(k)  # repro: lint-ignore[ISO003] -- k is an immutable int
        self._advance_expected(state)

    def enabled(self, state: MonitorState, ctx) -> List[Action]:
        if state.expected > self.count:
            return []
        if ctx.time >= self._deadline_for(state.expected) - _TOLERANCE:
            return [Action("SUSPECT", (self.node, state.expected))]
        return []

    def fire(self, state: MonitorState, action: Action, ctx) -> None:
        k = action.params[1]
        state.suspicions.append(k)  # repro: lint-ignore[ISO003] -- k is an immutable int
        # give up on k, move on
        # repro: lint-ignore[ISO003] -- k is an immutable int
        state.received.add(k)
        self._advance_expected(state)

    def deadline(self, state: MonitorState, ctx) -> float:
        if state.expected > self.count:
            return INFINITY
        return self._deadline_for(state.expected)


def build_detector_system(
    model: str,
    period: float,
    timeout: float,
    count: int,
    d1: float,
    d2: float,
    eps: float = 0.0,
    drivers=None,
    delay_model=None,
    fault_model=None,
) -> SystemSpec:
    """A two-node sender/monitor system in the timed or clock model.

    ``model`` is ``"timed"`` (runs on the *design* bounds
    ``[max(d1-2*eps,0), d2+2*eps]``) or ``"clock"`` (runs on the real
    ``[d1, d2]`` with the given drivers).
    """
    topology = Topology(2, [(0, 1)])

    def processes(i: int) -> Process:
        if i == 0:
            return HeartbeatSender(0, 1, period, count)
        return DeadlineMonitor(1, period, timeout, count)

    if model == "timed":
        d1p, d2p = max(d1 - 2 * eps, 0.0), d2 + 2 * eps
        return build_timed_system(
            topology, processes, d1p, d2p, delay_model, fault_model=fault_model
        )
    if model == "clock":
        if drivers is None:
            raise ValueError("clock model needs a driver factory")
        return build_clock_system(
            topology, processes, eps, d1, d2, drivers, delay_model,
            fault_model=fault_model,
        )
    raise ValueError(f"unknown model {model!r}")

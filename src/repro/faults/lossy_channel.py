"""A Figure 1 channel that loses and duplicates messages.

Identical to :class:`~repro.network.channel.ChannelEntity` except that
each ``SENDMSG`` attempt is filtered through a
:class:`~repro.faults.models.FaultModel`: zero copies (loss), one, or
several (duplication) enter the in-transit buffer, each with its own
sampled delay in ``[d1, d2]``. Loss/duplication statistics are kept on
the channel state for the fault benchmarks.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Optional

from repro.automata.actions import Action
from repro.network.channel import ChannelEntity, ChannelState, InTransit
from repro.faults.models import FaultModel, NoFaults
from repro.obs.metrics import NULL_COUNTER
from repro.sim.delay import DelayModel


@dataclass
class LossyChannelState(ChannelState):
    dropped: int = 0
    duplicated: int = 0


class LossyChannelEntity(ChannelEntity):
    """``E_{ij,[d1,d2]}`` with omission and duplication failures."""

    def __init__(
        self,
        src: int,
        dst: int,
        d1: float,
        d2: float,
        delay_model: Optional[DelayModel] = None,
        fault_model: Optional[FaultModel] = None,
        prefix: str = "",
    ):
        super().__init__(src, dst, d1, d2, delay_model=delay_model, prefix=prefix)
        self.fault_model = fault_model or NoFaults()
        self.name = f"lossychan[{src}->{dst}]{prefix and '^c' or ''}"
        self._dropped = NULL_COUNTER
        self._duplicated = NULL_COUNTER

    def instrument(self, metrics) -> None:
        super().instrument(metrics)
        self._dropped = metrics.counter("repro.channel.dropped")
        self._duplicated = metrics.counter("repro.channel.duplicated")

    def initial_state(self) -> LossyChannelState:
        return LossyChannelState()

    def apply_input(self, state: LossyChannelState, action: Action, now: float) -> None:
        message = action.params[2]
        copies = self.fault_model.copies((self.src, self.dst), message, now)
        state.sent += 1
        self._sent.inc()
        if copies == 0:
            state.dropped += 1
            self._dropped.inc()
            return
        if copies > 1:
            state.duplicated += copies - 1
            self._duplicated.inc(copies - 1)
        for k in range(copies):
            delay = self.delay_model.sample(
                (self.src, self.dst), message, now, self.d1, self.d2
            )
            # Duplicates must be independent objects: a mutable payload
            # aliased across InTransit records would let the receiver's
            # mutation of one delivery corrupt the copy still in flight.
            payload = message if k == 0 else copy.deepcopy(message)
            # repro: lint-ignore[ISO003] -- ownership transfer: k==0 keeps
            # the single in-flight alias (the sender never touches the
            # message again); every duplicate is a fresh deepcopy
            state.buffer.append(InTransit(payload, now, now + delay))
        depth = float(len(state.buffer))
        self._occupancy.observe(depth)
        self._depth.set(depth)

    def __repr__(self) -> str:
        return (
            f"<LossyChannelEntity {self.name} [{self.d1:g},{self.d2:g}] "
            f"faults={self.fault_model!r}>"
        )

"""Unit tests for actions and action sets."""

import pytest

from repro.automata.actions import (
    ANY,
    NU,
    Action,
    ActionPattern,
    EmptyActionSet,
    FiniteActionSet,
    PatternActionSet,
    PredicateActionSet,
    UnionActionSet,
    action_set,
)


class TestAction:
    def test_equality_is_structural(self):
        assert Action("READ", (1,)) == Action("READ", (1,))
        assert Action("READ", (1,)) != Action("READ", (2,))
        assert Action("READ", (1,)) != Action("WRITE", (1,))

    def test_hashable(self):
        assert len({Action("A", (1,)), Action("A", (1,)), Action("B", ())}) == 2

    def test_node_is_first_int_param(self):
        assert Action("READ", (3,)).node == 3
        assert Action("SENDMSG", (0, 1, "m")).node == 0

    def test_node_none_without_params(self):
        assert Action("GLOBAL").node is None

    def test_node_none_for_non_int_first_param(self):
        assert Action("X", ("s",)).node is None

    def test_repr_contains_name_and_params(self):
        text = repr(Action("SENDMSG", (0, 1, "m")))
        assert "SENDMSG" in text and "m" in text


class TestTimePassage:
    def test_nu_is_singleton(self):
        from repro.automata.actions import _TimePassage

        assert _TimePassage() is NU

    def test_nu_not_in_any_action_set(self):
        assert NU not in FiniteActionSet([Action("A")])
        assert NU not in PatternActionSet([ActionPattern("A")])

    def test_nu_repr(self):
        assert repr(NU) == "nu"


class TestFiniteActionSet:
    def test_membership(self):
        s = FiniteActionSet([Action("A", (1,)), Action("B")])
        assert Action("A", (1,)) in s
        assert Action("A", (2,)) not in s

    def test_empty_hint(self):
        assert FiniteActionSet([]).is_empty_hint()
        assert not FiniteActionSet([Action("A")]).is_empty_hint()


class TestActionPattern:
    def test_name_only_matches_any_params(self):
        p = ActionPattern("SENDMSG")
        assert p.matches(Action("SENDMSG", (0, 1, "x")))
        assert p.matches(Action("SENDMSG"))
        assert not p.matches(Action("RECVMSG", (0, 1, "x")))

    def test_prefix_constrains_leading_params(self):
        p = ActionPattern("SENDMSG", (0, 1))
        assert p.matches(Action("SENDMSG", (0, 1, "x")))
        assert not p.matches(Action("SENDMSG", (1, 0, "x")))

    def test_prefix_longer_than_params_never_matches(self):
        p = ActionPattern("SENDMSG", (0, 1))
        assert not p.matches(Action("SENDMSG", (0,)))

    def test_wildcard_position(self):
        p = ActionPattern("RECVMSG", (ANY, 2))
        assert p.matches(Action("RECVMSG", (0, 2, "x")))
        assert p.matches(Action("RECVMSG", (9, 2)))
        assert not p.matches(Action("RECVMSG", (0, 3, "x")))


class TestUnionAndPredicate:
    def test_union_flattens(self):
        u = UnionActionSet(
            [
                UnionActionSet([FiniteActionSet([Action("A")])]),
                EmptyActionSet(),
                PatternActionSet([ActionPattern("B")]),
            ]
        )
        assert len(u.members) == 2
        assert Action("A") in u
        assert Action("B", (1,)) in u
        assert Action("C") not in u

    def test_or_operator(self):
        s = FiniteActionSet([Action("A")]) | PatternActionSet([ActionPattern("B")])
        assert Action("A") in s and Action("B") in s

    def test_predicate_set(self):
        s = PredicateActionSet(lambda a: a.name.startswith("X"), "starts-with-X")
        assert Action("XY") in s
        assert Action("YX") not in s


class TestActionSetConstructor:
    def test_mixed_specs(self):
        s = action_set("READ", ("SENDMSG", (0,)), Action("SPECIAL", (9,)))
        assert Action("READ", (5,)) in s
        assert Action("SENDMSG", (0, 1, "m")) in s
        assert Action("SENDMSG", (1, 0, "m")) not in s
        assert Action("SPECIAL", (9,)) in s

    def test_empty(self):
        assert action_set().is_empty_hint()

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            action_set(42)

"""ABL4: internal vs real-time specifications (Section 4.3 discussion).

The paper situates itself against Lamport [5] and Neiger-Toueg [13],
whose results cover *internal* specifications (``P = P_inf``) — those
that never reference real time. Sequential consistency (Attiya-Welch
[2], the lineage of algorithm L) is internal; linearizability is not.

Measured consequence: the bare clock transformation of L(c=0) keeps
sequential consistency in every run but loses linearizability in most,
while algorithm S's ``2*eps`` read margin (the paper's contribution for
real-time specifications) restores it — at exactly ``2*eps`` extra read
latency.
"""

from bench_util import save_table
from harness import exp_abl4_internal_specs

from repro.registers.system import (
    INITIAL_VALUE,
    clock_register_system,
    run_register_experiment,
)
from repro.registers.workload import RegisterWorkload
from repro.sim.clock_drivers import driver_factory
from repro.sim.delay import MaximalDelay
from repro.traces.sequential_consistency import is_sequentially_consistent


def _sc_run():
    eps = 0.3
    workload = RegisterWorkload(operations=6, read_fraction=0.6, seed=2,
                                think_min=0.05, think_max=0.6)
    spec = clock_register_system(
        n=3, d1=0.1, d2=1.0, c=0.0, eps=eps, workload=workload,
        drivers=driver_factory("mixed", eps, seed=2),
        delay_model=MaximalDelay(), algorithm="L",
    )
    run = run_register_experiment(spec, 80.0)
    assert is_sequentially_consistent(run.result.trace, INITIAL_VALUE)
    return run


def test_abl4_internal_specs(benchmark):
    run = benchmark(_sc_run)
    assert len(run.operations) >= 10

    table, shapes = exp_abl4_internal_specs()
    save_table("ABL4", table)
    assert shapes["sc_always"]
    assert shapes["l_violations_seen"]
    assert shapes["s_always_linearizable"]

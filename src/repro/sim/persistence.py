"""Trace persistence: save and reload recorded executions as JSON lines.

A recorded run (the :class:`~repro.sim.recorder.Recorder`'s event list)
round-trips through a JSONL file, so traces can be archived, diffed
across code versions, and re-checked (linearizability, trace relations)
without re-simulating. Action parameters are serialized with a small
tagged encoding that round-trips the tuple/list distinction JSON loses.
"""

from __future__ import annotations

import collections
import dataclasses
import io
import json
import random
from typing import IO, Any, Iterable, List

from repro.automata.actions import Action
from repro.automata.executions import TimedEvent, TimedSequence
from repro.errors import ReproError
from repro.sim.recorder import EventRecord, Recorder

FORMAT_VERSION = 1


def _encode_value(value):
    if isinstance(value, tuple):
        return {"t": [_encode_value(v) for v in value]}
    if isinstance(value, list):
        return {"l": [_encode_value(v) for v in value]}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ReproError(f"cannot serialize value of type {type(value).__name__}")


def _decode_value(value):
    if isinstance(value, dict):
        if "t" in value:
            return tuple(_decode_value(v) for v in value["t"])
        if "l" in value:
            return [_decode_value(v) for v in value["l"]]
        raise ReproError(f"malformed encoded value: {value!r}")
    return value


def encode_action(action: Action) -> dict:
    """The tagged JSON encoding of one action (shared with the obs tracer)."""
    return {"name": action.name, "params": _encode_value(action.params)}


def decode_action(payload: dict) -> Action:
    """Inverse of :func:`encode_action`."""
    return Action(payload["name"], _decode_value(payload["params"]))


# historical private names, kept for callers of the original API
_encode_action = encode_action
_decode_action = decode_action


# -- entity-state snapshots (crash-recovery stable storage) ----------------
#
# The chaos layer's crash-recovery model (``repro.faults.recovery``)
# persists a node's state to "stable storage" at the crash instant and
# restores it on recovery. The snapshot reuses the tagged value encoding
# above for the scalar/tuple/list core and extends it structurally —
# dicts, sets, dataclasses, plain objects — so restoring always yields a
# *decoupled* deep copy: no aliasing survives a crash, exactly like real
# serialization to disk, without requiring states to be JSON-text
# serializable (class objects are carried by reference, in memory only).

def _instrument_types():
    from repro.obs.metrics import Counter, Gauge, Histogram, _NullInstrument
    from repro.obs.sketch import QuantileSketch

    return (Counter, Gauge, Histogram, QuantileSketch, _NullInstrument)


def encode_state(value: Any) -> Any:
    """Snapshot an arbitrary entity state into a decoupled structure."""
    if isinstance(value, _instrument_types()):
        # Metrics instruments are observers of the run, not node state:
        # a reboot must keep reporting into the same live series, so
        # they ride through the snapshot by reference.
        return {"r": value}
    if isinstance(value, tuple):
        return {"t": [encode_state(v) for v in value]}
    if isinstance(value, list):
        return {"l": [encode_state(v) for v in value]}
    if isinstance(value, dict):
        return {"m": [(encode_state(k), encode_state(v)) for k, v in value.items()]}
    if isinstance(value, collections.deque):
        return {"dq": [encode_state(v) for v in value]}
    if isinstance(value, (set, frozenset)):
        tag = "fz" if isinstance(value, frozenset) else "s"
        return {tag: [encode_state(v) for v in value]}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, random.Random):
        # object.__new__(Random) re-seeds from system entropy — silently
        # nondeterministic; refuse loudly instead.
        raise ReproError(
            "cannot snapshot random.Random state; keep RNGs on the entity, "
            "not in its state object"
        )
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        derived = getattr(type(value), "_SNAPSHOT_DERIVED", ())
        fields = {
            f.name: encode_state(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if f.name not in derived
        }
        return {"o": type(value), "f": fields}
    if hasattr(value, "__dict__") and not callable(value):
        derived = getattr(type(value), "_SNAPSHOT_DERIVED", ())
        fields = {
            k: encode_state(v)
            for k, v in vars(value).items()
            if k not in derived
        }
        return {"o": type(value), "f": fields}
    raise ReproError(
        f"cannot snapshot state of type {type(value).__name__}: {value!r}"
    )


def decode_state(snapshot: Any) -> Any:
    """Rebuild a fresh state object from an :func:`encode_state` snapshot."""
    if isinstance(snapshot, dict):
        if "r" in snapshot:
            return snapshot["r"]
        if "t" in snapshot:
            return tuple(decode_state(v) for v in snapshot["t"])
        if "l" in snapshot:
            return [decode_state(v) for v in snapshot["l"]]
        if "m" in snapshot:
            return {decode_state(k): decode_state(v) for k, v in snapshot["m"]}
        if "dq" in snapshot:
            return collections.deque(decode_state(v) for v in snapshot["dq"])
        if "s" in snapshot:
            return {decode_state(v) for v in snapshot["s"]}
        if "fz" in snapshot:
            return frozenset(decode_state(v) for v in snapshot["fz"])
        if "o" in snapshot:
            cls = snapshot["o"]
            instance = object.__new__(cls)
            for name, encoded in snapshot["f"].items():
                setattr(instance, name, decode_state(encoded))
            # Derived caches (``_SNAPSHOT_DERIVED``) are deliberately not
            # persisted; the restored object rebuilds them here so a
            # stable-storage image can never carry a stale accelerator
            # structure back into a live run.
            post_restore = getattr(instance, "__post_restore__", None)
            if post_restore is not None:
                post_restore()
            return instance
        raise ReproError(f"malformed state snapshot: {snapshot!r}")
    return snapshot


def dump_events(events: Iterable[EventRecord], stream: IO[str]) -> int:
    """Write event records as JSONL; returns the number written."""
    stream.write(json.dumps({"format": "repro-trace", "version": FORMAT_VERSION}))
    stream.write("\n")
    count = 0
    for event in events:
        stream.write(
            json.dumps(
                {
                    "i": event.index,
                    "a": _encode_action(event.action),
                    "now": event.now,
                    "owner": event.owner,
                    "clock": event.clock,
                    "vis": event.visible,
                }
            )
        )
        stream.write("\n")
        count += 1
    return count


def load_events(stream: IO[str]) -> List[EventRecord]:
    """Read event records from JSONL written by :func:`dump_events`."""
    header_line = stream.readline()
    if not header_line:
        raise ReproError("empty trace file")
    header = json.loads(header_line)
    if header.get("format") != "repro-trace":
        raise ReproError(f"not a repro trace file: {header!r}")
    if header.get("version") != FORMAT_VERSION:
        raise ReproError(f"unsupported trace version {header.get('version')!r}")
    events: List[EventRecord] = []
    for line in stream:
        line = line.strip()
        if not line:
            continue
        payload = json.loads(line)
        events.append(
            EventRecord(
                index=payload["i"],
                action=_decode_action(payload["a"]),
                now=payload["now"],
                owner=payload["owner"],
                clock=payload["clock"],
                visible=payload["vis"],
            )
        )
    return events


def save_recorder(recorder: Recorder, path: str) -> int:
    """Persist a recorder's events to ``path``; returns the count."""
    with open(path, "w") as handle:
        return dump_events(recorder.events, handle)


def load_recorder(path: str) -> Recorder:
    """Reload a persisted trace into a fresh :class:`Recorder`."""
    recorder = Recorder()
    with open(path) as handle:
        recorder.events = load_events(handle)
    return recorder


def dumps_timed_sequence(sequence: TimedSequence) -> str:
    """Serialize a bare timed sequence (no owners/clocks) to a string."""
    buffer = io.StringIO()
    records = [
        EventRecord(i, ev.action, ev.time, "", None, True)
        for i, ev in enumerate(sequence)
    ]
    dump_events(records, buffer)
    return buffer.getvalue()


def loads_timed_sequence(text: str) -> TimedSequence:
    """Inverse of :func:`dumps_timed_sequence`."""
    events = load_events(io.StringIO(text))
    return TimedSequence(TimedEvent(e.action, e.now) for e in events)

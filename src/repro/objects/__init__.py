"""Generalized shared-memory objects (Section 6's closing remark).

The paper notes: "We generalize our results to other shared memory
objects in the full paper." The register algorithm's engine room — every
replica applies each update at the *same* scheduled instant
``send + d2' + delta``, totally ordered by ``(instant, sender)`` — works
unchanged for any object whose updates are **blind** (their effect does
not depend on a return value): counters, max-registers, grow-only sets,
PN-counters, last-writer-wins maps, ...

This subpackage provides:

- :mod:`repro.objects.specs` — sequential object specifications
  (the correctness oracle): register, counter, max-register, G-set,
  PN-counter, LWW-map;
- :mod:`repro.objects.history` — generic operation extraction and a
  spec-driven linearizability / eps-superlinearizability checker;
- :mod:`repro.objects.algorithm` — the generalized Figure 3 automaton:
  blind updates broadcast with scheduled apply instants, queries served
  from the local replica after the S-style delay;
- :mod:`repro.objects.system` — clients and one-call system builders
  for the timed and clock models.

Latency bounds carry over verbatim from Lemma 6.2 / Theorem 6.5:
queries cost ``2*eps + c + delta``, updates ``d2' - c``.
"""

from repro.objects.algorithm import BlindUpdateObjectProcess
from repro.objects.history import (
    ObjOperation,
    extract_object_operations,
    find_object_linearization,
    is_object_linearizable,
    is_object_superlinearizable,
)
from repro.objects.specs import (
    CounterSpec,
    GrowSetSpec,
    LWWMapSpec,
    MaxRegisterSpec,
    PNCounterSpec,
    RegisterSpec,
    SequentialSpec,
)
from repro.objects.system import (
    ObjectRun,
    ObjectWorkload,
    clock_object_system,
    run_object_experiment,
    timed_object_system,
)

__all__ = [
    "SequentialSpec",
    "RegisterSpec",
    "CounterSpec",
    "MaxRegisterSpec",
    "GrowSetSpec",
    "PNCounterSpec",
    "LWWMapSpec",
    "ObjOperation",
    "extract_object_operations",
    "find_object_linearization",
    "is_object_linearizable",
    "is_object_superlinearizable",
    "BlindUpdateObjectProcess",
    "ObjectWorkload",
    "ObjectRun",
    "timed_object_system",
    "clock_object_system",
    "run_object_experiment",
]

"""Baseline files: grandfathered findings with written justifications.

A baseline lets a finding stand without an inline comment — useful for
third-party-shaped code or bulk adoption — while keeping the repo's
bare ``python -m repro lint`` exit green. Entries match findings by
line-independent fingerprint (rule + path + scope + message), so they
survive unrelated edits; an entry whose finding disappeared is *stale*
and fails the run until removed (``--write-baseline`` regenerates).

The committed repo baseline (``lint-baseline.json``) is intentionally
empty: every true positive in ``src/`` is either fixed or carries an
inline suppression with its justification next to the code.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.lint.core import AssessedFinding, LintConfigError, LintResult

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """The committed set of grandfathered findings."""

    entries: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read and validate a baseline file."""
        if not os.path.exists(path):
            raise LintConfigError(f"baseline file not found: {path}")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            raise LintConfigError(f"cannot read baseline {path}: {exc}")
        if not isinstance(payload, dict) or "entries" not in payload:
            raise LintConfigError(
                f"baseline {path} is not a {{version, entries}} object"
            )
        entries: Dict[str, Dict[str, Any]] = {}
        for entry in payload["entries"]:
            if not isinstance(entry, dict) or "fingerprint" not in entry:
                raise LintConfigError(
                    f"baseline {path}: each entry needs a 'fingerprint'"
                )
            entries[entry["fingerprint"]] = entry
        return cls(entries=entries)

    @classmethod
    def from_result(
        cls, result: LintResult, justification: str = "grandfathered"
    ) -> "Baseline":
        """A baseline covering every currently-new finding."""
        entries: Dict[str, Dict[str, Any]] = {}
        for assessed in result.new:
            finding = assessed.finding
            entries[finding.fingerprint] = {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule,
                "path": finding.path,
                "scope": finding.scope,
                "message": finding.message,
                "justification": justification,
            }
        return cls(entries=entries)

    def save(self, path: str) -> None:
        """Write the baseline, entries sorted by fingerprint."""
        payload = {
            "version": BASELINE_VERSION,
            "entries": [
                self.entries[key] for key in sorted(self.entries)
            ],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")


def apply_baseline(
    result: LintResult, baseline: Baseline
) -> LintResult:
    """Fold ``baseline`` into ``result`` (in place, returned for chaining).

    New findings whose fingerprint appears in the baseline become
    ``baselined``; baseline entries matching no finding at all are
    reported as stale (the code they excused is gone — remove them).
    """
    matched: set = set()
    for assessed in result.assessed:
        fingerprint = assessed.finding.fingerprint
        entry = baseline.entries.get(fingerprint)
        if entry is None:
            continue
        matched.add(fingerprint)
        if assessed.status == "new":
            assessed.status = "baselined"
            assessed.justification = str(entry.get("justification", ""))
    result.stale_baseline = [
        baseline.entries[key]
        for key in sorted(baseline.entries)
        if key not in matched
    ]
    return result

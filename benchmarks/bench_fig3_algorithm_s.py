"""FIG3: the Figure 3 transition relation (algorithm S).

Regenerates the figure's guarantee as a measurement: every execution of
the S automaton under random register workloads satisfies the
eps-superlinearizable problem Q. The timed benchmark measures one full
register run including the linearizability check.
"""

from bench_util import save_table
from harness import exp_fig3_algorithm_s

from repro.registers.system import run_register_experiment, timed_register_system
from repro.registers.workload import RegisterWorkload
from repro.sim.delay import UniformDelay


def _register_run():
    workload = RegisterWorkload(operations=8, read_fraction=0.5, seed=1)
    spec = timed_register_system(
        n=3, d1_prime=0.2, d2_prime=1.0, c=0.3, workload=workload,
        algorithm="S", eps=0.1, delay_model=UniformDelay(seed=1),
    )
    run = run_register_experiment(spec, 70.0)
    assert run.superlinearizable(0.1)
    return run


def test_fig3_algorithm_s(benchmark):
    run = benchmark(_register_run)
    assert len(run.operations) >= 15

    table, shapes = exp_fig3_algorithm_s()
    save_table("FIG3", table)
    assert shapes["all_super"]

"""Adversary search: sweep seeded adversaries hunting worst cases.

The theorems quantify over all clock trajectories, delay resolutions,
and interleavings; a single run checks one. :func:`fuzz` runs a
configuration across a grid of seeded adversaries, collects a metric
and a correctness verdict per run, and reports the worst case — the
empirical analogue of "for all adversaries".

Used three ways:

- *assurance*: ``fuzz(...).all_passed`` over hundreds of adversaries;
- *bound tightness*: ``worst_metric`` vs the analytic bound;
- *counterexample hunting*: when a property is expected to fail
  (naive deployments, insufficient guards), ``failures`` holds seeded,
  replayable witnesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.sim.clock_drivers import driver_factory
from repro.sim.delay import UniformDelay
from repro.sim.scheduler import RandomScheduler

DRIVER_KINDS = ("perfect", "fast", "slow", "mixed", "random", "drift")


@dataclass(frozen=True)
class AdversaryChoice:
    """One point in the adversary grid (fully determines a run)."""

    seed: int
    driver_kind: str

    def drivers(self, eps: float):
        """A per-node driver factory for this adversary."""
        return driver_factory(self.driver_kind, eps, seed=self.seed)

    def delay_model(self):
        """The seeded delay model for this adversary."""
        return UniformDelay(seed=self.seed)

    def scheduler(self):
        """The seeded scheduler for this adversary."""
        return RandomScheduler(seed=self.seed)

    def __repr__(self) -> str:
        return f"Adversary(seed={self.seed}, driver={self.driver_kind})"


@dataclass(frozen=True)
class FuzzOutcome:
    adversary: AdversaryChoice
    passed: bool
    metric: float


@dataclass
class FuzzReport:
    outcomes: List[FuzzOutcome] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.outcomes)

    @property
    def failures(self) -> List[FuzzOutcome]:
        return [o for o in self.outcomes if not o.passed]

    @property
    def all_passed(self) -> bool:
        return not self.failures

    @property
    def worst(self) -> Optional[FuzzOutcome]:
        if not self.outcomes:
            return None
        return max(self.outcomes, key=lambda o: o.metric)

    @property
    def worst_metric(self) -> float:
        worst = self.worst
        return worst.metric if worst is not None else 0.0

    def __repr__(self) -> str:
        return (
            f"<FuzzReport: {self.runs} runs, {len(self.failures)} failures, "
            f"worst metric {self.worst_metric:.4g}>"
        )


def adversary_grid(
    seeds: Iterable[int],
    driver_kinds: Sequence[str] = DRIVER_KINDS,
) -> List[AdversaryChoice]:
    """The cross product of seeds and driver kinds."""
    return [
        AdversaryChoice(seed, kind)
        for seed in seeds
        for kind in driver_kinds
    ]


def fuzz(
    run_one: Callable[[AdversaryChoice], Tuple[bool, float]],
    adversaries: Iterable[AdversaryChoice],
) -> FuzzReport:
    """Run ``run_one`` for every adversary; collect verdicts and metrics.

    ``run_one`` returns ``(passed, metric)``; exceptions are *not*
    swallowed — a crash is a finding, not noise.
    """
    report = FuzzReport()
    for adversary in adversaries:
        passed, metric = run_one(adversary)
        report.outcomes.append(FuzzOutcome(adversary, bool(passed), float(metric)))
    return report

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_register_defaults(self):
        args = build_parser().parse_args(["register"])
        assert args.model == "clock"
        assert args.n == 3

    def test_detector_worst_driver_accepted(self):
        args = build_parser().parse_args(["detector", "--driver", "worst"])
        assert args.driver == "worst"


class TestCommands:
    def test_register_clock(self, capsys):
        code = main(["register", "--ops", "4", "--horizon", "60"])
        out = capsys.readouterr().out
        assert code == 0
        assert "linearizable     : True" in out

    def test_register_timed(self, capsys):
        code = main(["register", "--model", "timed", "--ops", "4",
                     "--horizon", "60"])
        assert code == 0
        assert "linearizable" in capsys.readouterr().out

    def test_register_baseline(self, capsys):
        code = main(["register", "--model", "baseline", "--ops", "4",
                     "--horizon", "80"])
        assert code == 0

    def test_object_counter(self, capsys):
        code = main(["object", "--type", "counter", "--ops", "4",
                     "--horizon", "60"])
        out = capsys.readouterr().out
        assert code == 0
        assert "object=counter" in out

    def test_object_gset_timed(self, capsys):
        code = main(["object", "--type", "g-set", "--model", "timed",
                     "--ops", "4", "--horizon", "60"])
        assert code == 0

    def test_detector_accurate(self, capsys):
        code = main(["detector", "--driver", "worst"])
        out = capsys.readouterr().out
        assert code == 0
        assert "suspicions: 0" in out

    def test_detector_naive_shows_false_suspicions(self, capsys):
        code = main(["detector", "--driver", "worst", "--naive"])
        out = capsys.readouterr().out
        assert code == 0
        assert "suspicions: 0" not in out

    def test_detector_crash_detected(self, capsys):
        code = main(["detector", "--driver", "worst", "--crash-at", "7"])
        out = capsys.readouterr().out
        assert code == 0
        assert "suspicions: 0" not in out

    def test_tdma_sufficient_guard(self, capsys):
        code = main(["tdma", "--guard", "0.1", "--eps", "0.1",
                     "--driver", "fast"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mutual exclusion : True" in out

    def test_tdma_insufficient_guard_reported(self, capsys):
        code = main(["tdma", "--guard", "0.0", "--eps", "0.2",
                     "--driver", "mixed"])
        out = capsys.readouterr().out
        assert code == 0  # outcome matches the guard < eps prediction
        assert "mutual exclusion : False" in out

    def test_sync(self, capsys):
        code = main(["sync", "--horizon", "100"])
        out = capsys.readouterr().out
        assert code == 0
        assert "monotone         : True" in out


class TestLeaderCommand:
    def test_leader_ring(self, capsys):
        code = main(["leader", "--topology", "ring", "--n", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "leaders       : [0]" in out

    def test_leader_chain(self, capsys):
        code = main(["leader", "--topology", "chain", "--n", "4",
                     "--driver", "random"])
        assert code == 0

    def test_leader_parser(self):
        args = build_parser().parse_args(["leader", "--topology", "star"])
        assert args.topology == "star"

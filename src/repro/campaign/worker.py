"""The campaign worker: run one grid point, return plain data.

:func:`run_point` is the default task of a
:class:`~repro.campaign.runner.CampaignRunner`. It is a module-level
function (importable by name in any child process, under both the
``fork`` and ``spawn`` start methods), takes one picklable grid-point
dict produced by :meth:`repro.campaign.grid.Grid.points`, and returns a
picklable payload::

    {"result": {...deterministic...}, "wall": <float seconds>}

Everything under ``"result"`` is a pure function of the point config —
two runs of the same point, in any process, on any worker count, yield
byte-identical JSON. Wall-clock time is reported *next to* the result,
never inside it, so aggregates stay deterministic.

Chaos hooks
-----------
For fault-injection tests the runner may attach a ``"chaos"`` dict to a
point (never part of the point ``key``):

- ``{"crash_attempts": k}`` — attempts ``0..k-1`` die abruptly
  (``os._exit`` in a worker process; a simulated-crash exception when
  running serially), exercising the runner's bounded retry;
- ``{"sleep": s}`` — sleep ``s`` seconds before running, exercising the
  per-task timeout kill path.
"""

from __future__ import annotations

import os
import time
from typing import Dict

from repro.errors import CampaignError
from repro.campaign.grid import point_key
from repro.clocks.sources import OffsetClockSource
from repro.obs import MetricsRegistry
from repro.registers.system import (
    baseline_register_system,
    clock_register_system,
    mmt_register_system,
    run_register_experiment,
    timed_register_system,
)
from repro.registers.workload import RegisterWorkload
from repro.sim.clock_drivers import driver_factory
from repro.sim.delay import UniformDelay

MAX_STEPS = 3_000_000
"""Per-point engine step budget (matches the CLI's register command)."""


class SimulatedWorkerCrash(CampaignError):
    """Injected crash while running serially (stands in for process death)."""


def _apply_chaos(point: Dict) -> None:
    chaos = point.get("chaos") or {}
    attempt = int(point.get("_attempt", 0))
    if int(chaos.get("crash_attempts", 0)) > attempt:
        if point.get("_serial"):
            raise SimulatedWorkerCrash(
                f"injected crash on attempt {attempt} of point {point['index']}"
            )
        os._exit(23)  # abrupt death: no exception, no result message
    sleep = float(chaos.get("sleep", 0.0))
    if sleep > 0.0:
        time.sleep(sleep)


def _build_system(config: Dict, run: Dict):
    """The register system spec for one grid point's config."""
    n = int(config["n"])
    eps = float(config["eps"])
    d1, d2 = float(config["d1"]), float(config["d2"])
    c = 2.0 * eps if config["c"] == "u" else float(config["c"])
    seed = int(config["seed"])
    delta = float(run["delta"])
    shards = int(config.get("shards", 1))
    workload = RegisterWorkload(
        operations=int(config["ops"]),
        read_fraction=float(config["read_fraction"]),
        seed=seed,
    )
    if shards > 1:
        # Sharded points need a shard-safe system: per-edge seeded
        # delays and replay-schedule (pure) clients. See repro.sim.sharded.
        from repro.registers.opstream import OpSchedule
        from repro.sim.delay import EdgeSeededDelay

        delay = EdgeSeededDelay(seed=seed)
        schedules = [OpSchedule.generate(i, workload) for i in range(n)]
    else:
        delay = UniformDelay(seed=seed)
        schedules = None
    drivers = driver_factory(config["driver"], eps, seed=seed)
    model = config["model"]
    fault = config["fault"]
    if fault != "none" and model != "clock":
        raise CampaignError(
            f"fault model {fault!r} is only wired for model='clock', "
            f"got {model!r}"
        )
    if shards > 1 and (fault != "none" or model in ("baseline", "mmt")):
        raise CampaignError(
            f"shards={shards} needs model='clock' or 'timed' with "
            f"fault='none' (got model={model!r}, fault={fault!r})"
        )
    if fault == "lossy":
        return _lossy_clock_system(
            n, d1, d2, c, eps, float(config["p_drop"]), delta, workload,
            drivers, delay,
        )
    if fault == "plan":
        spec = clock_register_system(
            n=n, d1=d1, d2=d2, c=c, eps=eps, workload=workload,
            drivers=drivers, delta=delta, delay_model=delay,
        )
        return _with_random_plan(
            spec, n, eps, int(config["plan_seed"]), float(run["horizon"])
        )
    if model == "clock":
        return clock_register_system(
            n=n, d1=d1, d2=d2, c=c, eps=eps, workload=workload,
            drivers=drivers, delta=delta, delay_model=delay,
            schedules=schedules,
        )
    if model == "timed":
        return timed_register_system(
            n=n, d1_prime=d1, d2_prime=d2, c=c, workload=workload,
            algorithm="L", delta=delta, delay_model=delay,
            schedules=schedules,
        )
    if model == "baseline":
        return baseline_register_system(
            n=n, d1=d1, d2=d2, eps=eps, workload=workload, drivers=drivers,
            delay_model=delay,
        )
    if model == "mmt":

        def sources(i):
            if i % 2 == 0:
                return OffsetClockSource(eps, eps)
            return OffsetClockSource(eps, -eps)

        from repro.core.mmt_transform import UniformStepPolicy

        return mmt_register_system(
            n=n, d1=d1, d2=d2, c=c, eps=eps,
            step_bound=float(run["step_bound"]), sources=sources,
            workload=workload, delta=delta,
            step_policy_factory=lambda i: UniformStepPolicy(seed=i),
            delay_model=delay,
        )
    raise CampaignError(f"unknown model {model!r}")


def _with_random_plan(spec, n, eps, plan_seed, horizon):
    """``spec`` under a seeded random fault plan (the chaos sweep axis).

    The plan is a pure function of ``plan_seed`` and the topology, so a
    chaos point stays deterministic and byte-identical across workers.
    """
    from repro.chaos import FaultPlan
    from repro.chaos.apply import apply_plan

    edges = [(i, j) for i in range(n) for j in range(n) if i != j]
    plan = FaultPlan.random(
        plan_seed, n_nodes=n, edges=edges, horizon=horizon, eps=eps
    )
    return apply_plan(spec, plan)


def _lossy_clock_system(
    n, d1, d2, c, eps, p_drop, delta, workload, drivers, delay
):
    """The clock-model register over lossy channels via the ARQ adapter.

    Mirrors the EXT2 experiment: processes are parameterized for the
    *effective* delay bounds ``d2 + B*R`` (Section 7.3), the physical
    channels drop/duplicate per a seeded Bernoulli fault model.
    """
    from repro.core.pipeline import build_clock_system, simulation1_delay_bounds
    from repro.faults import (
        BernoulliFaults,
        ReliableAdapter,
        effective_delay_bounds,
    )
    from repro.network.topology import Topology
    from repro.registers.algorithm_s import AlgorithmSProcess
    from repro.registers.system import INITIAL_VALUE
    from repro.registers.workload import ClientEntity

    retx, max_drops = 0.5, 3
    d1e, d2e = effective_delay_bounds(d1, d2, retx, max_drops)
    _, d2p = simulation1_delay_bounds(d1e, d2e, eps)

    def processes(i):
        inner = AlgorithmSProcess(
            i, list(range(n)), d2p, c, eps, delta=delta,
            initial_value=INITIAL_VALUE,
        )
        return ReliableAdapter(inner, retransmit_interval=retx)

    faults = BernoulliFaults(
        seed=workload.seed, p_drop=p_drop, p_duplicate=0.1,
        max_consecutive_drops=max_drops,
    )
    spec = build_clock_system(
        Topology.complete(n, True), processes, eps, d1, d2, drivers, delay,
        fault_model=faults,
    )
    return spec.add(*[ClientEntity(i, workload) for i in range(n)])


def run_point(point: Dict) -> Dict:
    """Run one grid point; return ``{"result": ..., "wall": ...}``.

    The ``result`` dict is deterministic (see module docstring): config
    echo, operation counts, sorted per-operation latencies, latency
    extremes/means, the linearizability verdict, and the engine's
    deterministic summary (steps, events, metrics snapshot).
    """
    _apply_chaos(point)
    config = point["config"]
    run_params = point["run"]
    # repro: lint-ignore[DET002] -- wall-time measurement around the run;
    # reported as volatile metadata, never part of the deterministic result
    start = time.perf_counter()
    spec = _build_system(config, run_params)
    metrics = MetricsRegistry()
    shards = int(config.get("shards", 1))
    run = run_register_experiment(
        spec, float(run_params["horizon"]), max_steps=MAX_STEPS,
        metrics=metrics, shards=shards if shards > 1 else None,
    )
    wall = time.perf_counter() - start  # repro: lint-ignore[DET002] -- volatile wall-time figure
    linearizable = run.linearizable()
    result = {
        "key": point_key(config),
        "config": dict(config),
        "run": dict(run_params),
        "operations": len(run.operations),
        "reads": len(run.reads),
        "writes": len(run.writes),
        "read_latencies": sorted(op.latency for op in run.reads),
        "write_latencies": sorted(op.latency for op in run.writes),
        "max_read_latency": run.max_read_latency(),
        "max_write_latency": run.max_write_latency(),
        "mean_read_latency": run.mean_read_latency(),
        "mean_write_latency": run.mean_write_latency(),
        "linearizable": linearizable,
        "violations": 0 if linearizable else 1,
        "engine": run.result.summary(),
    }
    return {"result": result, "wall": wall}

"""Table 6.3 as a campaign: ours vs the baseline across an eps grid.

Section 6.3 of the paper compares the transformed register (read
``c + u``, write ``d2 - c + u``, so combined ``d2 + 2u`` at ``c = u``,
where ``u = 2*eps``) against a [10]-style time-sliced baseline (combined
``d2 + 7u``). This example reproduces that comparison across a whole
``eps`` grid in one command, using the ``repro.campaign`` subsystem:
one :class:`~repro.campaign.Grid` sweeping ``model x eps x seed``, one
:class:`~repro.campaign.CampaignRunner`, one
:class:`~repro.campaign.Aggregator` — the same machinery behind
``python -m repro sweep``.

Run::

    python examples/eps_sweep.py
"""

from repro.campaign import Aggregator, CampaignRunner, Grid

EPS_GRID = [0.05, 0.1, 0.15]


def main():
    # c = "u" is the paper's Table 6.3 operating point: c = u = 2*eps,
    # where our combined worst-case latency is d2 + 2u vs the
    # baseline's d2 + 7u. The baseline model ignores c.
    grid = Grid(
        {"model": ["clock", "baseline"], "eps": EPS_GRID, "c": ["u"]},
        seeds=2,
        run={"horizon": 60.0},
    )
    print(f"campaign {grid.grid_id()}: {grid.size} points")

    outcomes = CampaignRunner(workers=1).run(grid.points())
    payload = Aggregator(grid.grid_id()).build(outcomes)
    assert payload["summary"]["failed"] == 0, payload["failures"]
    assert payload["summary"]["violations"] == 0, "a run was not linearizable"

    # Combined worst-case latency (max read + max write) per model/eps,
    # from the per-config group summaries.
    combined = {}
    for group in payload["groups"]:
        config = group["config"]
        combined[(config["model"], config["eps"])] = (
            group["read_latency"]["max"] + group["write_latency"]["max"]
        )

    d2 = 1.0  # the default d2 axis value
    header = (f"{'eps':>5}  {'u=2eps':>7}  {'ours':>7}  {'baseline':>9}  "
              f"{'paper ours':>11}  {'paper base':>11}  wins")
    print(header)
    print("-" * len(header))
    for eps in EPS_GRID:
        u = 2 * eps
        ours = combined[("clock", eps)]
        base = combined[("baseline", eps)]
        wins = ours < base
        print(f"{eps:>5g}  {u:>7g}  {ours:>7.3f}  {base:>9.3f}  "
              f"{d2 + 2 * u:>11.3f}  {d2 + 7 * u:>11.3f}  "
              f"{'yes' if wins else 'NO'}")
        assert wins, (
            f"expected ours to win the combined latency at eps={eps}: "
            f"{ours:.3f} vs {base:.3f}"
        )
    print("\nours wins the combined worst-case latency at every eps, "
          "as Table 6.3 predicts")


if __name__ == "__main__":
    main()

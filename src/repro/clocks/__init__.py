"""Clock substrate: hardware-clock models and synchronization.

The paper assumes each node's clock stays within ``eps`` of real time,
"achievable by means of time services such as NTP [12]". This subpackage
simulates how that assumption is discharged:

- :mod:`repro.clocks.sources` — deterministic and stochastic models of
  hardware clocks (offset, drift, granularity, jitter) that stay within
  a stated envelope;
- :mod:`repro.clocks.sync` — a small client/server synchronization
  protocol in the style of NTP/DTS that bounds a drifting clock's error,
  with an analysis of the achievable ``eps``.
"""

from repro.clocks.sources import (
    ClockSource,
    DriftingClockSource,
    JitteryClockSource,
    OffsetClockSource,
    PerfectClockSource,
    QuantizedClockSource,
)
from repro.clocks.protocol import (
    SyncClientProcess,
    TimeServerProcess,
    build_sync_protocol_system,
    software_clock_errors,
)
from repro.clocks.sync import (
    CristianSimulation,
    HardwareClock,
    SynchronizedClockSource,
    achievable_epsilon,
)

__all__ = [
    "ClockSource",
    "PerfectClockSource",
    "OffsetClockSource",
    "DriftingClockSource",
    "QuantizedClockSource",
    "JitteryClockSource",
    "HardwareClock",
    "CristianSimulation",
    "SynchronizedClockSource",
    "achievable_epsilon",
    "TimeServerProcess",
    "SyncClientProcess",
    "build_sync_protocol_system",
    "software_clock_errors",
]

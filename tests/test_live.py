"""Tests for the live register service (repro.live).

The end-to-end tests run a real loopback cluster inside ``asyncio.run``
with small workloads and generous timing slack: CI machines jitter, and
the *unconditional* claims here are linearizability and schema
conformance, not tight latency. The Theorem 6.5 gate itself is checked
with slack large enough that only a broken implementation trips it.
"""

import json

import pytest

from repro.constants import INFINITY
from repro.errors import LiveServiceError
from repro.live import (
    LiveParams,
    LiveReport,
    build_operations,
    run_load,
    sim_replay,
)
from repro.live.client import ClientRecord
from repro.live.clock import LiveClock
from repro.live.load import live_workload
from repro.live.params import read_manifest, write_manifest
from repro.live.wire import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    tuplify,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import validate_metrics, validate_trace_lines
from repro.sim.clock_drivers import driver_factory


class TestLiveClock:
    def make(self, kind, eps=0.01, node=0):
        import time

        driver = driver_factory(kind, eps, seed=3)(node)
        return LiveClock(driver, time.monotonic())

    @pytest.mark.parametrize("kind", ["perfect", "fast", "slow", "mixed"])
    def test_clock_stays_inside_envelope(self, kind):
        eps = 0.05
        clk = self.make(kind, eps=eps)
        for _ in range(200):
            real, clock = clk.read()
            assert abs(real - clock) <= eps + 1e-9
        assert clk.max_skew <= eps + 1e-9

    def test_clock_is_monotone(self):
        clk = self.make("random", eps=0.02)
        last = -1.0
        for _ in range(100):
            _, clock = clk.read()
            assert clock >= last
            last = clock

    def test_wall_delay_infinity_passthrough(self):
        assert self.make("perfect").wall_delay(INFINITY) == INFINITY

    def test_wall_delay_for_reached_deadline_is_zero(self):
        clk = self.make("perfect")
        _, clock = clk.read()
        assert clk.wall_delay(clock - 1.0) == 0.0
        assert clk.wall_delay(clock) == 0.0

    def test_wall_delay_future_deadline_is_positive_and_bounded(self):
        eps = 0.01
        clk = self.make("slow", eps=eps)
        _, clock = clk.read()
        delay = clk.wall_delay(clock + 0.5)
        # at least the clock distance minus jitter, at most + 2*eps worth
        # of driver pessimism
        assert 0.0 < delay <= 0.5 + 2 * eps + 1e-9


class TestWire:
    def test_tuplify_nested_lists(self):
        assert tuplify(["v", 2, 0]) == ("v", 2, 0)
        assert tuplify([["v", 1, 0], 3.5]) == (("v", 1, 0), 3.5)
        assert tuplify({"m": [["v", 0, 1], 2.0]}) == {"m": (("v", 0, 1), 2.0)}
        assert tuplify("scalar") == "scalar"

    def test_round_trip_preserves_register_values(self):
        frame = {"t": "msg", "src": 1, "m": [["v", 1, 4], 3.25], "stamp": 3.25}
        decoded = decode_frame(encode_frame(frame))
        assert decoded["m"] == (("v", 1, 4), 3.25)
        assert decoded["m"][0] == ("v", 1, 4)  # checker compares by equality

    def test_frames_are_newline_delimited_json(self):
        raw = encode_frame({"t": "ack"})
        assert raw.endswith(b"\n")
        assert json.loads(raw) == {"t": "ack"}

    def test_malformed_frame_rejected(self):
        with pytest.raises(LiveServiceError):
            decode_frame(b"not json\n")

    def test_untagged_frame_rejected(self):
        with pytest.raises(LiveServiceError):
            decode_frame(b'{"src": 1}\n')

    def test_oversize_frame_rejected(self):
        huge = b'{"t": "msg", "pad": "' + b"x" * MAX_FRAME_BYTES + b'"}\n'
        with pytest.raises(LiveServiceError):
            decode_frame(huge)


class TestManifest:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        params = LiveParams(n=2, d2=0.1, eps=0.02, c=0.05, seed=9)
        write_manifest(path, params, [("127.0.0.1", 4001), ("127.0.0.1", 4002)])
        loaded, addresses = read_manifest(path)
        assert loaded == params
        assert addresses == [("127.0.0.1", 4001), ("127.0.0.1", 4002)]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(LiveServiceError):
            read_manifest(str(tmp_path / "absent.json"))

    def test_wrong_format_raises(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else", "version": 1}\n')
        with pytest.raises(LiveServiceError):
            read_manifest(str(path))

    def test_address_count_mismatch_raises(self, tmp_path):
        path = str(tmp_path / "short.json")
        write_manifest(path, LiveParams(n=3), [("127.0.0.1", 4001)])
        with pytest.raises(LiveServiceError):
            read_manifest(path)


class TestParams:
    def test_d2_prime(self):
        assert LiveParams(d2=0.05, eps=0.01).d2_prime == pytest.approx(0.07)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            LiveParams(n=0)
        with pytest.raises(ValueError):
            LiveParams(d1=0.2, d2=0.1)
        with pytest.raises(ValueError):
            LiveParams(eps=-0.1)

    def test_dict_round_trip(self):
        params = LiveParams(n=4, driver="slow", seed=5)
        assert LiveParams.from_dict(params.to_dict()) == params


class TestBuildOperations:
    def test_ids_assigned_in_invocation_order(self):
        records = [
            ClientRecord(1, 0, "W", ("v", 1, 0), 0.5, 0.9),
            ClientRecord(0, 0, "R", ("v", -1, 0), 0.1, 0.4),
        ]
        ops = build_operations(records)
        assert [op.op_id for op in ops] == [0, 1]
        assert ops[0].node == 0 and ops[1].node == 1
        assert ops[0].latency == pytest.approx(0.3)


class TestEndToEnd:
    """One real loopback run, shared across assertions (clusters are the
    expensive part; one run can answer every question)."""

    @pytest.fixture(scope="class")
    def report(self):
        params = LiveParams(n=3, seed=4)
        workload = live_workload(
            operations=10, read_fraction=0.5, seed=4,
            think_min=0.0, think_max=0.01,
        )
        return run_load(params, workload, slack=1.0)

    def test_history_is_linearizable(self, report):
        assert report.linearization.ok
        assert report.linearization.visited > 0

    def test_all_operations_completed(self, report):
        assert len(report.operations) == 30
        assert len(report.reads) + len(report.writes) == 30

    def test_eps_measured_within_envelope(self, report):
        assert 0.0 <= report.eps_measured <= report.params.eps + 1e-9

    def test_node_stats_collected(self, report):
        assert len(report.node_stats) == 3
        assert {s["node"] for s in report.node_stats} == {0, 1, 2}
        # updates flowed: every op broadcasts to all peers
        assert all(s["wire_count"] > 0 for s in report.node_stats)

    def test_bounds_pass_with_generous_slack(self, report):
        # slack=1.0 makes the gate insensitive to CI jitter; a failure
        # here means the implementation, not the machine, is wrong
        assert report.bounds_ok, "\n".join(
            check.render() for check in report.bound_checks()
        )

    def test_render_mentions_the_verdict(self, report):
        text = report.render(assert_bounds=True)
        assert "linearizable   : True" in text
        assert "Theorem 6.5 gate" in text

    def test_metrics_snapshot_conforms_to_schema(self, report):
        registry = MetricsRegistry()
        report.to_metrics(registry)
        snapshot = registry.snapshot()
        assert validate_metrics(snapshot) == []
        assert snapshot["counters"]["repro.live.ops.completed"] == 30

    def test_trace_export_conforms_to_schema(self, report, tmp_path):
        path = tmp_path / "live-trace.jsonl"
        report.write_trace(str(path))
        lines = path.read_text().splitlines()
        assert validate_trace_lines(lines) == []
        spans = [json.loads(l) for l in lines if '"span"' in l]
        assert len(spans) == 60  # inv + res per operation

    def test_sim_replay_of_same_seed_linearizes(self, report):
        workload = live_workload(
            operations=10, read_fraction=0.5, seed=4,
            think_min=0.0, think_max=0.01,
        )
        run = sim_replay(report.params, workload)
        assert run.linearizable()
        assert len(run.operations) == len(report.operations)


class TestReportWithoutRun:
    """Report mechanics that need no cluster."""

    def make_report(self, ops, stats=()):
        from repro.traces.linearizability import analyze_linearizability

        lin = analyze_linearizability(ops, initial_value=("v", -1, 0))
        return LiveReport(
            params=LiveParams(), operations=ops, linearization=lin,
            node_stats=list(stats),
        )

    def test_empty_history_is_ok(self):
        report = self.make_report([])
        assert report.ok
        assert report.eps_measured == LiveParams().eps  # fallback
        # only the premise check exists without latencies
        assert [c.name for c in report.bound_checks()] == ["wire delay"]

    def test_wire_premise_violation_detected(self):
        report = self.make_report([], stats=[
            {"node": 0, "max_skew": 0.005, "wire_max": 9.0},
        ])
        assert not report.bounds_ok
        assert report.eps_measured == 0.005

"""Timeout-based failure detection (the introduction's motivating use).

The paper's opening lists "detect process failures" among the uses of
time information. This subpackage provides the heartbeat/deadline
detector pair used by the examples and fault tests:

- :class:`~repro.detector.heartbeat.HeartbeatSender` — emits a
  heartbeat every ``period``;
- :class:`~repro.detector.heartbeat.DeadlineMonitor` — suspects the
  sender when heartbeat ``k`` misses ``k*period + timeout``.

Designed in the timed model with ``timeout = d2'``, the monitor is
*accurate* (no false suspicions); combined with crash-stop failures
(:mod:`repro.faults.crash`) it is also *complete* (a crashed sender is
suspected within one period + timeout). The Theorem 4.7 design rule
``timeout = d2 + 2*eps`` carries both properties to the clock model.
"""

from repro.detector.heartbeat import (
    DeadlineMonitor,
    HeartbeatSender,
    build_detector_system,
    detector_timeout,
)

__all__ = [
    "HeartbeatSender",
    "DeadlineMonitor",
    "build_detector_system",
    "detector_timeout",
]

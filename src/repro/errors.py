"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AxiomViolation(ReproError):
    """An automaton violates one of the model axioms (S1-S5, C1-C4).

    The violated axiom name is stored in :attr:`axiom` and the offending
    piece of the automaton (state or transition) in :attr:`witness`.
    """

    def __init__(self, axiom: str, message: str, witness: object = None):
        super().__init__(f"{axiom}: {message}")
        self.axiom = axiom
        self.witness = witness


class CompositionError(ReproError):
    """Raised when automata are not compatible for composition."""


class SignatureError(ReproError):
    """Raised when an action is used inconsistently with a signature."""


class TransitionError(ReproError):
    """Raised when a requested transition does not exist.

    Notably raised when an input action is applied to an automaton that
    has no transition for it (violating input-enabledness), or when an
    output/internal action fires without its precondition holding.
    """


class TimelockError(ReproError):
    """Raised when a system can neither take a step nor let time pass.

    A timelock indicates a modeling bug: some component's time-passage
    precondition blocks the advance of ``now`` but no enabled action can
    discharge the obligation.
    """


class ScheduleError(ReproError):
    """Raised when a scheduler produces an invalid decision."""


class ClockEnvelopeError(ReproError):
    """Raised when a clock trajectory leaves the ``C_eps`` envelope.

    The clock predicate ``C_eps`` requires ``|now - clock| <= eps`` in
    every reachable state; a clock driver that proposes a value outside
    the envelope is defective.
    """


class SimulationLimitError(ReproError):
    """Raised when a simulation exceeds its configured step budget."""


class SpecificationError(ReproError):
    """Raised when a problem specification is internally inconsistent."""


class LiveServiceError(ReproError):
    """Raised when the live register service misbehaves.

    Covers protocol violations on the wire (unexpected frame types,
    responses without a pending invocation), peers dropping connections
    mid-operation, and malformed service manifests.
    """


class CampaignError(ReproError):
    """Raised when a parameter-sweep campaign is misconfigured.

    Covers malformed grid specs (unknown axes, empty or duplicate axis
    values), checkpoint/manifest mismatches (resuming against a
    different grid), and worker tasks that cannot be resolved to an
    importable callable.
    """


class ShardingError(ReproError):
    """Raised when a system cannot run under the sharded engine mode.

    Sharded execution (``Simulator.run(..., shards=k)``) requires every
    component to be window-composable: pure enabled sets, shard-safe
    delay models and schedulers, granularity-free clock drivers, and a
    positive cross-shard lookahead. A system that breaks one of those
    preconditions raises this error up front instead of silently
    diverging from the serial trace.
    """

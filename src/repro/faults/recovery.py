"""Crash–recovery node failures.

:class:`RecoverableEntity` extends the crash-stop proxy of
:mod:`repro.faults.crash` to the crash–recovery model: a node may go
down and come back, possibly several times, per a
:class:`RecoverySchedule` of ``[crash, recover)`` windows.

Semantics per window:

- at the crash instant the node's state is snapshotted to "stable
  storage" (the structural encoding of
  :func:`repro.sim.persistence.encode_state`) and the node goes silent —
  no enabled actions, inputs fall on deaf ears, no time-passage
  constraints except the window boundaries themselves;
- at the recovery instant the state is restored from the snapshot
  (``restore="snapshot"``, the stable-storage model) or reset to a fresh
  initial state (``restore="initial"``, the amnesia model), and the node
  resumes. Restoring through the encoding guarantees the revived state
  shares no mutable structure with anything that escaped before the
  crash — exactly like re-reading a disk image.

Messages delivered to a down node are lost (the channel still delivers;
the node ignores the input) — the classic reason crash–recovery is
strictly harder than a pause. Entities with a local clock additionally
get an ``on_recover(state, now)`` hook (see
:class:`~repro.core.clock_transform.ClockNodeEntity`) so a rebooting
node can re-read its hardware clock instead of resuming a stale one.

Both window boundaries are surfaced as deadlines, so the engine never
silently advances time across a crash or a recovery, and the proxy works
identically under the incremental and full-scan engine cores (it makes
no scheduling promises beyond its inner entity's ``pure_enabled``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro.automata.actions import Action
from repro.components.base import Entity
from repro.constants import TOLERANCE as _TOLERANCE
from repro.errors import SpecificationError
from repro.obs.metrics import NULL_COUNTER
from repro.sim.persistence import decode_state, encode_state

INFINITY = float("inf")


@dataclass(frozen=True)
class RecoverySchedule:
    """Sorted, disjoint ``[crash, recover)`` windows for one node.

    ``recover`` may be :data:`INFINITY` (the node never comes back —
    crash-stop as a special case).
    """

    windows: Tuple[Tuple[float, float], ...] = ()

    @classmethod
    def of(cls, windows: Sequence[Tuple[float, float]]) -> "RecoverySchedule":
        ordered = tuple(sorted((float(a), float(b)) for a, b in windows))
        last_end = -INFINITY
        for crash_t, recover_t in ordered:
            if crash_t < 0 or recover_t <= crash_t:
                raise SpecificationError(
                    f"invalid crash window [{crash_t:g}, {recover_t:g})"
                )
            if crash_t < last_end - _TOLERANCE:
                raise SpecificationError(
                    f"overlapping crash windows at t={crash_t:g}"
                )
            last_end = recover_t
        return cls(ordered)

    def down(self, now: float) -> bool:
        """Whether the node is down at real time ``now``."""
        return any(
            a - _TOLERANCE <= now < b - _TOLERANCE for a, b in self.windows
        )

    def next_boundary(self, now: float) -> float:
        """The next crash or recovery instant strictly after ``now``."""
        best = INFINITY
        for a, b in self.windows:
            for t in (a, b):
                if t > now + _TOLERANCE and t < best:
                    best = t
        return best


@dataclass
class RecoverableState:
    inner: Any
    down: bool = False
    snapshot: Any = None
    crashes: int = 0
    recoveries: int = 0
    lost_inputs: int = 0
    log: List[Tuple[str, float]] = field(default_factory=list)


class RecoverableEntity(Entity):
    """An entity that crashes and recovers per a :class:`RecoverySchedule`."""

    def __init__(
        self,
        inner: Entity,
        schedule: RecoverySchedule,
        restore: str = "snapshot",
    ):
        if restore not in ("snapshot", "initial"):
            raise SpecificationError(f"unknown restore policy {restore!r}")
        super().__init__(inner.name, inner.signature)
        self.inner = inner
        self.schedule = schedule
        self.restore = restore
        # Unlike the crash-stop proxy, the enabled set *grows* again at
        # a recovery boundary with no fire/apply_input to signal it, so
        # the purity promise must NOT carry over: the incremental core
        # would keep serving the cached empty set and timelock at the
        # recovery instant. Impure entities are re-derived every round,
        # which also keeps both engine cores trace-identical.
        self.pure_enabled = False
        self._c_crashes = NULL_COUNTER
        self._c_recoveries = NULL_COUNTER
        self._c_lost = NULL_COUNTER

    def instrument(self, metrics) -> None:
        self.inner.instrument(metrics)
        self._c_crashes = metrics.counter("repro.chaos.crashes")
        self._c_recoveries = metrics.counter("repro.chaos.recoveries")
        self._c_lost = metrics.counter("repro.chaos.inputs_lost")

    def initial_state(self) -> RecoverableState:
        return RecoverableState(inner=self.inner.initial_state())

    # -- window transitions ------------------------------------------------

    def _sync(self, state: RecoverableState, now: float) -> bool:
        """Align the up/down phase with the schedule; returns ``down``.

        Idempotent and a pure function of ``(state, now)``, so calling
        it from ``enabled`` preserves the inner entity's ``pure_enabled``
        promise (the same discipline as ``CrashableEntity._check_crash``).
        """
        down_now = self.schedule.down(now)
        if down_now and not state.down:
            state.snapshot = encode_state(state.inner)
            state.down = True
            state.crashes += 1
            state.log.append(("crash", now))
            self._c_crashes.inc()
        elif not down_now and state.down:
            if self.restore == "snapshot" and state.snapshot is not None:
                state.inner = decode_state(state.snapshot)
            else:
                state.inner = self.inner.initial_state()
            state.snapshot = None
            state.down = False
            state.recoveries += 1
            state.log.append(("recover", now))
            self._c_recoveries.inc()
            on_recover = getattr(self.inner, "on_recover", None)
            if on_recover is not None:
                on_recover(state.inner, now)
        return state.down

    # -- entity interface --------------------------------------------------

    def apply_input(self, state: RecoverableState, action: Action, now: float) -> None:
        if self._sync(state, now):
            state.lost_inputs += 1
            self._c_lost.inc()
            return  # inputs fall on deaf ears while down
        self.inner.apply_input(state.inner, action, now)

    def enabled(self, state: RecoverableState, now: float) -> List[Action]:
        if self._sync(state, now):
            return []
        return self.inner.enabled(state.inner, now)

    def fire(self, state: RecoverableState, action: Action, now: float) -> None:
        if self._sync(state, now):
            return
        self.inner.fire(state.inner, action, now)

    def deadline(self, state: RecoverableState, now: float) -> float:
        boundary = self.schedule.next_boundary(now)
        if self._sync(state, now):
            return boundary  # wake exactly at recovery, constrain nothing else
        return min(self.inner.deadline(state.inner, now), boundary)

    def advance(self, state: RecoverableState, old_now: float, new_now: float) -> None:
        if self._sync(state, old_now):
            # the engine never advances past next_boundary (it is our
            # deadline), so a down node simply sits out the interval
            return
        self.inner.advance(state.inner, old_now, new_now)

    def clock_value(self, state: RecoverableState, now: float):
        return self.inner.clock_value(state.inner, now)

    def __repr__(self) -> str:
        windows = ", ".join(
            f"[{a:g},{b:g})" for a, b in self.schedule.windows
        )
        return f"<RecoverableEntity {self.name} down {windows or 'never'}>"

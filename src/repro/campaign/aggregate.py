"""Campaign-level aggregation of per-point results.

The :class:`Aggregator` folds the per-point outcomes of a campaign run
into one payload with four derived views:

- **points** — every deterministic per-point result, in grid order;
- **groups** — per-config summaries across the seed batch (percentile
  read/write latencies, violation counts), keyed by the config minus
  its ``seed`` axis;
- **curves** — the skew-vs-eps and latency-vs-eps curves the paper's
  theorems are about, one row per distinct ``eps`` value;
- **metrics** — all per-run PR-1 metrics snapshots merged through
  :func:`repro.obs.merge_snapshots` (counters add, histogram buckets
  add, gauges max).

Exports are JSONL (one record per line, compact, sorted keys) and CSV
(flat per-point rows). Every derived value is a pure function of the
set of point results — worker count, completion order, retry history,
and wall-clock times never appear — so a campaign aggregates
**byte-identically** whether it ran serially, on N workers, or across
an interruption and resume.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List, Optional, Sequence

from repro.analysis.stats import percentile
from repro.campaign.runner import Outcome
from repro.obs import merge_snapshots

AGGREGATE_FORMAT = "repro-campaign-aggregate"
AGGREGATE_VERSION = 1

CSV_COLUMNS = (
    "index", "model", "n", "eps", "d1", "d2", "c", "driver", "ops",
    "read_fraction", "fault", "p_drop", "seed", "operations", "reads",
    "writes", "max_read_latency", "mean_read_latency", "max_write_latency",
    "mean_write_latency", "linearizable", "violations", "steps", "events",
)
"""Flat per-point CSV header (config axes then measurements)."""


def _percentiles(latencies: Sequence[float]) -> Dict[str, float]:
    data = sorted(latencies)
    if not data:
        return {"p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "p50": percentile(data, 0.50),
        "p90": percentile(data, 0.90),
        "p99": percentile(data, 0.99),
        "max": data[-1],
    }


class Aggregator:
    """Merge per-point worker results into campaign summaries.

    Expects outcomes whose results follow the
    :func:`repro.campaign.worker.run_point` shape (config echo, sorted
    latency lists, violation flag, engine summary with its metrics
    snapshot).
    """

    def __init__(self, campaign_id: str):
        self.campaign_id = campaign_id

    def build(self, outcomes: Sequence[Outcome]) -> Dict[str, object]:
        """The aggregate payload for one campaign run (see module doc)."""
        done = [o for o in outcomes if o.ok]
        failed = [o for o in outcomes if not o.ok]
        points = [
            {"index": o.index, "result": o.result}
            for o in sorted(done, key=lambda o: o.index)
        ]
        groups = self._groups(points)
        curves = self._curves(groups, points)
        snapshots = [
            p["result"]["engine"]["metrics"]
            for p in points
            if isinstance(p["result"].get("engine"), dict)
            and p["result"]["engine"].get("metrics")
        ]
        merged_metrics = merge_snapshots(snapshots) if snapshots else None
        return {
            "campaign": self.campaign_id,
            "points": points,
            "groups": groups,
            "curves": curves,
            "metrics": merged_metrics,
            "failures": [
                {"index": o.index, "key": o.key, "error": o.error}
                for o in sorted(failed, key=lambda o: o.index)
            ],
            "summary": {
                "points": len(outcomes),
                "completed": len(done),
                "failed": len(failed),
                "violations": sum(
                    p["result"].get("violations", 0) for p in points
                ),
                "operations": sum(
                    p["result"].get("operations", 0) for p in points
                ),
            },
        }

    def _groups(self, points: List[Dict]) -> List[Dict]:
        grouped: Dict[str, Dict] = {}
        order: List[str] = []
        for point in points:
            result = point["result"]
            config = dict(result["config"])
            config.pop("seed", None)
            group_key = json.dumps(config, sort_keys=True, separators=(",", ":"))
            if group_key not in grouped:
                grouped[group_key] = {
                    "config": config,
                    "seeds": 0,
                    "reads": 0,
                    "writes": 0,
                    "violations": 0,
                    "_read_latencies": [],
                    "_write_latencies": [],
                }
                order.append(group_key)
            group = grouped[group_key]
            group["seeds"] += 1
            group["reads"] += result.get("reads", 0)
            group["writes"] += result.get("writes", 0)
            group["violations"] += result.get("violations", 0)
            group["_read_latencies"].extend(result.get("read_latencies", ()))
            group["_write_latencies"].extend(result.get("write_latencies", ()))
        rows = []
        for group_key in order:
            group = grouped[group_key]
            rows.append(
                {
                    "config": group["config"],
                    "seeds": group["seeds"],
                    "reads": group["reads"],
                    "writes": group["writes"],
                    "violations": group["violations"],
                    "read_latency": _percentiles(group["_read_latencies"]),
                    "write_latency": _percentiles(group["_write_latencies"]),
                }
            )
        return rows

    def _curves(self, groups: List[Dict], points: List[Dict]) -> List[Dict]:
        """Latency/violation/skew curves over the ``eps`` axis."""
        by_eps: Dict[float, Dict] = {}
        for group in groups:
            eps = group["config"].get("eps")
            if eps is None:
                continue
            bucket = by_eps.setdefault(
                eps,
                {"eps": eps, "reads": 0, "writes": 0, "violations": 0,
                 "_read": [], "_write": [], "skew_max": 0.0},
            )
            bucket["reads"] += group["reads"]
            bucket["writes"] += group["writes"]
            bucket["violations"] += group["violations"]
        for point in points:
            result = point["result"]
            eps = result["config"].get("eps")
            bucket = by_eps.get(eps)
            if bucket is None:
                continue
            bucket["_read"].extend(result.get("read_latencies", ()))
            bucket["_write"].extend(result.get("write_latencies", ()))
            engine = result.get("engine") or {}
            gauges = (engine.get("metrics") or {}).get("gauges") or {}
            bucket["skew_max"] = max(
                bucket["skew_max"], float(gauges.get("repro.clock.skew_max", 0.0))
            )
        rows = []
        for eps in sorted(by_eps):
            bucket = by_eps[eps]
            rows.append(
                {
                    "eps": eps,
                    "reads": bucket["reads"],
                    "writes": bucket["writes"],
                    "violations": bucket["violations"],
                    "skew_max": bucket["skew_max"],
                    "read_latency": _percentiles(bucket["_read"]),
                    "write_latency": _percentiles(bucket["_write"]),
                }
            )
        return rows

    # -- exports -------------------------------------------------------------

    def write_jsonl(self, path: str, payload: Dict[str, object]) -> None:
        """Write the aggregate as deterministic JSONL.

        Line 1 is a header record; then one ``point`` record per grid
        point in index order, the ``group`` and ``curve`` records, an
        optional ``metrics`` record (the merged snapshot), any
        ``failure`` records, and a final ``summary`` record.
        """
        def dump(record: Dict) -> str:
            return json.dumps(record, sort_keys=True, separators=(",", ":"))

        with open(path, "w", encoding="utf-8", newline="\n") as handle:
            handle.write(dump({
                "k": "header",
                "format": AGGREGATE_FORMAT,
                "version": AGGREGATE_VERSION,
                "campaign": payload["campaign"],
                "points": payload["summary"]["points"],
            }) + "\n")
            for point in payload["points"]:
                handle.write(dump({"k": "point", **point}) + "\n")
            for group in payload["groups"]:
                handle.write(dump({"k": "group", **group}) + "\n")
            for curve in payload["curves"]:
                handle.write(dump({"k": "curve", **curve}) + "\n")
            if payload.get("metrics") is not None:
                handle.write(
                    dump({"k": "metrics", "merged": payload["metrics"]}) + "\n"
                )
            for failure in payload["failures"]:
                handle.write(dump({"k": "failure", **failure}) + "\n")
            handle.write(dump({"k": "summary", **payload["summary"]}) + "\n")

    def write_csv(self, path: str, payload: Dict[str, object]) -> None:
        """Write flat per-point rows as CSV (:data:`CSV_COLUMNS`)."""
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle, lineterminator="\n")
            writer.writerow(CSV_COLUMNS)
            for point in payload["points"]:
                result = point["result"]
                config = result["config"]
                engine = result.get("engine") or {}
                writer.writerow([
                    point["index"],
                    config.get("model"), config.get("n"), config.get("eps"),
                    config.get("d1"), config.get("d2"), config.get("c"),
                    config.get("driver"), config.get("ops"),
                    config.get("read_fraction"), config.get("fault"),
                    config.get("p_drop"), config.get("seed"),
                    result.get("operations"), result.get("reads"),
                    result.get("writes"),
                    result.get("max_read_latency"),
                    result.get("mean_read_latency"),
                    result.get("max_write_latency"),
                    result.get("mean_write_latency"),
                    result.get("linearizable"),
                    result.get("violations"),
                    engine.get("steps"), engine.get("events"),
                ])

"""Shim for legacy editable installs (no `wheel` in the offline env)."""

from setuptools import setup

setup()

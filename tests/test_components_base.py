"""Direct tests for the executable-layer base interfaces."""

import pytest

from helpers import EchoProcess, PingerProcess
from repro.automata.actions import Action
from repro.components.base import Entity, Process, ProcessContext, TimedNodeEntity


class TestProcessContext:
    def test_carries_time(self):
        assert ProcessContext(3.5).time == 3.5

    def test_repr(self):
        assert "3.5" in repr(ProcessContext(3.5))

    def test_slots_prevent_extra_attrs(self):
        ctx = ProcessContext(1.0)
        with pytest.raises(AttributeError):
            ctx.extra = 1


class TestProcessDefaults:
    def test_abstract_methods_raise(self):
        from repro.automata.signature import Signature

        proc = Process(0, Signature())
        with pytest.raises(NotImplementedError):
            proc.initial_state()
        with pytest.raises(NotImplementedError):
            proc.enabled(None, ProcessContext(0.0))
        with pytest.raises(NotImplementedError):
            proc.fire(None, Action("X"), ProcessContext(0.0))
        with pytest.raises(NotImplementedError):
            proc.apply_input(None, Action("X"), ProcessContext(0.0))

    def test_default_deadline_is_infinite(self):
        from repro.automata.signature import Signature

        proc = Process(0, Signature())
        assert proc.deadline(None, ProcessContext(0.0)) == float("inf")

    def test_default_name(self):
        from repro.automata.signature import Signature

        assert "3" in Process(3, Signature()).name


class TestTimedNodeEntity:
    def make(self):
        return TimedNodeEntity(PingerProcess(0, 1, count=2, interval=1.0))

    def test_name_and_signature_from_process(self):
        entity = self.make()
        assert entity.name == "pinger(0)"
        assert entity.signature.is_output(Action("PING", (0, 1)))

    def test_clock_value_is_real_time(self):
        entity = self.make()
        state = entity.initial_state()
        assert entity.clock_value(state, 7.25) == 7.25

    def test_delegation_passes_now_as_time(self):
        entity = self.make()
        state = entity.initial_state()
        # at now=1.0 the pinger's PING is enabled (its schedule is met)
        assert Action("PING", (0, 1)) in entity.enabled(state, 1.0)
        assert entity.enabled(state, 0.5) == []
        assert entity.deadline(state, 0.5) == 1.0

    def test_default_advance_is_noop(self):
        entity = self.make()
        state = entity.initial_state()
        entity.advance(state, 0.0, 5.0)  # must not raise or mutate time
        assert entity.deadline(state, 5.0) == 1.0

    def test_entity_base_defaults(self):
        from repro.automata.signature import Signature

        entity = Entity("e", Signature())
        assert entity.deadline(None, 0.0) == float("inf")
        assert entity.clock_value(None, 0.0) is None
        assert not entity.accepts(Action("X"))

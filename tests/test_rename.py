"""Tests for the renaming operator (Section 2.1)."""

from repro.automata.actions import Action, action_set
from repro.automata.signature import Signature
from repro.automata.state import State
from repro.automata.theory_timed import SimpleTimedAutomaton, rename

TICK = Action("TICKED")
TOCK = Action("TOCKED")
POKE = Action("POKE")
PROD = Action("PROD")


def ticker():
    def discrete(state):
        if abs(state.now - state.next) < 1e-9:
            yield TICK, state.replace(next=state.next + 1.0)

    def inputs(state, action):
        if action == POKE:
            return [state.replace(poked=state.poked + 1)]
        return [state]

    return SimpleTimedAutomaton(
        signature=Signature(
            inputs=action_set("POKE"), outputs=action_set("TICKED")
        ),
        starts=[State(now=0.0, next=1.0, poked=0)],
        discrete=discrete,
        inputs=inputs,
        deadline=lambda s: s.next,
        name="ticker",
    )


def renamed_ticker():
    mapping = {TICK: TOCK, POKE: PROD}
    inverse = {v: k for k, v in mapping.items()}
    return rename(
        ticker(),
        forward=lambda a: mapping.get(a, a),
        backward=lambda a: inverse.get(a, a),
        signature=Signature(
            inputs=action_set("PROD"), outputs=action_set("TOCKED")
        ),
    )


class TestRename:
    def test_outputs_renamed(self):
        auto = renamed_ticker()
        (s0,) = auto.start_states()
        s1 = auto.time_passage(s0, 1.0)
        ((action, target),) = list(auto.discrete_transitions(s1))
        assert action == TOCK
        assert target.next == 2.0

    def test_inputs_translated_backward(self):
        auto = renamed_ticker()
        (s0,) = auto.start_states()
        (s1,) = auto.input_transitions(s0, PROD)
        assert s1.poked == 1

    def test_signature_is_the_new_one(self):
        auto = renamed_ticker()
        assert auto.signature.is_output(TOCK)
        assert auto.signature.is_input(PROD)
        assert not auto.signature.contains(TICK)

    def test_time_passage_unchanged(self):
        auto = renamed_ticker()
        (s0,) = auto.start_states()
        assert auto.time_passage(s0, 0.5).now == 0.5
        assert auto.time_passage(s0, 1.5) is None

    def test_behavior_isomorphic_to_inner(self):
        plain, named = ticker(), renamed_ticker()
        (p0,), (n0,) = plain.start_states(), named.start_states()
        p1 = plain.time_passage(p0, 1.0)
        n1 = named.time_passage(n0, 1.0)
        ((pa, pt),) = list(plain.discrete_transitions(p1))
        ((na, nt),) = list(named.discrete_transitions(n1))
        assert pt == nt  # states identical; only labels differ
        assert (pa, na) == (TICK, TOCK)

"""Fixture: entity method mutates a class attribute (one ISO002)."""


class CachingEntity(Entity):  # noqa: F821 -- parsed, never imported
    """Mutates a class-level mutable default never rebound per instance."""

    cache = {}

    def fire(self, state, action, now):
        """Every instance writes the same dict."""
        self.cache.update({action.name: now})

"""Tests for the sequential-consistency checker and its relation to
linearizability (the Attiya-Welch [2] distinction)."""

import pytest

from repro.automata.actions import Action
from repro.automata.executions import timed_sequence
from repro.traces.linearizability import Operation, is_linearizable
from repro.traces.sequential_consistency import (
    find_sequentialization,
    is_sequentially_consistent,
)


def op(op_id, node, kind, value, inv, res):
    return Operation(op_id, node, kind, value, inv, res)


class TestChecker:
    def test_empty_history(self):
        assert is_sequentially_consistent([])

    def test_sequential_history(self):
        ops = [
            op(0, 0, "W", "a", 0.0, 1.0),
            op(1, 1, "R", "a", 2.0, 3.0),
        ]
        assert is_sequentially_consistent(ops)

    def test_initial_value_read(self):
        ops = [op(0, 0, "R", "init", 0.0, 1.0)]
        assert is_sequentially_consistent(ops, initial_value="init")
        assert not is_sequentially_consistent(ops, initial_value="other")

    def test_stale_read_across_nodes_is_sc(self):
        """The canonical SC-but-not-linearizable history: a read strictly
        after a write (real time) still returning the old value."""
        ops = [
            op(0, 0, "W", "new", 0.0, 1.0),
            op(1, 1, "R", "old", 2.0, 3.0),
        ]
        assert is_sequentially_consistent(ops, initial_value="old")
        assert not is_linearizable(ops, initial_value="old")

    def test_program_order_enforced_same_node(self):
        """A node reading old *after its own* write is not SC."""
        ops = [
            op(0, 0, "W", "new", 0.0, 1.0),
            op(1, 0, "R", "old", 2.0, 3.0),
        ]
        assert not is_sequentially_consistent(ops, initial_value="old")

    def test_unwritten_value_rejected(self):
        ops = [op(0, 0, "R", "phantom", 0.0, 1.0)]
        assert not is_sequentially_consistent(ops, initial_value=None)

    def test_cross_node_write_orders_flexible(self):
        """Two nodes may see two concurrent writes in different orders?
        No — SC needs ONE total order; reads pinning conflicting orders
        must be rejected."""
        ops = [
            op(0, 0, "W", "a", 0.0, 1.0),
            op(1, 1, "W", "b", 0.0, 1.0),
            # node 2 sees a then b
            op(2, 2, "R", "a", 2.0, 3.0),
            op(3, 2, "R", "b", 4.0, 5.0),
            # node 3 sees b then a: inconsistent with node 2's view
            # (after b, a cannot come back unless rewritten)
            op(4, 3, "R", "b", 2.0, 3.0),
            op(5, 3, "R", "a", 4.0, 5.0),
        ]
        assert not is_sequentially_consistent(ops)

    def test_consistent_cross_node_views_accepted(self):
        ops = [
            op(0, 0, "W", "a", 0.0, 1.0),
            op(1, 1, "W", "b", 0.0, 1.0),
            op(2, 2, "R", "a", 2.0, 3.0),
            op(3, 2, "R", "b", 4.0, 5.0),
            op(4, 3, "R", "a", 2.0, 3.0),
            op(5, 3, "R", "b", 4.0, 5.0),
        ]
        assert is_sequentially_consistent(ops)

    def test_linearizable_implies_sc(self):
        ops = [
            op(0, 0, "W", "x", 0.0, 2.0),
            op(1, 1, "R", "x", 1.0, 3.0),
            op(2, 0, "R", "x", 3.0, 4.0),
        ]
        assert is_linearizable(ops)
        assert is_sequentially_consistent(ops)

    def test_order_returned_is_legal(self):
        ops = [
            op(0, 0, "W", "a", 0.0, 1.0),
            op(1, 0, "W", "b", 2.0, 3.0),
            op(2, 1, "R", "a", 0.5, 1.5),
        ]
        order = find_sequentialization(ops)
        assert order is not None
        by_id = {o.op_id: o for o in ops}
        value = None
        for op_id in order:
            current = by_id[op_id]
            if current.kind == "W":
                value = current.value
            else:
                assert current.value == value

    def test_trace_level(self):
        trace = timed_sequence(
            (Action("WRITE", (0, "v")), 0.0),
            (Action("ACK", (0,)), 1.0),
            (Action("READ", (1,)), 2.0),
            (Action("RETURN", (1, "v")), 3.0),
        )
        assert is_sequentially_consistent(trace)

    def test_environment_violation_vacuous(self):
        trace = timed_sequence(
            (Action("READ", (0,)), 0.0), (Action("READ", (0,)), 1.0)
        )
        assert is_sequentially_consistent(trace)

"""Distributed-system topology (Section 2.4).

A distributed system's shape is a directed graph ``(V, E)``: nodes
communicate only over the unidirectional links in ``E``. This module
provides a small immutable graph with the constructors the paper's
examples need (complete graphs with self-loops for the register
algorithms, rings, stars, chains).

Note that algorithm ``S`` (Figure 3) sends update messages to *all*
processors **including the sender itself**, so register topologies
include self-edges ``(i, i)``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Tuple

from repro.errors import SpecificationError

Edge = Tuple[int, int]


class Topology:
    """An immutable directed graph on nodes ``0 .. n-1``."""

    def __init__(self, n: int, edges: Iterable[Edge]):
        if n <= 0:
            raise SpecificationError("a topology needs at least one node")
        edge_set = frozenset((int(i), int(j)) for i, j in edges)
        for i, j in sorted(edge_set):
            if not (0 <= i < n and 0 <= j < n):
                raise SpecificationError(f"edge ({i}, {j}) out of range for n={n}")
        self.n = n
        self.edges: FrozenSet[Edge] = edge_set

    # -- constructors --------------------------------------------------------

    @classmethod
    def complete(cls, n: int, self_loops: bool = True) -> "Topology":
        """All ordered pairs; with ``self_loops`` include ``(i, i)``.

        The register algorithms broadcast updates to every processor
        including the sender, so they run on ``complete(n, True)``.
        """
        edges = [
            (i, j)
            for i in range(n)
            for j in range(n)
            if self_loops or i != j
        ]
        return cls(n, edges)

    @classmethod
    def ring(cls, n: int, bidirectional: bool = True) -> "Topology":
        edges: List[Edge] = []
        for i in range(n):
            edges.append((i, (i + 1) % n))
            if bidirectional:
                edges.append(((i + 1) % n, i))
        return cls(n, edges)

    @classmethod
    def star(cls, n: int) -> "Topology":
        """Node 0 is the hub; spokes are bidirectional."""
        edges: List[Edge] = []
        for i in range(1, n):
            edges.append((0, i))
            edges.append((i, 0))
        return cls(n, edges)

    @classmethod
    def chain(cls, n: int, bidirectional: bool = True) -> "Topology":
        edges: List[Edge] = []
        for i in range(n - 1):
            edges.append((i, i + 1))
            if bidirectional:
                edges.append((i + 1, i))
        return cls(n, edges)

    # -- queries ----------------------------------------------------------------

    def nodes(self) -> range:
        """The node indices ``0 .. n-1``."""
        return range(self.n)

    def out_neighbors(self, i: int) -> List[int]:
        """Destinations of edges leaving ``i``, sorted."""
        return sorted(j for (src, j) in self.edges if src == i)

    def in_neighbors(self, i: int) -> List[int]:
        """Sources of edges entering ``i``, sorted."""
        return sorted(src for (src, j) in self.edges if j == i)

    def has_edge(self, i: int, j: int) -> bool:
        """Whether the directed edge ``(i, j)`` exists."""
        return (i, j) in self.edges

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return self.n == other.n and self.edges == other.edges

    def __hash__(self) -> int:
        return hash((self.n, self.edges))

    def __repr__(self) -> str:
        return f"Topology(n={self.n}, |E|={len(self.edges)})"

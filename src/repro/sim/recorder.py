"""Execution recording and trace extraction.

The recorder captures every non-time-passage action with:

- the global real time (``now``) at which it fired;
- the owning entity (the automaton that controls the action);
- the owner's local clock value at that instant, when it has one.

From the raw record it derives the paper's trace notions:

- :meth:`Recorder.timed_trace` — ``t-trace``: visible actions with real
  times (what Definition 2.10's *solves* relation inspects);
- :meth:`Recorder.timed_schedule` — ``t-sched``: all non-``nu`` actions;
- :meth:`Recorder.clock_stamped_trace` — the ``gamma'_alpha`` sequence
  of Definition 4.2 (clock stamps instead of real times), plus the
  re-sorted ``gamma_alpha`` used by the Theorem 4.6/4.7 argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.automata.actions import Action, ActionSet
from repro.automata.executions import TimedEvent, TimedSequence
from repro.errors import SimulationLimitError


@dataclass(frozen=True)
class EventRecord:
    """One recorded action occurrence."""

    index: int
    action: Action
    now: float
    owner: str
    clock: Optional[float]
    visible: bool

    def __repr__(self) -> str:
        vis = "" if self.visible else " (hidden)"
        clk = "" if self.clock is None else f", clock={self.clock:g}"
        return f"[{self.index}] {self.action} @now={self.now:g}{clk} by {self.owner}{vis}"


class Recorder:
    """Accumulates :class:`EventRecord` values during a run.

    By default the event list grows without bound. Long-horizon runs can
    cap it with ``max_events``:

    - ``on_overflow="raise"`` (default) raises
      :class:`~repro.errors.SimulationLimitError` when the cap is hit —
      the explicit failure mode for runs that must keep everything;
    - ``on_overflow="ring"`` keeps only the *last* ``max_events``
      records (a ring buffer; O(1) per record), counting the overwritten
      ones in :attr:`dropped`. Indices stay globally monotone, so the
      surviving window still orders and diffs correctly.
    """

    def __init__(
        self,
        max_events: Optional[int] = None,
        on_overflow: str = "raise",
    ):
        if max_events is not None and max_events <= 0:
            raise ValueError("max_events must be positive")
        if on_overflow not in ("raise", "ring"):
            raise ValueError(f"unknown overflow policy {on_overflow!r}")
        self.max_events = max_events
        self.on_overflow = on_overflow
        self.dropped = 0
        self._events: List[EventRecord] = []
        self._ring_start = 0
        self._next_index = 0

    @property
    def events(self) -> List[EventRecord]:
        """All retained records in chronological order."""
        if self._ring_start == 0:
            return self._events
        return self._events[self._ring_start:] + self._events[: self._ring_start]

    @events.setter
    def events(self, records: List[EventRecord]) -> None:
        # persistence.load_recorder (and tests) assign the list wholesale
        self._events = list(records)
        self._ring_start = 0
        self._next_index = len(self._events)
        self.dropped = 0

    def record(
        self,
        action: Action,
        now: float,
        owner: str,
        clock: Optional[float],
        visible: bool,
    ) -> None:
        """Append one action occurrence."""
        entry = EventRecord(self._next_index, action, now, owner, clock, visible)
        self._next_index += 1
        if self.max_events is not None and len(self._events) >= self.max_events:
            if self.on_overflow == "raise":
                raise SimulationLimitError(
                    f"recorder exceeded max_events={self.max_events} "
                    f"at now={now:g} (use on_overflow='ring' to keep the tail)"
                )
            self._events[self._ring_start] = entry
            self._ring_start = (self._ring_start + 1) % self.max_events
            self.dropped += 1
            return
        self._events.append(entry)

    # -- derived traces -----------------------------------------------------

    def timed_schedule(self) -> TimedSequence:
        """All recorded actions with real times (``t-sched``)."""
        return TimedSequence(TimedEvent(e.action, e.now) for e in self.events)

    def timed_trace(self, restrict_to: Optional[ActionSet] = None) -> TimedSequence:
        """Visible actions with real times (``t-trace``)."""
        events = (
            TimedEvent(e.action, e.now) for e in self.events if e.visible
        )
        seq = TimedSequence(events)
        if restrict_to is not None:
            seq = seq.restrict(restrict_to)
        return seq

    def clock_stamped_trace(
        self,
        restrict_to: Optional[ActionSet] = None,
        visible_only: bool = True,
        resort: bool = True,
    ) -> TimedSequence:
        """The ``gamma`` sequences of Definition 4.2.

        Events are stamped with the owner's *clock* value (falling back
        to ``now`` for clockless owners such as channels). With
        ``resort=True`` the result is ``gamma_alpha``: reordered into
        non-decreasing stamp order, ties keeping their original order;
        with ``resort=False`` it is the raw ``gamma'_alpha``.
        """
        events = []
        for e in self.events:
            if visible_only and not e.visible:
                continue
            stamp = e.clock if e.clock is not None else e.now
            events.append(TimedEvent(e.action, stamp))
        if restrict_to is not None:
            events = [ev for ev in events if ev.action in restrict_to]
        if not resort:
            seq = TimedSequence.__new__(TimedSequence)
            object.__setattr__(seq, "_events", tuple(events))
            return seq
        raw = TimedSequence.__new__(TimedSequence)
        object.__setattr__(raw, "_events", tuple(events))
        return raw.stable_sort_by_time()

    def filter(self, predicate: Callable[[EventRecord], bool]) -> List[EventRecord]:
        """Records satisfying the predicate, in order."""
        return [e for e in self.events if predicate(e)]

    def count(self, name: str) -> int:
        """How many recorded actions carry the given name."""
        return sum(1 for e in self.events if e.action.name == name)

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        extra = f" (+{self.dropped} dropped)" if self.dropped else ""
        return f"<Recorder: {len(self._events)} events{extra}>"

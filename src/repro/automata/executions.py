"""Executions, timed sequences, timed schedules, and timed traces.

Implements the trace machinery of Section 2.1:

- an :class:`Execution` alternates states and actions (including ``nu``);
- a :class:`TimedSequence` is a monotone sequence of ``(action, time)``
  pairs over non-time-passage actions;
- ``t-sched`` projects an execution onto its non-``nu`` actions, pairing
  each with the ``now`` value of the preceding state;
- ``t-trace`` further restricts to visible actions;
- an execution is *admissible* when its ``ltime`` is infinite — for the
  finite executions a simulator actually produces, admissibility is
  checked relative to a horizon (the execution ran out the full horizon
  rather than getting stuck).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.automata.actions import NU, Action, ActionSet
from repro.automata.state import State
from repro.errors import ReproError


@dataclass(frozen=True)
class TimedEvent:
    """One ``(action, time)`` pair of a timed sequence."""

    action: Action
    time: float

    def shifted(self, delta: float) -> "TimedEvent":
        """The same event moved ``delta`` later in time."""
        return TimedEvent(self.action, self.time + delta)

    def __repr__(self) -> str:
        return f"({self.action}, t={self.time:g})"


class TimedSequence:
    """A timed sequence over non-time-passage actions (Section 2.1).

    Immutable; pairs must be non-decreasing in time. Supports the
    projection operator ``|`` (restriction to an action set), indexing,
    and iteration.
    """

    __slots__ = ("_events",)

    def __init__(self, events: Iterable[Union[TimedEvent, Tuple[Action, float]]]):
        normalized: List[TimedEvent] = []
        for ev in events:
            if isinstance(ev, TimedEvent):
                normalized.append(ev)
            else:
                action, time = ev
                normalized.append(TimedEvent(action, float(time)))
        for prev, cur in zip(normalized, normalized[1:]):
            if cur.time < prev.time - 1e-12:
                raise ReproError(
                    f"timed sequence is not monotone: {prev} before {cur}"
                )
        object.__setattr__(self, "_events", tuple(normalized))

    # -- sequence protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TimedEvent]:
        return iter(self._events)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return TimedSequence(self._events[index])
        return self._events[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimedSequence):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        return hash(self._events)

    # -- paper notation --------------------------------------------------------

    def actions(self) -> List[Action]:
        """The action of each event, in order."""
        return [ev.action for ev in self._events]

    def times(self) -> List[float]:
        """The time of each event, in order."""
        return [ev.time for ev in self._events]

    def restrict(self, action_set: ActionSet) -> "TimedSequence":
        """Projection ``alpha | (B x R+)`` onto an action set."""
        return TimedSequence(ev for ev in self._events if ev.action in action_set)

    def __or__(self, action_set: ActionSet) -> "TimedSequence":
        return self.restrict(action_set)

    def filter(self, predicate: Callable[[TimedEvent], bool]) -> "TimedSequence":
        """Events satisfying the predicate, order preserved."""
        return TimedSequence(ev for ev in self._events if predicate(ev))

    def shift(self, delta: float) -> "TimedSequence":
        """Shift every event by ``delta`` in time."""
        return TimedSequence(ev.shifted(delta) for ev in self._events)

    def stable_sort_by_time(self) -> "TimedSequence":
        """Reorder into non-decreasing time, preserving ties' order.

        Used by the simulation proof's ``gamma_alpha`` construction
        (Definition 4.2), where clock-stamped events must be re-sorted.
        """
        indexed = list(enumerate(self._events))
        indexed.sort(key=lambda pair: (pair[1].time, pair[0]))
        return TimedSequence(ev for _, ev in indexed)

    def ltime(self) -> float:
        """The last event's time (0 for the empty sequence)."""
        return self._events[-1].time if self._events else 0.0

    def __repr__(self) -> str:
        if len(self._events) <= 8:
            inner = ", ".join(map(repr, self._events))
        else:
            head = ", ".join(map(repr, self._events[:4]))
            tail = ", ".join(map(repr, self._events[-2:]))
            inner = f"{head}, ... {len(self._events) - 6} more ..., {tail}"
        return f"TimedSequence[{inner}]"


def timed_sequence(*pairs: Tuple[Action, float]) -> TimedSequence:
    """Convenience constructor: ``timed_sequence((a, 0.0), (b, 1.0))``."""
    return TimedSequence(pairs)


class Execution:
    """An execution ``s0 a1 s1 a2 s2 ...`` of a timed automaton.

    Stored as an initial state plus a list of ``(action, state)`` steps,
    where ``action`` may be :data:`~repro.automata.actions.NU`. Finite by
    construction (simulators produce finite prefixes); admissibility is
    judged against a horizon via :meth:`is_admissible_to`.
    """

    def __init__(self, initial: State, steps: Sequence[Tuple[object, State]] = ()):
        self._initial = initial
        self._steps: List[Tuple[object, State]] = list(steps)

    @property
    def initial(self) -> State:
        return self._initial

    @property
    def steps(self) -> List[Tuple[object, State]]:
        return list(self._steps)

    def append(self, action, state: State) -> None:
        """Extend the execution by one ``(action, state)`` step."""
        self._steps.append((action, state))

    def states(self) -> List[State]:
        """All states, initial first."""
        return [self._initial] + [s for _, s in self._steps]

    def last_state(self) -> State:
        """The final state of the execution."""
        return self._steps[-1][1] if self._steps else self._initial

    def __len__(self) -> int:
        return len(self._steps)

    # -- paper notation -------------------------------------------------------

    def ltime(self) -> float:
        """The supremum of ``now`` over the execution's states."""
        return max(s.now for s in self.states())

    def is_admissible_to(self, horizon: float) -> bool:
        """Whether the execution covers the whole simulation horizon."""
        return self.ltime() >= horizon

    def timed_schedule(self) -> TimedSequence:
        """``t-sched``: non-``nu`` actions paired with pre-state ``now``."""
        events: List[TimedEvent] = []
        prev = self._initial
        for action, state in self._steps:
            if action is not NU:
                events.append(TimedEvent(action, prev.now))
            prev = state
        return TimedSequence(events)

    def timed_trace(self, visible: ActionSet) -> TimedSequence:
        """``t-trace``: the timed schedule restricted to visible actions."""
        return self.timed_schedule().restrict(visible)

    def clock_stamped_schedule(
        self, clock_of: Optional[Callable[[State, Action], float]] = None
    ) -> TimedSequence:
        """Non-``nu`` actions paired with the pre-state *clock* value.

        This is the ``beta`` sequence of Lemma 4.2 and the ``gamma'``
        sequence of Definition 4.2. ``clock_of`` extracts the relevant
        clock from a (possibly composite) state; it defaults to the
        state's own ``clock`` component. The result is a raw event list
        (not necessarily time-monotone across nodes), so it is returned
        after a stability-preserving sort only via
        :meth:`TimedSequence.stable_sort_by_time` by the caller.
        """
        if clock_of is None:
            clock_of = lambda state, action: state.clock
        events: List[TimedEvent] = []
        prev = self._initial
        for action, state in self._steps:
            if action is not NU:
                events.append(TimedEvent(action, clock_of(prev, action)))
            prev = state
        # Bypass the monotonicity check: clock stamps from different
        # nodes may interleave non-monotonically before re-sorting.
        seq = TimedSequence.__new__(TimedSequence)
        object.__setattr__(seq, "_events", tuple(events))
        return seq

    def __repr__(self) -> str:
        return f"<Execution of {len(self._steps)} steps, ltime={self.ltime():g}>"

"""The load generator's report: verdicts, quantiles, Theorem 6.5 gate.

Three layers, in order of authority:

1. **Linearizability** — the recorded history is fed (as
   :class:`~repro.traces.linearizability.Operation` records) to the
   budgeted checker; the report carries the full
   :class:`~repro.traces.linearizability.LinearizationReport` including
   how many search nodes the verdict cost.
2. **Theorem 6.5 bounds** — per-kind p99 latencies against the paper's
   clock-time costs (read ``2*eps + delta + c``, write
   ``d2 + 2*eps - c``) stretched to real time by ``2*eps_measured`` —
   the *measured* worst clock skew substituted for the configured
   envelope — plus a configurable ``slack`` for client RTT and event-loop
   jitter, which the virtual-time simulator does not have.
3. **Premises** — the theorem assumes delivery within ``[d1, d2]``; the
   measured one-way wire delay must stay under ``d2`` or the latency
   verdict is judging an execution outside the model.

The report also exports: a version-2 metrics snapshot (counters, gauges,
latency quantile sketches under ``repro.live.*``) and a version-2 JSONL
trace of ``op`` span records, both conforming to the schemas
:mod:`repro.obs.schema` enforces in CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.live.params import LiveParams
from repro.obs.sketch import QuantileSketch
from repro.obs.trace import TRACE_FORMAT, TRACE_VERSION
from repro.registers.algorithm_s import theorem_bounds
from repro.traces.linearizability import LinearizationReport, Operation

DEFAULT_SLACK = 0.05
"""Default real-time allowance for client RTT and event-loop jitter."""


@dataclass(frozen=True)
class BoundCheck:
    """One measured quantity against one analytic limit."""

    name: str
    measured: float
    limit: float
    detail: str

    @property
    def ok(self) -> bool:
        return self.measured <= self.limit

    def render(self) -> str:
        """One aligned ``measured <= limit verdict`` line."""
        verdict = "ok" if self.ok else "VIOLATED"
        return (
            f"{self.name:<12} {self.measured:8.4f} <= {self.limit:8.4f}  "
            f"{verdict}  ({self.detail})"
        )


@dataclass
class LiveReport:
    """Everything ``python -m repro load`` reports about one run."""

    params: LiveParams
    operations: List[Operation]
    linearization: LinearizationReport
    node_stats: List[Dict[str, object]] = field(default_factory=list)
    slack: float = DEFAULT_SLACK

    def __post_init__(self):
        self.read_sketch = QuantileSketch("repro.live.op.read_latency")
        self.write_sketch = QuantileSketch("repro.live.op.write_latency")
        for op in self.operations:
            sketch = self.read_sketch if op.kind == "R" else self.write_sketch
            sketch.observe(op.latency)

    # -- measurements --------------------------------------------------------

    @property
    def reads(self) -> List[Operation]:
        return [op for op in self.operations if op.kind == "R"]

    @property
    def writes(self) -> List[Operation]:
        return [op for op in self.operations if op.kind == "W"]

    @property
    def eps_measured(self) -> float:
        """Worst observed ``|real - clock|`` across the cluster.

        By construction of the drivers this is at most the configured
        ``eps``; substituting it tightens the real-time stretch term to
        what the clocks actually did. Falls back to the configured
        envelope when no node stats were collected.
        """
        skews = [s["max_skew"] for s in self.node_stats if "max_skew" in s]
        return max(skews) if skews else self.params.eps

    @property
    def wire_max(self) -> float:
        """Worst observed one-way update-message delay."""
        delays = [s["wire_max"] for s in self.node_stats if "wire_max" in s]
        return max(delays) if delays else 0.0

    # -- the Theorem 6.5 gate ------------------------------------------------

    def bound_checks(self) -> List[BoundCheck]:
        """The per-kind p99 latency gate, plus the ``d2`` premise check."""
        p = self.params
        bounds = theorem_bounds("clock", p.eps, p.c, p.delta, p.d2)
        stretch = 2.0 * self.eps_measured
        checks = []
        if self.read_sketch.count:
            checks.append(BoundCheck(
                "read p99",
                self.read_sketch.quantile(0.99),
                bounds["read_clock"] + stretch + self.slack,
                f"2*eps+delta+c = {bounds['read_clock']:g} clock, "
                f"+{stretch:g} stretch, +{self.slack:g} slack",
            ))
        if self.write_sketch.count:
            checks.append(BoundCheck(
                "write p99",
                self.write_sketch.quantile(0.99),
                bounds["write_clock"] + stretch + self.slack,
                f"d2+2*eps-c = {bounds['write_clock']:g} clock, "
                f"+{stretch:g} stretch, +{self.slack:g} slack",
            ))
        checks.append(BoundCheck(
            "wire delay", self.wire_max, p.d2,
            "theorem premise: delivery within [d1, d2]",
        ))
        return checks

    @property
    def bounds_ok(self) -> bool:
        return all(check.ok for check in self.bound_checks())

    @property
    def ok(self) -> bool:
        """Linearizable — the unconditional correctness verdict."""
        return self.linearization.ok

    # -- rendering -----------------------------------------------------------

    def render(self, assert_bounds: bool = False) -> str:
        """The human-readable run summary ``python -m repro load`` prints."""
        p = self.params
        lin = self.linearization
        lines = [
            f"live run: n={p.n} d2={p.d2:g} eps={p.eps:g} c={p.c:g} "
            f"delta={p.delta:g} driver={p.driver} seed={p.seed}",
            f"operations     : {len(self.operations)} "
            f"({len(self.reads)} reads, {len(self.writes)} writes)",
            f"eps measured   : {self.eps_measured:.5f} "
            f"(envelope {p.eps:g})",
            f"linearizable   : {lin.ok} "
            f"({lin.visited} search nodes visited)",
        ]
        for kind, sketch in (("read", self.read_sketch),
                             ("write", self.write_sketch)):
            if not sketch.count:
                continue
            lines.append(
                f"{kind:<5} latency  : p50={sketch.quantile(0.5):.4f} "
                f"p99={sketch.quantile(0.99):.4f} "
                f"max={sketch.maximum:.4f} (n={sketch.count})"
            )
        if assert_bounds:
            lines.append("Theorem 6.5 gate (measured eps substituted):")
            for check in self.bound_checks():
                lines.append("  " + check.render())
        return "\n".join(lines)

    # -- exports -------------------------------------------------------------

    def to_metrics(self, registry) -> None:
        """Publish the run into a v2 metrics registry."""
        registry.counter("repro.live.ops.completed").inc(len(self.operations))
        registry.counter("repro.live.ops.reads").inc(len(self.reads))
        registry.counter("repro.live.ops.writes").inc(len(self.writes))
        registry.counter("repro.live.linearizability.visited").inc(
            self.linearization.visited
        )
        registry.gauge("repro.live.eps.measured").set(self.eps_measured)
        registry.gauge("repro.live.wire.max_delay").set(self.wire_max)
        registry.gauge("repro.live.linearizable").set(
            1.0 if self.linearization.ok else 0.0
        )
        reads = registry.sketch("repro.live.op.read_latency")
        for op in self.reads:
            reads.observe(op.latency)
        writes = registry.sketch("repro.live.op.write_latency")
        for op in self.writes:
            writes.observe(op.latency)

    def write_trace(self, path: str) -> None:
        """Write the history as a version-2 JSONL trace of ``op`` spans."""
        horizon = max((op.res_time for op in self.operations), default=0.0)
        with open(path, "w") as handle:
            def emit(record):
                handle.write(json.dumps(record, sort_keys=True) + "\n")

            emit({"format": TRACE_FORMAT, "version": TRACE_VERSION})
            emit({"k": "run_start", "horizon": horizon})
            emit({"k": "meta", "m": {
                "workload": "live-register", **self.params.to_dict(),
            }})
            events = []
            for op in self.operations:
                sid = f"L{op.node}-{op.op_id}"
                events.append((op.inv_time, {
                    "k": "span", "span": "op", "sid": sid, "ph": "inv",
                    "now": op.inv_time, "node": op.node, "kind": op.kind,
                }))
                events.append((op.res_time, {
                    "k": "span", "span": "op", "sid": sid, "ph": "res",
                    "now": op.res_time, "node": op.node, "kind": op.kind,
                    "latency": op.latency,
                }))
            for _, record in sorted(events, key=lambda pair: pair[0]):
                emit(record)
            emit({"k": "run_end", "now": horizon,
                  "steps": 2 * len(self.operations)})

    def __repr__(self) -> str:
        return (
            f"<LiveReport {len(self.operations)} ops, "
            f"linearizable={self.linearization.ok}, "
            f"bounds_ok={self.bounds_ok}>"
        )

"""Entity-sharded conservative-parallel execution windows.

The paper's channel automaton ``E_{ij,[d1,d2]}`` guarantees no message
is delivered sooner than ``d1`` after it was sent — exactly the
*lookahead* a conservative parallel discrete-event scheme (Chandy–Misra
style) needs. This module partitions a :class:`~repro.sim.engine.
Simulator`'s entities into shards, runs each shard's event loop
independently through safe windows of width

    W = min over cross-shard channel cuts of that channel's ``d1``

and exchanges the actions that crossed a shard boundary at the window
barriers, via per-shard mailboxes. Any message sent at ``s`` inside
window ``[t_{k-1}, t_k)`` satisfies ``deliver_at >= s + d1 >= t_k``, so
applying it at the barrier — before any shard enters window ``k+1`` —
is indistinguishable from the serial engine's immediate routing: the
receiving channel buffers it with the *original* send time and the
sampled delay, and it becomes deliverable at the exact serial instant.

Within a window, a fire on one shard cannot affect another shard's
candidates (all cross-shard effects ride a positive-``d1`` channel), so
each shard's event stream is the serial schedule restricted to that
shard — and the serial schedule is recovered by merging the per-shard
streams head-to-head under the scheduler's own ordering key. That is
the byte-identical-trace guarantee the conformance tests and
``benchmarks/bench_parallel.py`` enforce at every shard count.

Shards here are in-process objects driven by one deterministic barrier
loop (a ``multiprocessing`` mailbox backend can land behind the same
:func:`run_sharded` interface later); the speedup is algorithmic —
per-event candidate gathering, scheduling, and deadline scans cost
O(shard) instead of O(system) — and already exceeds the serial engine
well before OS-level parallelism enters.

Preconditions (checked up front, :class:`~repro.errors.ShardingError`
on violation — see docs/performance.md and docs/shard-isolation.md):

- every entity declares ``pure_enabled`` (no RNG in ``enabled``);
- the scheduler is ``shard_safe`` (memoryless, e.g. the default
  deterministic one);
- channel delay models are ``shard_safe`` (per-edge state only);
- entities that override ``advance`` expose a ``driver`` with
  ``granularity_free=True`` (barrier-induced extra advances compose);
- no fault-injecting wrappers with shared RNG, and no entity named
  ``"environment"`` (reserved for injection records).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.automata.actions import Action
from repro.components.base import Entity
from repro.errors import ShardingError
from repro.obs.metrics import MetricsRegistry, stats_from_metrics
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sim.engine import (
    SimulationResult,
    Simulator,
    _ANY_FIRST,
    _EngineCore,
    _first_param_key,
    _input_action_keys,
)
from repro.sim.recorder import Recorder

from repro.constants import TOLERANCE as _TOLERANCE

INFINITY = float("inf")


# -- planning ----------------------------------------------------------------


@dataclass
class ShardPlan:
    """A validated partition of a simulator's entities into shards."""

    shards: List[List[int]]
    """Entity indices per shard, each list in composition order."""

    cut_edges: List[Tuple[int, int, float]]
    """Cross-shard ``(producer index, consumer index, lookahead)`` edges."""

    window: float
    """Safe window width: min lookahead over :attr:`cut_edges`
    (``inf`` when nothing crosses a shard boundary)."""

    owner: List[int]
    """``owner[entity index] -> shard id``."""


class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Root at the smaller original index: deterministic clusters.
            if rb < ra:
                ra, rb = rb, ra
            self.parent[rb] = ra


def _validate(sim: Simulator, shards: int) -> None:
    """Raise :class:`ShardingError` unless the system is shardable."""
    if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
        raise ShardingError(f"shard count must be a positive int, got {shards!r}")
    if not getattr(sim.scheduler, "shard_safe", False):
        raise ShardingError(
            f"scheduler {sim.scheduler!r} is not shard-safe: per-shard "
            f"instances of a stateful policy would consume their state in "
            f"per-shard order, not the global schedule order"
        )
    for entity in sim.entities:
        if entity.name == "environment":
            raise ShardingError(
                'entity name "environment" is reserved for injection records'
            )
        if not getattr(entity, "pure_enabled", True):
            raise ShardingError(
                f"{entity.name}: enabled() is impure (pure_enabled=False); "
                f"its query count differs between serial and windowed "
                f"execution. Register clients support a replay schedule "
                f"(OpSchedule) that makes them pure."
            )
        delay_model = getattr(entity, "delay_model", None)
        if delay_model is not None and not getattr(
            delay_model, "shard_safe", False
        ):
            raise ShardingError(
                f"{entity.name}: delay model {delay_model!r} is not "
                f"shard-safe (a shared RNG is consumed in arrival order, "
                f"which barrier deferral changes); use EdgeSeededDelay or "
                f"another per-edge model"
            )
        fault_model = getattr(entity, "fault_model", None)
        if fault_model is not None and not getattr(
            fault_model, "shard_safe", False
        ):
            raise ShardingError(
                f"{entity.name}: fault model {fault_model!r} draws from a "
                f"shared RNG in arrival order and cannot be sharded"
            )
        if type(entity).advance is not Entity.advance:
            driver = getattr(entity, "driver", None)
            if driver is None or not getattr(driver, "granularity_free", False):
                raise ShardingError(
                    f"{entity.name}: advance() is time-granularity-"
                    f"sensitive ({type(driver).__name__ if driver else 'no'}"
                    f" driver is not granularity_free); window barriers "
                    f"insert extra advance calls that would change its "
                    f"trajectory"
                )


def plan_shards(
    sim: Simulator, shards: int, window: Optional[float] = None
) -> ShardPlan:
    """Partition the entities and derive the safe window width.

    Entities whose outputs another entity consumes *without* declaring a
    ``shard_lookahead`` are fused into one cluster (clients fuse with
    their node, channels with their receiver); consumers that do declare
    one (channels, via ``d1``) become cut candidates instead. Clusters
    are packed greedily onto ``min(shards, clusters)`` shards, largest
    first; the window is the minimum lookahead over the edges that ended
    up crossing shards.
    """
    _validate(sim, shards)
    infos = sim._infos
    n = len(infos)

    # Consumer indexes over the engine's (name, first-param) input keys.
    exact: Dict[Tuple[str, Any], List[int]] = {}
    name_any: Dict[str, List[int]] = {}
    name_all: Dict[str, Set[int]] = {}
    universal: List[int] = []
    for info in infos:
        if info.input_keys is None:
            universal.append(info.index)
            continue
        for key in info.input_keys:
            name, param = key
            name_all.setdefault(name, set()).add(info.index)
            if param is _ANY_FIRST:
                name_any.setdefault(name, []).append(info.index)
            else:
                try:
                    exact.setdefault(key, []).append(info.index)
                except TypeError:
                    name_any.setdefault(name, []).append(info.index)

    uf = _UnionFind(n)
    cut_candidates: List[Tuple[int, int, float]] = []
    for info in infos:
        out_keys = _input_action_keys(info.entity.signature.outputs)
        if out_keys is None:
            # Undecomposable outputs: anyone might consume them.
            for other in range(n):
                if other != info.index:
                    uf.union(info.index, other)
            continue
        consumers: Set[int] = set()
        for name, param in out_keys:
            if isinstance(param, type(_ANY_FIRST)) or param is _ANY_FIRST:
                consumers |= name_all.get(name, set())
            else:
                consumers.update(exact.get((name, param), ()))
                consumers.update(name_any.get(name, ()))
            consumers.update(universal)
        for consumer in sorted(consumers):
            if consumer == info.index:
                continue
            lookahead = getattr(
                infos[consumer].entity, "shard_lookahead", None
            )
            if lookahead is not None:
                cut_candidates.append((info.index, consumer, float(lookahead)))
            else:
                uf.union(info.index, consumer)

    clusters: Dict[int, List[int]] = {}
    for idx in range(n):
        clusters.setdefault(uf.find(idx), []).append(idx)
    ordered = sorted(clusters.values(), key=lambda c: (-len(c), c[0]))

    k = min(shards, len(ordered))
    assignment: List[List[int]] = [[] for _ in range(k)]
    for cluster in ordered:
        target = min(range(k), key=lambda s: (len(assignment[s]), s))
        assignment[target].extend(cluster)
    shard_lists = [sorted(members) for members in assignment]

    owner = [0] * n
    for sid, members in enumerate(shard_lists):
        for idx in members:
            owner[idx] = sid

    cut_edges = [
        (src, dst, la)
        for (src, dst, la) in cut_candidates
        if owner[src] != owner[dst]
    ]
    width = min((la for (_, _, la) in cut_edges), default=INFINITY)
    if cut_edges and width <= _TOLERANCE:
        worst = min(cut_edges, key=lambda e: e[2])
        raise ShardingError(
            f"cross-shard edge {infos[worst[0]].name} -> "
            f"{infos[worst[1]].name} has zero lookahead (d1={worst[2]:g}); "
            f"conservative windows need d1 > 0 on every cut channel"
        )
    if window is not None:
        if not 0 < window <= width:
            raise ShardingError(
                f"window override {window!r} outside (0, {width:g}]"
            )
        width = window
    return ShardPlan(
        shards=shard_lists, cut_edges=cut_edges, window=width, owner=owner
    )


# -- per-shard metric normalization ------------------------------------------

#: Instruments whose values depend on the *granularity* of time
#: advances or on barrier-deferred delivery, not on the event trace:
#: each window barrier adds an advance() call (extra clock-skew
#: samples), and a cross-shard send reaches its channel at the barrier,
#: when the in-transit population differs from the serial apply instant
#: (queue-depth samples). They are pre-created *volatile* on every
#: per-shard registry so the merged deterministic snapshot — the thing
#: required to be byte-identical across shard counts — excludes them,
#: exactly as wall-clock figures are excluded from serial runs.
#: (Histograms need no list here: every histogram is blanket-marked
#: volatile after the merge, because a histogram's ``sum`` accumulator
#: is float-addition-order dependent and partitioning the sample stream
#: changes the addition order. Sketches stay — their export is a
#: canonical function of the sample multiset.)
_GRANULARITY_COUNTERS = ("repro.engine.time_advances",)
_GRANULARITY_GAUGES = ("repro.clock.skew_max",)


def _shard_registry(entities: Sequence[Entity]) -> MetricsRegistry:
    """A fresh registry with the granularity-dependent names volatile.

    Creation order wins (`MetricsRegistry` keeps the first creation's
    volatility flag), so these must exist before the shard's entities
    bind their instruments.
    """
    registry = MetricsRegistry()
    for name in _GRANULARITY_COUNTERS:
        registry.counter(name, volatile=True)
    for name in _GRANULARITY_GAUGES:
        registry.gauge(name, volatile=True)
    for entity in entities:
        src = getattr(entity, "src", None)
        dst = getattr(entity, "dst", None)
        if src is not None and dst is not None:
            registry.gauge(
                f"repro.channel.queue_depth[{src}->{dst}]", volatile=True
            )
    return registry


# -- the barrier loop --------------------------------------------------------


def _merge_key(event) -> Tuple[float, int, str, str]:
    """The scheduler-compatible ordering key of one recorded event.

    Injections sort before fires at the same instant (the loop delivers
    them at its top), and fires order by the deterministic scheduler's
    (owner name, action repr) key — which, per-instant, is exactly how
    the serial engine interleaved the shards' candidates.
    """
    env = 0 if event.owner == "environment" else 1
    return (event.now, env, event.owner, repr(event.action))


def run_sharded(
    sim: Simulator,
    horizon: float,
    shards: int,
    *,
    window: Optional[float] = None,
    recorder: Optional[Recorder] = None,
    initial_inputs: Sequence[Tuple[Action, float]] = (),
    stop_when: Optional[Callable[[Recorder, float], bool]] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> SimulationResult:
    """Execute ``sim`` to ``horizon`` on ``shards`` in-process shards.

    The public entrypoint behind ``Simulator.run(..., shards=k)``.
    Returns a :class:`SimulationResult` whose recorder contents are
    byte-identical to the serial engine's (both cores), with stats and
    the deterministic metrics snapshot merged across shards.
    """
    if stop_when is not None:
        raise ShardingError(
            "stop_when is not supported in sharded mode: an early stop on "
            "one shard cannot be replayed into the other shards' pasts"
        )
    if recorder is None:
        recorder = Recorder()
    if metrics is None:
        metrics = MetricsRegistry()
    tracer = tracer or NULL_TRACER
    plan = plan_shards(sim, shards, window)
    k = len(plan.shards)
    infos = sim._infos

    injections = sorted(initial_inputs, key=lambda pair: pair[1])

    shard_sims: List[Simulator] = []
    shard_recorders: List[Recorder] = []
    shard_registries: List[MetricsRegistry] = []
    cores: List[_EngineCore] = []
    outboxes: List[List[Tuple[Action, float]]] = [[] for _ in range(k)]

    # Per-shard cross-boundary filters: an output needs to enter the
    # shard's outbox only if some *foreign* entity's input keys could
    # match it. Everything else routes purely locally inside the core.
    foreign_exact: List[Set[Tuple[str, Any]]] = [set() for _ in range(k)]
    foreign_any: List[Set[str]] = [set() for _ in range(k)]
    foreign_all: List[bool] = [False] * k
    for info in infos:
        home = plan.owner[info.index]
        for sid in range(k):
            if sid == home:
                continue
            if info.input_keys is None:
                foreign_all[sid] = True
                continue
            for name, param in info.input_keys:
                if param is _ANY_FIRST:
                    foreign_any[sid].add(name)
                else:
                    foreign_exact[sid].add((name, param))

    def make_emit(sid: int):
        outbox = outboxes[sid]
        exact = foreign_exact[sid]
        any_names = foreign_any[sid]
        if foreign_all[sid]:
            def emit(action: Action, at_time: float) -> None:
                outbox.append((action, at_time))
            return emit

        def emit(action: Action, at_time: float) -> None:
            try:
                key = _first_param_key(action.name, action.params)
                if key in exact or action.name in any_names:
                    outbox.append((action, at_time))
            except TypeError:
                outbox.append((action, at_time))
        return emit

    for sid, members in enumerate(plan.shards):
        entities = [infos[idx].entity for idx in members]
        shard_sim = Simulator(
            entities,
            scheduler=type(sim.scheduler)(),
            hidden=sim.hidden,
            max_steps=sim.max_steps,
            strict=sim.strict,
            incremental=sim.incremental,
        )
        registry = _shard_registry(entities)
        shard_recorder = Recorder()
        has_cut_out = any(
            plan.owner[src] == sid for (src, _, _) in plan.cut_edges
        )
        core = _EngineCore(
            shard_sim,
            shard_recorder,
            registry,
            NULL_TRACER,
            initial_inputs=injections,
            emit=make_emit(sid) if (has_cut_out or k > 1) else None,
            record_injections=(sid == 0),
        )
        shard_sims.append(shard_sim)
        shard_recorders.append(shard_recorder)
        shard_registries.append(registry)
        cores.append(core)

    def exchange() -> None:
        # Shards drain in id order, outboxes in emission order: all the
        # sends into any one channel come from one producer entity (one
        # shard), so the channel's buffer-append — and therefore any
        # per-edge delay-model state — follows the serial send order.
        for sid in range(k):
            outbox = outboxes[sid]
            if not outbox:
                continue
            for action, at_time in outbox:
                for rid in range(k):
                    if rid != sid:
                        cores[rid].apply_external(action, at_time)
            outbox.clear()

    # repro: lint-ignore[DET002] -- volatile wall-time instrumentation,
    # excluded from the deterministic export exactly like the serial path
    wall_start = time.perf_counter()
    tracer.run_start(horizon)
    tracer.meta({"entities": [e.name for e in sim.entities]})

    width = plan.window
    n_windows = 0
    if width < horizon - _TOLERANCE:
        barrier_idx = 1
        while True:
            barrier = barrier_idx * width
            if barrier >= horizon - _TOLERANCE:
                break
            for core in cores:
                core.run_until(barrier, inclusive=False)
            exchange()
            barrier_idx += 1
            n_windows += 1
    # Final window: stop exclusively at the horizon, exchange, then let
    # every shard fire its at-horizon events (the serial engine fires
    # them too), and exchange once more so at-horizon sends land in the
    # foreign channel buffers — they are never delivered (deliver_at >
    # horizon) but the final states must match the serial engine's.
    for core in cores:
        core.run_until(horizon, inclusive=False)
    exchange()
    n_windows += 1
    for core in cores:
        core.run_until(horizon, inclusive=True)
    exchange()

    # Merge the per-shard event streams head-to-head. Within a window no
    # fire can change a foreign shard's candidates, so at every instant
    # the serial scheduler's pick is the least stream head under its own
    # key — which is precisely heapq.merge over the per-shard streams.
    def stream(events):
        for event in events:
            yield (_merge_key(event), event)

    for _, event in heapq.merge(
        *(stream(r.events) for r in shard_recorders), key=lambda pair: pair[0]
    ):
        recorder.record(
            event.action, event.now, event.owner, event.clock, event.visible
        )

    steps = sum(core.steps for core in cores)
    wall = time.perf_counter() - wall_start  # repro: lint-ignore[DET002] -- volatile wall-time figure

    for sid, registry in enumerate(shard_registries):
        registry.gauge(f"repro.phase.shard{sid}.steps", volatile=True).set(
            float(cores[sid].steps)
        )
        registry.gauge(f"repro.phase.shard{sid}.entities", volatile=True).set(
            float(len(plan.shards[sid]))
        )
        registry.gauge(f"repro.phase.shard{sid}.events", volatile=True).set(
            float(len(shard_recorders[sid]))
        )
        metrics.merge(registry)
    if isinstance(metrics, MetricsRegistry):
        # The merged advance count is a sum over shards of a window-
        # granularity-dependent figure; zero it so the canonical stats
        # are a pure function of the event trace at every shard count.
        metrics.counter("repro.engine.time_advances")._value = 0
        # Histogram sums are float-addition-order dependent; the shard
        # partition changes the order, so the deterministic snapshot of
        # a sharded run exports counters, gauges, and sketches only.
        for name in metrics._histograms:
            metrics._volatile.add(name)

    tracer.run_end(horizon, steps)

    metrics.gauge("repro.engine.now").set(horizon)
    metrics.gauge("repro.engine.horizon").set(horizon)
    events_total = float(len(recorder) + recorder.dropped)
    metrics.gauge("repro.recorder.events").set(events_total)
    metrics.gauge("repro.recorder.events_total").set(events_total)
    metrics.gauge("repro.recorder.events_retained").set(float(len(recorder)))
    metrics.gauge("repro.recorder.dropped").set(float(recorder.dropped))
    metrics.gauge("repro.phase.shards", volatile=True).set(float(k))
    metrics.gauge("repro.phase.windows", volatile=True).set(float(n_windows))
    metrics.gauge("repro.phase.window_width", volatile=True).set(
        width if width < INFINITY else horizon
    )
    metrics.gauge("repro.engine.wall_seconds", volatile=True).set(wall)
    if wall > 0:
        metrics.gauge("repro.engine.steps_per_sec", volatile=True).set(
            steps / wall
        )
        metrics.gauge("repro.engine.sim_time_ratio", volatile=True).set(
            horizon / wall
        )

    # Final states in composition order — downstream consumers (e.g. the
    # register experiment's operation collector) iterate this dict and
    # rely on the serial engine's entity order for tie-breaking.
    final_states: Dict[str, Any] = {}
    for info in infos:
        final_states[info.name] = cores[plan.owner[info.index]].states[
            info.name
        ]

    return SimulationResult(
        horizon=horizon,
        now=horizon,
        steps=steps,
        recorder=recorder,
        final_states=final_states,
        stats=stats_from_metrics(metrics),
        metrics=metrics.snapshot(),
    )

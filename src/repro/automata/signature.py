"""Action signatures (Definition 2.1).

A signature partitions an automaton's non-time-passage actions into input,
output, and internal actions. Derived sets follow the paper's notation:

- ``vis`` — visible actions, ``in ∪ out``;
- ``ext`` — external actions, ``vis ∪ {nu}`` (handled specially, since
  ``nu`` is not an :class:`~repro.automata.actions.Action`);
- ``acts`` — all actions;
- ``uacts`` — non-time-passage actions, ``vis ∪ int``.
"""

from __future__ import annotations

from typing import Iterable

from repro.automata.actions import NU, Action, ActionSet, EmptyActionSet, UnionActionSet
from repro.errors import SignatureError


class Signature:
    """An action signature ``(in, out, int)``.

    The three component sets should be pairwise disjoint; disjointness of
    intensional sets is undecidable in general, so it is checked lazily:
    :meth:`classify` raises :class:`~repro.errors.SignatureError` if an
    action belongs to more than one component.
    """

    def __init__(
        self,
        inputs: ActionSet = None,
        outputs: ActionSet = None,
        internals: ActionSet = None,
    ):
        self.inputs = inputs if inputs is not None else EmptyActionSet()
        self.outputs = outputs if outputs is not None else EmptyActionSet()
        self.internals = internals if internals is not None else EmptyActionSet()

    # -- derived sets --------------------------------------------------

    @property
    def visible(self) -> ActionSet:
        """``vis(A) = in(A) ∪ out(A)``."""
        return UnionActionSet((self.inputs, self.outputs))

    @property
    def uacts(self) -> ActionSet:
        """``uacts(A) = vis(A) ∪ int(A)`` (all non-time-passage actions)."""
        return UnionActionSet((self.inputs, self.outputs, self.internals))

    @property
    def locally_controlled(self) -> ActionSet:
        """``out(A) ∪ int(A)`` — the actions the automaton controls."""
        return UnionActionSet((self.outputs, self.internals))

    # -- membership ----------------------------------------------------

    def is_input(self, action: Action) -> bool:
        """Membership in ``in(A)``."""
        return action in self.inputs

    def is_output(self, action: Action) -> bool:
        """Membership in ``out(A)``."""
        return action in self.outputs

    def is_internal(self, action: Action) -> bool:
        """Membership in ``int(A)``."""
        return action in self.internals

    def is_external(self, action) -> bool:
        """Membership in ``ext(A) = vis(A) ∪ {nu}``."""
        if action is NU:
            return True
        return action in self.visible

    def contains(self, action) -> bool:
        """Membership in ``acts(A) = ext(A) ∪ int(A)``."""
        if action is NU:
            return True
        return action in self.uacts

    def classify(self, action: Action) -> str:
        """Return ``"input"``, ``"output"``, or ``"internal"``.

        Raises :class:`SignatureError` if the action is in no component or
        in more than one (signature components must be disjoint).
        """
        kinds = []
        if action in self.inputs:
            kinds.append("input")
        if action in self.outputs:
            kinds.append("output")
        if action in self.internals:
            kinds.append("internal")
        if not kinds:
            raise SignatureError(f"{action} is not in this signature")
        if len(kinds) > 1:
            raise SignatureError(
                f"{action} is ambiguous in this signature (kinds: {kinds})"
            )
        return kinds[0]

    # -- operators (Section 2.1) ----------------------------------------

    def hide(self, actions: ActionSet) -> "Signature":
        """Reclassify matching output actions as internal (hiding).

        Returns a new signature whose outputs exclude ``actions`` and
        whose internals include the previously matching outputs.
        """
        outputs = self.outputs
        hidden = _IntersectionActionSet(outputs, actions)
        remaining = _DifferenceActionSet(outputs, actions)
        return Signature(
            inputs=self.inputs,
            outputs=remaining,
            internals=UnionActionSet((self.internals, hidden)),
        )

    def __repr__(self) -> str:
        return (
            f"Signature(in={self.inputs!r}, out={self.outputs!r}, "
            f"int={self.internals!r})"
        )


class _IntersectionActionSet(ActionSet):
    """Actions in both of two sets (used by hiding)."""

    def __init__(self, left: ActionSet, right: ActionSet):
        self._left = left
        self._right = right

    def contains(self, action: Action) -> bool:
        return action in self._left and action in self._right

    def __repr__(self) -> str:
        return f"({self._left!r} ∩ {self._right!r})"


class _DifferenceActionSet(ActionSet):
    """Actions in the first but not the second set (used by hiding)."""

    def __init__(self, left: ActionSet, right: ActionSet):
        self._left = left
        self._right = right

    def contains(self, action: Action) -> bool:
        return action in self._left and action not in self._right

    def __repr__(self) -> str:
        return f"({self._left!r} \\ {self._right!r})"


def check_compatible(signatures: Iterable[Signature], probes: Iterable[Action]) -> None:
    """Check compatibility of signatures on a finite probe set.

    Timed automata ``A_i`` are *compatible* (Section 2.1) when their
    output sets are pairwise disjoint and no internal action of one is an
    action of another. With intensional action sets, full disjointness is
    not decidable, so this helper verifies the conditions on an explicit
    finite set of probe actions (typically: every action the composed
    system can ever perform). Raises :class:`SignatureError` on violation.
    """
    sigs = list(signatures)
    for probe in probes:
        out_owners = [i for i, s in enumerate(sigs) if probe in s.outputs]
        if len(out_owners) > 1:
            raise SignatureError(
                f"{probe} is an output of multiple components: {out_owners}"
            )
        int_owners = [i for i, s in enumerate(sigs) if probe in s.internals]
        for i in int_owners:
            for j, s in enumerate(sigs):
                if j != i and s.contains(probe):
                    raise SignatureError(
                        f"internal action {probe} of component {i} is shared "
                        f"with component {j}"
                    )

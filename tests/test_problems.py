"""Tests for problems and the P_eps / P^delta generalizations."""

import pytest

from repro.automata.actions import Action, action_set
from repro.automata.executions import timed_sequence
from repro.automata.signature import Signature
from repro.errors import SpecificationError
from repro.traces.problems import PredicateProblem, solves_trace

REQ0 = Action("REQ", (0,))
RSP0 = Action("RSP", (0,))
REQ1 = Action("REQ", (1,))
RSP1 = Action("RSP", (1,))


def two_node_partition():
    return [
        Signature(inputs=action_set(("REQ", (0,))), outputs=action_set(("RSP", (0,)))),
        Signature(inputs=action_set(("REQ", (1,))), outputs=action_set(("RSP", (1,)))),
    ]


def responsive_within(bound):
    """Every RSP_i follows its REQ_i within `bound` time."""

    def predicate(trace):
        pending = {}
        for ev in trace:
            node = ev.action.params[0]
            if ev.action.name == "REQ":
                pending[node] = ev.time
            elif ev.action.name == "RSP":
                if node not in pending:
                    return False
                if ev.time - pending.pop(node) > bound + 1e-9:
                    return False
        return True

    return PredicateProblem(two_node_partition(), predicate, name="responsive")


class TestProblem:
    def test_empty_partition_rejected(self):
        with pytest.raises(SpecificationError):
            PredicateProblem([], lambda t: True)

    def test_membership(self):
        problem = responsive_within(1.0)
        good = timed_sequence((REQ0, 0.0), (RSP0, 0.8))
        slow = timed_sequence((REQ0, 0.0), (RSP0, 1.5))
        assert good in problem
        assert slow not in problem
        assert solves_trace(problem, good)

    def test_kappa_built_from_partition(self):
        problem = responsive_within(1.0)
        kappa = problem.kappa
        assert REQ0 in kappa[0] and RSP0 in kappa[0]
        assert REQ0 not in kappa[1]

    def test_output_kappa(self):
        problem = responsive_within(1.0)
        out = problem.output_kappa
        assert RSP0 in out[0]
        assert REQ0 not in out[0]


class TestEpsilonRelaxation:
    def test_identity_witness_keeps_members(self):
        relaxed = responsive_within(1.0).relax_eps(0.5)
        assert timed_sequence((REQ0, 0.0), (RSP0, 0.8)) in relaxed

    def test_witness_strategy_admits_perturbed_trace(self):
        base = responsive_within(1.0)
        # Trace misses the bound by 0.3, but a witness shifted back
        # into the bound exists within eps=0.2 per event.
        trace = timed_sequence((REQ0, 0.0), (RSP0, 1.3))

        def witnesses(alpha):
            yield timed_sequence((REQ0, 0.2), (RSP0, 1.1))

        relaxed = base.relax_eps(0.2, witnesses=witnesses)
        assert trace in relaxed
        assert trace not in base.relax_eps(0.2)  # identity witness fails

    def test_witness_must_be_member_of_base(self):
        base = responsive_within(1.0)
        trace = timed_sequence((REQ0, 0.0), (RSP0, 2.0))

        def bogus(alpha):
            yield alpha  # not in base, same as identity

        assert trace not in base.relax_eps(10.0, witnesses=bogus) or \
            timed_sequence((REQ0, 0.0), (RSP0, 2.0)) in base


class TestDeltaShift:
    def test_shifted_outputs_accepted(self):
        base = responsive_within(1.0)
        # RSP shifted 0.4 into the future relative to a member.
        trace = timed_sequence((REQ0, 0.0), (RSP0, 1.4))

        def witnesses(alpha):
            yield timed_sequence((REQ0, 0.0), (RSP0, 1.0))

        assert trace in base.shift_outputs(0.5, witnesses=witnesses)
        assert trace not in base.shift_outputs(0.3, witnesses=witnesses)

    def test_inputs_may_not_move(self):
        base = responsive_within(1.0)
        trace = timed_sequence((REQ0, 0.5), (RSP0, 1.0))

        def witnesses(alpha):
            yield timed_sequence((REQ0, 0.0), (RSP0, 1.0))

        assert trace not in base.shift_outputs(10.0, witnesses=witnesses)

    def test_names(self):
        base = responsive_within(1.0)
        assert "eps" in base.relax_eps(0.1).name
        assert "^" in base.shift_outputs(0.1).name

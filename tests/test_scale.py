"""Scale tests: the full stack at larger node counts.

Complete-graph register systems grow as O(n^2) channels; these tests
pin down that correctness and the latency bounds survive at sizes well
beyond the 3-node default, and that the engine handles thousand-event
runs comfortably.
"""

import pytest

from repro.automata.actions import Action
from repro.broadcast import build_flood_system, deliveries
from repro.broadcast.flood import _distances, diameter
from repro.network.topology import Topology
from repro.registers.system import (
    clock_register_system,
    run_register_experiment,
)
from repro.registers.workload import RegisterWorkload
from repro.sim.clock_drivers import driver_factory
from repro.sim.delay import UniformDelay
from repro.sim.scheduler import RandomScheduler


class TestRegisterScale:
    @pytest.mark.parametrize("n", [8, 12])
    def test_clock_register_at_scale(self, n):
        eps, c, d2 = 0.1, 0.3, 1.0
        workload = RegisterWorkload(operations=3, read_fraction=0.5, seed=1)
        spec = clock_register_system(
            n=n, d1=0.2, d2=d2, c=c, eps=eps, workload=workload,
            drivers=driver_factory("mixed", eps, seed=1),
            delay_model=UniformDelay(seed=1),
        )
        run = run_register_experiment(
            spec, 70.0, scheduler=RandomScheduler(seed=1),
            max_steps=5_000_000,
        )
        assert len(run.operations) == 3 * n
        assert run.linearizable()
        assert run.max_read_latency() <= (2 * eps + 0.01 + c) + 2 * eps + 1e-9
        assert run.max_write_latency() <= (d2 + 2 * eps - c) + 2 * eps + 1e-9

    def test_channel_count_quadratic(self):
        n = 8
        workload = RegisterWorkload(operations=1, seed=2)
        spec = clock_register_system(
            n=n, d1=0.2, d2=1.0, c=0.3, eps=0.1, workload=workload,
            drivers=driver_factory("perfect", 0.1),
        )
        channels = [e for e in spec.entities if e.name.startswith("chan[")]
        assert len(channels) == n * n  # complete with self-loops


class TestBroadcastScale:
    def test_flood_on_large_ring(self):
        n = 20
        topology = Topology.ring(n)
        eps = 0.05
        spec = build_flood_system(
            "clock", topology, 0.1, 0.5, eps=eps,
            drivers=driver_factory("mixed", eps, seed=3),
            delay_model=UniformDelay(seed=3),
        )
        horizon = 2.0 + diameter(topology) * (0.5 + 2 * eps)
        result = spec.simulator().run(
            horizon,
            initial_inputs=[(Action("BCAST", (0, ("m", 1))), 1.0)],
        )
        delivered = deliveries(result.trace)
        assert len(delivered) == n
        dist = _distances(topology, 0)
        for (node, _), stamp in deliveries(result.clock_trace()).items():
            assert stamp <= 1.0 + eps + dist[node] * (0.5 + 2 * eps) + 1e-9

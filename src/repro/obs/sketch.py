"""Mergeable quantile sketches for latency percentiles.

Fixed-bucket histograms (:class:`~repro.obs.metrics.Histogram`) answer
"how many deliveries took <= 0.25?" but cannot answer "what is p99?"
with controlled error, and their accuracy is frozen at bucket-choice
time. A :class:`QuantileSketch` stores samples in *relative-accuracy*
log-spaced buckets (the DDSketch construction): bucket ``k`` covers
``(gamma^(k-1), gamma^k]`` with ``gamma = (1 + alpha) / (1 - alpha)``,
so any quantile estimate is within a factor ``(1 +- alpha)`` of a true
sample value, at any scale, with a sparse integer map as the only state.

Why this shape and not a t-digest: t-digest centroids depend on the
order in which sketches are merged (the merge *tree* leaks into the
state), while log-bucket counts add like histogram buckets — the merged
sketch is a pure function of the multiset of samples. That is the
property :func:`repro.obs.metrics.merge_snapshots` needs so campaign
aggregates stay byte-identical regardless of worker count or completion
order.

All values are **simulated-time units** (the same convention as
``LATENCY_BUCKETS``), and everything here is pure python with no
dependencies, like the rest of the library.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

DEFAULT_ALPHA = 0.01
"""Default relative accuracy: quantiles within +-1% of a sample value."""

_MIN_TRACKABLE = 1e-12
"""Values at or below this collapse into the zero bucket."""


class QuantileSketch:
    """A DDSketch-style mergeable quantile sketch.

    ``observe`` is O(1); ``merge`` adds bucket counts (commutative and
    associative on the bucket maps, so merge order cannot change the
    result); ``quantile`` walks the sparse buckets once. Negative
    samples are clamped into the zero bucket — every quantity sketched
    here (latencies, holds, transits) is non-negative by construction,
    and a silent negative would otherwise corrupt the log transform.
    """

    __slots__ = ("name", "alpha", "_gamma", "_log_gamma", "_buckets",
                 "_zero", "_count", "_sum", "_min", "_max")

    def __init__(self, name: str, alpha: float = DEFAULT_ALPHA):
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha!r}")
        self.name = name
        self.alpha = float(alpha)
        self._gamma = (1.0 + self.alpha) / (1.0 - self.alpha)
        self._log_gamma = math.log(self._gamma)
        self._buckets: Dict[int, int] = {}
        self._zero = 0
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    # -- recording -----------------------------------------------------------

    def observe(self, value: float) -> None:
        """Record one sample."""
        if value > _MIN_TRACKABLE:
            key = math.ceil(math.log(value) / self._log_gamma)
            self._buckets[key] = self._buckets.get(key, 0) + 1
        else:
            value = max(value, 0.0)
            self._zero += 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    # -- summary -------------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def minimum(self) -> float:
        return self._min if self._count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._count else 0.0

    def quantile(self, q: float) -> float:
        """The estimated ``q``-quantile (``0 <= q <= 1``).

        Returns the geometric midpoint of the bucket holding the rank,
        clamped into ``[min, max]`` so the tails never overshoot the
        observed extremes. 0.0 on an empty sketch.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if not self._count:
            return 0.0
        rank = q * (self._count - 1)
        cumulative = self._zero
        if rank < cumulative:
            return self._min if self._min > 0.0 else 0.0
        gamma = self._gamma
        for key in sorted(self._buckets):
            cumulative += self._buckets[key]
            if rank < cumulative:
                midpoint = 2.0 * gamma ** key / (gamma + 1.0)
                return min(max(midpoint, self._min), self._max)
        return self._max

    # -- merge / export ------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into this sketch (bucket-wise addition).

        The bucket maps simply add, so any merge order over any
        sharding of the same samples yields the identical sketch.
        """
        if abs(other.alpha - self.alpha) > 1e-12:
            raise ValueError(
                f"cannot merge sketch {self.name!r}: alpha "
                f"{other.alpha:g} != {self.alpha:g}"
            )
        for key, count in other._buckets.items():
            self._buckets[key] = self._buckets.get(key, 0) + count
        self._zero += other._zero
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    def _canonical_sum(self) -> float:
        """The sample sum recomputed from the bucket state.

        The live ``_sum`` accumulator depends on the order samples were
        added (float addition is not associative), so two shardings of
        the same multiset can disagree in its last bits. The bucket
        maps are *exactly* identical across shardings, and summing
        ``count * bucket-midpoint`` in sorted key order performs the
        identical float operations every time — within ``alpha`` of the
        true sum, and bit-for-bit deterministic.
        """
        gamma = self._gamma
        total = 0.0
        for key in sorted(self._buckets):
            total += self._buckets[key] * (2.0 * gamma ** key / (gamma + 1.0))
        return total

    def to_dict(self) -> Dict[str, object]:
        """The sketch as a plain (JSON-ready) dict.

        Buckets export as ``[key, count]`` pairs sorted by key and the
        ``sum`` field is the canonical bucket-derived sum, so the JSON
        text is a pure function of the sample multiset — byte-identical
        however the samples were sharded or the shards merged.
        """
        return {
            "alpha": self.alpha,
            "zero": self._zero,
            "buckets": [[k, self._buckets[k]] for k in sorted(self._buckets)],
            "count": self._count,
            "sum": self._canonical_sum(),
            "min": self.minimum,
            "max": self.maximum,
        }

    @classmethod
    def from_dict(cls, name: str, payload: Dict[str, object]) -> "QuantileSketch":
        """Rebuild a sketch from :meth:`to_dict` output."""
        sketch = cls(name, alpha=float(payload.get("alpha", DEFAULT_ALPHA)))
        sketch._zero = int(payload.get("zero", 0))
        sketch._buckets = {
            int(key): int(count) for key, count in payload.get("buckets", [])
        }
        sketch._count = int(payload.get("count", 0))
        sketch._sum = float(payload.get("sum", 0.0))
        if sketch._count:
            sketch._min = float(payload.get("min", 0.0))
            sketch._max = float(payload.get("max", 0.0))
        return sketch

    def __repr__(self) -> str:
        return (
            f"<QuantileSketch {self.name}: n={self._count}, "
            f"p50={self.quantile(0.5):.4g}, max={self.maximum:.4g}>"
        )


def quantile_triplet(sketch: QuantileSketch) -> Tuple[float, float, float]:
    """The (p50, p95, p99) triple the dashboard column shows."""
    return sketch.quantile(0.5), sketch.quantile(0.95), sketch.quantile(0.99)


def validate_sketch_dict(name: str, payload: object) -> List[str]:
    """Schema problems with one exported sketch dict (empty = valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"metrics: sketch {name!r} is not an object"]
    for key in ("alpha", "zero", "buckets", "count", "sum", "min", "max"):
        if key not in payload:
            problems.append(f"metrics: sketch {name!r} lacks {key!r}")
    alpha = payload.get("alpha")
    if not isinstance(alpha, float) or not 0.0 < alpha < 1.0:
        problems.append(f"metrics: sketch {name!r} alpha invalid: {alpha!r}")
    buckets = payload.get("buckets", [])
    if not isinstance(buckets, list) or not all(
        isinstance(pair, list) and len(pair) == 2
        and isinstance(pair[0], int) and isinstance(pair[1], int)
        and pair[1] >= 0
        for pair in buckets
    ):
        problems.append(f"metrics: sketch {name!r} buckets malformed")
    else:
        keys = [pair[0] for pair in buckets]
        if keys != sorted(keys):
            problems.append(f"metrics: sketch {name!r} buckets not sorted")
        zero = payload.get("zero", 0)
        total = sum(pair[1] for pair in buckets) + (
            zero if isinstance(zero, int) else 0
        )
        if isinstance(payload.get("count"), int) and total != payload["count"]:
            problems.append(
                f"metrics: sketch {name!r} bucket counts do not sum to count"
            )
    return problems

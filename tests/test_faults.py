"""Tests for the fault substrate: fault models, lossy channels, ARQ."""

import pytest

from repro.automata.actions import Action
from repro.components.base import ProcessContext
from repro.faults.lossy_channel import LossyChannelEntity
from repro.faults.models import (
    BernoulliFaults,
    BurstFaults,
    NoFaults,
    ScriptedFaults,
)
from repro.faults.retransmit import (
    BackoffPolicy,
    ReliableAdapter,
    effective_delay_bounds,
)
from repro.sim.delay import MinimalDelay

from helpers import PingerProcess


class TestFaultModels:
    def test_no_faults(self):
        model = NoFaults()
        assert all(model.copies((0, 1), "m", t) == 1 for t in range(10))

    def test_bernoulli_validation(self):
        with pytest.raises(ValueError):
            BernoulliFaults(p_drop=1.0)
        with pytest.raises(ValueError):
            BernoulliFaults(p_duplicate=-0.1)
        with pytest.raises(ValueError):
            BernoulliFaults(max_consecutive_drops=-1)

    def test_bernoulli_consecutive_drop_bound(self):
        model = BernoulliFaults(seed=1, p_drop=0.95, max_consecutive_drops=3)
        run = 0
        for attempt in range(200):
            copies = model.copies((0, 1), ("DATA", 7, "m"), float(attempt))
            if copies == 0:
                run += 1
                assert run <= 3
            else:
                run = 0

    def test_bernoulli_duplication(self):
        model = BernoulliFaults(seed=2, p_drop=0.0, p_duplicate=1.0)
        assert model.copies((0, 1), "m", 0.0) == 2

    def test_burst_faults(self):
        model = BurstFaults(good_duration=5.0, bad_duration=2.0,
                            max_consecutive_drops=10)
        assert model.copies((0, 1), "a", 1.0) == 1      # good period
        assert model.copies((0, 1), "b", 6.0) == 0      # bad period

    def test_scripted_faults(self):
        model = ScriptedFaults([0, 0, 2, 1])
        assert model.max_consecutive_drops == 2
        observed = [model.copies((0, 1), "m", 0.0) for _ in range(6)]
        assert observed == [0, 0, 2, 1, 1, 1]

    def test_logical_key_shared_across_retransmissions(self):
        """The drop bound applies to the logical DATA frame."""
        model = BernoulliFaults(seed=3, p_drop=0.999, max_consecutive_drops=2)
        drops = 0
        for attempt in range(3):
            if model.copies((0, 1), ("DATA", 5, "payload"), attempt) == 0:
                drops += 1
        assert drops <= 2


class TestLossyChannel:
    def test_drop(self):
        chan = LossyChannelEntity(
            0, 1, 0.0, 1.0, delay_model=MinimalDelay(),
            fault_model=ScriptedFaults([0]),
        )
        state = chan.initial_state()
        chan.apply_input(state, Action("SENDMSG", (0, 1, "gone")), 0.0)
        assert state.buffer == []
        assert state.dropped == 1

    def test_duplicate(self):
        chan = LossyChannelEntity(
            0, 1, 0.0, 1.0, delay_model=MinimalDelay(),
            fault_model=ScriptedFaults([3]),
        )
        state = chan.initial_state()
        chan.apply_input(state, Action("SENDMSG", (0, 1, "multi")), 0.0)
        assert len(state.buffer) == 3
        assert state.duplicated == 2

    def test_no_faults_is_plain_channel(self):
        chan = LossyChannelEntity(0, 1, 0.0, 1.0, delay_model=MinimalDelay())
        state = chan.initial_state()
        chan.apply_input(state, Action("SENDMSG", (0, 1, "m")), 0.0)
        assert len(state.buffer) == 1

    def test_duplicates_do_not_alias_mutable_payloads(self):
        # regression: duplicated InTransit records used to share the
        # payload object, so mutating one delivered copy corrupted the
        # copy still in flight
        chan = LossyChannelEntity(
            0, 1, 0.0, 1.0, delay_model=MinimalDelay(),
            fault_model=ScriptedFaults([2]),
        )
        state = chan.initial_state()
        payload = ["mutable", [1, 2]]
        chan.apply_input(state, Action("SENDMSG", (0, 1, payload)), 0.0)
        first, second = state.buffer
        assert first.message == second.message
        assert first.message is not second.message
        first.message[1].append(3)  # the receiver scribbles on its copy
        assert second.message == ["mutable", [1, 2]]


class TestReliableAdapter:
    def adapter(self, retx=0.5):
        return ReliableAdapter(PingerProcess(0, 1, 2, 1.0), retx)

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            self.adapter(retx=0.0)

    def test_fresh_send_framed_and_tracked(self):
        adapter = self.adapter()
        state = adapter.initial_state()
        ctx = ProcessContext(1.0)
        # drive the inner pinger to its send
        adapter.fire(state, Action("PING", (0, 1)), ctx)
        (frame,) = [a for a in adapter.enabled(state, ctx) if a.name == "SENDMSG"]
        assert frame.params[2] == ("DATA", 0, ("ping", 1))
        adapter.fire(state, frame, ctx)
        assert (1, 0) in state.outbox
        assert state.outbox[(1, 0)].next_attempt == pytest.approx(1.5)

    def test_retransmission_until_ack(self):
        adapter = self.adapter()
        state = adapter.initial_state()
        adapter.fire(state, Action("PING", (0, 1)), ProcessContext(1.0))
        frame = adapter.enabled(state, ProcessContext(1.0))[0]
        adapter.fire(state, frame, ProcessContext(1.0))
        # retransmission due at 1.5
        assert adapter.deadline(state, ProcessContext(1.2)) == pytest.approx(1.5)
        (retx,) = [a for a in adapter.enabled(state, ProcessContext(1.5))
                   if a.name == "SENDMSG"]
        assert retx.params[2][0] == "DATA"
        adapter.fire(state, retx, ProcessContext(1.5))
        assert state.outbox[(1, 0)].attempts == 2
        # ack clears the outbox
        adapter.apply_input(
            state, Action("RECVMSG", (0, 1, ("ACK", 0))), ProcessContext(2.0)
        )
        assert not state.outbox

    def test_receiver_dedup_and_ack(self):
        adapter = self.adapter()
        state = adapter.initial_state()
        ctx = ProcessContext(3.0)
        data = Action("RECVMSG", (0, 1, ("DATA", 0, ("pong", 1))))
        adapter.apply_input(state, data, ctx)
        adapter.apply_input(state, data, ctx)  # duplicate
        # inner saw the pong exactly once
        assert state.inner.pending_pongs == [1]
        # two acks owed (one per received frame)
        acks = [a for a in adapter.enabled(state, ctx)
                if a.name == "SENDMSG" and a.params[2][0] == "ACK"]
        assert len(acks) == 2
        adapter.fire(state, acks[0], ctx)
        assert len(state.pending_acks) == 1

    def test_effective_delay_bounds(self):
        assert effective_delay_bounds(0.1, 1.0, 0.5, 3) == (0.1, 2.5)
        assert effective_delay_bounds(0.1, 1.0, 0.5, 0) == (0.1, 1.0)

    def test_backoff_widens_the_retransmission_gap(self):
        backoff = BackoffPolicy(factor=2.0)
        adapter = ReliableAdapter(
            PingerProcess(0, 1, 1, 1.0), 0.5, backoff=backoff
        )
        state = adapter.initial_state()
        adapter.fire(state, Action("PING", (0, 1)), ProcessContext(1.0))
        frame = adapter.enabled(state, ProcessContext(1.0))[0]
        adapter.fire(state, frame, ProcessContext(1.0))
        # first gap: 0.5 * 2**0 = 0.5
        assert state.outbox[(1, 0)].next_attempt == pytest.approx(1.5)
        retx = adapter.enabled(state, ProcessContext(1.5))[0]
        adapter.fire(state, retx, ProcessContext(1.5))
        # second gap doubles: 0.5 * 2**1 = 1.0
        assert state.outbox[(1, 0)].next_attempt == pytest.approx(2.5)

    def test_max_attempts_caps_retransmission(self):
        adapter = ReliableAdapter(PingerProcess(0, 1, 1, 1.0), 0.5, max_attempts=3)
        state = adapter.initial_state()
        adapter.fire(state, Action("PING", (0, 1)), ProcessContext(1.0))
        now = 1.0
        for _ in range(3):
            frames = [a for a in adapter.enabled(state, ProcessContext(now))
                      if a.name == "SENDMSG"]
            if not frames:
                break
            adapter.fire(state, frames[0], ProcessContext(now))
            now += 0.5
        assert not state.outbox


class TestBackoffPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(max_interval=0.0)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=-0.1)

    def test_geometric_growth_capped_at_max_interval(self):
        policy = BackoffPolicy(factor=2.0, max_interval=3.0)
        gaps = [policy.gap(0.5, k) for k in range(1, 6)]
        assert gaps == pytest.approx([0.5, 1.0, 2.0, 3.0, 3.0])

    def test_jitter_is_deterministic_and_bounded(self):
        policy = BackoffPolicy(factor=2.0, jitter=0.25, seed=42)
        first = policy.gap(0.5, 3, dst=1, seq=7)
        # bit-reproducible: a pure function of (seed, dst, seq, attempt)
        assert policy.gap(0.5, 3, dst=1, seq=7) == first
        # bounded: raw <= gap <= raw * (1 + jitter)
        assert 2.0 <= first <= 2.0 * 1.25
        # and actually sensitive to the key
        others = {
            policy.gap(0.5, 3, dst=1, seq=8),
            policy.gap(0.5, 3, dst=2, seq=7),
            policy.gap(0.5, 4, dst=1, seq=7),
        }
        assert len(others | {first}) == 4

    def test_worst_case_gap_sum(self):
        policy = BackoffPolicy(factor=2.0, max_interval=3.0, jitter=0.25)
        # (0.5 + 1.0 + 2.0 + 3.0) * 1.25
        assert policy.worst_case_gap_sum(0.5, 4) == pytest.approx(8.125)
        # every sampled schedule is below the analytic bound
        sampled = sum(policy.gap(0.5, k, dst=1, seq=0) for k in range(1, 5))
        assert sampled <= policy.worst_case_gap_sum(0.5, 4) + 1e-9

    def test_effective_delay_bounds_with_backoff(self):
        policy = BackoffPolicy(factor=2.0)
        # widening: 0.5 + 1.0 + 2.0 = 3.5 instead of 3 * 0.5
        assert effective_delay_bounds(0.1, 1.0, 0.5, 3, backoff=policy) == (
            0.1,
            pytest.approx(4.5),
        )
        # factor 1, no jitter degenerates to the flat-interval bound
        flat = BackoffPolicy(factor=1.0)
        assert effective_delay_bounds(0.1, 1.0, 0.5, 3, backoff=flat) == (
            0.1,
            pytest.approx(effective_delay_bounds(0.1, 1.0, 0.5, 3)[1]),
        )

"""Actions and action sets.

The paper's automata communicate through named, parameterized actions such
as ``SENDMSG_i(j, m)`` (Section 3.1). We represent an action occurrence as
an immutable :class:`Action` with a name and a tuple of parameters; the
subscripted node index is, by convention, the first parameter. So the
paper's ``SENDMSG_i(j, m)`` is ``Action("SENDMSG", (i, j, m))``.

Action *signatures* (Definition 2.1) partition possibly-infinite families
of actions, so membership must be described intensionally. The
:class:`ActionSet` hierarchy provides finite sets, name/parameter patterns,
arbitrary predicates, and unions, all sharing a ``contains`` test.

The distinguished time-passage action ``nu`` (Definition 2.1) is exposed as
the module-level constant :data:`NU`. It is never a member of any visible,
input, output, or internal action set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Tuple


@dataclass(frozen=True)
class Action:
    """A single (non-time-passage) action occurrence.

    Parameters are stored as a tuple so actions are hashable and can be
    used as dictionary keys, set members, and in recorded traces.

    Examples
    --------
    >>> Action("READ", (2,))
    READ_2()
    >>> Action("SENDMSG", (0, 1, "hello"))
    SENDMSG_0(1, 'hello')
    """

    name: str
    params: Tuple = ()

    @property
    def node(self) -> Optional[int]:
        """The node index of a node-subscripted action, if any.

        By convention the first parameter of node-local actions is the
        node index. Returns ``None`` for parameterless actions.
        """
        if self.params and isinstance(self.params[0], int):
            return self.params[0]
        return None

    def __repr__(self) -> str:
        if not self.params:
            return f"{self.name}()"
        head, *rest = self.params
        inner = ", ".join(repr(p) for p in rest)
        return f"{self.name}_{head!r}({inner})".replace("'", "'")

    def __str__(self) -> str:
        return self.__repr__()


class _TimePassage:
    """The unique time-passage action ``nu`` (Definition 2.1).

    A singleton: every comparison is by identity. ``nu`` carries no
    parameters at the theory level; the amount of time passed is encoded
    in the ``now`` components of the surrounding states.
    """

    _instance: Optional["_TimePassage"] = None

    def __new__(cls) -> "_TimePassage":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "nu"

    def __hash__(self) -> int:
        return hash("__time_passage_nu__")


NU = _TimePassage()
"""The time-passage action ``nu``."""


class ActionSet:
    """Abstract base for (possibly infinite) sets of actions.

    Subclasses implement :meth:`contains`. The ``in`` operator works via
    ``__contains__``, and sets may be combined with ``|``.
    """

    def contains(self, action: Action) -> bool:
        """Whether the (non-``nu``) action belongs to this set."""
        raise NotImplementedError

    def __contains__(self, action: object) -> bool:
        if action is NU:
            return False
        if not isinstance(action, Action):
            return False
        return self.contains(action)

    def __or__(self, other: "ActionSet") -> "ActionSet":
        return UnionActionSet((self, other))

    def is_empty_hint(self) -> bool:
        """Best-effort emptiness check (used only for error messages)."""
        return False


class EmptyActionSet(ActionSet):
    """The empty set of actions."""

    def contains(self, action: Action) -> bool:
        return False

    def is_empty_hint(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "EmptyActionSet()"


@dataclass(frozen=True)
class FiniteActionSet(ActionSet):
    """An explicit, finite set of actions."""

    actions: frozenset

    def __init__(self, actions: Iterable[Action]):
        object.__setattr__(self, "actions", frozenset(actions))

    def contains(self, action: Action) -> bool:
        return action in self.actions

    def is_empty_hint(self) -> bool:
        return not self.actions

    def __repr__(self) -> str:
        return f"FiniteActionSet({sorted(map(str, self.actions))})"


@dataclass(frozen=True)
class ActionPattern:
    """Matches actions by name and (optionally) by leading parameters.

    ``ActionPattern("SENDMSG", (0, 1))`` matches every ``SENDMSG`` action
    whose first two parameters are ``0`` and ``1`` — i.e. the whole family
    ``SENDMSG_0(1, m)`` for every message ``m``.

    A parameter position may be the wildcard :data:`ANY` to match any
    value at that position while still constraining later positions.
    """

    name: str
    prefix: Tuple = ()

    def matches(self, action: Action) -> bool:
        """Whether the action's name and leading parameters fit."""
        if action.name != self.name:
            return False
        if len(action.params) < len(self.prefix):
            return False
        for want, got in zip(self.prefix, action.params):
            if want is ANY:
                continue
            if want != got:
                return False
        return True

    def __repr__(self) -> str:
        inner = ", ".join("*" if p is ANY else repr(p) for p in self.prefix)
        return f"{self.name}({inner}, ...)"


class _Any:
    """Wildcard marker for :class:`ActionPattern` positions."""

    _instance: Optional["_Any"] = None

    def __new__(cls) -> "_Any":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ANY"


ANY = _Any()
"""Wildcard parameter for :class:`ActionPattern`."""


@dataclass(frozen=True)
class PatternActionSet(ActionSet):
    """The set of all actions matching at least one pattern."""

    patterns: Tuple[ActionPattern, ...]

    def __init__(self, patterns: Iterable[ActionPattern]):
        object.__setattr__(self, "patterns", tuple(patterns))

    def contains(self, action: Action) -> bool:
        return any(p.matches(action) for p in self.patterns)

    def is_empty_hint(self) -> bool:
        return not self.patterns

    def __repr__(self) -> str:
        return f"PatternActionSet({list(self.patterns)})"


class PredicateActionSet(ActionSet):
    """The set of actions satisfying an arbitrary predicate.

    Use sparingly; prefer :class:`PatternActionSet` where possible since
    patterns produce better diagnostics.
    """

    def __init__(self, predicate: Callable[[Action], bool], label: str = "<predicate>"):
        self._predicate = predicate
        self._label = label

    def contains(self, action: Action) -> bool:
        return bool(self._predicate(action))

    def __repr__(self) -> str:
        return f"PredicateActionSet({self._label})"


@dataclass(frozen=True)
class UnionActionSet(ActionSet):
    """The union of several action sets."""

    members: Tuple[ActionSet, ...] = field(default_factory=tuple)

    def __init__(self, members: Iterable[ActionSet]):
        flat = []
        for m in members:
            if isinstance(m, UnionActionSet):
                flat.extend(m.members)
            elif isinstance(m, EmptyActionSet):
                continue
            else:
                flat.append(m)
        object.__setattr__(self, "members", tuple(flat))

    def contains(self, action: Action) -> bool:
        return any(action in m for m in self.members)

    def is_empty_hint(self) -> bool:
        return all(m.is_empty_hint() for m in self.members)

    def __repr__(self) -> str:
        return f"UnionActionSet({list(self.members)})"


def action_set(*specs) -> ActionSet:
    """Convenience constructor for action sets.

    Accepts any mixture of:

    - :class:`Action` instances (collected into a finite set),
    - :class:`ActionPattern` instances,
    - strings (treated as a pattern matching every action of that name),
    - ``(name, prefix_tuple)`` pairs (treated as patterns),
    - existing :class:`ActionSet` instances.

    >>> s = action_set("READ", ("SENDMSG", (0,)))
    >>> Action("READ", (3,)) in s
    True
    >>> Action("SENDMSG", (1, 0, "m")) in s
    False
    """
    finite = []
    patterns = []
    sets = []
    for spec in specs:
        if isinstance(spec, Action):
            finite.append(spec)
        elif isinstance(spec, ActionPattern):
            patterns.append(spec)
        elif isinstance(spec, str):
            patterns.append(ActionPattern(spec))
        elif isinstance(spec, tuple) and len(spec) == 2 and isinstance(spec[0], str):
            patterns.append(ActionPattern(spec[0], tuple(spec[1])))
        elif isinstance(spec, ActionSet):
            sets.append(spec)
        else:
            raise TypeError(f"cannot interpret {spec!r} as an action set spec")
    if finite:
        sets.append(FiniteActionSet(finite))
    if patterns:
        sets.append(PatternActionSet(patterns))
    if not sets:
        return EmptyActionSet()
    if len(sets) == 1:
        return sets[0]
    return UnionActionSet(sets)

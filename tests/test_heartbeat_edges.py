"""Heartbeat detector edge cases: give-up, exact timeout, timeout=0."""

import pytest

from repro.automata.actions import Action
from repro.components.base import ProcessContext
from repro.detector.heartbeat import (
    DeadlineMonitor,
    HeartbeatSender,
    build_detector_system,
    detector_timeout,
)
from repro.sim.clock_drivers import FastClockDriver, SlowClockDriver
from repro.sim.delay import MaximalDelay

INFINITY = float("inf")


def hb(k):
    return Action("RECVMSG", (1, 0, ("hb", k)))


class TestGiveUpEdgeCases:
    def monitor(self, timeout=1.2, count=3):
        return DeadlineMonitor(1, 2.0, timeout, count)

    def test_late_heartbeat_after_suspect_is_absorbed(self):
        monitor = self.monitor()
        state = monitor.initial_state()
        ctx = ProcessContext(3.2)  # beat 1's deadline: 1*2 + 1.2
        (suspect,) = monitor.enabled(state, ctx)
        assert suspect == Action("SUSPECT", (1, 1))
        monitor.fire(state, suspect, ctx)
        assert state.suspicions == [1]
        assert state.expected == 2  # gave up on 1, moved on
        # the heartbeat it gave up on finally arrives
        monitor.apply_input(state, hb(1), ProcessContext(3.5))
        # no regression, no re-suspicion, the schedule is unchanged
        assert state.expected == 2
        assert monitor.enabled(state, ProcessContext(3.5)) == []
        assert monitor.deadline(state, ProcessContext(3.5)) == pytest.approx(5.2)

    def test_give_up_does_not_block_later_beats(self):
        monitor = self.monitor()
        state = monitor.initial_state()
        monitor.fire(state, Action("SUSPECT", (1, 1)), ProcessContext(3.2))
        monitor.apply_input(state, hb(2), ProcessContext(4.3))
        assert state.expected == 3
        assert state.suspicions == [1]

    def test_out_of_order_heartbeats_after_give_up(self):
        monitor = self.monitor()
        state = monitor.initial_state()
        monitor.fire(state, Action("SUSPECT", (1, 1)), ProcessContext(3.2))
        monitor.apply_input(state, hb(3), ProcessContext(4.0))
        assert state.expected == 2  # still waiting on 2
        monitor.apply_input(state, hb(2), ProcessContext(4.1))
        assert state.expected == 4  # jumps over the already-received 3
        # all beats accounted for: the monitor retires
        assert monitor.enabled(state, ProcessContext(9.9)) == []
        assert monitor.deadline(state, ProcessContext(9.9)) == INFINITY

    def test_suspicion_boundary_is_exact(self):
        monitor = self.monitor()
        state = monitor.initial_state()
        assert monitor.enabled(state, ProcessContext(3.1999999)) == []
        assert monitor.enabled(state, ProcessContext(3.2)) == [
            Action("SUSPECT", (1, 1))
        ]

    def test_timeout_zero_suspects_at_the_due_instant(self):
        monitor = self.monitor(timeout=0.0)
        state = monitor.initial_state()
        assert monitor.deadline(state, ProcessContext(0.0)) == pytest.approx(2.0)
        assert monitor.enabled(state, ProcessContext(1.9)) == []
        assert monitor.enabled(state, ProcessContext(2.0)) == [
            Action("SUSPECT", (1, 1))
        ]

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            DeadlineMonitor(1, 2.0, -0.1, 3)


class TestSenderEdgeCases:
    def test_retires_after_count(self):
        sender = HeartbeatSender(0, 1, 2.0, count=1)
        state = sender.initial_state()
        sender.fire(state, Action("BEAT", (0, 1)), ProcessContext(2.0))
        sender.fire(
            state, Action("SENDMSG", (0, 1, ("hb", 1))), ProcessContext(2.0)
        )
        assert sender.enabled(state, ProcessContext(4.0)) == []
        assert sender.deadline(state, ProcessContext(4.0)) == INFINITY

    def test_overdue_beats_fire_late(self):
        # crash–recovery can resume the clock past a due time; the
        # overdue beat must still be enabled (not equality-gated)
        sender = HeartbeatSender(0, 1, 2.0, count=3)
        state = sender.initial_state()
        assert sender.enabled(state, ProcessContext(5.0)) == [
            Action("BEAT", (0, 1))
        ]


class TestExactTimeoutBoundary:
    """Theorem 4.7's rule ``timeout = d2 + 2*eps`` is exactly tight."""

    def build(self, timeout, eps=0.15, d1=0.1, d2=1.0):
        # worst-case adversary: slow sender (beats depart as late as
        # possible), fast monitor (deadlines fire as early as possible),
        # every message at the maximal delay
        def drivers(i):
            return SlowClockDriver(eps) if i == 0 else FastClockDriver(eps)

        return build_detector_system(
            "clock", 2.0, timeout, 8, d1, d2, eps=eps,
            drivers=drivers, delay_model=MaximalDelay(),
        )

    def test_timeout_exactly_at_the_bound_never_false_suspects(self):
        result = self.build(detector_timeout(1.0, 0.15)).run(30.0)
        assert not [e for e in result.trace if e.action.name == "SUSPECT"]

    def test_timeout_inside_the_guard_false_suspects(self):
        # strictly below d2 + 2*eps the adversary wins: the beat is in
        # flight when the monitor's deadline fires
        result = self.build(detector_timeout(1.0, 0.15) - 0.1).run(30.0)
        assert [e for e in result.trace if e.action.name == "SUSPECT"]

"""Cluster lifecycle: start ``n`` nodes, wire the mesh, serve stats.

A :class:`LiveCluster` owns one :class:`~repro.live.node.LiveRegisterNode`
per processor, all sharing a single epoch (so their real-time axes — and
hence the ``C_eps`` envelopes — agree) and a
:func:`~repro.sim.clock_drivers.driver_factory` assignment of clock
adversaries by node index, exactly as the simulator assigns them.

Startup is two-phase, mirroring the paper's composition: first every
node binds its server socket (ephemeral ports, so parallel test runs
never collide), then every node dials every other — no message can
arrive before the full mesh exists.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Tuple

from repro.errors import LiveServiceError
from repro.live.node import LiveRegisterNode
from repro.live.params import LiveParams, write_manifest
from repro.live.wire import decode_frame, encode_frame
from repro.obs.metrics import NULL_METRICS
from repro.sim.clock_drivers import driver_factory


class LiveCluster:
    """``n`` live register nodes on loopback, sharing one epoch."""

    def __init__(
        self, params: LiveParams, host: str = "127.0.0.1", metrics=NULL_METRICS
    ):
        self.params = params
        self.host = host
        self.epoch = time.monotonic()
        make_driver = driver_factory(params.driver, params.eps, seed=params.seed)
        self.nodes: List[LiveRegisterNode] = [
            LiveRegisterNode(
                i, params, make_driver(i), self.epoch, host=host,
                metrics=metrics,
            )
            for i in range(params.n)
        ]

    @property
    def addresses(self) -> List[Tuple[str, int]]:
        return [(node.host, node.port) for node in self.nodes]

    async def start(self) -> List[Tuple[str, int]]:
        """Bind all servers, then connect the full peer mesh."""
        for node in self.nodes:
            await node.start()
        addresses = self.addresses
        for node in self.nodes:
            await node.connect_peers(addresses)
        return addresses

    async def stop(self) -> None:
        """Stop every node (timers, peer links, server sockets)."""
        for node in self.nodes:
            await node.stop()

    def write_manifest(self, path: str) -> None:
        """Write this cluster's service manifest for external loaders."""
        write_manifest(path, self.params, self.addresses)

    def stats(self) -> List[Dict[str, object]]:
        """Node-side measurements, read directly (in-process clusters)."""
        return [node.stats() for node in self.nodes]

    def __repr__(self) -> str:
        return f"<LiveCluster n={self.params.n} @ {self.host}>"


async def fetch_stats(
    addresses: List[Tuple[str, int]], timeout: float = 5.0
) -> List[Dict[str, object]]:
    """The stats RPC: ask every node for its measurements over the wire.

    Works for out-of-process services (``load --connect``) as well as
    in-process ones, so the report's measured-``eps`` substitution does
    not depend on how the cluster was started.
    """

    async def one(host: str, port: int) -> Dict[str, object]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(encode_frame({"t": "stats"}))
            line = await asyncio.wait_for(reader.readline(), timeout)
        finally:
            writer.close()
        if not line:
            raise LiveServiceError(f"{host}:{port}: no stats reply")
        frame = decode_frame(line)
        if frame.get("t") != "stats":
            raise LiveServiceError(
                f"{host}:{port}: unexpected stats reply {frame.get('t')!r}"
            )
        return frame

    return list(await asyncio.gather(
        *(one(host, port) for host, port in addresses)
    ))

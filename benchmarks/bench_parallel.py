"""BENCH_parallel: sharded windowed execution vs the serial engine.

Times the same seeded pinger-pair systems under the serial incremental
engine and under ``Simulator.run(..., shards=k)`` for k ∈ {1, 2, 4},
across system sizes n ∈ {128, 512, 1024} and the timed and clock
pipelines. Every pair gets a *unique dyadic* ping interval
(``0.5 + j * 2^-13``), so the global timeline is dense — each real
instant wakes only a few entities, which is exactly the regime where the
serial engine's O(system) time-advance sweep dominates and per-shard
O(shard) sweeps win. Dyadic intervals keep cross-pair deadlines either
exactly equal or separated by ≫ the engine tolerance, so the sharded
trace-merge sees the same float instants the serial engine does.

For every (pipeline, n, shards) cell the benchmark asserts the sharded
run's merged recorder trace is byte-identical to the serial engine's —
the correctness bar of ``repro.sim.sharded`` (the conservative window
math is only an optimization while it reproduces the serial schedule
exactly).

The clock pipeline is the headline: each time advance moves every
node's clock, so serial cost per advance is O(n) while a shard only
moves its own O(n/k) — speedup grows with both n and k. The timed
pipeline has almost no per-advance work and shows ~1x: sharding is not
a win there, and the grid records that honestly (see
``docs/performance.md``).

Writes ``BENCH_parallel.json`` (repo root by default)::

    {"format": "repro-bench-parallel", "version": 1, "quick": false,
     "results": [{"pipeline": "clock", "n": 128, "steps": ...,
                  "serial": {"steps_per_sec": ..., "wall_s": ...},
                  "sharded": {"1": {"steps_per_sec": ..., "wall_s": ...,
                                    "speedup": ...}, "2": {...}, "4": {...}},
                  "best_speedup": ..., "best_shards": 4,
                  "traces_identical": true}, ...]}

``steps_per_sec`` is machine-dependent; ``speedup`` (sharded over serial
in the same process) is the portable number the CI gate compares
(``tools/validate_bench_parallel.py``).

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--quick] [--out PATH]
"""

import argparse
import gc
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.components.pinger import EchoProcess, PingerProcess
from repro.network.topology import Topology
from repro.core.pipeline import build_clock_system, build_timed_system
from repro.sim.clock_drivers import driver_factory
from repro.sim.engine import Simulator
from repro.sim.recorder import Recorder

DEFAULT_OUT = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_parallel.json"
)

SIZES = (128, 512, 1024)
QUICK_SIZES = (128,)
SHARD_COUNTS = (1, 2, 4)
PIPELINES = ("timed", "clock")

D1, D2 = 0.2, 0.6
EPS = 0.05
BASE_INTERVAL = 0.5
INTERVAL_STEP = 2.0 ** -13  # dyadic: exact products, no tolerance collisions
MAX_INTERVAL = BASE_INTERVAL + 511 * INTERVAL_STEP


def _pair_processes(count):
    def make(i):
        if i % 2 == 0:
            j = i // 2
            interval = BASE_INTERVAL + (j % 512) * INTERVAL_STEP
            return PingerProcess(i, i + 1, count, interval)
        return EchoProcess(i, i - 1)

    return make


def _pair_topology(n):
    edges = []
    for k in range(0, n, 2):
        edges.append((k, k + 1))
        edges.append((k + 1, k))
    return Topology(n, edges)


def build_spec(pipeline, n, quick):
    """n/2 independent pinger pairs, each on its own dyadic interval."""
    count = 4 if quick else 8
    topo = _pair_topology(n)
    procs = _pair_processes(count)
    if pipeline == "timed":
        spec = build_timed_system(topo, procs, D1, D2)
    elif pipeline == "clock":
        # skewed drivers are granularity-free (constant offset), the
        # sharded-mode requirement for entities overriding advance()
        spec = build_clock_system(
            topo, procs, EPS, D1, D2, driver_factory("skewed", EPS)
        )
    else:
        raise ValueError(f"unknown pipeline {pipeline!r}")
    horizon = count * MAX_INTERVAL + 3.0 * D2
    return spec, horizon


def run_once(spec, horizon, shards=None):
    """One run; returns (wall seconds, steps, events)."""
    recorder = Recorder()
    sim = Simulator(spec.entities, hidden=spec.hidden, max_steps=10_000_000)
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        result = sim.run(horizon, recorder=recorder, shards=shards)
        wall = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    return wall, result.steps, recorder.events


def measure(pipeline, n, quick):
    """Benchmark one (pipeline, n) row across all shard counts."""
    spec, horizon = build_spec(pipeline, n, quick)
    serial_wall, steps, serial_events = run_once(spec, horizon)
    serial_rate = steps / serial_wall if serial_wall > 0 else 0.0
    row = {
        "pipeline": pipeline,
        "n": n,
        "steps": steps,
        "serial": {
            "wall_s": round(serial_wall, 6),
            "steps_per_sec": round(serial_rate, 1),
        },
        "sharded": {},
    }
    identical = True
    best_speedup, best_shards = 0.0, None
    for k in SHARD_COUNTS:
        spec, horizon = build_spec(pipeline, n, quick)
        wall, k_steps, events = run_once(spec, horizon, shards=k)
        if events != serial_events:
            identical = False
        rate = k_steps / wall if wall > 0 else 0.0
        speedup = serial_wall / wall if wall > 0 else 0.0
        row["sharded"][str(k)] = {
            "wall_s": round(wall, 6),
            "steps_per_sec": round(rate, 1),
            "speedup": round(speedup, 3),
        }
        if speedup > best_speedup:
            best_speedup, best_shards = speedup, k
    row["best_speedup"] = round(best_speedup, 3)
    row["best_shards"] = best_shards
    row["traces_identical"] = identical
    return row


def run_grid(quick=False, sizes=None, pipelines=PIPELINES):
    sizes = sizes or (QUICK_SIZES if quick else SIZES)
    results = []
    for pipeline in pipelines:
        for n in sizes:
            record = measure(pipeline, n, quick)
            results.append(record)
            cells = "  ".join(
                f"k={k}:{record['sharded'][str(k)]['speedup']:.2f}x"
                for k in SHARD_COUNTS
            )
            print(
                f"{pipeline:6s} n={n:<5d} steps={record['steps']:<7d} "
                f"serial={record['serial']['steps_per_sec']:>9.1f}/s  "
                f"{cells}  identical={record['traces_identical']}"
            )
    return {
        "format": "repro-bench-parallel",
        "version": 1,
        "quick": bool(quick),
        "results": results,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny grid (n=128, fewer pings) for CI smoke",
    )
    parser.add_argument("--out", default=DEFAULT_OUT, help="output JSON path")
    parser.add_argument(
        "--pipelines", default=",".join(PIPELINES),
        help="comma-separated subset of timed,clock",
    )
    parser.add_argument(
        "--sizes", default=None,
        help="comma-separated system sizes (default: the full/quick grid)",
    )
    args = parser.parse_args(argv)
    pipelines = tuple(p for p in args.pipelines.split(",") if p)
    sizes = (
        tuple(int(s) for s in args.sizes.split(",") if s) if args.sizes else None
    )
    payload = run_grid(quick=args.quick, sizes=sizes, pipelines=pipelines)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {os.path.abspath(args.out)}")
    bad = [r for r in payload["results"] if not r["traces_identical"]]
    if bad:
        print(f"ERROR: {len(bad)} cell(s) with divergent traces", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

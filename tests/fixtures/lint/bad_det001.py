"""Fixture: calls the process-global RNG (one DET001 finding)."""

import random


def pick(items):
    """Order-dependent draw from the shared module RNG."""
    return items[random.randrange(len(items))]

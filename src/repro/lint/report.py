"""Renderers for lint results: human text and machine JSON.

Both renderers are deterministic functions of the :class:`LintResult`
(already sorted by the driver) — ``tests/test_determinism.py`` asserts
two runs over ``src/`` produce byte-identical JSON, which is what lets
CI ``cmp`` committed artifacts against regenerated ones.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.lint.core import LintResult
from repro.lint.rules import RULES, rule_family

REPORT_VERSION = 1


def render_json(result: LintResult) -> str:
    """The version-1 JSON report (stable key order, trailing newline)."""
    findings = []
    rule_counts: Dict[str, int] = {}
    for assessed in result.assessed:
        finding = assessed.finding
        rule_counts[finding.rule] = rule_counts.get(finding.rule, 0) + 1
        entry: Dict[str, Any] = {
            "rule": finding.rule,
            "family": rule_family(finding.rule),
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "scope": finding.scope,
            "message": finding.message,
            "fingerprint": finding.fingerprint,
            "status": assessed.status,
        }
        if assessed.justification:
            entry["justification"] = assessed.justification
        findings.append(entry)
    payload = {
        "version": REPORT_VERSION,
        "files_scanned": result.files_scanned,
        "summary": {
            "new": len(result.new),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
            "stale_baseline": len(result.stale_baseline),
            "by_rule": {k: rule_counts[k] for k in sorted(rule_counts)},
        },
        "findings": findings,
        "stale_baseline": result.stale_baseline,
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Compiler-style ``path:line:col rule message`` lines plus a summary."""
    lines = []
    for assessed in result.assessed:
        if assessed.status != "new" and not verbose:
            continue
        finding = assessed.finding
        tag = "" if assessed.status == "new" else f" [{assessed.status}]"
        lines.append(
            f"{finding.location()}: {finding.rule}{tag} {finding.message}"
        )
    for entry in result.stale_baseline:
        lines.append(
            f"stale baseline entry {entry['fingerprint']}: "
            f"{entry.get('rule', '?')} {entry.get('path', '?')} — finding no "
            f"longer produced; remove it (or --write-baseline)"
        )
    lines.append(
        f"{result.files_scanned} files scanned: "
        f"{len(result.new)} new, {len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined"
        + (f", {len(result.stale_baseline)} stale baseline entries"
           if result.stale_baseline else "")
    )
    return "\n".join(lines) + "\n"


def render_rules() -> str:
    """The ``--list-rules`` catalog."""
    lines = []
    for rule_id in sorted(RULES):
        lines.append(f"{rule_id}  [{rule_family(rule_id)}] {RULES[rule_id]}")
    return "\n".join(lines) + "\n"

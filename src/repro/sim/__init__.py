"""Discrete-event simulation substrate.

- :mod:`repro.sim.engine` — the simulator: composes entities, resolves
  urgency, advances time, records traces;
- :mod:`repro.sim.scheduler` — policies choosing among simultaneously
  enabled actions;
- :mod:`repro.sim.clock_drivers` — adversaries choosing each node's
  clock trajectory within the ``C_eps`` envelope;
- :mod:`repro.sim.delay` — adversaries choosing message delivery times
  within ``[d1, d2]``;
- :mod:`repro.sim.recorder` — execution recording and trace extraction.
"""

from repro.sim.clock_drivers import (
    ClockDriver,
    DriftingClockDriver,
    FastClockDriver,
    PerfectClockDriver,
    RandomWalkClockDriver,
    SawtoothClockDriver,
    SkewedClockDriver,
    SlowClockDriver,
    driver_factory,
)
from repro.sim.delay import (
    AlternatingExtremesDelay,
    ConstantFractionDelay,
    DelayModel,
    MaximalDelay,
    MinimalDelay,
    UniformDelay,
)
from repro.sim.engine import SimulationResult, Simulator
from repro.sim.persistence import (
    dump_events,
    load_events,
    load_recorder,
    save_recorder,
)
from repro.sim.recorder import EventRecord, Recorder
from repro.sim.scheduler import DeterministicScheduler, RandomScheduler, Scheduler

__all__ = [
    "ClockDriver",
    "PerfectClockDriver",
    "SkewedClockDriver",
    "DriftingClockDriver",
    "SawtoothClockDriver",
    "RandomWalkClockDriver",
    "FastClockDriver",
    "SlowClockDriver",
    "driver_factory",
    "DelayModel",
    "ConstantFractionDelay",
    "UniformDelay",
    "MinimalDelay",
    "MaximalDelay",
    "AlternatingExtremesDelay",
    "Simulator",
    "SimulationResult",
    "Recorder",
    "EventRecord",
    "dump_events",
    "load_events",
    "save_recorder",
    "load_recorder",
    "Scheduler",
    "DeterministicScheduler",
    "RandomScheduler",
]

"""Simulation 2: the MMT transformation ``M(A^c, l)`` (Definition 5.1).

The MMT model removes direct access to time entirely: the node learns the
clock only through ``TICK(c)`` inputs from the clock subsystem
(Section 5.2), and its locally controlled actions are only guaranteed to
occur within ``l`` of each other (boundmap ``[0, l]`` on the single
class).

The transformation performs a *delayed simulation* of the underlying
clock machine:

- ``TICK(c)`` only updates ``mmtclock`` (the simulation is lazy);
- a *catch-up* advances the simulated machine's clock to ``mmtclock``,
  firing the machine's urgent actions along the way; outputs discovered
  during catch-up are **queued** on ``pending`` (their effects apply to
  the simulated state immediately, but the externally visible action
  fires later) — this is Definition 5.1's ``frag``/``fragoutputs``;
- each MMT step (at most ``l`` apart, chosen by a :class:`StepPolicy`)
  either emits the first pending output or performs the internal ``tau``
  (a bare catch-up);
- inputs are applied at the caught-up state (Definition 5.1's
  ``(s.fragstate, a, s'.simstate)``).

Outputs are thereby shifted into the future by at most
``k*l + 2*eps + 3*l`` (Theorem 5.1), which
:func:`repro.core.pipeline.simulation2_shift_bound` computes and the
THM5.1 benchmark measures.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.automata.actions import Action, ActionPattern, PatternActionSet, UnionActionSet
from repro.automata.signature import Signature
from repro.components.base import Entity
from repro.core.clock_transform import ClockMachine, MachineState
from repro.errors import SimulationLimitError, TransitionError

from repro.constants import INFINITY, TOLERANCE as _TOLERANCE


class StepPolicy:
    """Chooses when, within ``[0, l]``, the next MMT step happens.

    The boundmap gives the adversary freedom over step times; policies
    realize different adversaries. :meth:`next_step` returns the
    absolute time of the next step given the current time.
    """

    def next_step(self, now: float, upper: float) -> float:
        """Absolute time of the next step, within ``[now, now+upper]``."""
        raise NotImplementedError


class EagerStepPolicy(StepPolicy):
    """Steps as fast as possible (lower bound 0 of the boundmap)."""

    def next_step(self, now: float, upper: float) -> float:
        return now


class LazyStepPolicy(StepPolicy):
    """Always waits the full ``l`` — the worst case of Theorem 5.1."""

    def next_step(self, now: float, upper: float) -> float:
        return now + upper


class UniformStepPolicy(StepPolicy):
    """Seeded uniform step times over ``[0, l]``."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def next_step(self, now: float, upper: float) -> float:
        return now + self._rng.uniform(0.0, upper)


@dataclass
class MMTState:
    """State of ``M(A^c, l)``: simulated machine + MMT bookkeeping."""

    machine_state: MachineState
    mmtclock: float = 0.0
    pending: Deque[Action] = field(default_factory=deque)
    next_step_time: float = 0.0
    catch_up_steps: int = 0


class MMTNodeEntity(Entity):
    """``M(A^c_{i,eps}, l)`` as a simulator entity (Simulation 2 node).

    ``machine`` is the clock machine of Simulation 1 — composing this
    entity over a transformed timed process realizes Theorem 5.2's
    two-simulation pipeline; handing it a natively-clock process's
    machine realizes Theorem 5.1 alone.
    """

    TAU = "TAU"

    # deadline is next_step_time (or INFINITY when idle) — set by
    # fire/apply_input, never read off ``now`` — and steps only become
    # enabled when time reaches it. Step policies draw their RNG inside
    # fire/apply_input, so queries stay pure.
    static_deadline = True
    wakes_at_deadline = True

    def __init__(
        self,
        machine: ClockMachine,
        step_bound: float,
        step_policy: Optional[StepPolicy] = None,
        idle_skip: bool = True,
        max_catch_up: int = 100_000,
    ):
        if step_bound <= 0:
            raise ValueError("the step bound l must be positive")
        process = machine.process
        node = process.node
        from repro.core.clock_transform import _node_signature

        base = _node_signature(process, node)
        tick = PatternActionSet([ActionPattern("TICK", (node,))])
        tau = PatternActionSet([ActionPattern(self.TAU, (node,))])
        signature = Signature(
            inputs=UnionActionSet([base.inputs, tick]),
            outputs=base.outputs,
            internals=UnionActionSet([base.internals, tau]),
        )
        super().__init__(f"{process.name}^m", signature)
        # enabled() queries the wrapped machine (and through it the
        # process), so the purity promise is the process's.
        self.pure_enabled = getattr(process, "pure_enabled", True)
        self.machine = machine
        self.node = node
        self.step_bound = step_bound
        self.step_policy = step_policy or EagerStepPolicy()
        self.idle_skip = idle_skip
        self.max_catch_up = max_catch_up

    def instrument(self, metrics) -> None:
        """Bind the wrapped machine's buffer instruments."""
        self.machine.instrument(metrics)

    # -- the delayed simulation ------------------------------------------------

    def _catch_up(self, state: MMTState) -> None:
        """Advance the simulated machine's clock to ``mmtclock``.

        Fires the machine's locally controlled actions deterministically
        (first enabled first); outputs go to ``pending``, with their
        effects applied to the simulated state immediately.
        """
        ms = state.machine_state
        for _ in range(self.max_catch_up):
            enabled = self.machine.enabled(ms)
            if enabled:
                action = enabled[0]
                self.machine.fire(ms, action)
                state.catch_up_steps += 1
                if self.signature.is_output(action):
                    state.pending.append(action)
                continue
            cap = self.machine.clock_deadline(ms)
            target = min(cap, state.mmtclock)
            if target <= ms.clock + _TOLERANCE:
                return
            ms.clock = target
        raise SimulationLimitError(
            f"node {self.node}: catch-up exceeded {self.max_catch_up} steps"
        )

    def _schedule_step(self, state: MMTState, now: float) -> None:
        state.next_step_time = self.step_policy.next_step(now, self.step_bound)

    # -- entity interface -----------------------------------------------------

    def initial_state(self) -> MMTState:
        state = MMTState(machine_state=self.machine.initial_state())
        self._schedule_step(state, 0.0)
        return state

    def apply_input(self, state: MMTState, action: Action, now: float) -> None:
        if action.name == "TICK":
            new_clock = action.params[1]
            if new_clock > state.mmtclock:
                state.mmtclock = new_clock
        else:
            # Definition 5.1: inputs apply at the caught-up state.
            self._catch_up(state)
            self.machine.apply_input(state.machine_state, action)
            self._catch_up(state)
        # The class timer restarts when the class (re)becomes enabled: a
        # stale step time would let the next step predate the input.
        if state.next_step_time < now - _TOLERANCE:
            self._schedule_step(state, now)

    def _idle(self, state: MMTState) -> bool:
        """Whether a tau step would be a pure stutter."""
        if state.pending:
            return False
        ms = state.machine_state
        if self.machine.enabled(ms):
            return False
        cap = self.machine.clock_deadline(ms)
        return min(cap, state.mmtclock) <= ms.clock + _TOLERANCE

    def enabled(self, state: MMTState, now: float) -> List[Action]:
        if now + _TOLERANCE < state.next_step_time:
            return []
        if state.pending:
            return [state.pending[0]]
        if self.idle_skip and self._idle(state):
            return []
        return [Action(self.TAU, (self.node,))]

    def fire(self, state: MMTState, action: Action, now: float) -> None:
        if action.name == self.TAU:
            self._catch_up(state)
            self._schedule_step(state, now)
            return
        if not state.pending or state.pending[0] != action:
            raise TransitionError(
                f"node {self.node}: {action} is not the first pending output"
            )
        state.pending.popleft()
        self._catch_up(state)
        self._schedule_step(state, now)

    def deadline(self, state: MMTState, now: float) -> float:
        if state.pending:
            return state.next_step_time
        if self.idle_skip and self._idle(state):
            return INFINITY
        return state.next_step_time

    def clock_value(self, state: MMTState, now: float) -> Optional[float]:
        """The *simulated* clock: the value the algorithm acts on."""
        return state.machine_state.clock

    def advance(self, state: MMTState, old_now: float, new_now: float) -> None:
        # Real time flows past the node; it only reacts at steps/TICKs.
        return

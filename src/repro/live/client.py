"""Load clients: replay an ``OpSchedule`` against a live node.

A :class:`LiveLoadClient` is the live twin of the simulator's
:class:`~repro.registers.workload.ClientEntity` in replay mode: both
walk the same :class:`~repro.registers.opstream.OpSchedule`, issuing one
operation at a time (the alternation condition) with the planned think
time after each response. Invocation and response instants are taken on
the load generator's own clock — one shared epoch across all clients,
so the recorded history is a consistent real-time order, which is
exactly what the linearizability definition quantifies over.

**Fault tolerance.** In its default configuration (no timeout, no retry
policy) the client is byte-compatible with the pre-chaos protocol: it
sends untagged ``read``/``write`` frames and raises on any connection
failure. Chaos runs arm three extra layers:

- a per-operation timeout (``op_timeout``), so a node that dies
  mid-operation produces a timed-out :class:`ClientRecord` instead of a
  hung ``readline`` — the record's ``outcome`` is ``"timeout"`` and its
  ``res_time`` is the instant the client gave up;
- seeded retry with the chaos layer's
  :class:`~repro.faults.retransmit.BackoffPolicy` (``max_attempts`` per
  op); retried invocations carry a ``cid`` and the schedule index
  ``op``, so the node can replay a cached response instead of executing
  a write twice (``outcome`` is ``"retried"`` on a retried success);
- automatic reconnection: any failed attempt tears the connection down
  and the next attempt re-dials, riding out node crash/recovery.

A timed-out *write* may still take effect later (the node executes it
but the response is lost); the chaos report handles that by treating
timed-out writes as possibly-effective when building the
linearizability history.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import LiveServiceError
from repro.faults.retransmit import BackoffPolicy
from repro.live.wire import decode_frame, encode_frame
from repro.registers.opstream import OpSchedule


@dataclass(frozen=True)
class ClientRecord:
    """One operation as timed by the load generator.

    ``outcome`` is ``"ok"`` (first attempt succeeded), ``"retried"``
    (succeeded on attempt > 1), or ``"timeout"`` (all attempts failed;
    ``value`` is ``None`` for reads and the intended value for writes).
    The defaults keep positional construction of pre-chaos records
    working unchanged.
    """

    node: int
    index: int
    kind: str  # "R" or "W"
    value: object  # value read (R) / written (W)
    inv_time: float
    res_time: float
    outcome: str = "ok"
    attempts: int = 1

    @property
    def latency(self) -> float:
        return self.res_time - self.inv_time

    @property
    def completed(self) -> bool:
        """Whether the operation got a response."""
        return self.outcome != "timeout"


class LiveLoadClient:
    """One closed-loop client driving one node over a TCP connection."""

    def __init__(
        self,
        node: int,
        schedule: OpSchedule,
        address: Tuple[str, int],
        epoch: float,
        cid: Optional[str] = None,
        op_timeout: Optional[float] = None,
        retry: Optional[BackoffPolicy] = None,
        max_attempts: int = 1,
        retry_base: float = 0.05,
    ):
        if schedule.node != node:
            raise ValueError(
                f"schedule is for node {schedule.node}, client is node {node}"
            )
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.node = node
        self.schedule = schedule
        self.address = address
        self.epoch = epoch
        self.cid = cid
        self.op_timeout = op_timeout
        self.retry = retry
        self.max_attempts = max_attempts
        self.retry_base = retry_base
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        #: attempts beyond the first, summed over all ops (report fodder)
        self.retries = 0

    def _now(self) -> float:
        return time.monotonic() - self.epoch

    @property
    def _fault_tolerant(self) -> bool:
        return self.op_timeout is not None or self.max_attempts > 1

    async def _connect(self) -> None:
        if self._writer is not None and not self._writer.is_closing():
            return
        self._reader, self._writer = await asyncio.open_connection(
            *self.address
        )

    def _disconnect(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
            except RuntimeError:
                pass
        self._reader = None
        self._writer = None

    def _request(self, op) -> dict:
        if op.kind == "R":
            request = {"t": "read"}
        else:
            request = {"t": "write", "value": list(op.value)}
        if self.cid is not None:
            request["cid"] = self.cid
            request["op"] = op.index
        return request

    async def _attempt(self, op) -> object:
        """One request/response round trip; returns the read/ack value.

        Raises ``LiveServiceError``/``OSError``/``TimeoutError`` on any
        failure; the caller decides whether to retry.
        """
        await self._connect()
        self._writer.write(encode_frame(self._request(op)))
        read = self._reader.readline()
        if self.op_timeout is not None:
            line = await asyncio.wait_for(read, self.op_timeout)
        else:
            line = await read
        if not line:
            raise LiveServiceError(
                f"client {self.node}: connection closed mid-operation "
                f"(op #{op.index})"
            )
        frame = decode_frame(line)
        expected = "return" if op.kind == "R" else "ack"
        if frame["t"] != expected:
            raise LiveServiceError(
                f"client {self.node}: expected {expected}, got "
                f"{frame['t']!r}"
            )
        return frame["value"] if op.kind == "R" else op.value

    async def run(self) -> List[ClientRecord]:
        """Replay the schedule; returns the timed operation records."""
        records: List[ClientRecord] = []
        try:
            if self.schedule.start_delay > 0:
                await asyncio.sleep(self.schedule.start_delay)
            for op in self.schedule.ops:
                records.append(await self._run_op(op))
                if op.think_after > 0:
                    await asyncio.sleep(op.think_after)
        finally:
            self._disconnect()
        return records

    async def _run_op(self, op) -> ClientRecord:
        inv = self._now()
        for attempt in range(self.max_attempts):
            if attempt > 0:
                self.retries += 1
                gap = self.retry_base
                if self.retry is not None:
                    gap = self.retry.gap(
                        self.retry_base, attempt,
                        dst=self.node, seq=op.index,
                    )
                await asyncio.sleep(gap)
            try:
                value = await self._attempt(op)
            except (
                asyncio.TimeoutError,
                ConnectionError,
                OSError,
                LiveServiceError,
            ):
                self._disconnect()
                if not self._fault_tolerant:
                    raise
                continue
            outcome = "ok" if attempt == 0 else "retried"
            return ClientRecord(
                self.node, op.index, op.kind, value, inv, self._now(),
                outcome, attempt + 1,
            )
        # every attempt failed: a timed-out record, not a crashed run
        value = None if op.kind == "R" else op.value
        return ClientRecord(
            self.node, op.index, op.kind, value, inv, self._now(),
            "timeout", self.max_attempts,
        )

"""Quickstart: a linearizable replicated register on imperfect clocks.

The one-paragraph version of the paper: write your algorithm as if every
node had a perfect clock (the timed model); the library transforms it to
run against clocks that are merely within ``eps`` of real time
(Simulation 1, Theorem 4.7) — and the Section 6 register transformed this
way is *linearizable* with read latency about ``2*eps + c`` and write
latency about ``d2 + 2*eps - c`` (Theorem 6.5).

Run::

    python examples/quickstart.py
"""

from repro import (
    RegisterWorkload,
    clock_register_system,
    driver_factory,
    run_register_experiment,
    UniformDelay,
)


def main():
    # The physical system: 3 replicas, message delay in [0.2, 1.0],
    # clocks within eps = 0.1 of real time (think: NTP-disciplined).
    n, d1, d2, eps = 3, 0.2, 1.0, 0.1

    # The tradeoff knob of Section 6.1: c close to 0 makes reads fast,
    # c close to d2' makes writes fast.
    c = 0.3

    workload = RegisterWorkload(
        operations=10,       # per client
        read_fraction=0.6,
        think_min=0.3,
        think_max=1.5,
        seed=42,
    )

    spec = clock_register_system(
        n=n, d1=d1, d2=d2, c=c, eps=eps,
        workload=workload,
        # every node's clock follows its own adversarial trajectory
        # inside the C_eps envelope
        drivers=driver_factory("mixed", eps, seed=7),
        delay_model=UniformDelay(seed=7),
    )

    run = run_register_experiment(spec, horizon=120.0)

    print(f"completed operations : {len(run.operations)}")
    print(f"  reads              : {len(run.reads)}")
    print(f"  writes             : {len(run.writes)}")
    print(f"max read latency     : {run.max_read_latency():.3f}"
          f"  (Theorem 6.5 bound: {2 * eps + 0.01 + c:.3f} clock time"
          f" + {2 * eps:.2f} skew)")
    print(f"max write latency    : {run.max_write_latency():.3f}"
          f"  (bound: {d2 + 2 * eps - c:.3f} clock time + {2 * eps:.2f} skew)")
    print(f"linearizable         : {run.linearizable()}")

    assert run.linearizable(), "Theorem 6.5 violated?!"
    print("\nevery replica saw a single consistent register — on clocks "
          "that disagreed with real time by up to ±0.1")


if __name__ == "__main__":
    main()

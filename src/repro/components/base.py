"""Base interfaces of the executable layer.

Two levels of abstraction:

:class:`Process`
    An algorithm automaton ``A_i`` exactly as the paper's *programming
    model* (Section 3) intends: written against perfect real time. Its
    methods receive the current time as an argument; the process never
    stores or extrapolates it. This discipline is what makes Simulation 1
    a *reinterpretation*: the clock transformation ``C(A_i, eps)``
    (Definition 4.1) runs the same process but passes the node's *clock*
    where the timed model passes ``now``.

:class:`Entity`
    A top-level unit the simulator schedules: a node, a channel, a
    client, or a tick source. Entities own mutable state, expose enabled
    locally controlled actions, accept inputs, and constrain time passage
    through deadlines (the operational reading of the ``nu``
    precondition).

State objects are plain mutable Python objects owned by the engine's
state map; processes define their own state classes (dataclasses,
usually) and mutate them in ``fire``/``apply_input``.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.automata.actions import Action
from repro.automata.signature import Signature

INFINITY = float("inf")


class ProcessContext:
    """Immutable per-step context handed to a process.

    ``time`` is whatever notion of time the surrounding model provides:
    the global ``now`` in the timed model, the node's ``clock`` in the
    clock and MMT models. Processes must treat it as opaque "current
    time" — that is the whole point of the paper's design discipline.
    """

    __slots__ = ("time",)

    def __init__(self, time: float):
        self.time = time

    def __repr__(self) -> str:
        return f"ProcessContext(time={self.time:g})"


class Process:
    """An algorithm automaton ``A_i`` in the simple programming model.

    Subclasses implement the five transition methods. All methods take
    the current time explicitly; a correct process never caches it.

    The action signature must conform to the network interface of
    Section 3.1: outputs include ``SENDMSG_i(j, m)`` for each outgoing
    edge, inputs include ``RECVMSG_i(j, m)`` for each incoming edge.

    The three class-level scheduling hints mirror the :class:`Entity`
    contract (see there for the precise promises); a process wrapped by
    :class:`TimedNodeEntity` (or the clock/MMT node entities) hands them
    to the engine's incremental scheduler. The deadline hints default to
    the conservative ``False``; ``pure_enabled`` defaults to ``True``
    like the entity contract — a process drawing from an RNG inside
    ``enabled`` must override it.
    """

    #: Promise: ``enabled(state, ctx)`` is a pure function of
    #: ``(state, ctx.time)`` — no randomness, no observable mutation.
    pure_enabled: bool = True
    #: Promise: ``deadline(state, ctx)`` depends only on state mutated by
    #: ``fire``/``apply_input`` — never on the current time itself.
    static_deadline: bool = False
    #: Promise: absent ``fire``/``apply_input``, the ``enabled`` set can
    #: only change when time crosses the process's current deadline.
    wakes_at_deadline: bool = False

    def __init__(self, node: int, signature: Signature, name: str = ""):
        self.node = node
        self.signature = signature
        self.name = name or f"{type(self).__name__}({node})"

    # -- transitions ----------------------------------------------------------

    def initial_state(self) -> Any:
        """A fresh mutable state object."""
        raise NotImplementedError

    def apply_input(self, state: Any, action: Action, ctx: ProcessContext) -> None:
        """Apply an input action (must be total: inputs are always accepted)."""
        raise NotImplementedError

    def enabled(self, state: Any, ctx: ProcessContext) -> List[Action]:
        """Locally controlled actions enabled at the current time."""
        raise NotImplementedError

    def fire(self, state: Any, action: Action, ctx: ProcessContext) -> None:
        """Perform an enabled locally controlled action."""
        raise NotImplementedError

    def deadline(self, state: Any, ctx: ProcessContext) -> float:
        """Latest time to which time passage may advance (``nu`` guard).

        Returning the current time makes some enabled action *urgent*;
        returning :data:`INFINITY` places no constraint. The engine never
        advances time beyond any entity's deadline.
        """
        return INFINITY

    def __repr__(self) -> str:
        return f"<{self.name}>"


class Entity:
    """A top-level scheduling unit of the simulator.

    The engine holds one mutable state object per entity (created by
    :meth:`initial_state`) and interacts through the methods below.
    ``now`` is always the global real time.
    """

    name: str
    signature: Signature

    # -- incremental-scheduling contract (see docs/performance.md) --------
    #
    # The engine's event-driven core caches enabled sets and deadlines
    # between events and re-derives them only for entities whose state
    # may have changed. The three hints below let entities widen what the
    # engine may cache; every default is the conservative choice, under
    # which the incremental engine behaves exactly like the full-scan
    # one. Violating a declared promise silently desynchronizes the
    # incremental path from the reference path — the conformance suite
    # (tests/test_engine_incremental.py) exists to catch that.

    #: Promise: ``enabled(state, now)`` is a pure function of
    #: ``(state, now)`` — no randomness, no observable mutation. Entities
    #: that draw from an RNG inside ``enabled`` must set this ``False``
    #: so the engine re-evaluates them every scheduling round (keeping
    #: their draw sequence identical to the full-scan engine's).
    pure_enabled: bool = True
    #: Promise: ``deadline(state, now)`` depends only on state mutated by
    #: ``fire``/``apply_input`` — not on ``now``, and not on ``advance``.
    #: Lets the engine keep the entity's deadline in a min-heap across
    #: time advances instead of recomputing it per advance.
    static_deadline: bool = False
    #: Promise: absent ``fire``/``apply_input``, the ``enabled`` set only
    #: changes when time crosses the entity's current deadline. Only
    #: honored together with ``static_deadline``; lets the engine skip
    #: re-scanning the entity after unrelated time advances.
    wakes_at_deadline: bool = False

    def __init__(self, name: str, signature: Signature):
        self.name = name
        self.signature = signature

    def initial_state(self) -> Any:
        """A fresh mutable state object for one run."""
        raise NotImplementedError

    def accepts(self, action: Action) -> bool:
        """Whether the action is an input of this entity."""
        return self.signature.is_input(action)

    def apply_input(self, state: Any, action: Action, now: float) -> None:
        """Apply an input action arriving at real time ``now``."""
        raise NotImplementedError

    def enabled(self, state: Any, now: float) -> List[Action]:
        """Locally controlled actions enabled at real time ``now``."""
        raise NotImplementedError

    def fire(self, state: Any, action: Action, now: float) -> None:
        """Perform one enabled locally controlled action."""
        raise NotImplementedError

    def deadline(self, state: Any, now: float) -> float:
        """Latest real time to which time passage may advance."""
        return INFINITY

    def advance(self, state: Any, old_now: float, new_now: float) -> None:
        """Update time-dependent internal state (clocks, timers)."""

    def clock_value(self, state: Any, now: float) -> Optional[float]:
        """The entity's local clock, if it has one (for trace stamping).

        Timed-model nodes return ``now`` itself (their clock *is* real
        time); clock-model and MMT-model nodes return their local clock;
        channels and other clock-less entities return ``None``.
        """
        return None

    def instrument(self, metrics: Any) -> None:
        """Bind observability instruments from a metrics registry.

        The engine calls this once per run, before :meth:`initial_state`.
        Entities that publish metrics (channels, clock nodes, tick
        sources) override it to bind counters/gauges/histograms; the
        default is a no-op, so uninstrumented entities cost nothing.
        """

    def __repr__(self) -> str:
        return f"<Entity {self.name}>"


class TimedNodeEntity(Entity):
    """A node of the timed-model system ``D_T`` (Section 3.3).

    Wraps a :class:`Process`, handing it the global ``now`` as its time —
    the programming model's perfect clock.
    """

    def __init__(self, process: Process):
        super().__init__(process.name, process.signature)
        self.process = process
        # The node's scheduling contract is exactly its process's — all
        # three flags. (Dropping one here once silently pinned every
        # timed node to the Entity default; CON004 now guards this.)
        self.pure_enabled = getattr(process, "pure_enabled", True)
        self.static_deadline = getattr(process, "static_deadline", False)
        self.wakes_at_deadline = getattr(process, "wakes_at_deadline", False)

    def initial_state(self) -> Any:
        return self.process.initial_state()

    def apply_input(self, state: Any, action: Action, now: float) -> None:
        self.process.apply_input(state, action, ProcessContext(now))

    def enabled(self, state: Any, now: float) -> List[Action]:
        return self.process.enabled(state, ProcessContext(now))

    def fire(self, state: Any, action: Action, now: float) -> None:
        self.process.fire(state, action, ProcessContext(now))

    def deadline(self, state: Any, now: float) -> float:
        return self.process.deadline(state, ProcessContext(now))

    def clock_value(self, state: Any, now: float) -> Optional[float]:
        return now

"""ASCII dashboard for metrics snapshots (``python -m repro report``).

Renders a metrics snapshot — live from a
:class:`~repro.obs.metrics.MetricsRegistry` or loaded from a
``--metrics-out`` JSON file — as fixed-column tables with proportional
bars, in the spirit of :mod:`repro.analysis.timeline`'s lanes and
reusing :class:`repro.analysis.report.Table` for layout.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.report import Table
from repro.obs.sketch import QuantileSketch, quantile_triplet

BAR_WIDTH = 24

PHASE_PREFIX = "repro.phase."
OP_PREFIX = "repro.op."


def _bar(fraction: float, width: int = BAR_WIDTH) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def _render_histogram(name: str, hist: Dict[str, object]) -> List[str]:
    bounds = list(hist.get("bounds", []))
    counts = list(hist.get("counts", []))
    total = hist.get("count", 0) or 0
    lines = [
        f"-- {name}  (n={total}, sum={hist.get('sum', 0.0):.4g}, "
        f"min={hist.get('min', 0.0):.4g}, max={hist.get('max', 0.0):.4g})"
    ]
    if not total:
        lines.append("   (no samples)")
        return lines
    peak = max(counts) or 1
    labels = [f"<= {b:g}" for b in bounds] + [f"> {bounds[-1]:g}" if bounds else "all"]
    label_width = max(len(label) for label in labels)
    for label, count in zip(labels, counts):
        if not count:
            continue
        lines.append(
            f"   {label.rjust(label_width)} |{_bar(count / peak)}| {count}"
        )
    return lines


def _render_phase_breakdown(sketches: Dict[str, Dict[str, object]]) -> str:
    """Per-phase latency panel: where message time goes, proportionally.

    Picks out the ``repro.phase.*`` sketches (send buffer, channel,
    receive buffer) fed by the pipeline stages and the ``repro.op.*``
    operation-latency sketches fed by the register workload, and renders
    each phase's share of the summed mean latency as a bar — a quick
    visual answer to "which lifecycle phase dominates?".
    """
    phases = []
    for name in sorted(sketches):
        if name.startswith(PHASE_PREFIX):
            label = name[len(PHASE_PREFIX):]
        elif name.startswith(OP_PREFIX):
            label = name[len(OP_PREFIX):]
        else:
            continue
        sketch = QuantileSketch.from_dict(name, sketches[name])
        if not sketch.count:
            continue
        phases.append((label, sketch.mean, sketch.count))
    if not phases:
        return ""
    lines = ["== latency by phase (mean, simulated time) =="]
    peak = max(mean for _, mean, _ in phases) or 1.0
    label_width = max(len(label) for label, _, _ in phases)
    for label, mean, count in phases:
        lines.append(
            f"   {label.rjust(label_width)} |{_bar(mean / peak)}| "
            f"{mean:.4g} (n={count})"
        )
    return "\n".join(lines)


def render_dashboard(
    snapshot: Dict[str, object],
    trace_summary: Optional[Dict[str, int]] = None,
) -> str:
    """The snapshot as an ASCII dashboard (one string, ready to print)."""
    sections: List[str] = []

    counters = snapshot.get("counters") or {}
    if counters:
        table = Table("counters", ["name", "value"])
        for name in sorted(counters):
            table.add_row(name, counters[name])
        sections.append(table.render())

    gauges = snapshot.get("gauges") or {}
    if gauges:
        table = Table("gauges", ["name", "value"])
        for name in sorted(gauges):
            table.add_row(name, gauges[name])
        sections.append(table.render())

    histograms = snapshot.get("histograms") or {}
    if histograms:
        lines = ["== histograms =="]
        for name in sorted(histograms):
            lines.extend(_render_histogram(name, histograms[name]))
        sections.append("\n".join(lines))

    sketches = snapshot.get("sketches") or {}
    if sketches:
        table = Table(
            "latency quantiles (simulated time)",
            ["name", "n", "p50", "p95", "p99", "max"],
        )
        for name in sorted(sketches):
            sketch = QuantileSketch.from_dict(name, sketches[name])
            p50, p95, p99 = quantile_triplet(sketch)
            table.add_row(
                name, sketch.count, f"{p50:.4g}", f"{p95:.4g}",
                f"{p99:.4g}", f"{sketch.maximum:.4g}",
            )
        sections.append(table.render())
        phase_panel = _render_phase_breakdown(sketches)
        if phase_panel:
            sections.append(phase_panel)

    if trace_summary:
        table = Table("trace events", ["kind", "records"])
        for kind in sorted(trace_summary):
            table.add_row(kind, trace_summary[kind])
        sections.append(table.render())

    if not sections:
        return "(empty snapshot: no counters, gauges, histograms, or sketches)"
    return "\n\n".join(sections)


def summarize_trace(records: List[Dict[str, object]]) -> Dict[str, int]:
    """Per-kind record counts of a loaded trace (for the dashboard)."""
    summary: Dict[str, int] = {}
    for record in records:
        kind = str(record.get("k"))
        summary[kind] = summary.get(kind, 0) + 1
    return summary

"""The discrete-event simulator.

The engine realizes the operational semantics shared by all three system
models:

1. While any entity has an enabled locally controlled action, the
   scheduler picks one and it fires *now* (actions take zero time, S2).
   If the action is an output, it is synchronously applied as an input
   to every entity that accepts it (the composition rule of
   Definition 2.2).
2. When no action is enabled, time advances to the minimum of all
   entities' deadlines (the operational reading of the ``nu``
   preconditions) capped by the horizon; entities update their
   time-dependent state (clocks, timers) in ``advance``.
3. A deadline equal to the current time with no enabled action is a
   *timelock* — a modeling bug — and raises immediately rather than
   spinning.

Every fired action is recorded with its real time and the owner's local
clock, so the run yields both ``t-trace`` (real-time stamps) and the
``gamma`` sequences of Definition 4.2 (clock stamps).

Two execution strategies share one loop (see docs/performance.md):

- the **incremental** core (default) tracks a *dirty set* of entities
  whose enabled set may have changed — seeded by fire, routing,
  injection, and time-advance targets — consults a precomputed
  action-routing table instead of probing every entity per output, and
  keeps per-entity deadlines in a lazily-invalidated min-heap;
- the **full-scan** reference path (``Simulator(..., incremental=False)``)
  re-derives every entity's enabled set and deadline on every event,
  exactly as the models' operational semantics are written down.

Both produce identical traces for entities honoring the scheduling
contract declared on :class:`~repro.components.base.Entity`
(``pure_enabled`` / ``static_deadline`` / ``wakes_at_deadline``);
``benchmarks/bench_engine_core.py`` and the conformance tests check
this across the seeded corpus.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.automata.actions import (
    ANY,
    Action,
    ActionSet,
    EmptyActionSet,
    FiniteActionSet,
    PatternActionSet,
    UnionActionSet,
)
from repro.automata.executions import TimedSequence
from repro.automata.signature import _DifferenceActionSet, _IntersectionActionSet
from repro.components.base import Entity
from repro.errors import ScheduleError, SimulationLimitError, TimelockError
from repro.obs.metrics import MetricsRegistry, stats_from_metrics
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sim.recorder import Recorder
from repro.sim.scheduler import DeterministicScheduler, Scheduler

from repro.constants import TOLERANCE as _TOLERANCE

INFINITY = float("inf")


@dataclass
class SimulationResult:
    """Everything observable about one finished run."""

    horizon: float
    now: float
    steps: int
    recorder: Recorder
    final_states: Dict[str, Any]
    stats: Dict[str, int] = field(default_factory=dict)
    metrics: Optional[Dict[str, Any]] = None
    """Deterministic metrics snapshot of the run (see :mod:`repro.obs`)."""

    @property
    def trace(self) -> TimedSequence:
        """``t-trace``: visible actions with real-time stamps."""
        return self.recorder.timed_trace()

    @property
    def schedule(self) -> TimedSequence:
        """All recorded actions with real-time stamps."""
        return self.recorder.timed_schedule()

    def clock_trace(self, resort: bool = True) -> TimedSequence:
        """Clock-stamped visible trace (``gamma`` of Definition 4.2)."""
        return self.recorder.clock_stamped_trace(resort=resort)

    def completed(self) -> bool:
        """Whether the run covered the whole horizon (admissibility)."""
        return self.now >= self.horizon - _TOLERANCE

    def summary(self) -> Dict[str, Any]:
        """A picklable, JSON-ready digest of the run.

        The worker-safe entrypoint for sharded campaigns: recorder
        events and final entity states hold arbitrary (possibly
        unpicklable) objects, so worker processes ship this plain-dict
        digest — horizon/now/steps, event counts, the canonical stats,
        and the deterministic metrics snapshot — back to the parent
        instead of the full :class:`SimulationResult`.

        ``events`` counts every recorded action including any a
        ring-mode recorder has since overwritten; ``events_retained``
        and ``events_dropped`` break the total down.
        """
        return {
            "horizon": self.horizon,
            "now": self.now,
            "steps": self.steps,
            "events": len(self.recorder) + self.recorder.dropped,
            "events_retained": len(self.recorder),
            "events_dropped": self.recorder.dropped,
            "completed": self.completed(),
            "stats": dict(self.stats),
            "metrics": self.metrics,
        }

    def __repr__(self) -> str:
        return (
            f"<SimulationResult: {self.steps} steps, "
            f"{len(self.recorder)} events, now={self.now:g}/{self.horizon:g}>"
        )


class _Wildcard:
    """Routing-key marker: matches any first parameter."""

    def __repr__(self) -> str:
        return "_ANY_FIRST"


_ANY_FIRST = _Wildcard()
_NO_PARAMS = _Wildcard()  # distinct marker for zero-parameter actions


def _first_param_key(name: str, params: Tuple) -> Tuple[str, Any]:
    return (name, params[0] if params else _NO_PARAMS)


def _input_action_keys(action_set: ActionSet) -> Optional[Set[Tuple[str, Any]]]:
    """Over-approximate an input set as ``(name, first param)`` keys.

    The first parameter of the network-interface actions is the owning
    node (``RECVMSG_i``) or edge source, so keying on it sends each
    routed action straight to its few true recipients instead of every
    entity sharing the action name. ``_ANY_FIRST`` marks patterns that
    accept any first parameter. Returns ``None`` when the set cannot be
    decomposed (predicate sets, unknown subclasses) — the owning entity
    is then probed for every routed action, exactly like the full scan.
    The keys may over-approximate the truly accepted actions (e.g. for
    difference sets); routing always re-checks ``accepts`` on the
    prefiltered entities, so over-approximation is safe and
    under-approximation is the only thing that would be a bug.
    """
    if isinstance(action_set, EmptyActionSet):
        return set()
    if isinstance(action_set, FiniteActionSet):
        return {_first_param_key(a.name, a.params) for a in action_set.actions}
    if isinstance(action_set, PatternActionSet):
        keys: Set[Tuple[str, Any]] = set()
        for p in action_set.patterns:
            if p.prefix and p.prefix[0] is not ANY:
                keys.add((p.name, p.prefix[0]))
            else:
                keys.add((p.name, _ANY_FIRST))
        return keys
    if isinstance(action_set, UnionActionSet):
        keys = set()
        for member in action_set.members:
            sub = _input_action_keys(member)
            if sub is None:
                return None
            keys |= sub
        return keys
    if isinstance(action_set, _DifferenceActionSet):
        return _input_action_keys(action_set._left)
    if isinstance(action_set, _IntersectionActionSet):
        left = _input_action_keys(action_set._left)
        if left is not None:
            return left
        return _input_action_keys(action_set._right)
    return None


class _EntityInfo:
    """Per-entity data precomputed once per :class:`Simulator`."""

    __slots__ = (
        "entity",
        "index",
        "name",
        "pure_enabled",
        "static_deadline",
        "wakes_at_deadline",
        "probe_always",
        "input_keys",
        "advances",
    )

    def __init__(self, entity: Entity, index: int):
        self.entity = entity
        self.index = index
        self.name = entity.name
        self.pure_enabled = bool(getattr(entity, "pure_enabled", True))
        self.static_deadline = bool(getattr(entity, "static_deadline", False))
        self.wakes_at_deadline = self.static_deadline and bool(
            getattr(entity, "wakes_at_deadline", False)
        )
        # Entities overriding accepts() may take inputs beyond their
        # declared signature; keep probing them for every action.
        self.probe_always = type(entity).accepts is not Entity.accepts
        self.input_keys = (
            None if self.probe_always
            else _input_action_keys(entity.signature.inputs)
        )
        self.advances = type(entity).advance is not Entity.advance

    def may_accept(self, key: Tuple[str, Any]) -> bool:
        keys = self.input_keys
        if keys is None:
            return True
        return key in keys or (key[0], _ANY_FIRST) in keys


class Simulator:
    """Composes entities and runs them to a horizon.

    Parameters
    ----------
    entities:
        the top-level automata (nodes, channels, clients, tick sources).
        Entity names must be unique — they key the state map.
    scheduler:
        policy among simultaneously enabled actions (default
        deterministic).
    hidden:
        actions matching this set are recorded as invisible; they appear
        in the timed schedule but not the timed trace. System builders
        hide the node/channel interface actions per Sections 3.3 and 4.1.
    max_steps:
        safety valve against runaway action loops.
    incremental:
        run the event-driven core (dirty-set scheduling, routing table,
        deadline heap). ``False`` selects the full-scan reference path,
        which re-derives everything per event; both yield identical
        traces for entities honoring the declared scheduling contract.
    """

    def __init__(
        self,
        entities: Sequence[Entity],
        scheduler: Optional[Scheduler] = None,
        hidden: Optional[ActionSet] = None,
        max_steps: int = 1_000_000,
        strict: bool = False,
        incremental: bool = True,
    ):
        names = [e.name for e in entities]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ScheduleError(f"duplicate entity names: {duplicates}")
        self.entities = list(entities)
        self.scheduler = scheduler or DeterministicScheduler()
        self.hidden = hidden
        self.max_steps = max_steps
        self.strict = strict
        self.incremental = incremental
        self._infos = [_EntityInfo(e, i) for i, e in enumerate(self.entities)]
        # (action name, first param) -> tuple of _EntityInfo that may
        # accept it, in composition order (routing and injection
        # delivery order).
        self._route_table: Dict[Tuple[str, Any], Tuple[_EntityInfo, ...]] = {}

    # -- internals ---------------------------------------------------------

    def _is_visible(self, action: Action, owner: Entity) -> bool:
        if not owner.signature.is_output(action):
            return False
        if self.hidden is not None and action in self.hidden:
            return False
        return True

    def _route_targets(self, action: Action) -> Tuple[_EntityInfo, ...]:
        """Entities that may accept the action (lazily filled table)."""
        try:
            key = _first_param_key(action.name, action.params)
            targets = self._route_table.get(key)
            if targets is None:
                targets = tuple(
                    info for info in self._infos if info.may_accept(key)
                )
                self._route_table[key] = targets
            return targets
        except TypeError:
            # Unhashable first parameter: fall back to probing every
            # entity whose keys mention the name at all.
            name = action.name
            return tuple(
                info
                for info in self._infos
                if info.input_keys is None
                or any(k[0] == name for k in info.input_keys)
            )

    def _route(
        self,
        action: Action,
        owner: Entity,
        states: Dict[str, Any],
        now: float,
    ) -> None:
        """Deliver an output action to every entity accepting it.

        The full-scan delivery used by the reference path and kept as
        the public routing primitive; the incremental loop inlines the
        routing-table equivalent so it can dirty the recipients.
        """
        if not owner.signature.is_output(action):
            return
        for entity in self.entities:
            if entity is owner:
                continue
            if entity.accepts(action):
                entity.apply_input(states[entity.name], action, now)

    # -- main loop -------------------------------------------------------------

    def run(
        self,
        horizon: float,
        recorder: Optional[Recorder] = None,
        initial_inputs: Sequence[Tuple[Action, float]] = (),
        stop_when: Optional[Callable[[Recorder, float], bool]] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> SimulationResult:
        """Run the composed system until ``now`` reaches ``horizon``.

        ``initial_inputs`` optionally injects environment actions at
        given times — a convenience for driving open systems without
        writing a client entity. (Most workloads use client entities.)

        ``stop_when(recorder, now)``, checked after every fired action
        and after every injection round, ends the run early when it
        returns true — e.g. "stop once every node announced a leader".
        An early-stopped run reports ``completed() == False``.

        ``metrics`` is a :class:`~repro.obs.metrics.MetricsRegistry`
        (one is created when omitted; pass
        :data:`~repro.obs.metrics.NULL_METRICS` to disable collection
        entirely). ``tracer`` emits structured span/event records; the
        default null tracer makes every hook a no-op.
        """
        if recorder is None:  # `or` would discard an empty (falsy) Recorder
            recorder = Recorder()
        if metrics is None:
            metrics = MetricsRegistry()
        tracer = tracer or NULL_TRACER
        for entity in self.entities:
            entity.instrument(metrics)
        self.scheduler.instrument(metrics)
        states: Dict[str, Any] = {e.name: e.initial_state() for e in self.entities}
        now = 0.0
        steps = 0
        injections = sorted(initial_inputs, key=lambda pair: pair[1])
        inject_idx = 0
        n_injections = len(injections)

        # Hot-loop bindings: one attribute lookup per run, not per event.
        c_steps = metrics.counter("repro.engine.steps")
        c_actions = metrics.counter("repro.engine.actions")
        c_advances = metrics.counter("repro.engine.time_advances")
        c_injections = metrics.counter("repro.engine.injections")
        c_visible = metrics.counter("repro.engine.visible_events")
        c_hidden = metrics.counter("repro.engine.hidden_events")
        trace_action = tracer.action
        trace_advance = tracer.advance
        record = recorder.record
        pick = self.scheduler.pick
        strict = self.strict
        max_steps = self.max_steps
        incremental = self.incremental

        infos = self._infos
        info_by_name = {info.name: info for info in infos}
        n_entities = len(infos)
        all_idx = range(n_entities)
        state_by_idx = [states[info.name] for info in infos]
        entity_by_idx = [info.entity for info in infos]

        # Enabled-set cache: per-entity candidate lists, assembled into
        # the scheduler's candidate sequence from the non-empty entries.
        # Candidates carry an interned (entity name, action repr) sort
        # key so schedulers never recompute repr() per pick.
        active: Dict[int, List[Tuple[Entity, Action, Tuple[str, str]]]] = {}
        # Entities whose enabled set must be re-derived before the next
        # pick. The full-scan path simply treats every entity as dirty
        # every round; impure entities are re-marked every round so
        # their enabled() call sequence matches the full scan's.
        dirty: Set[int] = set(all_idx)
        impure_idx = [i.index for i in infos if not i.pure_enabled]

        # Min-deadline cache (incremental path only). Static-deadline
        # entities live in a lazily-invalidated heap of
        # (deadline, index, generation); dynamic ones are re-evaluated
        # at every advance query, as the full scan does for everyone.
        static_idx = [i.index for i in infos if i.static_deadline]
        dynamic_idx = [i.index for i in infos if not i.static_deadline]
        dl_val: List[float] = [INFINITY] * n_entities
        dl_gen: List[int] = [0] * n_entities
        dl_heap: List[Tuple[float, int, int]] = []
        dl_dirty: Set[int] = set(static_idx)
        advancing_idx = [i.index for i in infos if i.advances]
        nonwake_idx = [i.index for i in infos if not i.wakes_at_deadline]
        nonwake_static_idx = [
            i.index
            for i in infos
            if i.static_deadline and not i.wakes_at_deadline
        ]

        def refresh(idx: int) -> None:
            entity = entity_by_idx[idx]
            name = infos[idx].name
            state = state_by_idx[idx]
            enabled = entity.enabled(state, now)
            if enabled:
                active[idx] = [
                    (entity, action, (name, repr(action))) for action in enabled
                ]
            else:
                active.pop(idx, None)

        def mark_dirty(info: _EntityInfo) -> None:
            dirty.add(info.index)
            if info.static_deadline:
                dl_dirty.add(info.index)

        # repro: lint-ignore[DET002] -- events/sec instrumentation; the
        # wall figures are published as volatile metrics, excluded from
        # the deterministic export (see below)
        wall_start = time.perf_counter()
        tracer.run_start(horizon)
        tracer.meta({"entities": [e.name for e in self.entities]})

        while True:
            # Deliver any injections scheduled at (or before) this time.
            if inject_idx < n_injections and injections[inject_idx][1] <= now + _TOLERANCE:
                while (
                    inject_idx < n_injections
                    and injections[inject_idx][1] <= now + _TOLERANCE
                ):
                    action, _ = injections[inject_idx]
                    inject_idx += 1
                    c_injections.inc()
                    if incremental:
                        for info in self._route_targets(action):
                            if info.entity.accepts(action):
                                info.entity.apply_input(
                                    state_by_idx[info.index], action, now
                                )
                                mark_dirty(info)
                    else:
                        for entity in self.entities:
                            if entity.accepts(action):
                                entity.apply_input(states[entity.name], action, now)
                    record(action, now, "environment", None, True)
                    c_visible.inc()
                    tracer.injection(now, action)
                if stop_when is not None and stop_when(recorder, now):
                    break

            # Re-derive enabled sets for entities whose state (or time)
            # may have changed, then gather the candidate actions.
            if incremental:
                dirty.update(impure_idx)
                if dirty:
                    for idx in sorted(dirty):
                        refresh(idx)
                    dirty.clear()
            else:
                for idx in all_idx:
                    refresh(idx)
            if active:
                if len(active) == 1:
                    (candidates,) = active.values()
                else:
                    candidates = [
                        cand for lst in active.values() for cand in lst
                    ]
            else:
                candidates = []

            if candidates:
                if steps >= max_steps:
                    raise SimulationLimitError(
                        f"exceeded {max_steps} steps at now={now:g}"
                    )
                picked = pick(candidates, now)
                entity, action = picked[0], picked[1]
                if strict and not (
                    entity.signature.is_output(action)
                    or entity.signature.is_internal(action)
                ):
                    raise ScheduleError(
                        f"{entity.name} offered {action}, which is not a "
                        f"locally controlled action of its signature"
                    )
                state = states[entity.name]
                clock = entity.clock_value(state, now)
                entity.fire(state, action, now)
                is_output = entity.signature.is_output(action)
                visible = is_output and (
                    self.hidden is None or action not in self.hidden
                )
                record(action, now, entity.name, clock, visible)
                (c_visible if visible else c_hidden).inc()
                trace_action(now, entity.name, action, clock, visible)
                if is_output:
                    if incremental:
                        for info in self._route_targets(action):
                            target_entity = info.entity
                            if target_entity is entity:
                                continue
                            if target_entity.accepts(action):
                                target_entity.apply_input(
                                    state_by_idx[info.index], action, now
                                )
                                mark_dirty(info)
                    else:
                        self._route(action, entity, states, now)
                steps += 1
                c_steps.inc()
                c_actions.inc()
                if incremental:
                    mark_dirty(info_by_name[entity.name])
                if stop_when is not None and stop_when(recorder, now):
                    break
                continue

            # No action enabled: advance time. The target starts at the
            # horizon capped by the next injection and is pulled down by
            # the minimum entity deadline; reaching the horizon with
            # nothing enabled ends the run (the former separate
            # "horizon drain" is subsumed by the loop's candidate
            # gathering above).
            target = horizon
            if inject_idx < n_injections:
                inj_time = injections[inject_idx][1]
                if inj_time < target:
                    target = inj_time
            blocker = None
            if incremental:
                if dl_dirty:
                    for idx in sorted(dl_dirty):
                        value = entity_by_idx[idx].deadline(state_by_idx[idx], now)
                        dl_val[idx] = value
                        dl_gen[idx] += 1
                        heappush(dl_heap, (value, idx, dl_gen[idx]))
                    dl_dirty.clear()
                while dl_heap and dl_heap[0][2] != dl_gen[dl_heap[0][1]]:
                    heappop(dl_heap)
                best_val = INFINITY
                best_idx = -1
                if dl_heap:
                    best_val, best_idx = dl_heap[0][0], dl_heap[0][1]
                for idx in dynamic_idx:
                    value = entity_by_idx[idx].deadline(state_by_idx[idx], now)
                    if value < best_val or (value == best_val and idx < best_idx):
                        best_val = value
                        best_idx = idx
                if best_val < target:
                    target = best_val
                    blocker = entity_by_idx[best_idx]
            else:
                for entity in self.entities:
                    entity_deadline = entity.deadline(states[entity.name], now)
                    if entity_deadline < target:
                        target = entity_deadline
                        blocker = entity
            if target <= now + _TOLERANCE:
                if now >= horizon - _TOLERANCE:
                    break
                tracer.timelock(now, blocker.name if blocker else None)
                raise TimelockError(
                    f"timelock at now={now:g}: entity "
                    f"{blocker.name if blocker else '?'} blocks time passage "
                    f"but nothing is enabled"
                )
            if incremental:
                for idx in advancing_idx:
                    entity_by_idx[idx].advance(state_by_idx[idx], now, target)
            else:
                for entity in self.entities:
                    entity.advance(states[entity.name], now, target)
            trace_advance(now, target, blocker.name if blocker else None)
            now = target
            c_advances.inc()
            if incremental:
                # Time moved: re-derive every entity that has not
                # promised its enabled set only changes at its deadline,
                # plus the promised ones whose deadline just arrived.
                dirty.update(nonwake_idx)
                dl_dirty.update(nonwake_static_idx)
                while dl_heap and dl_heap[0][0] <= now + _TOLERANCE:
                    value, idx, gen = heappop(dl_heap)
                    if gen == dl_gen[idx]:
                        dirty.add(idx)
                        dl_dirty.add(idx)

        wall = time.perf_counter() - wall_start  # repro: lint-ignore[DET002] -- volatile wall-time figure
        tracer.run_end(now, steps)

        # Run-level publishing. Wall-clock figures are volatile (kept out
        # of the deterministic export); everything else is a pure
        # function of the seeded run.
        metrics.gauge("repro.engine.now").set(now)
        metrics.gauge("repro.engine.horizon").set(horizon)
        # ``events`` counts every recorded action — a ring-mode recorder's
        # overwritten entries included (they used to be silently excluded).
        events_total = float(len(recorder) + recorder.dropped)
        metrics.gauge("repro.recorder.events").set(events_total)
        metrics.gauge("repro.recorder.events_total").set(events_total)
        metrics.gauge("repro.recorder.events_retained").set(float(len(recorder)))
        metrics.gauge("repro.recorder.dropped").set(float(recorder.dropped))
        metrics.gauge("repro.engine.wall_seconds", volatile=True).set(wall)
        if wall > 0:
            metrics.gauge("repro.engine.steps_per_sec", volatile=True).set(
                steps / wall
            )
            metrics.gauge("repro.engine.sim_time_ratio", volatile=True).set(
                now / wall
            )

        return SimulationResult(
            horizon=horizon,
            now=now,
            steps=steps,
            recorder=recorder,
            final_states=states,
            stats=stats_from_metrics(metrics),
            metrics=metrics.snapshot(),
        )

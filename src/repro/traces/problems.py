"""Problems and the *solves* relation (Definitions 2.10-2.12).

A problem ``P`` consists of an external action signature, a partition of
those actions across the nodes, and a set of allowed timed sequences
``tseq(P)``. Since ``tseq(P)`` is infinite, it is represented by a
membership predicate.

The generalizations:

- ``P_eps`` (Definition 2.11) allows any trace that is ``=_{eps,K}`` to a
  trace of ``P``, where ``K`` partitions actions by node;
- ``P^delta`` (Definition 2.12) allows output actions to be shifted up to
  ``delta`` into the future, per Definition 2.9 with
  ``K = {out(p_1), ..., out(p_n)}``.

Membership in ``P_eps`` / ``P^delta`` quantifies existentially over
``tseq(P)``, which is undecidable for arbitrary predicates. The wrappers
therefore take a *witness strategy*: a function proposing candidate
members of ``tseq(P)`` for a given trace. The default strategy proposes
the trace itself (sound but incomplete); simulations supply stronger
strategies — e.g. Theorem 4.7's proof shows the clock-stamped, re-sorted
schedule ``gamma_alpha`` is the right witness for Simulation 1, and the
register application replaces the witness search with the analytic
checkers of :mod:`repro.traces.linearizability` (Lemma 6.4).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from repro.automata.actions import ActionSet
from repro.automata.executions import TimedSequence
from repro.automata.signature import Signature
from repro.errors import SpecificationError
from repro.traces.relations import equivalent_eps, shifted_delta


class Problem:
    """A problem ``P = (sig, part, tseq)`` on a graph (Section 2.4).

    ``partition`` maps each node index to the :class:`Signature` of
    external actions owned by that node (``in(P_i)``, ``out(P_i)``).
    """

    def __init__(self, partition: Sequence[Signature], name: str = "P"):
        if not partition:
            raise SpecificationError("a problem needs at least one node class")
        self.partition = list(partition)
        self.name = name

    # -- signature views --------------------------------------------------

    def node_signature(self, node: int) -> Signature:
        """The external signature owned by one node (``P_i``)."""
        return self.partition[node]

    @property
    def kappa(self) -> List[ActionSet]:
        """``K = {p_1, ..., p_n}`` — per-node visible-action classes."""
        return [sig.visible for sig in self.partition]

    @property
    def output_kappa(self) -> List[ActionSet]:
        """``K = {out(p_1), ..., out(p_n)}`` (Definition 2.12)."""
        return [sig.outputs for sig in self.partition]

    # -- membership ----------------------------------------------------------

    def contains(self, trace: TimedSequence) -> bool:
        """Whether ``trace`` is in ``tseq(P)``."""
        raise NotImplementedError

    def __contains__(self, trace: TimedSequence) -> bool:
        return self.contains(trace)

    # -- generalizations ------------------------------------------------------

    def relax_eps(
        self,
        eps: float,
        witnesses: Optional[Callable[[TimedSequence], Iterable[TimedSequence]]] = None,
    ) -> "EpsilonRelaxedProblem":
        """Construct ``P_eps`` (Definition 2.11)."""
        return EpsilonRelaxedProblem(self, eps, witnesses)

    def shift_outputs(
        self,
        delta: float,
        witnesses: Optional[Callable[[TimedSequence], Iterable[TimedSequence]]] = None,
    ) -> "DeltaShiftedProblem":
        """Construct ``P^delta`` (Definition 2.12)."""
        return DeltaShiftedProblem(self, delta, witnesses)

    def __repr__(self) -> str:
        return f"<Problem {self.name} on {len(self.partition)} nodes>"


class PredicateProblem(Problem):
    """A problem whose ``tseq`` membership is an arbitrary predicate."""

    def __init__(
        self,
        partition: Sequence[Signature],
        predicate: Callable[[TimedSequence], bool],
        name: str = "P",
    ):
        super().__init__(partition, name)
        self._predicate = predicate

    def contains(self, trace: TimedSequence) -> bool:
        return bool(self._predicate(trace))


def _identity_witness(trace: TimedSequence) -> Iterable[TimedSequence]:
    yield trace


class EpsilonRelaxedProblem(Problem):
    """``P_eps``: traces ``=_{eps,K}``-related to some trace of ``P``.

    Membership checks each candidate produced by the witness strategy:
    the candidate must be in ``tseq(P)`` and related to the trace by
    ``=_{eps,K}`` with ``K`` the per-node visible-action classes.
    """

    def __init__(
        self,
        base: Problem,
        eps: float,
        witnesses: Optional[Callable[[TimedSequence], Iterable[TimedSequence]]] = None,
    ):
        super().__init__(base.partition, name=f"{base.name}_eps({eps:g})")
        self.base = base
        self.eps = eps
        self._witnesses = witnesses or _identity_witness

    def contains(self, trace: TimedSequence) -> bool:
        kappa = self.base.kappa
        for candidate in self._witnesses(trace):
            if candidate in self.base and equivalent_eps(
                candidate, trace, self.eps, kappa
            ):
                return True
        return False


class DeltaShiftedProblem(Problem):
    """``P^delta``: traces whose outputs are shifted ≤ ``delta`` forward."""

    def __init__(
        self,
        base: Problem,
        delta: float,
        witnesses: Optional[Callable[[TimedSequence], Iterable[TimedSequence]]] = None,
    ):
        super().__init__(base.partition, name=f"{base.name}^{delta:g}")
        self.base = base
        self.delta = delta
        self._witnesses = witnesses or _identity_witness

    def contains(self, trace: TimedSequence) -> bool:
        big_k = self.base.output_kappa
        for candidate in self._witnesses(trace):
            if candidate in self.base and shifted_delta(
                candidate, trace, self.delta, big_k
            ):
                return True
        return False


def solves_trace(problem: Problem, trace: TimedSequence) -> bool:
    """Single-trace fragment of Definition 2.10.

    ``D`` solves ``P`` when every admissible timed trace of ``D`` is in
    ``tseq(P)``; simulators verify this trace-by-trace with this helper.
    """
    return problem.contains(trace)

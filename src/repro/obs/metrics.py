"""The metrics registry: counters, gauges, and fixed-bucket histograms.

Observability substrate for the whole simulator. Design constraints,
matching the rest of the library:

- **No numpy.** Histograms use fixed bucket bounds and plain lists,
  in the style of :mod:`repro.analysis.stats`.
- **Deterministic exports.** A metrics snapshot of a seeded run is a
  pure function of the simulation, so two runs with the same seed
  produce byte-identical JSON. Anything wall-clock dependent (engine
  steps/sec, time ratios) is registered as *volatile* and excluded
  from the default export.
- **Near-zero disabled overhead.** Callers never write
  ``if metrics is not None`` around hot paths: they bind an instrument
  once (via :meth:`MetricsRegistry.counter` & co. or the module-level
  null instruments) and call ``inc``/``set``/``observe`` unconditionally.
  :data:`NULL_METRICS` hands out shared no-op instruments, so a
  non-instrumented entity pays one attribute load and a no-op call.

The canonical engine stat keys (see
:func:`stats_from_metrics`) live here so
``SimulationResult.stats`` and the metrics snapshot cannot drift.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.sketch import DEFAULT_ALPHA, QuantileSketch

FORMAT = "repro-metrics"
FORMAT_VERSION = 2
# Version history:
#   1 — counters / gauges / histograms
#   2 — adds the "sketches" section (mergeable quantile sketches)

# -- shared fixed bucket sets (upper bounds, ascending; +inf implicit) -------

LATENCY_BUCKETS: Tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
"""Delivery latencies and hold times, in **simulated-time units**.

These bounds are in the model's own time scale (the unit of ``d1``,
``d2``, ``eps``, horizons — seconds of *simulated* time), never
wall-clock seconds of the host process. Wall-clock quantities are
volatile gauges, not histograms. Pick workload parameters with these
buckets in mind, or register a histogram with custom bounds (or a
:class:`~repro.obs.sketch.QuantileSketch`, which needs no bounds at
all) when latencies fall outside ``[0.01, 10.0]``.
"""

SKEW_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)
"""Observed ``|now - clock|`` samples against the ``C_eps`` envelope."""

OCCUPANCY_BUCKETS: Tuple[float, ...] = (0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0, 55.0)
"""Queue/buffer occupancy samples (message counts)."""

CONTENTION_BUCKETS: Tuple[float, ...] = (1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0)
"""Scheduler candidate-set sizes."""


class _NullInstrument:
    """Shared no-op counter/gauge/histogram (the disabled fast path)."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    def quantile(self, q: float) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "<NullInstrument>"


NULL_COUNTER = _NullInstrument()
NULL_GAUGE = _NullInstrument()
NULL_HISTOGRAM = _NullInstrument()
NULL_SKETCH = _NullInstrument()


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self._value}>"


class Gauge:
    """A point-in-time value; ``set_max`` keeps a running maximum."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self._value = value

    def set_max(self, value: float) -> None:
        """Keep the running maximum of all values seen."""
        if value > self._value:
            self._value = value

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self._value:g}>"


class Histogram:
    """A fixed-bucket histogram with count/sum/min/max.

    ``bounds`` are ascending upper bounds; one implicit overflow bucket
    catches everything above the last bound, so ``len(counts) ==
    len(bounds) + 1``. Bucket ``i`` counts samples ``v`` with
    ``bounds[i-1] < v <= bounds[i]`` (le semantics).
    """

    __slots__ = ("name", "bounds", "counts", "_count", "_sum", "_min", "_max")

    def __init__(self, name: str, bounds: Sequence[float]):
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError(f"bucket bounds must be ascending: {bounds!r}")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one sample into its bucket and the summary stats."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def minimum(self) -> float:
        return self._min if self._count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear bucket interpolation.

        Finds the bucket holding rank ``q * (count - 1)`` and
        interpolates linearly across its ``(lower, upper]`` range —
        the observed min/max stand in for the open edges (below the
        first bound, above the last), and the estimate is clamped into
        ``[min, max]``. Accuracy is bounded by the bucket width at that
        rank; prefer a :class:`~repro.obs.sketch.QuantileSketch` when
        relative error matters. 0.0 on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if not self._count:
            return 0.0
        if q == 0.0:
            return self.minimum
        if q == 1.0:
            return self.maximum
        rank = q * (self._count - 1)
        cumulative = 0
        for idx, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if rank < cumulative + bucket_count:
                if idx == 0:
                    lower = min(self._min, self.bounds[0])
                else:
                    lower = self.bounds[idx - 1]
                if idx < len(self.bounds):
                    upper = self.bounds[idx]
                else:
                    upper = self._max
                if bucket_count > 1:
                    position = (rank - cumulative) / (bucket_count - 1)
                else:
                    position = 0.5
                estimate = lower + (upper - lower) * position
                return min(max(estimate, self._min), self._max)
            cumulative += bucket_count
        return self.maximum

    def to_dict(self) -> Dict[str, object]:
        """The histogram as a plain (JSON-ready) dict."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self._count,
            "sum": self._sum,
            "min": self.minimum,
            "max": self.maximum,
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name}: n={self._count}, max={self.maximum:g}>"


class MetricsRegistry:
    """Named counters, gauges, histograms, and sketches with JSON export.

    Instruments are created on first use and shared thereafter;
    ``volatile=True`` marks an instrument as wall-clock dependent, kept
    out of the deterministic export (see module docstring).
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._sketches: Dict[str, QuantileSketch] = {}
        self._volatile: set = set()

    # -- instrument access -------------------------------------------------

    def counter(self, name: str, volatile: bool = False) -> Counter:
        """Get-or-create the named counter."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
            if volatile:
                self._volatile.add(name)
        return instrument

    def gauge(self, name: str, volatile: bool = False) -> Gauge:
        """Get-or-create the named gauge."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
            if volatile:
                self._volatile.add(name)
        return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] = LATENCY_BUCKETS,
        volatile: bool = False,
    ) -> Histogram:
        """Get-or-create the named histogram (``bounds`` used on creation)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
            if volatile:
                self._volatile.add(name)
        elif instrument.bounds != tuple(float(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} already registered with bounds "
                f"{instrument.bounds!r}"
            )
        return instrument

    def sketch(
        self, name: str, alpha: float = DEFAULT_ALPHA, volatile: bool = False,
    ) -> QuantileSketch:
        """Get-or-create the named quantile sketch (``alpha`` on creation)."""
        instrument = self._sketches.get(name)
        if instrument is None:
            instrument = self._sketches[name] = QuantileSketch(name, alpha)
            if volatile:
                self._volatile.add(name)
        elif abs(instrument.alpha - alpha) > 1e-12:
            raise ValueError(
                f"sketch {name!r} already registered with alpha "
                f"{instrument.alpha:g}"
            )
        return instrument

    # -- export ------------------------------------------------------------

    def snapshot(self, include_volatile: bool = False) -> Dict[str, object]:
        """The registry as a plain (JSON-ready) dict, sorted by name."""

        def keep(name: str) -> bool:
            return include_volatile or name not in self._volatile

        return {
            "format": FORMAT,
            "version": FORMAT_VERSION,
            "counters": {
                n: c.value for n, c in sorted(self._counters.items()) if keep(n)
            },
            "gauges": {
                n: g.value for n, g in sorted(self._gauges.items()) if keep(n)
            },
            "histograms": {
                n: h.to_dict()
                for n, h in sorted(self._histograms.items())
                if keep(n)
            },
            "sketches": {
                n: s.to_dict()
                for n, s in sorted(self._sketches.items())
                if keep(n)
            },
        }

    def to_json(self, include_volatile: bool = False) -> str:
        """Deterministic JSON text of :meth:`snapshot`."""
        return json.dumps(
            self.snapshot(include_volatile), sort_keys=True, indent=2
        )

    def dump(self, path: str, include_volatile: bool = False) -> None:
        """Write the JSON snapshot to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.to_json(include_volatile))
            handle.write("\n")

    # -- merge -------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (for sharded/multi-run sweeps).

        Counters add; histograms add bucket counts and combine
        count/sum/min/max (bounds must agree); sketches add bucket
        counts likewise (alpha must agree); gauges combine by
        maximum — the only order-independent choice for point-in-time
        values such as queue depths and skew maxima.
        """
        for name, counter in other._counters.items():
            self.counter(name, volatile=name in other._volatile).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(name, volatile=name in other._volatile).set_max(gauge.value)
        for name, hist in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = self.histogram(
                    name, hist.bounds, volatile=name in other._volatile
                )
            if mine.bounds != hist.bounds:
                raise ValueError(
                    f"cannot merge histogram {name!r}: bucket bounds differ"
                )
            for idx, count in enumerate(hist.counts):
                mine.counts[idx] += count
            mine._count += hist._count
            mine._sum += hist._sum
            mine._min = min(mine._min, hist._min)
            mine._max = max(mine._max, hist._max)
        for name, sketch in other._sketches.items():
            self.sketch(
                name, alpha=sketch.alpha, volatile=name in other._volatile
            ).merge(sketch)

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry: {len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms, "
            f"{len(self._sketches)} sketches>"
        )


def registry_from_snapshot(payload: Dict[str, object]) -> MetricsRegistry:
    """Rebuild a :class:`MetricsRegistry` from a :meth:`~MetricsRegistry.snapshot` dict.

    The inverse of the JSON export, used to merge snapshots that crossed
    a process boundary (campaign workers return snapshots, not live
    registries). Volatility markers are not part of the export, so a
    rebuilt registry treats every instrument as deterministic — which is
    exactly right for default (volatile-excluded) snapshots.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"snapshot must be a dict, got {type(payload).__name__}")
    registry = MetricsRegistry()
    for name, value in (payload.get("counters") or {}).items():
        registry.counter(name).inc(int(value))
    for name, value in (payload.get("gauges") or {}).items():
        registry.gauge(name).set(float(value))
    for name, hist in (payload.get("histograms") or {}).items():
        instrument = registry.histogram(name, hist["bounds"])
        instrument.counts = [int(c) for c in hist["counts"]]
        instrument._count = int(hist["count"])
        instrument._sum = float(hist["sum"])
        if instrument._count:
            instrument._min = float(hist["min"])
            instrument._max = float(hist["max"])
    # version-1 snapshots carry no "sketches" section; tolerate both
    for name, sketch in (payload.get("sketches") or {}).items():
        registry._sketches[name] = QuantileSketch.from_dict(name, sketch)
    return registry


def merge_snapshots(snapshots: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Fold many snapshot dicts into one merged snapshot.

    Counters and histogram buckets add; gauges combine by maximum (see
    :meth:`MetricsRegistry.merge`). The result is deterministic in the
    *multiset* of inputs — the order snapshots arrive in (e.g. worker
    completion order) does not affect the merged output, so sharded
    campaigns aggregate byte-identically regardless of worker count.
    """
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge(registry_from_snapshot(snapshot))
    return merged.snapshot()


class NullMetrics:
    """A registry that hands out shared no-op instruments.

    Passing :data:`NULL_METRICS` to the engine disables all metric
    collection (the zero-instrumentation path the overhead benchmark
    measures); callers keep the exact same code shape.
    """

    def counter(self, name: str, volatile: bool = False) -> _NullInstrument:
        """The shared no-op counter."""
        return NULL_COUNTER

    def gauge(self, name: str, volatile: bool = False) -> _NullInstrument:
        """The shared no-op gauge."""
        return NULL_GAUGE

    def histogram(
        self, name: str, bounds: Sequence[float] = LATENCY_BUCKETS,
        volatile: bool = False,
    ) -> _NullInstrument:
        """The shared no-op histogram."""
        return NULL_HISTOGRAM

    def sketch(
        self, name: str, alpha: float = DEFAULT_ALPHA, volatile: bool = False,
    ) -> _NullInstrument:
        """The shared no-op sketch."""
        return NULL_SKETCH

    def snapshot(self, include_volatile: bool = False) -> Dict[str, object]:
        """An empty (but schema-valid) snapshot."""
        return {
            "format": FORMAT,
            "version": FORMAT_VERSION,
            "counters": {},
            "gauges": {},
            "histograms": {},
            "sketches": {},
        }

    def to_json(self, include_volatile: bool = False) -> str:
        """JSON text of the empty snapshot."""
        return json.dumps(self.snapshot(), sort_keys=True, indent=2)

    def dump(self, path: str, include_volatile: bool = False) -> None:
        """Write the empty snapshot to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    def merge(self, other) -> None:
        """Discard ``other`` (collection is disabled)."""
        pass

    def __repr__(self) -> str:
        return "<NullMetrics>"


NULL_METRICS = NullMetrics()


# -- canonical engine stats --------------------------------------------------

CANONICAL_STAT_KEYS: Tuple[str, ...] = (
    "steps",
    "actions",
    "time_advances",
    "injections",
    "visible_events",
    "hidden_events",
)
"""The one canonical key set of ``SimulationResult.stats``.

Each key mirrors the engine counter ``repro.engine.<key>``; the engine
populates ``stats`` via :func:`stats_from_metrics`, so the untyped dict
and the metrics snapshot cannot drift.
"""


def stats_from_metrics(metrics) -> Dict[str, int]:
    """The canonical ``SimulationResult.stats`` dict from engine counters."""
    return {
        key: metrics.counter(f"repro.engine.{key}").value
        for key in CANONICAL_STAT_KEYS
    }

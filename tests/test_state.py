"""Unit tests for the immutable State container."""

import pytest

from repro.automata.state import State


class TestImmutability:
    def test_setattr_forbidden(self):
        s = State(now=0.0, x=1)
        with pytest.raises(AttributeError):
            s.x = 2

    def test_replace_returns_new(self):
        s = State(now=0.0, x=1)
        s2 = s.replace(x=2)
        assert s.x == 1 and s2.x == 2
        assert s2.now == 0.0

    def test_mutable_containers_frozen(self):
        s = State(now=0.0, queue=[1, 2], members={"a"}, table={"k": [3]})
        assert s.queue == (1, 2)
        assert s.members == frozenset({"a"})
        assert dict(s.table) if isinstance(s.table, dict) else True
        # nested list inside dict is frozen too
        assert s.table == (("k", (3,)),)


class TestValueSemantics:
    def test_equality(self):
        assert State(now=1.0, a=2) == State(a=2, now=1.0)
        assert State(now=1.0, a=2) != State(now=1.0, a=3)

    def test_hash_consistent_with_eq(self):
        assert hash(State(now=1.0, a=[1])) == hash(State(now=1.0, a=(1,)))

    def test_usable_in_sets(self):
        assert len({State(now=0.0), State(now=0.0), State(now=1.0)}) == 2


class TestAccess:
    def test_attribute_and_item_access(self):
        s = State(now=2.0, x="v")
        assert s.x == "v"
        assert s["x"] == "v"

    def test_missing_attribute(self):
        with pytest.raises(AttributeError):
            State(now=0.0).missing

    def test_mapping_protocol(self):
        s = State(now=0.0, a=1, b=2)
        assert set(s) == {"now", "a", "b"}
        assert len(s) == 3


class TestPaperViews:
    def test_tbasic_excludes_now(self):
        s = State(now=5.0, x=1, y=2)
        names = [k for k, _ in s.tbasic]
        assert "now" not in names
        assert set(names) == {"x", "y"}

    def test_cbasic_excludes_now_and_clock(self):
        s = State(now=5.0, clock=4.9, x=1)
        names = [k for k, _ in s.cbasic]
        assert set(names) == {"x"}

    def test_tbasic_equality_across_times(self):
        a = State(now=1.0, x=1)
        b = State(now=2.0, x=1)
        assert a.tbasic == b.tbasic

    def test_project(self):
        s = State(now=1.0, x=1, y=2)
        assert s.project("x") == State(x=1)

"""Unit tests for the execution recorder."""

from repro.automata.actions import Action, action_set
from repro.sim.recorder import EventRecord, Recorder


def sample_recorder():
    recorder = Recorder()
    recorder.record(Action("A", (0,)), 1.0, "node0", 0.9, True)
    recorder.record(Action("B", (1,)), 2.0, "node1", 2.2, True)
    recorder.record(Action("HIDDEN", (0,)), 2.5, "node0", 2.4, False)
    recorder.record(Action("C", ()), 3.0, "chan", None, True)
    return recorder


class TestRecorder:
    def test_timed_schedule_includes_hidden(self):
        assert len(sample_recorder().timed_schedule()) == 4

    def test_timed_trace_excludes_hidden(self):
        trace = sample_recorder().timed_trace()
        assert [ev.action.name for ev in trace] == ["A", "B", "C"]

    def test_timed_trace_restriction(self):
        trace = sample_recorder().timed_trace(restrict_to=action_set("A"))
        assert [ev.action.name for ev in trace] == ["A"]

    def test_clock_stamps_fall_back_to_now(self):
        gamma = sample_recorder().clock_stamped_trace()
        stamps = {ev.action.name: ev.time for ev in gamma}
        assert stamps["A"] == 0.9
        assert stamps["C"] == 3.0  # clockless owner

    def test_clock_stamped_resorted(self):
        recorder = Recorder()
        recorder.record(Action("X", (0,)), 1.0, "n0", 2.0, True)
        recorder.record(Action("Y", (1,)), 1.5, "n1", 1.0, True)
        gamma = recorder.clock_stamped_trace()
        assert [ev.action.name for ev in gamma] == ["Y", "X"]
        raw = recorder.clock_stamped_trace(resort=False)
        assert [ev.action.name for ev in raw] == ["X", "Y"]

    def test_clock_stamped_visible_only_flag(self):
        full = sample_recorder().clock_stamped_trace(visible_only=False)
        assert len(full) == 4

    def test_count_and_filter(self):
        recorder = sample_recorder()
        assert recorder.count("A") == 1
        assert recorder.count("MISSING") == 0
        hidden = recorder.filter(lambda e: not e.visible)
        assert len(hidden) == 1 and hidden[0].action.name == "HIDDEN"

    def test_indices_sequential(self):
        recorder = sample_recorder()
        assert [e.index for e in recorder.events] == [0, 1, 2, 3]

    def test_reprs(self):
        recorder = sample_recorder()
        assert "4 events" in repr(recorder)
        assert "hidden" in repr(recorder.events[2])
        assert "clock=" in repr(recorder.events[0])


class TestEventRecord:
    def test_is_frozen(self):
        record = EventRecord(0, Action("A"), 0.0, "x", None, True)
        import pytest

        with pytest.raises(AttributeError):
            record.now = 5.0

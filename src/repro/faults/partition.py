"""Time-varying channel faults: partitions and scripted drop bursts.

The stationary models of :mod:`repro.faults.models` decide each
attempt's fate from seeded randomness alone. Chaos plans need the
*time-varying* complement: during a network partition every message
crossing the cut is lost; during a scripted burst a single edge goes
dark. Both are expressed as drop *windows* evaluated against the
attempt's real time, composed over an arbitrary base model (loss and
duplication outside the windows still follow the base model, default
:class:`~repro.faults.models.NoFaults`).

These models deliberately break the ``max_consecutive_drops`` fairness
bound *inside* their windows — that is the point of injecting them; the
retransmission adapter's worst-case analysis resumes holding once the
window closes. :attr:`TimelineFaultModel.max_consecutive_drops` reports
the base model's bound, which is the steady-state (outside-window)
guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.constants import TOLERANCE as _TOLERANCE
from repro.errors import SpecificationError
from repro.faults.models import FaultModel, NoFaults

Edge = Tuple[int, int]
INFINITY = float("inf")


@dataclass(frozen=True)
class DropWindow:
    """Base class: a half-open real-time window ``[start, end)``."""

    start: float
    end: float

    def __post_init__(self):
        if self.start < 0 or self.end <= self.start:
            raise SpecificationError(
                f"invalid drop window [{self.start:g}, {self.end:g})"
            )

    def active(self, now: float) -> bool:
        """Whether ``now`` falls inside the half-open window."""
        return self.start - _TOLERANCE <= now < self.end - _TOLERANCE

    def severs(self, edge: Edge, now: float) -> bool:
        """Whether this window cuts the directed ``edge`` at ``now``."""
        raise NotImplementedError


@dataclass(frozen=True)
class EdgeDropWindow(DropWindow):
    """One directed edge goes dark during the window (``drop_burst``)."""

    edge: Edge = (0, 0)

    def severs(self, edge: Edge, now: float) -> bool:
        return tuple(edge) == tuple(self.edge) and self.active(now)


@dataclass(frozen=True)
class PartitionWindow(DropWindow):
    """A partition into node groups; cross-group edges drop everything.

    ``groups`` are disjoint node sets (a :mod:`repro.network.topology`
    grouping). An edge is severed iff its endpoints lie in *different*
    groups; nodes not listed in any group form an implicit extra group
    of singletons is **not** assumed — an unlisted endpoint communicates
    freely (it sits outside the partition experiment).
    """

    groups: Tuple[Tuple[int, ...], ...] = ()

    def __post_init__(self):
        super().__post_init__()
        seen = set()
        for group in self.groups:
            for node in group:
                if node in seen:
                    raise SpecificationError(
                        f"node {node} appears in two partition groups"
                    )
                seen.add(node)

    def _group_of(self, node: int) -> Optional[int]:
        for index, group in enumerate(self.groups):
            if node in group:
                return index
        return None

    def severs(self, edge: Edge, now: float) -> bool:
        if not self.active(now):
            return False
        src_group = self._group_of(edge[0])
        dst_group = self._group_of(edge[1])
        if src_group is None or dst_group is None:
            return False
        return src_group != dst_group


class TimelineFaultModel(FaultModel):
    """Drop windows composed over a base fault model.

    ``copies`` returns 0 while any window severs the edge; otherwise it
    defers to the base model. Deterministic given a deterministic base.
    """

    def __init__(
        self,
        windows: Sequence[DropWindow],
        base: Optional[FaultModel] = None,
    ):
        self.windows = tuple(windows)
        self.base = base or NoFaults()
        self.max_consecutive_drops = self.base.max_consecutive_drops

    def severed(self, edge: Edge, now: float) -> bool:
        """Whether any window currently severs the edge."""
        return any(w.severs(edge, now) for w in self.windows)

    def copies(self, edge: Edge, message: object, now: float) -> int:
        if self.severed(edge, now):
            return 0
        return self.base.copies(edge, message, now)

    def __repr__(self) -> str:
        return (
            f"<TimelineFaultModel {len(self.windows)} window(s) "
            f"over {self.base!r}>"
        )


class PartitionFaultModel(TimelineFaultModel):
    """A single partition window as a standalone fault model.

    Convenience for tests and hand-built systems::

        PartitionFaultModel([(0, 1), (2,)], start=5.0, end=9.0)
    """

    def __init__(
        self,
        groups: Sequence[Sequence[int]],
        start: float,
        end: float = INFINITY,
        base: Optional[FaultModel] = None,
    ):
        window = PartitionWindow(
            start=start, end=end,
            groups=tuple(tuple(g) for g in groups),
        )
        super().__init__([window], base=base)
        self.groups = window.groups

    def __repr__(self) -> str:
        window = self.windows[0]
        return (
            f"<PartitionFaultModel {list(map(list, self.groups))} "
            f"[{window.start:g},{window.end:g})>"
        )

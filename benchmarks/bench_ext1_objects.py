"""EXT1: generalized blind-update objects (Section 6's closing remark).

"We generalize our results to other shared memory objects in the full
paper" — the sweep runs five object types (counter, PN-counter,
max-register, G-set, LWW-map) through the clock transformation and
checks spec-driven linearizability plus the Theorem 6.5 latency bounds.
"""

from bench_util import save_table
from harness import exp_ext1_objects

from repro.objects import (
    CounterSpec,
    ObjectWorkload,
    clock_object_system,
    run_object_experiment,
)
from repro.sim.clock_drivers import driver_factory
from repro.sim.delay import UniformDelay


def _counter_run():
    spec = CounterSpec()
    workload = ObjectWorkload(operations=6, update_fraction=0.6, seed=3)
    system = clock_object_system(
        spec, n=3, d1=0.2, d2=1.0, c=0.3, eps=0.1, workload=workload,
        drivers=driver_factory("mixed", 0.1, seed=3),
        delay_model=UniformDelay(seed=3),
    )
    run = run_object_experiment(system, spec, 80.0)
    assert run.linearizable()
    return run


def test_ext1_objects(benchmark):
    run = benchmark(_counter_run)
    assert len(run.operations) >= 10

    table, shapes = exp_ext1_objects()
    save_table("EXT1", table)
    assert shapes["all_linearizable"]
    assert shapes["all_within"]

#!/usr/bin/env python
"""End-to-end validation of the ``repro.lint`` static analyzer.

Usage::

    python tools/validate_lint.py            # all checks
    python tools/validate_lint.py --quick    # skip the double-run check

Checks, in order:

1. **Repo is clean** — linting ``src/`` against the committed
   ``lint-baseline.json`` yields zero new findings and no stale
   baseline entries, and every inline suppression carries a written
   justification.
2. **Rules fire** — every rule ID in the catalog is triggered by its
   ``tests/fixtures/lint/bad_*.py`` fixture (exactly one finding, the
   right rule), and the ``good*.py`` fixtures stay silent.
3. **Report schema** — the JSON report is version 1, its summary counts
   agree with its findings list, and each finding carries the full
   field set (rule/family/path/line/col/scope/message/fingerprint/
   status).
4. **Baseline schema** — ``lint-baseline.json`` parses, declares
   version 1, and every entry fingerprint is 16 lowercase hex chars.
5. **Determinism** (skip with ``--quick``) — two full runs over
   ``src/`` serialize to byte-identical JSON, and so does the
   isolation report (what lets CI ``cmp`` the committed artifact).

Exits 0 when all checks pass, 1 on failures (printed one per line),
2 on usage errors.
"""

import argparse
import json
import os
import re
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.lint import (  # noqa: E402
    RULES,
    Baseline,
    ProjectIndex,
    apply_baseline,
    build_isolation_report,
    load_modules,
    render_json,
    run_lint,
)

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
FIXTURES = os.path.join(ROOT, "tests", "fixtures", "lint")
BASELINE = os.path.join(ROOT, "lint-baseline.json")


def check_repo_clean():
    problems = []
    result = run_lint([SRC], root=ROOT)
    if os.path.exists(BASELINE):
        apply_baseline(result, Baseline.load(BASELINE))
    for assessed in result.new:
        finding = assessed.finding
        problems.append(
            f"src unclean: {finding.location()} {finding.rule} "
            f"{finding.message}"
        )
    for entry in result.stale_baseline:
        problems.append(f"stale baseline entry: {entry}")
    for assessed in result.suppressed:
        if not assessed.justification.strip():
            problems.append(
                f"unjustified suppression at {assessed.finding.location()}"
            )
    if not problems:
        print(
            f"repo clean: {result.files_scanned} files, "
            f"{len(result.suppressed)} justified suppression(s), "
            f"{len(result.baselined)} baselined"
        )
    return problems


def check_rules_fire():
    problems = []
    for rule in sorted(RULES):
        name = f"bad_{rule.lower()}.py"
        path = os.path.join(FIXTURES, name)
        if not os.path.exists(path):
            problems.append(f"{rule}: fixture {name} missing")
            continue
        result = run_lint([path], root=ROOT)
        fired = [a.finding.rule for a in result.new]
        if fired != [rule]:
            problems.append(
                f"{rule}: fixture {name} fired {fired or 'nothing'}"
            )
    for name in ("good.py", "good_entities.py"):
        result = run_lint([os.path.join(FIXTURES, name)], root=ROOT)
        for assessed in result.assessed:
            problems.append(
                f"false positive in {name}: "
                f"{assessed.finding.rule} at line {assessed.finding.line}"
            )
    if not problems:
        print(f"rules fire: all {len(RULES)} rule IDs, good fixtures silent")
    return problems


def check_report_schema():
    problems = []
    result = run_lint([FIXTURES], root=ROOT)
    report = json.loads(render_json(result))
    if report.get("version") != 1:
        problems.append(f"report version {report.get('version')!r}, want 1")
    findings = report.get("findings", [])
    required = {
        "rule", "family", "path", "line", "col",
        "scope", "message", "fingerprint", "status",
    }
    for finding in findings:
        missing = required - set(finding)
        if missing:
            problems.append(f"finding missing fields {sorted(missing)}")
            break
    summary = report.get("summary", {})
    for status in ("new", "suppressed", "baselined"):
        count = sum(1 for f in findings if f.get("status") == status)
        if summary.get(status) != count:
            problems.append(
                f"summary[{status}]={summary.get(status)} but "
                f"{count} finding(s) carry that status"
            )
    if report.get("ok") is not (summary.get("new") == 0):
        problems.append("report 'ok' disagrees with summary['new']")
    if not problems:
        print(f"report schema: v1, {len(findings)} finding(s) well-formed")
    return problems


def check_baseline_schema():
    problems = []
    if not os.path.exists(BASELINE):
        print("baseline: no lint-baseline.json (nothing grandfathered)")
        return problems
    try:
        baseline = Baseline.load(BASELINE)
    except Exception as exc:
        return [f"baseline: {exc}"]
    for fingerprint in baseline.entries:
        if not re.fullmatch(r"[0-9a-f]{16}", fingerprint):
            problems.append(f"baseline: bad fingerprint {fingerprint!r}")
    if not problems:
        print(f"baseline schema: v1, {len(baseline.entries)} entry(ies)")
    return problems


def check_determinism():
    problems = []
    reports = [render_json(run_lint([SRC], root=ROOT)) for _ in range(2)]
    if reports[0] != reports[1]:
        problems.append("lint JSON differs between two identical runs")

    def isolation():
        result = run_lint([SRC], root=ROOT)
        index = ProjectIndex(load_modules([SRC], root=ROOT))
        report = build_isolation_report(index, result)
        return json.dumps(report, indent=2, sort_keys=True)

    if isolation() != isolation():
        problems.append("isolation report differs between two runs")
    if not problems:
        print("determinism: double runs byte-identical (lint + isolation)")
    return problems


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="skip the double-run determinism check",
    )
    args = parser.parse_args(argv)

    problems = []
    problems += check_repo_clean()
    problems += check_rules_fire()
    problems += check_report_schema()
    problems += check_baseline_schema()
    if not args.quick:
        problems += check_determinism()

    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if problems:
        return 1
    print("all lint validation checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Tests for the transformed register in the clock model (Theorem 6.5)."""

import pytest

from repro.registers.system import (
    clock_register_system,
    run_register_experiment,
)
from repro.registers.workload import RegisterWorkload
from repro.sim.clock_drivers import driver_factory
from repro.sim.delay import (
    AlternatingExtremesDelay,
    MaximalDelay,
    MinimalDelay,
    UniformDelay,
)
from repro.sim.scheduler import DeterministicScheduler, RandomScheduler

D1, D2 = 0.2, 1.0
DELTA = 0.01


def run(c, eps, driver_kind="mixed", seed=0, delay_model=None, ops=5,
        horizon=70.0, n=3):
    workload = RegisterWorkload(operations=ops, read_fraction=0.5, seed=seed)
    spec = clock_register_system(
        n=n, d1=D1, d2=D2, c=c, eps=eps, workload=workload,
        drivers=driver_factory(driver_kind, eps, seed=seed),
        delta=DELTA,
        delay_model=delay_model or UniformDelay(seed=seed),
    )
    return run_register_experiment(
        spec, horizon, scheduler=RandomScheduler(seed=seed)
    )


class TestTheorem65:
    @pytest.mark.parametrize(
        "driver_kind", ["perfect", "fast", "slow", "mixed", "random", "drift"]
    )
    def test_linearizable_under_clock_adversaries(self, driver_kind):
        assert run(0.3, 0.1, driver_kind, seed=1).linearizable()

    @pytest.mark.parametrize(
        "delay_model",
        [MinimalDelay(), MaximalDelay(), AlternatingExtremesDelay()],
        ids=lambda d: type(d).__name__,
    )
    def test_linearizable_under_delay_adversaries(self, delay_model):
        assert run(0.3, 0.1, "mixed", seed=2, delay_model=delay_model).linearizable()

    @pytest.mark.parametrize("eps", [0.0, 0.05, 0.2])
    def test_latency_bounds(self, eps):
        """Read <= (2*eps + delta + c) + 2*eps real-time stretch; write <=
        (d2 + 2*eps - c) + 2*eps (clock-time bounds of Theorem 6.5, plus
        the eps skew at each endpoint)."""
        c = 0.3
        result = run(c, eps, "mixed", seed=3)
        read_bound = (2 * eps + DELTA + c) + 2 * eps
        write_bound = (D2 + 2 * eps - c) + 2 * eps
        assert result.max_read_latency() <= read_bound + 1e-9
        assert result.max_write_latency() <= write_bound + 1e-9

    def test_buffering_regime_still_linearizable(self):
        """d1 < 2*eps: receive buffers must actually hold messages."""
        eps = 0.3  # 2*eps = 0.6 > d1 = 0.2
        result = run(0.2, eps, "mixed", seed=4, delay_model=MinimalDelay())
        assert result.linearizable()

    @pytest.mark.parametrize("seed", range(5))
    def test_many_seeds(self, seed):
        assert run(0.4, 0.1, "random", seed=seed).linearizable()

    def test_deterministic_scheduler_run(self):
        workload = RegisterWorkload(operations=4, read_fraction=0.5, seed=8)
        spec = clock_register_system(
            n=3, d1=D1, d2=D2, c=0.3, eps=0.1, workload=workload,
            drivers=driver_factory("mixed", 0.1),
        )
        result = run_register_experiment(
            spec, 60.0, scheduler=DeterministicScheduler()
        )
        assert result.linearizable()

    def test_five_nodes(self):
        assert run(0.3, 0.1, "mixed", seed=6, n=5, ops=4, horizon=90.0).linearizable()

    def test_tradeoff_parameter(self):
        eps = 0.1
        cheap_reads = run(0.0, eps, "mixed", seed=7)
        cheap_writes = run(0.8, eps, "mixed", seed=7)
        assert cheap_reads.mean_read_latency() < cheap_writes.mean_read_latency()
        assert cheap_writes.mean_write_latency() < cheap_reads.mean_write_latency()

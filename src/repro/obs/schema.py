"""JSON-schema checks for the metrics and trace export formats.

The exports are a contract: CI runs a seeded experiment with
``--metrics-out``/``--trace-out`` and validates both files here, so the
format cannot silently break. The schemas are expressed as plain JSON
Schema dicts (documentation and interop) and enforced by a small
hand-rolled validator — the library has no dependencies, and the subset
of JSON Schema we need (types, required keys, enum, items) is tiny.

Run directly::

    python -m repro.obs.schema metrics.json trace.jsonl
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List

from repro.obs.metrics import FORMAT, FORMAT_VERSION
from repro.obs.trace import TRACE_FORMAT, TRACE_KINDS, TRACE_VERSION

METRICS_SCHEMA: Dict[str, object] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro metrics snapshot",
    "type": "object",
    "required": ["format", "version", "counters", "gauges", "histograms"],
    "properties": {
        "format": {"const": FORMAT},
        "version": {"const": FORMAT_VERSION},
        "counters": {"type": "object", "additionalProperties": {"type": "integer"}},
        "gauges": {"type": "object", "additionalProperties": {"type": "number"}},
        "histograms": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "required": ["bounds", "counts", "count", "sum", "min", "max"],
                "properties": {
                    "bounds": {"type": "array", "items": {"type": "number"}},
                    "counts": {"type": "array", "items": {"type": "integer"}},
                    "count": {"type": "integer"},
                    "sum": {"type": "number"},
                    "min": {"type": "number"},
                    "max": {"type": "number"},
                },
            },
        },
    },
}

TRACE_HEADER_SCHEMA: Dict[str, object] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro obs trace header",
    "type": "object",
    "required": ["format", "version"],
    "properties": {
        "format": {"const": TRACE_FORMAT},
        "version": {"const": TRACE_VERSION},
    },
}

TRACE_RECORD_SCHEMA: Dict[str, object] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro obs trace record",
    "type": "object",
    "required": ["k"],
    "properties": {"k": {"enum": list(TRACE_KINDS)}},
}

_REQUIRED_RECORD_KEYS = {
    "run_start": ("horizon",),
    "action": ("now", "owner", "a", "vis"),
    "inject": ("now", "a"),
    "advance": ("from", "to"),
    "timelock": ("now",),
    "run_end": ("now", "steps"),
}


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_integer(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def validate_metrics(payload: object) -> List[str]:
    """Problems with a metrics snapshot dict; empty list means valid."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"metrics: expected an object, got {type(payload).__name__}"]
    if payload.get("format") != FORMAT:
        problems.append(f"metrics: format is {payload.get('format')!r}, "
                        f"expected {FORMAT!r}")
    if payload.get("version") != FORMAT_VERSION:
        problems.append(f"metrics: version is {payload.get('version')!r}, "
                        f"expected {FORMAT_VERSION}")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(payload.get(section), dict):
            problems.append(f"metrics: missing or non-object section {section!r}")
    for name, value in (payload.get("counters") or {}).items():
        if not _is_integer(value):
            problems.append(f"metrics: counter {name!r} is not an integer")
    for name, value in (payload.get("gauges") or {}).items():
        if not _is_number(value):
            problems.append(f"metrics: gauge {name!r} is not a number")
    for name, hist in (payload.get("histograms") or {}).items():
        if not isinstance(hist, dict):
            problems.append(f"metrics: histogram {name!r} is not an object")
            continue
        for key in ("bounds", "counts", "count", "sum", "min", "max"):
            if key not in hist:
                problems.append(f"metrics: histogram {name!r} lacks {key!r}")
        bounds = hist.get("bounds", [])
        counts = hist.get("counts", [])
        if not all(_is_number(b) for b in bounds):
            problems.append(f"metrics: histogram {name!r} bounds not numeric")
        if list(bounds) != sorted(bounds):
            problems.append(f"metrics: histogram {name!r} bounds not ascending")
        if not all(_is_integer(c) and c >= 0 for c in counts):
            problems.append(f"metrics: histogram {name!r} counts invalid")
        if len(counts) != len(bounds) + 1:
            problems.append(
                f"metrics: histogram {name!r} has {len(counts)} counts "
                f"for {len(bounds)} bounds (want bounds+1)"
            )
        if _is_integer(hist.get("count")) and sum(
            c for c in counts if _is_integer(c)
        ) != hist.get("count"):
            problems.append(
                f"metrics: histogram {name!r} bucket counts do not sum to count"
            )
    return problems


def validate_trace_lines(lines: List[str]) -> List[str]:
    """Problems with the lines of a trace JSONL file; empty means valid."""
    problems: List[str] = []
    if not lines:
        return ["trace: empty file"]
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        return [f"trace: header is not JSON ({exc})"]
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        problems.append(f"trace: bad header {lines[0].strip()!r}")
    elif header.get("version") != TRACE_VERSION:
        problems.append(f"trace: unsupported version {header.get('version')!r}")
    for lineno, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"trace line {lineno}: not JSON ({exc})")
            continue
        if not isinstance(record, dict):
            problems.append(f"trace line {lineno}: not an object")
            continue
        kind = record.get("k")
        if kind not in TRACE_KINDS:
            problems.append(f"trace line {lineno}: unknown kind {kind!r}")
            continue
        for key in _REQUIRED_RECORD_KEYS[kind]:
            if key not in record:
                problems.append(
                    f"trace line {lineno}: {kind!r} record lacks {key!r}"
                )
    return problems


def validate_metrics_file(path: str) -> List[str]:
    """Validate a ``--metrics-out`` file; returns the problem list."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"metrics: cannot read {path}: {exc}"]
    return validate_metrics(payload)


def validate_trace_file(path: str) -> List[str]:
    """Validate a ``--trace-out`` file; returns the problem list."""
    try:
        with open(path) as handle:
            lines = handle.readlines()
    except OSError as exc:
        return [f"trace: cannot read {path}: {exc}"]
    return validate_trace_lines(lines)


def main(argv=None) -> int:
    """``python -m repro.obs.schema METRICS.json [TRACE.jsonl]``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or len(argv) > 2:
        print("usage: python -m repro.obs.schema METRICS.json [TRACE.jsonl]")
        return 2
    problems = validate_metrics_file(argv[0])
    if len(argv) == 2:
        problems += validate_trace_file(argv[1])
    for problem in problems:
        print(problem)
    if not problems:
        print(f"ok: {' '.join(argv)} conform to the export schemas")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())

"""Schema validation for campaign checkpoint and aggregate files.

Same contract style as :mod:`repro.obs.schema`: the JSONL exports are
validated line-by-line by a small hand-rolled checker (the library has
no dependencies), and CI runs a tiny sweep end-to-end then validates
the files here, so the formats cannot silently break.

Run directly::

    python -m repro.campaign.schema aggregate.jsonl [checkpoint.jsonl]
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List

from repro.campaign.aggregate import AGGREGATE_FORMAT, AGGREGATE_VERSION
from repro.campaign.checkpoint import CHECKPOINT_FORMAT, CHECKPOINT_VERSION
from repro.obs.schema import validate_metrics

_AGGREGATE_REQUIRED: Dict[str, tuple] = {
    "header": ("format", "version", "campaign", "points"),
    "point": ("index", "result"),
    "group": ("config", "seeds", "violations", "read_latency", "write_latency"),
    "curve": ("eps", "violations", "skew_max", "read_latency", "write_latency"),
    "metrics": ("merged",),
    "failure": ("index", "key", "error"),
    "summary": ("points", "completed", "failed", "violations"),
}

_RESULT_REQUIRED = (
    "key", "config", "operations", "reads", "writes", "read_latencies",
    "write_latencies", "linearizable", "violations", "engine",
)

_PERCENTILE_KEYS = ("p50", "p90", "p99", "max")


def _check_percentiles(record: Dict, field: str, where: str) -> List[str]:
    block = record.get(field)
    if not isinstance(block, dict):
        return [f"{where}: {field!r} is not an object"]
    return [
        f"{where}: {field!r} lacks {key!r}"
        for key in _PERCENTILE_KEYS
        if key not in block
    ]


def validate_aggregate_lines(lines: List[str]) -> List[str]:
    """Problems with an aggregate JSONL file's lines; empty means valid."""
    problems: List[str] = []
    if not lines:
        return ["aggregate: empty file"]
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        return [f"aggregate: header is not JSON ({exc})"]
    if not isinstance(header, dict) or header.get("k") != "header":
        problems.append(f"aggregate: first record is not a header: "
                        f"{lines[0].strip()!r}")
    else:
        if header.get("format") != AGGREGATE_FORMAT:
            problems.append(
                f"aggregate: format is {header.get('format')!r}, "
                f"expected {AGGREGATE_FORMAT!r}"
            )
        if header.get("version") != AGGREGATE_VERSION:
            problems.append(
                f"aggregate: version is {header.get('version')!r}, "
                f"expected {AGGREGATE_VERSION}"
            )
    saw_summary = False
    point_count = 0
    for lineno, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"aggregate line {lineno}: not JSON ({exc})")
            continue
        if not isinstance(record, dict):
            problems.append(f"aggregate line {lineno}: not an object")
            continue
        kind = record.get("k")
        if kind not in _AGGREGATE_REQUIRED or kind == "header":
            problems.append(f"aggregate line {lineno}: unknown kind {kind!r}")
            continue
        where = f"aggregate line {lineno}"
        for key in _AGGREGATE_REQUIRED[kind]:
            if key not in record:
                problems.append(f"{where}: {kind!r} record lacks {key!r}")
        if kind == "point":
            point_count += 1
            result = record.get("result")
            if not isinstance(result, dict):
                problems.append(f"{where}: point result is not an object")
            else:
                for key in _RESULT_REQUIRED:
                    if key not in result:
                        problems.append(f"{where}: point result lacks {key!r}")
        elif kind in ("group", "curve"):
            problems += _check_percentiles(record, "read_latency", where)
            problems += _check_percentiles(record, "write_latency", where)
        elif kind == "metrics":
            problems += [
                f"{where}: merged snapshot invalid: {p}"
                for p in validate_metrics(record.get("merged"))
            ]
        elif kind == "summary":
            saw_summary = True
            completed = record.get("completed")
            if isinstance(completed, int) and completed != point_count:
                problems.append(
                    f"{where}: summary claims {completed} completed points, "
                    f"file has {point_count} point records"
                )
    if not saw_summary:
        problems.append("aggregate: missing the final summary record")
    return problems


def validate_checkpoint_lines(lines: List[str]) -> List[str]:
    """Problems with a checkpoint JSONL file's lines; empty means valid.

    A torn (non-JSON) final line is allowed — it is the expected residue
    of a campaign killed mid-write, and loading tolerates it.
    """
    problems: List[str] = []
    if not lines:
        return ["checkpoint: empty file"]
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        return [f"checkpoint: header is not JSON ({exc})"]
    if not isinstance(header, dict) or header.get("format") != CHECKPOINT_FORMAT:
        problems.append(f"checkpoint: bad header {lines[0].strip()!r}")
    elif header.get("version") != CHECKPOINT_VERSION:
        problems.append(
            f"checkpoint: unsupported version {header.get('version')!r}"
        )
    for lineno, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines):
                continue  # torn final write: legal
            problems.append(f"checkpoint line {lineno}: not JSON")
            continue
        if record.get("k") != "point":
            problems.append(
                f"checkpoint line {lineno}: unknown kind {record.get('k')!r}"
            )
            continue
        for key in ("key", "result", "wall", "attempts"):
            if key not in record:
                problems.append(f"checkpoint line {lineno}: lacks {key!r}")
    return problems


def validate_aggregate_file(path: str) -> List[str]:
    """Validate an aggregate JSONL file; returns the problem list."""
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        return [f"aggregate: cannot read {path}: {exc}"]
    return validate_aggregate_lines(lines)


def validate_checkpoint_file(path: str) -> List[str]:
    """Validate a checkpoint JSONL file; returns the problem list."""
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        return [f"checkpoint: cannot read {path}: {exc}"]
    return validate_checkpoint_lines(lines)


def main(argv=None) -> int:
    """``python -m repro.campaign.schema AGGREGATE.jsonl [CHECKPOINT.jsonl]``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or len(argv) > 2:
        print(
            "usage: python -m repro.campaign.schema "
            "AGGREGATE.jsonl [CHECKPOINT.jsonl]"
        )
        return 2
    problems = validate_aggregate_file(argv[0])
    if len(argv) == 2:
        problems += validate_checkpoint_file(argv[1])
    for problem in problems:
        print(problem)
    if not problems:
        print(f"ok: {' '.join(argv)} conform to the campaign schemas")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())

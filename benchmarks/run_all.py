"""Regenerate every experiment table at once.

Usage::

    python benchmarks/run_all.py [EXP_ID ...]

With no arguments, runs all experiments in DESIGN.md order, prints each
table, and writes them to ``benchmarks/results/<EXP_ID>.txt``.
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))

from harness import ALL_EXPERIMENTS  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def main(argv):
    wanted = argv[1:] or list(ALL_EXPERIMENTS)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    failures = []
    for exp_id in wanted:
        if exp_id not in ALL_EXPERIMENTS:
            print(f"unknown experiment {exp_id!r}; known: {list(ALL_EXPERIMENTS)}")
            return 2
        start = time.perf_counter()
        table, shapes = ALL_EXPERIMENTS[exp_id]()
        elapsed = time.perf_counter() - start
        text = table.render()
        print(text)
        print(f"({exp_id} finished in {elapsed:.1f}s)\n")
        with open(os.path.join(RESULTS_DIR, f"{exp_id}.txt"), "w") as handle:
            handle.write(text + "\n")
        bad = {
            key: value
            for key, value in shapes.items()
            if isinstance(value, bool) and not value
        }
        if bad:
            failures.append((exp_id, bad))
    if failures:
        print("SHAPE FAILURES:")
        for exp_id, bad in failures:
            print(f"  {exp_id}: {bad}")
        return 1
    print(f"all {len(wanted)} experiments reproduced their expected shapes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

"""ABL3: the guard-width crossover for TDMA mutual exclusion.

An ablation over Section 7.1's second design technique: the TDMA
scheduler solves the strengthened problem Q ("sections separated by
``2*guard``") in the timed model; ``Q_eps ⊆ P`` ("sections disjoint")
exactly when ``guard >= eps``. The sweep measures the worst overlap and
the utilization across guard widths, locating the crossover at
``guard = eps`` with overlap magnitude ``2*(eps - guard)`` below it.
"""

from bench_util import save_table
from harness import exp_abl3_tdma

from repro.sim.clock_drivers import FastClockDriver, SlowClockDriver
from repro.tdma import build_tdma_system, critical_intervals, max_overlap

EPS = 0.1


def _one_run():
    spec = build_tdma_system(
        "clock", n=3, slot_width=1.0, guard=EPS, sections=3,
        eps=EPS,
        drivers=lambda i: FastClockDriver(EPS) if i % 2 == 0 else SlowClockDriver(EPS),
    )
    result = spec.run(15.0)
    intervals = critical_intervals(result.trace)
    assert max_overlap(intervals) <= 1e-9
    return result


def test_abl3_tdma_guard(benchmark):
    result = benchmark(_one_run)
    assert result.completed()

    table, shapes = exp_abl3_tdma()
    save_table("ABL3", table)
    assert shapes["crossover_at_eps"]
    assert shapes["overlap_matches_formula"]

"""Reliable messaging over lossy channels ([1]-style ARQ adapter).

:class:`ReliableAdapter` wraps any :class:`~repro.components.base.Process`
and makes its ``SENDMSG``/``RECVMSG`` interface reliable over channels
that lose and duplicate messages:

- outgoing messages are framed ``("DATA", seq, m)`` and retransmitted
  every ``retransmit_interval`` until acknowledged;
- the receiver acknowledges every DATA frame (``("ACK", seq)``) and
  delivers each sequence number to the inner process exactly once;
- duplicate frames and duplicate acks are absorbed.

**Worst-case timing.** If the fault model loses at most ``B``
consecutive attempts of a message and the raw channel delay is in
``[d1, d2]``, attempt ``B`` (0-based) departs at ``send + B*R`` and
arrives by ``send + B*R + d2``, so the adapted channel behaves like a
*reliable* channel with delay bounds ``[d1, d2 + B*R]`` —
:func:`effective_delay_bounds`. Design the inner algorithm against
those effective bounds (plus the usual ``2*eps`` widening for the
clock model) and every theorem in the paper goes through unchanged:
the adapter is itself eps-time independent, so it transforms like any
other process code.

Acks are subject to loss too; a lost ack merely causes a retransmission
that the receiver's dedup absorbs, so correctness never depends on ack
delivery — only outbox garbage collection does. Senders cap
retransmissions at ``max_attempts`` (default: enough to cover ``B``
plus ack losses) to keep quiescent runs finite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.automata.actions import Action
from repro.components.base import Process, ProcessContext
from repro.errors import TransitionError

INFINITY = float("inf")
_TOLERANCE = 1e-9


def effective_delay_bounds(
    d1: float, d2: float, retransmit_interval: float, max_consecutive_drops: int
) -> Tuple[float, float]:
    """Delay bounds of the *adapted* (reliable) channel.

    ``[d1, d2 + B * R]`` with ``B`` the consecutive-loss bound and ``R``
    the retransmission interval.
    """
    return (d1, d2 + max_consecutive_drops * retransmit_interval)


@dataclass
class _OutboxEntry:
    dst: int
    seq: int
    message: object
    next_attempt: float
    attempts: int = 0


@dataclass
class AdapterState:
    inner: Any
    outbox: Dict[Tuple[int, int], _OutboxEntry] = field(default_factory=dict)
    next_seq: Dict[int, int] = field(default_factory=dict)
    delivered: Dict[int, Set[int]] = field(default_factory=dict)
    pending_acks: List[Tuple[int, int]] = field(default_factory=list)  # (dst, seq)


class ReliableAdapter(Process):
    """Wraps a process with sequence-numbered retransmission."""

    def __init__(
        self,
        inner: Process,
        retransmit_interval: float,
        max_attempts: int = 25,
    ):
        if retransmit_interval <= 0:
            raise ValueError("retransmit_interval must be positive")
        super().__init__(inner.node, inner.signature, name=f"arq({inner.name})")
        self.inner = inner
        self.retransmit_interval = retransmit_interval
        self.max_attempts = max_attempts

    # -- helpers ---------------------------------------------------------

    def _frame(self, entry: _OutboxEntry) -> Action:
        return Action(
            "SENDMSG", (self.node, entry.dst, ("DATA", entry.seq, entry.message))
        )

    def _ack(self, dst: int, seq: int) -> Action:
        return Action("SENDMSG", (self.node, dst, ("ACK", seq)))

    # -- process interface -------------------------------------------------

    def initial_state(self) -> AdapterState:
        return AdapterState(inner=self.inner.initial_state())

    def apply_input(self, state: AdapterState, action: Action, ctx: ProcessContext) -> None:
        if action.name != "RECVMSG":
            self.inner.apply_input(state.inner, action, ctx)
            return
        sender = action.params[1]
        frame = action.params[2]
        if not isinstance(frame, tuple) or not frame:
            raise TransitionError(f"{self.name}: unframed message {frame!r}")
        if frame[0] == "DATA":
            _, seq, message = frame
            state.pending_acks.append((sender, seq))
            seen = state.delivered.setdefault(sender, set())
            if seq not in seen:
                seen.add(seq)
                self.inner.apply_input(
                    state.inner, Action("RECVMSG", (self.node, sender, message)), ctx
                )
        elif frame[0] == "ACK":
            _, seq = frame
            state.outbox.pop((sender, seq), None)
        else:
            raise TransitionError(f"{self.name}: unknown frame kind {frame[0]!r}")

    def enabled(self, state: AdapterState, ctx: ProcessContext) -> List[Action]:
        now = ctx.time
        actions: List[Action] = []
        # acks first: urgent
        for dst, seq in state.pending_acks:
            actions.append(self._ack(dst, seq))
        # due (re)transmissions
        for entry in state.outbox.values():
            if entry.next_attempt <= now + _TOLERANCE:
                actions.append(self._frame(entry))
        # inner actions, with SENDMSG rewritten into fresh DATA frames
        for action in self.inner.enabled(state.inner, ctx):
            if action.name == "SENDMSG":
                dst, message = action.params[1], action.params[2]
                seq = state.next_seq.get(dst, 0)
                actions.append(
                    Action("SENDMSG", (self.node, dst, ("DATA", seq, message)))
                )
            else:
                actions.append(action)
        return actions

    def fire(self, state: AdapterState, action: Action, ctx: ProcessContext) -> None:
        now = ctx.time
        if action.name != "SENDMSG":
            self.inner.fire(state.inner, action, ctx)
            return
        dst, frame = action.params[1], action.params[2]
        if frame[0] == "ACK":
            _, seq = frame
            try:
                state.pending_acks.remove((dst, seq))
            except ValueError:
                raise TransitionError(f"{self.name}: no pending ack {frame!r}")
            return
        _, seq, message = frame
        entry = state.outbox.get((dst, seq))
        if entry is None:
            # a *fresh* send: perform the inner SENDMSG effect, register
            # the outbox entry, schedule the first retransmission
            expected = state.next_seq.get(dst, 0)
            if seq != expected:
                raise TransitionError(
                    f"{self.name}: fresh frame seq {seq} != expected {expected}"
                )
            self.inner.fire(
                state.inner, Action("SENDMSG", (self.node, dst, message)), ctx
            )
            state.next_seq[dst] = seq + 1
            state.outbox[(dst, seq)] = _OutboxEntry(
                dst, seq, message, now + self.retransmit_interval, attempts=1
            )
            return
        # a retransmission
        entry.attempts += 1
        if entry.attempts >= self.max_attempts:
            del state.outbox[(dst, seq)]
        else:
            entry.next_attempt = now + self.retransmit_interval

    def deadline(self, state: AdapterState, ctx: ProcessContext) -> float:
        deadline = self.inner.deadline(state.inner, ctx)
        if state.pending_acks:
            return ctx.time
        for entry in state.outbox.values():
            deadline = min(deadline, entry.next_attempt)
        return deadline

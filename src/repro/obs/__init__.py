"""Observability: metrics registry, trace export, causal analysis.

- :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms,
  deterministic JSON snapshots, null instruments for the disabled path;
- :mod:`repro.obs.sketch` — mergeable quantile sketches (percentiles
  that aggregate byte-identically across campaign workers);
- :mod:`repro.obs.trace` — JSONL span/event tracer for the engine hot
  loop (null-object pattern when disabled);
- :mod:`repro.obs.causal` — causal span correlation, happens-before
  reconstruction, critical paths, and Theorem 6.5 bound checks
  (``python -m repro trace``);
- :mod:`repro.obs.schema` — JSON-schema validation of both export
  formats (the CI contract);
- :mod:`repro.obs.dashboard` — ASCII rendering for
  ``python -m repro report``.

See ``docs/observability.md`` for the metric name schema, the span
lifecycle, and worked examples.
"""

from repro.obs.causal import (
    BoundReport,
    CausalTrace,
    MessageSpan,
    OperationSpan,
    SpanBook,
    check_bounds,
)
from repro.obs.metrics import (
    CANONICAL_STAT_KEYS,
    CONTENTION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_METRICS,
    NULL_SKETCH,
    NullMetrics,
    OCCUPANCY_BUCKETS,
    SKEW_BUCKETS,
    merge_snapshots,
    registry_from_snapshot,
    stats_from_metrics,
)
from repro.obs.sketch import QuantileSketch, quantile_triplet
from repro.obs.trace import JsonlTracer, NULL_TRACER, Tracer, read_trace

__all__ = [
    "BoundReport",
    "CANONICAL_STAT_KEYS",
    "CONTENTION_BUCKETS",
    "CausalTrace",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlTracer",
    "LATENCY_BUCKETS",
    "MessageSpan",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_METRICS",
    "NULL_SKETCH",
    "NULL_TRACER",
    "NullMetrics",
    "OCCUPANCY_BUCKETS",
    "OperationSpan",
    "QuantileSketch",
    "SKEW_BUCKETS",
    "SpanBook",
    "Tracer",
    "check_bounds",
    "merge_snapshots",
    "quantile_triplet",
    "read_trace",
    "registry_from_snapshot",
    "stats_from_metrics",
]

"""Tests for the discrete-event simulator."""

import pytest

from repro.automata.actions import Action, action_set
from repro.automata.signature import Signature
from repro.components.base import Entity
from repro.errors import ScheduleError, SimulationLimitError, TimelockError
from repro.sim.engine import Simulator

INFINITY = float("inf")


class Beeper(Entity):
    """Emits BEEP_(name) at period, 2*period, ..."""

    def __init__(self, name, period, limit=None):
        super().__init__(name, Signature(outputs=action_set(("BEEP", (name,)))))
        self.period = period
        self.limit = limit

    def initial_state(self):
        return {"next": self.period, "count": 0}

    def enabled(self, state, now):
        if self.limit is not None and state["count"] >= self.limit:
            return []
        if abs(now - state["next"]) < 1e-9:
            return [Action("BEEP", (self.name, state["count"]))]
        return []

    def fire(self, state, action, now):
        state["count"] += 1
        state["next"] += self.period

    def deadline(self, state, now):
        if self.limit is not None and state["count"] >= self.limit:
            return INFINITY
        return state["next"]

    def apply_input(self, state, action, now):
        raise AssertionError("no inputs")


class Listener(Entity):
    def __init__(self, name, pattern):
        super().__init__(name, Signature(inputs=action_set(pattern)))
        self.heard = []

    def initial_state(self):
        return self.heard

    def enabled(self, state, now):
        return []

    def fire(self, state, action, now):
        raise AssertionError("listener fires nothing")

    def apply_input(self, state, action, now):
        state.append((action, now))


class Blocker(Entity):
    """Blocks time passage forever without enabling anything: timelock."""

    def __init__(self):
        super().__init__("blocker", Signature())

    def initial_state(self):
        return {}

    def enabled(self, state, now):
        return []

    def fire(self, state, action, now):
        raise AssertionError

    def apply_input(self, state, action, now):
        raise AssertionError

    def deadline(self, state, now):
        return 1.0  # but at now=1.0 nothing enabled -> timelock


class TestRun:
    def test_events_fire_at_deadlines(self):
        result = Simulator([Beeper("b", 1.0)]).run(3.5)
        assert [e.now for e in result.recorder.events] == [1.0, 2.0, 3.0]
        assert result.completed()

    def test_trace_contains_visible_outputs(self):
        result = Simulator([Beeper("b", 1.0)]).run(2.5)
        assert all(ev.action.name == "BEEP" for ev in result.trace)
        assert len(result.trace) == 2

    def test_hidden_actions_invisible(self):
        result = Simulator([Beeper("b", 1.0)], hidden=action_set("BEEP")).run(2.5)
        assert len(result.trace) == 0
        assert len(result.schedule) == 2

    def test_routing_to_listener(self):
        listener = Listener("hear", "BEEP")
        result = Simulator([Beeper("b", 1.0), listener]).run(2.5)
        heard = result.final_states["hear"]
        assert [a.params[1] for a, _ in heard] == [0, 1]

    def test_two_entities_interleave_by_time(self):
        result = Simulator([Beeper("x", 1.0), Beeper("y", 1.5)]).run(3.2)
        names = [(e.action.params[0], e.now) for e in result.recorder.events]
        assert names == [("x", 1.0), ("y", 1.5), ("x", 2.0), ("x", 3.0), ("y", 3.0)]

    def test_duplicate_entity_names_rejected(self):
        with pytest.raises(ScheduleError):
            Simulator([Beeper("b", 1.0), Beeper("b", 2.0)])

    def test_timelock_detected(self):
        with pytest.raises(TimelockError):
            Simulator([Blocker()]).run(5.0)

    def test_max_steps_guard(self):
        class Runaway(Entity):
            def __init__(self):
                super().__init__("run", Signature(outputs=action_set("GO")))

            def initial_state(self):
                return {}

            def enabled(self, state, now):
                return [Action("GO")]

            def fire(self, state, action, now):
                pass

            def apply_input(self, state, action, now):
                raise AssertionError

        with pytest.raises(SimulationLimitError):
            Simulator([Runaway()], max_steps=100).run(1.0)

    def test_stats_collected(self):
        result = Simulator([Beeper("b", 1.0)]).run(2.5)
        assert result.stats["actions"] == 2
        assert result.stats["time_advances"] >= 2

    def test_horizon_zero(self):
        result = Simulator([Beeper("b", 1.0)]).run(0.0)
        assert len(result.recorder) == 0

    def test_deadline_exactly_at_horizon_fires(self):
        result = Simulator([Beeper("b", 2.0)]).run(2.0)
        assert len(result.recorder) == 1


class TestInjections:
    def test_injected_inputs_delivered(self):
        listener = Listener("hear", "POKE")
        sim = Simulator([listener])
        result = sim.run(5.0, initial_inputs=[(Action("POKE", (1,)), 2.0)])
        heard = result.final_states["hear"]
        assert heard == [(Action("POKE", (1,)), 2.0)]

    def test_injections_recorded_as_environment(self):
        listener = Listener("hear", "POKE")
        result = Simulator([listener]).run(
            5.0, initial_inputs=[(Action("POKE", (1,)), 2.0)]
        )
        (record,) = result.recorder.events
        assert record.owner == "environment"

    def test_injections_in_time_order(self):
        listener = Listener("hear", "POKE")
        result = Simulator([listener]).run(
            5.0,
            initial_inputs=[
                (Action("POKE", (2,)), 3.0),
                (Action("POKE", (1,)), 1.0),
            ],
        )
        heard = result.final_states["hear"]
        assert [a.params[0] for a, _ in heard] == [1, 2]


class TestClockStampedTrace:
    def test_clockless_entities_stamp_with_now(self):
        result = Simulator([Beeper("b", 1.0)]).run(2.5)
        gamma = result.clock_trace()
        assert gamma.times() == [1.0, 2.0]

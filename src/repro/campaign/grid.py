"""Grid specifications: the cartesian parameter space of a campaign.

A :class:`Grid` names, for each swept *axis*, the list of values to
explore — ``eps``, ``[d1, d2]``, ``n``, the register model, the
workload shape, the fault model, and a deterministic seed batch — plus
fixed run parameters (horizon, MMT step bound). Its
:meth:`~Grid.points` method expands the cartesian product into a
deterministic, stably ordered list of *grid points*: plain dicts a
campaign worker can run in any process.

Determinism contract
--------------------
- Axis order is canonical (:data:`AXES`), independent of spec order.
- Each point carries a ``key`` — compact canonical JSON of its config —
  that identifies it across runs (the checkpoint/resume identity).
- :meth:`Grid.grid_id` hashes the canonical spec, so a checkpoint file
  can refuse to resume against a different grid.

Specs load from dicts (:meth:`Grid.from_dict`) or files
(:meth:`Grid.from_file`): JSON always, TOML when the interpreter ships
``tomllib`` (Python 3.11+) — there are no third-party dependencies.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import CampaignError

AXES: Tuple[str, ...] = (
    "model",
    "n",
    "eps",
    "d1",
    "d2",
    "c",
    "driver",
    "ops",
    "read_fraction",
    "fault",
    "p_drop",
    "plan_seed",
    "shards",
    "seed",
)
"""Canonical axis order; every grid point lists its config in this order."""

DEFAULTS: Dict[str, object] = {
    "model": "clock",
    "n": 3,
    "eps": 0.1,
    "d1": 0.2,
    "d2": 1.0,
    "c": 0.3,
    "driver": "mixed",
    "ops": 6,
    "read_fraction": 0.5,
    "fault": "none",
    "p_drop": 0.2,
    "plan_seed": 0,
    "shards": 1,
    "seed": 0,
}
"""Default value of every axis not swept (one register experiment)."""

RUN_DEFAULTS: Dict[str, float] = {
    "horizon": 60.0,
    "step_bound": 0.05,
    "delta": 0.01,
}
"""Fixed (non-swept) run parameters and their defaults."""

MODELS = ("clock", "timed", "baseline", "mmt")
FAULTS = ("none", "lossy", "plan")
DRIVERS = (
    "perfect", "fast", "slow", "skewed", "mixed", "random", "drift",
    "sawtooth",
)
GRANULARITY_FREE_DRIVERS = ("perfect", "fast", "slow", "skewed")
"""Drivers whose ``advance()`` trajectory is independent of how a time
interval is split — the only ones the sharded engine's window barriers
can reproduce (see :mod:`repro.sim.sharded`)."""


def point_key(config: Mapping[str, object]) -> str:
    """The canonical identity string of a grid point's config.

    Compact JSON with axes in :data:`AXES` order — byte-stable across
    runs, processes, and worker counts; checkpoints use it to recognize
    finished points.
    """
    ordered = {axis: config[axis] for axis in AXES}
    return json.dumps(ordered, separators=(",", ":"), sort_keys=False)


class Grid:
    """A cartesian sweep specification.

    Parameters
    ----------
    axes:
        mapping of axis name to the sequence of values to sweep; axes
        not named stay at their :data:`DEFAULTS` value. ``seed`` may
        also be given via ``seeds=k`` (expands to ``0..k-1``).
    run:
        fixed run parameters overriding :data:`RUN_DEFAULTS`.
    seeds:
        convenience for ``axes["seed"] = range(seeds)``.
    """

    def __init__(
        self,
        axes: Mapping[str, Sequence[object]],
        run: Optional[Mapping[str, float]] = None,
        seeds: Optional[int] = None,
    ):
        self.axes: Dict[str, List[object]] = {}
        for name, values in axes.items():
            if name not in AXES:
                raise CampaignError(
                    f"unknown grid axis {name!r}; known axes: {', '.join(AXES)}"
                )
            values = list(values)
            if not values:
                raise CampaignError(f"axis {name!r} has no values")
            if len(set(map(repr, values))) != len(values):
                raise CampaignError(f"axis {name!r} has duplicate values")
            self.axes[name] = values
        if seeds is not None:
            if "seed" in self.axes:
                raise CampaignError("give either a seed axis or seeds=, not both")
            if seeds < 1:
                raise CampaignError("seeds must be >= 1")
            self.axes["seed"] = list(range(seeds))
        self.run: Dict[str, float] = dict(RUN_DEFAULTS)
        for name, value in (run or {}).items():
            if name not in RUN_DEFAULTS:
                raise CampaignError(
                    f"unknown run parameter {name!r}; known: "
                    f"{', '.join(RUN_DEFAULTS)}"
                )
            self.run[name] = float(value)
        self._validate()

    # -- construction --------------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Grid":
        """Build a grid from a spec dict (the file format, parsed).

        Shape::

            {"grid": {"eps": [0.05, 0.1], "d2": [0.8, 1.0]},
             "seeds": 4,
             "run": {"horizon": 60.0}}

        Scalars in ``grid`` are promoted to one-element axes.
        """
        if not isinstance(payload, Mapping):
            raise CampaignError("grid spec must be a mapping")
        unknown = set(payload) - {"grid", "seeds", "run"}
        if unknown:
            raise CampaignError(
                f"unknown spec sections {sorted(unknown)}; "
                "expected 'grid', 'seeds', 'run'"
            )
        raw_axes = payload.get("grid") or {}
        if not isinstance(raw_axes, Mapping):
            raise CampaignError("'grid' section must be a mapping of axes")
        axes = {
            name: values if isinstance(values, (list, tuple)) else [values]
            for name, values in raw_axes.items()
        }
        seeds = payload.get("seeds")
        if seeds is not None and not isinstance(seeds, int):
            raise CampaignError("'seeds' must be an integer")
        return cls(axes, run=payload.get("run"), seeds=seeds)

    @classmethod
    def from_file(cls, path: str) -> "Grid":
        """Load a grid spec from a ``.json`` or ``.toml`` file."""
        if path.endswith(".toml"):
            try:
                import tomllib
            except ImportError as exc:  # Python < 3.11: no stdlib TOML parser
                raise CampaignError(
                    "TOML specs need Python 3.11+ (tomllib); "
                    "use a JSON spec instead"
                ) from exc
            try:
                with open(path, "rb") as handle:
                    payload = tomllib.load(handle)
            except (OSError, tomllib.TOMLDecodeError) as exc:
                raise CampaignError(f"cannot read grid spec {path}: {exc}") from exc
        else:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError) as exc:
                raise CampaignError(f"cannot read grid spec {path}: {exc}") from exc
        return cls.from_dict(payload)

    # -- validation ----------------------------------------------------------

    def _validate(self) -> None:
        for model in self.axes.get("model", [DEFAULTS["model"]]):
            if model not in MODELS:
                raise CampaignError(f"unknown model {model!r}; known: {MODELS}")
        for fault in self.axes.get("fault", [DEFAULTS["fault"]]):
            if fault not in FAULTS:
                raise CampaignError(f"unknown fault {fault!r}; known: {FAULTS}")
        for driver in self.axes.get("driver", [DEFAULTS["driver"]]):
            if driver not in DRIVERS:
                raise CampaignError(f"unknown driver {driver!r}; known: {DRIVERS}")
        for c in self.axes.get("c", [DEFAULTS["c"]]):
            if not (c == "u" or isinstance(c, (int, float))):
                raise CampaignError(
                    f"axis 'c' values must be numbers or 'u' (= 2*eps), got {c!r}"
                )
        shard_values = self.axes.get("shards", [DEFAULTS["shards"]])
        for shards in shard_values:
            if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
                raise CampaignError(
                    f"axis 'shards' values must be positive integers, got {shards!r}"
                )
        # Fail sharded sweeps at spec time, not one point at a time: a
        # clock-model point under window barriers gets extra advance()
        # calls, which only granularity-free drivers tolerate.
        if any(s > 1 for s in shard_values if isinstance(s, int)):
            if "clock" in self.axes.get("model", [DEFAULTS["model"]]):
                for driver in self.axes.get("driver", [DEFAULTS["driver"]]):
                    if driver not in GRANULARITY_FREE_DRIVERS:
                        raise CampaignError(
                            f"shards>1 clock-model points need a "
                            f"granularity-free driver (one of "
                            f"{GRANULARITY_FREE_DRIVERS}); got {driver!r} — "
                            f"window barriers split advance() intervals, "
                            f"which would change its clock trajectory"
                        )

    # -- expansion -----------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of grid points (product of axis lengths)."""
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return size

    def canonical(self) -> Dict[str, object]:
        """The spec as a canonical dict (axes in :data:`AXES` order)."""
        return {
            "axes": {
                axis: list(self.axes[axis]) for axis in AXES if axis in self.axes
            },
            "run": {name: self.run[name] for name in sorted(self.run)},
        }

    def grid_id(self) -> str:
        """A short stable hash of the canonical spec (the campaign id)."""
        text = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]

    def points(self) -> List[Dict[str, object]]:
        """Expand the cartesian product into ordered grid-point dicts.

        Each point is ``{"index", "key", "config", "run"}`` — plain data,
        picklable, self-contained. Iteration order is the cartesian
        product with axes in canonical order, so point ``index`` is
        stable for a given spec.
        """
        swept = [axis for axis in AXES if axis in self.axes]
        points: List[Dict[str, object]] = []
        for index, combo in enumerate(
            itertools.product(*(self.axes[axis] for axis in swept))
        ):
            config = dict(DEFAULTS)
            config.update(dict(zip(swept, combo)))
            points.append(
                {
                    "index": index,
                    "key": point_key(config),
                    "config": config,
                    "run": dict(self.run),
                }
            )
        return points

    def __repr__(self) -> str:
        swept = {axis: len(vals) for axis, vals in self.axes.items()}
        return f"<Grid {self.grid_id()}: {self.size} points, axes {swept}>"

"""Shard-isolation / race detector (``ISO001``–``ISO003``).

The entity-sharded parallel engine (ROADMAP item 1) will advance entity
shards through ``d1``-wide windows independently — which is only sound
if no mutable state is reachable from two entity instances. Balaguer &
Chatain's *Avoiding Shared Clocks* result makes the same point for
timed automata: shared state must be eliminated *before* components may
advance on their own clocks. This pass is the pre-flight race detector:
it builds a read/write effect summary for every Entity/Process subclass
and reports the three ways Python code shares state behind the
engine's back:

``ISO001``
    Writes to module-level globals from entity methods (``global x``
    rebinds, or in-place mutation of a module-level object). Globals
    are process-wide: two sharded entities would race on them — and
    even serially they leak state across runs.
``ISO002``
    Mutation of class attributes from instance methods (``type(self)``
    / ``self.__class__`` / ``ClassName.x`` writes, or in-place mutation
    of a class-level mutable default that ``__init__`` never rebinds).
    Class attributes are shared by every instance of the entity family.
``ISO003``
    A received payload stored into entity state **by reference**
    (``state.buffer.append(action.params[2])`` without a copy): the
    sender and receiver then alias one object — the PR 5 lossy-channel
    duplication bug class. Only *container* stores are flagged (a
    scalar attribute rebind is overwritten wholesale; container-held
    references outlive the transition and fan out). Ownership-transfer
    sites — where the sender provably never touches the object again —
    carry inline suppressions; cross-process sharding severs such
    aliases anyway when payloads are pickled across the shard boundary.

:func:`build_isolation_report` turns the same effect summaries into the
machine-readable independence report the sharded engine will consume
(committed at ``benchmarks/results/lint_isolation.json``, rendered in
``docs/shard-isolation.md``).
"""

from __future__ import annotations

import ast
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.core import (
    ClassDecl,
    Finding,
    LintResult,
    MUTATOR_METHODS,
    ProjectIndex,
    SourceModule,
    dotted_name,
)

#: Container methods whose arguments are *retained* by the receiver.
_STORE_METHODS = {
    "append": 0, "appendleft": 0, "add": 0, "extend": 0, "extendleft": 0,
    "insert": 1, "setdefault": 1, "update": 0,
}

_COPY_CALLS = {"copy.copy", "copy.deepcopy", "deepcopy"}


# -- module-level bindings ----------------------------------------------------


def _module_bindings(module: SourceModule) -> Set[str]:
    names: Set[str] = set()
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                names.add((alias.asname or alias.name).split(".")[0])
    return names


def _local_names(func: ast.FunctionDef) -> Set[str]:
    names = {arg.arg for arg in func.args.args}
    names.update(arg.arg for arg in func.args.kwonlyargs)
    if func.args.vararg:
        names.add(func.args.vararg.arg)
    if func.args.kwarg:
        names.add(func.args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        elif isinstance(node, (ast.For, ast.AnnAssign, ast.AugAssign)):
            target = node.target
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            for sub in ast.walk(node.optional_vars):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return names


def _globals_declared(func: ast.FunctionDef) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            names.update(node.names)
    return names


# -- class-shared bases -------------------------------------------------------


def _is_class_shared_base(node: ast.expr, class_name: str) -> bool:
    """``type(self)`` / ``self.__class__`` / ``ClassName`` receivers."""
    if isinstance(node, ast.Call):
        return (
            isinstance(node.func, ast.Name)
            and node.func.id == "type"
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id == "self"
        )
    if isinstance(node, ast.Attribute):
        return (
            node.attr == "__class__"
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        )
    if isinstance(node, ast.Name):
        return node.id == class_name
    return False


def _chain_base(node: ast.expr) -> ast.expr:
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    return current


def _init_rebound_attrs(decls: Sequence[ClassDecl]) -> Set[str]:
    """Attributes ``__init__`` (anywhere in the chain) rebinds on self."""
    rebound: Set[str] = set()
    for decl in decls:
        init = decl.methods.get("__init__")
        if init is None:
            continue
        for node in ast.walk(init):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        rebound.add(target.attr)
    return rebound


# -- payload taint ------------------------------------------------------------


def _is_copy_call(node: ast.Call) -> bool:
    name = dotted_name(node.func)
    if name in _COPY_CALLS:
        return True
    return isinstance(node.func, ast.Attribute) and node.func.attr == "copy"


def _expr_taints(
    expr: ast.expr, action_param: str, tainted: Set[str]
) -> Optional[ast.expr]:
    """The first payload-tainted sub-expression of ``expr``, if any.

    ``action`` itself and anything derived from ``action.params`` are
    tainted; ``action.name``-style metadata reads are not; anything
    wrapped in ``copy.copy``/``copy.deepcopy``/``.copy()`` is cleansed.
    """
    if isinstance(expr, (ast.BinOp, ast.UnaryOp, ast.Compare, ast.BoolOp,
                         ast.JoinedStr)):
        return None  # arithmetic/comparison results are fresh objects
    if isinstance(expr, ast.Name):
        if expr.id == action_param or expr.id in tainted:
            return expr
        return None
    if isinstance(expr, ast.Attribute):
        if isinstance(expr.value, ast.Name) and expr.value.id == action_param:
            return expr if expr.attr == "params" else None
        return _expr_taints(expr.value, action_param, tainted)
    if isinstance(expr, ast.Subscript):
        return _expr_taints(expr.value, action_param, tainted)
    if isinstance(expr, ast.Call):
        if _is_copy_call(expr):
            return None
        for arg in list(expr.args) + [kw.value for kw in expr.keywords]:
            hit = _expr_taints(arg, action_param, tainted)
            if hit is not None:
                return hit
        return None
    for child in ast.iter_child_nodes(expr):
        if isinstance(child, ast.expr):
            hit = _expr_taints(child, action_param, tainted)
            if hit is not None:
                return hit
    return None


def _tainted_locals(func: ast.FunctionDef, action_param: str) -> Set[str]:
    tainted: Set[str] = set()
    for _ in range(2):  # two passes reach chained assignments
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            if _expr_taints(node.value, action_param, tainted) is None:
                continue
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        tainted.add(sub.id)
    return tainted


def _describe_expr(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return dotted_name(node) or "<expr>"


# -- per-class effect summary -------------------------------------------------


def class_effects(index: ProjectIndex, decl: ClassDecl) -> Dict[str, Any]:
    """The read/write effect summary of one entity/process class.

    Only locally-defined methods are analyzed (ancestors report their
    own effects); ``__repr__`` is skipped as pure formatting.
    """
    module_names = _module_bindings(decl.module)
    chain = [decl] + index.ancestors(decl)
    mutable_class_attrs: Set[str] = set()
    for current in chain:
        mutable_class_attrs.update(current.class_mutable_attrs)
    rebound = _init_rebound_attrs(chain)
    shared_defaults = mutable_class_attrs - rebound

    state_writes: Set[str] = set()
    self_writes: Set[str] = set()
    global_writes: List[Dict[str, Any]] = []
    class_mutations: List[Dict[str, Any]] = []
    aliases: List[Dict[str, Any]] = []

    for method_name in sorted(decl.methods):
        if method_name == "__repr__":
            continue
        func = decl.methods[method_name]
        params = [arg.arg for arg in func.args.args]
        locals_here = _local_names(func)
        global_decls = _globals_declared(func)
        action_param = "action" if "action" in params[1:] else None
        state_param = None
        non_self = [p for p in params if p != "self"]
        if non_self and non_self[0] not in ("metrics",):
            state_param = non_self[0]

        tainted = (
            _tainted_locals(func, action_param) if action_param else set()
        )

        for node in ast.walk(func):
            # -- writes ------------------------------------------------
            targets: List[ast.expr] = []
            values: List[Optional[ast.expr]] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
                values = [node.value] * len(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
                values = [getattr(node, "value", None)]
            for target, value in zip(targets, values):
                if isinstance(target, ast.Name):
                    if target.id in global_decls:
                        global_writes.append({
                            "method": method_name, "name": target.id,
                            "line": node.lineno,
                        })
                    continue
                if not isinstance(target, (ast.Attribute, ast.Subscript)):
                    continue
                base = _chain_base(target)
                if _is_class_shared_base(
                    target.value if isinstance(target, (ast.Attribute, ast.Subscript)) else target,
                    decl.name,
                ) or _is_class_shared_base(base, decl.name):
                    attr = target.attr if isinstance(target, ast.Attribute) else "?"
                    class_mutations.append({
                        "method": method_name, "name": attr,
                        "line": node.lineno,
                    })
                    continue
                if isinstance(base, ast.Name):
                    if base.id == "self" and isinstance(target, ast.Attribute):
                        if method_name != "__init__":
                            self_writes.add(target.attr)
                    elif state_param is not None and base.id == state_param:
                        if isinstance(target, ast.Attribute):
                            state_writes.add(target.attr)
                        else:
                            first = _first_attr(target, state_param)
                            if first:
                                state_writes.add(first)
                        # subscript store of a tainted payload
                        if (
                            isinstance(target, ast.Subscript)
                            and action_param is not None
                            and value is not None
                        ):
                            hit = _expr_taints(value, action_param, tainted)
                            if hit is not None:
                                aliases.append({
                                    "method": method_name,
                                    "line": node.lineno,
                                    "col": node.col_offset + 1,
                                    "target": _describe_expr(target.value),
                                    "value": _describe_expr(hit),
                                })
                    elif (
                        base.id in module_names
                        and base.id not in locals_here
                    ):
                        global_writes.append({
                            "method": method_name, "name": base.id,
                            "line": node.lineno,
                        })

            # -- in-place mutation calls -------------------------------
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                receiver = node.func.value
                base = _chain_base(receiver)
                if attr in MUTATOR_METHODS:
                    if _is_class_shared_base(receiver, decl.name) or (
                        isinstance(receiver, ast.Attribute)
                        and isinstance(receiver.value, ast.Name)
                        and receiver.value.id == "self"
                        and receiver.attr in shared_defaults
                    ):
                        name = (
                            receiver.attr
                            if isinstance(receiver, ast.Attribute)
                            else _describe_expr(receiver)
                        )
                        class_mutations.append({
                            "method": method_name, "name": name,
                            "line": node.lineno,
                        })
                    elif isinstance(base, ast.Name):
                        if base.id == "self" and isinstance(receiver, ast.Attribute):
                            self_writes.add(_first_attr(receiver, "self") or receiver.attr)
                        elif state_param is not None and base.id == state_param:
                            first = _first_attr(receiver, state_param)
                            if first:
                                state_writes.add(first)
                        elif (
                            base.id in module_names
                            and base.id not in locals_here
                        ):
                            global_writes.append({
                                "method": method_name, "name": base.id,
                                "line": node.lineno,
                            })
                # retained-argument stores of tainted payloads
                if (
                    attr in _STORE_METHODS
                    and action_param is not None
                    and isinstance(base, ast.Name)
                    and (
                        base.id == "self"
                        or (state_param is not None and base.id == state_param)
                    )
                ):
                    for arg in node.args[_STORE_METHODS[attr]:]:
                        hit = _expr_taints(arg, action_param, tainted)
                        if hit is not None:
                            aliases.append({
                                "method": method_name,
                                "line": node.lineno,
                                "col": node.col_offset + 1,
                                "target": _describe_expr(receiver),
                                "value": _describe_expr(hit),
                            })
                            break

    return {
        "state_attr_writes": sorted(state_writes),
        "self_attr_writes": sorted(self_writes),
        "global_writes": global_writes,
        "class_attr_mutations": class_mutations,
        "payload_aliases": aliases,
    }


def _first_attr(node: ast.expr, root: str) -> Optional[str]:
    chain: List[ast.expr] = []
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        chain.append(current)
        current = current.value
    if not (isinstance(current, ast.Name) and current.id == root):
        return None
    for link in reversed(chain):
        if isinstance(link, ast.Attribute):
            return link.attr
    return None


# -- findings -----------------------------------------------------------------


def check_project(index: ProjectIndex) -> List[Finding]:
    """All isolation findings (``ISO*``) for the project's entity classes."""
    findings: List[Finding] = []
    for decl in index.classes:
        if index.kind_of(decl) is None:
            continue
        effects = class_effects(index, decl)
        for entry in effects["global_writes"]:
            findings.append(Finding(
                rule="ISO001",
                path=decl.module.relpath,
                line=entry["line"], col=1,
                scope=f"{decl.name}.{entry['method']}",
                message=f"{entry['method']}() writes module-global "
                        f"{entry['name']!r} shared by all entity instances",
            ))
        for entry in effects["class_attr_mutations"]:
            findings.append(Finding(
                rule="ISO002",
                path=decl.module.relpath,
                line=entry["line"], col=1,
                scope=f"{decl.name}.{entry['method']}",
                message=f"{entry['method']}() mutates class attribute "
                        f"{entry['name']!r} shared by all instances",
            ))
        for entry in effects["payload_aliases"]:
            findings.append(Finding(
                rule="ISO003",
                path=decl.module.relpath,
                line=entry["line"], col=entry["col"],
                scope=f"{decl.name}.{entry['method']}",
                message=f"{entry['method']}() stores received payload "
                        f"{entry['value']} into {entry['target']} without "
                        f"copy (aliases the sender's object)",
            ))
    return findings


# -- independence report ------------------------------------------------------


def build_isolation_report(
    index: ProjectIndex, result: Optional[LintResult] = None
) -> Dict[str, Any]:
    """The machine-readable shard-independence report.

    Shared globals and class-attribute mutations are *blockers* for
    entity-sharded execution; payload aliases are *transfer edges* —
    documented hand-offs that in-process sharding must respect and that
    cross-process sharding severs via serialization. When a
    :class:`LintResult` is supplied, each blocker/edge is annotated
    with its lint disposition (``suppressed`` + justification, or
    ``open``).
    """
    dispositions: Dict[Tuple[str, int, str], Tuple[str, str]] = {}
    if result is not None:
        for assessed in result.assessed:
            finding = assessed.finding
            key = (finding.path, finding.line, finding.rule)
            dispositions[key] = (assessed.status, assessed.justification)

    def disposition(path: str, line: int, rule: str) -> Dict[str, str]:
        status, justification = dispositions.get(
            (path, line, rule), ("open", "")
        )
        if status == "new":
            status = "open"
        out = {"disposition": status}
        if justification:
            out["justification"] = justification
        return out

    classes: List[Dict[str, Any]] = []
    blocked = 0
    transfer_edges = 0
    entities = processes = 0
    for decl in index.classes:
        kind = index.kind_of(decl)
        if kind is None:
            continue
        if kind == "entity":
            entities += 1
        else:
            processes += 1
        effects = class_effects(index, decl)
        blockers: List[Dict[str, Any]] = []
        for rule, key in (("ISO001", "global_writes"),
                          ("ISO002", "class_attr_mutations")):
            for entry in effects[key]:
                blocker = {
                    "rule": rule, "method": entry["method"],
                    "name": entry["name"], "line": entry["line"],
                }
                blocker.update(
                    disposition(decl.module.relpath, entry["line"], rule)
                )
                blockers.append(blocker)
        edges: List[Dict[str, Any]] = []
        for entry in effects["payload_aliases"]:
            edge = {
                "rule": "ISO003", "method": entry["method"],
                "line": entry["line"], "target": entry["target"],
                "value": entry["value"],
            }
            edge.update(
                disposition(decl.module.relpath, entry["line"], "ISO003")
            )
            edges.append(edge)
        transfer_edges += len(edges)
        if blockers:
            blocked += 1
        classes.append({
            "class": decl.name,
            "kind": kind,
            "module": decl.module.relpath,
            "line": decl.node.lineno,
            "effects": {
                "state_attr_writes": effects["state_attr_writes"],
                "self_attr_writes": effects["self_attr_writes"],
            },
            "blockers": blockers,
            "transfer_edges": edges,
            "verdict": "blocked" if blockers else "independent",
        })

    return {
        "version": 1,
        "summary": {
            "entities": entities,
            "processes": processes,
            "independent": entities + processes - blocked,
            "blocked": blocked,
            "transfer_edges": transfer_edges,
        },
        "classes": classes,
    }

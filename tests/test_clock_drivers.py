"""Tests for clock drivers (the C_eps envelope adversaries)."""

import pytest

from repro.errors import ClockEnvelopeError
from repro.sim.clock_drivers import (
    DriftingClockDriver,
    FastClockDriver,
    PerfectClockDriver,
    RandomWalkClockDriver,
    SawtoothClockDriver,
    SkewedClockDriver,
    SlowClockDriver,
    driver_factory,
)

INFINITY = float("inf")


class TestEnvelope:
    @pytest.mark.parametrize(
        "driver",
        [
            PerfectClockDriver(0.1),
            FastClockDriver(0.1),
            SlowClockDriver(0.1),
            SkewedClockDriver(0.1, 0.05),
            DriftingClockDriver(0.1, 1.5),
            DriftingClockDriver(0.1, 0.7),
            SawtoothClockDriver(0.1, 1.02, 5.0),
            RandomWalkClockDriver(0.1, seed=4),
        ],
    )
    def test_trajectory_stays_in_envelope(self, driver):
        now, clock = 0.0, 0.0
        for _ in range(200):
            new_now = now + 0.25
            clock = driver.step(now, clock, new_now, INFINITY)
            now = new_now
            assert abs(now - clock) <= driver.eps + 1e-9
            assert clock >= 0.0

    def test_monotone(self):
        driver = RandomWalkClockDriver(0.2, seed=9, lo_rate=0.1, hi_rate=2.0)
        now, clock = 0.0, 0.0
        for _ in range(100):
            new_now = now + 0.1
            new_clock = driver.step(now, clock, new_now, INFINITY)
            assert new_clock >= clock - 1e-12
            now, clock = new_now, new_clock

    def test_negative_eps_rejected(self):
        with pytest.raises(ValueError):
            PerfectClockDriver(-0.1)

    def test_beta_beyond_eps_rejected(self):
        with pytest.raises(ValueError):
            SkewedClockDriver(0.1, 0.2)


class TestCap:
    def test_cap_clamps_clock(self):
        driver = FastClockDriver(0.5)
        clock = driver.step(0.0, 0.0, 1.0, cap=0.8)
        assert clock == pytest.approx(0.8)

    def test_infeasible_window_raises(self):
        driver = PerfectClockDriver(0.1)
        # new_now - eps > cap: no feasible clock value
        with pytest.raises(ClockEnvelopeError):
            driver.step(0.0, 0.0, 1.0, cap=0.5)

    def test_max_now_maps_cap_through_eps(self):
        driver = PerfectClockDriver(0.25)
        assert driver.max_now(0.0, 0.0, cap=2.0) == pytest.approx(2.25)

    def test_max_now_infinite_cap(self):
        assert PerfectClockDriver(0.1).max_now(5.0, 5.0, INFINITY) == INFINITY

    def test_binding_cap_makes_time_urgent(self):
        driver = PerfectClockDriver(0.1)
        assert driver.max_now(3.0, 2.0, cap=2.0) == 3.0


class TestExtremes:
    def test_fast_clock_rides_upper_boundary(self):
        driver = FastClockDriver(0.2)
        clock = driver.step(0.0, 0.0, 5.0, INFINITY)
        assert clock == pytest.approx(5.2)

    def test_slow_clock_rides_lower_boundary(self):
        driver = SlowClockDriver(0.2)
        clock = driver.step(0.0, 0.0, 5.0, INFINITY)
        assert clock == pytest.approx(4.8)

    def test_slow_clock_never_negative(self):
        driver = SlowClockDriver(0.5)
        clock = driver.step(0.0, 0.0, 0.2, INFINITY)
        assert clock >= 0.0

    def test_drifting_clock_saturates(self):
        driver = DriftingClockDriver(0.1, 2.0)
        now, clock = 0.0, 0.0
        for _ in range(50):
            clock = driver.step(now, clock, now + 1.0, INFINITY)
            now += 1.0
        assert clock == pytest.approx(now + 0.1)


class TestFactory:
    @pytest.mark.parametrize(
        "kind", ["perfect", "fast", "slow", "skewed", "drift", "sawtooth",
                 "random", "mixed"]
    )
    def test_all_kinds_construct(self, kind):
        factory = driver_factory(kind, 0.1, seed=1)
        for node in range(4):
            driver = factory(node)
            assert driver.eps == 0.1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            driver_factory("bogus", 0.1)(0)

    def test_mixed_varies_by_node(self):
        factory = driver_factory("mixed", 0.1)
        kinds = {type(factory(i)).__name__ for i in range(3)}
        assert len(kinds) == 3

    def test_random_drivers_differ_by_node(self):
        factory = driver_factory("random", 10.0, seed=0)
        d0, d1 = factory(0), factory(1)
        c0 = d0.step(0.0, 0.0, 1.0, INFINITY)
        c1 = d1.step(0.0, 0.0, 1.0, INFINITY)
        assert c0 != c1

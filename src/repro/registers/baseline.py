"""The [10]-style native clock-model register (Section 6.3 baseline).

Mavronicolas's thesis [10] is not publicly available; the paper reports
only that its clock-model algorithm "involves some complicated
time-slicing" and achieves read time ``4u`` and write time ``d2 + 3u``
in the model where clocks differ from each other by at most ``u``
(``u = 2*eps`` in our model's terms). This module reconstructs a
time-sliced algorithm with exactly those bounds, so the Section 6.3
comparison can be *run* rather than merely quoted.

Design (all times are local clock times; slots have width ``u``):

- **Write** at clock ``w``: broadcast ``(v, T)`` immediately, where
  ``T = ceil((w + d2 + u) / u) * u`` is a slot boundary; ACK when the
  local clock reaches ``T``. Since any receiver's clock at message
  arrival is at most ``w + d2 + u <= T``, every replica can apply the
  update exactly when its local clock reads ``T`` — same-``T`` ties
  broken by the larger sender index. Write latency: ``T - w < d2 + 2u``
  in clock time, at most ``d2 + 3u`` in real time.
- **Read** at clock ``r``: snapshot the local value when the clock
  reads ``r + 2u``, respond with it at ``r + 4u``. The two-slot lead of
  the snapshot guarantees the snapshot point exceeds the ``T`` of every
  write acknowledged before the read was invoked, and the two-slot lag
  of the response keeps snapshot points of real-time-ordered reads
  monotone despite clock skew. Read latency: exactly ``4u``.

Why this is the fair comparison: both the transformed algorithm S and
this baseline solve plain linearizability against clocks that are ``eps``
from real time; S (Theorem 6.5) costs read ``c + u`` / write
``d2 - c + u`` (combined ``d2 + 2u``), the slotted baseline read ``4u`` /
write ``d2 + 3u`` (combined ``d2 + 7u``) — the paper's stated gap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.automata.actions import Action
from repro.components.base import Process, ProcessContext
from repro.errors import TransitionError
from repro.registers.algorithm_l import (
    ACK_PENDING,
    ACTIVE,
    INACTIVE,
    SEND,
    register_signature,
)

from repro.constants import INFINITY, TOLERANCE as _TOLERANCE


@dataclass
class SlottedState:
    """Baseline state: register value plus slot-scheduled bookkeeping."""

    value: object = None
    # pending updates: slot boundary T -> (sender, value)
    pending: Dict[float, Tuple[int, object]] = field(default_factory=dict)
    # read record
    read_status: str = INACTIVE
    snap_time: Optional[float] = None
    resp_time: Optional[float] = None
    snap_value: object = None
    snap_taken: bool = False
    # write record
    write_status: str = INACTIVE
    send_value: object = None
    send_procs: Set[int] = field(default_factory=set)
    send_time: Optional[float] = None
    apply_slot: Optional[float] = None


class SlottedRegisterProcess(Process):
    """Time-sliced register designed natively for the clock model.

    Run it under
    :class:`~repro.core.clock_transform.NativeClockNodeEntity` (or via
    :func:`repro.registers.system.baseline_register_system`): the
    process's notion of time *is* the node clock.
    """

    SNAP = "SNAP"
    APPLY = "APPLY"

    def __init__(
        self,
        node: int,
        peers: Sequence[int],
        d2: float,
        u: float,
        initial_value: object = None,
    ):
        if u <= 0:
            raise ValueError("the slot width u must be positive")
        from repro.automata.actions import ActionPattern, PatternActionSet
        from repro.automata.signature import Signature

        base = register_signature(node)
        internals = PatternActionSet(
            [
                ActionPattern(self.SNAP, (node,)),
                ActionPattern(self.APPLY, (node,)),
            ]
        )
        signature = Signature(
            inputs=base.inputs,
            outputs=base.outputs,
            internals=internals,
        )
        super().__init__(node, signature, name=f"slotted({node})")
        self.peers = sorted(peers)
        self.d2 = d2
        self.u = u
        self.initial_value = initial_value

    # -- analytic bounds (Section 6.3, clock time) ---------------------------

    @property
    def read_bound(self) -> float:
        """Read latency in clock time: ``4u``."""
        return 4.0 * self.u

    @property
    def write_bound(self) -> float:
        """Worst-case write latency in clock time: ``d2 + 2u``
        (``d2 + 3u`` in real time once clock skew is accounted)."""
        return self.d2 + 2.0 * self.u

    def _slot_ceiling(self, t: float) -> float:
        """The smallest slot boundary ``>= t``."""
        return math.ceil(t / self.u - _TOLERANCE) * self.u

    # -- process interface -------------------------------------------------------

    def initial_state(self) -> SlottedState:
        return SlottedState(value=self.initial_value)

    def apply_input(
        self, state: SlottedState, action: Action, ctx: ProcessContext
    ) -> None:
        clock = ctx.time
        if action.name == "READ":
            state.read_status = ACTIVE
            state.snap_time = clock + 2.0 * self.u
            state.resp_time = clock + 4.0 * self.u
            state.snap_taken = False
            state.snap_value = None
        elif action.name == "WRITE":
            value = action.params[1]
            state.write_status = SEND
            state.send_value = value
            state.send_procs = set(self.peers)
            state.send_time = clock
            state.apply_slot = self._slot_ceiling(clock + self.d2 + self.u)
        elif action.name == "RECVMSG":
            sender = action.params[1]
            value, slot = action.params[2]
            existing = state.pending.get(slot)
            if existing is None or existing[0] < sender:
                # repro: lint-ignore[ISO003] -- the written value is held
                # read-only until its slot boundary, then applied by value
                state.pending[slot] = (sender, value)
        else:
            raise TransitionError(f"{self.name}: unexpected input {action}")

    def enabled(self, state: SlottedState, ctx: ProcessContext) -> List[Action]:
        clock = ctx.time
        actions: List[Action] = []
        if state.write_status == SEND and _at(clock, state.send_time):
            for j in sorted(state.send_procs):
                actions.append(
                    Action(
                        "SENDMSG",
                        (self.node, j, (state.send_value, state.apply_slot)),
                    )
                )
        due = [slot for slot in state.pending if slot <= clock + _TOLERANCE]
        for slot in sorted(due):
            actions.append(Action(self.APPLY, (self.node, slot)))
        if state.write_status == ACK_PENDING and _at(clock, state.apply_slot):
            # ACK only after the local copy applied this write's slot.
            if not any(slot <= state.apply_slot + _TOLERANCE for slot in due):
                actions.append(Action("ACK", (self.node,)))
        if state.read_status == ACTIVE and not state.snap_taken:
            if _at(clock, state.snap_time) and not any(
                slot <= state.snap_time + _TOLERANCE for slot in due
            ):
                actions.append(Action(self.SNAP, (self.node,)))
        if (
            state.read_status == ACTIVE
            and state.snap_taken
            and _at(clock, state.resp_time)
        ):
            actions.append(Action("RETURN", (self.node, state.snap_value)))
        return actions

    def fire(
        self, state: SlottedState, action: Action, ctx: ProcessContext
    ) -> None:
        if action.name == "SENDMSG":
            j = action.params[1]
            if j not in state.send_procs:
                raise TransitionError(f"{self.name}: duplicate send to {j}")
            state.send_procs.discard(j)
            if not state.send_procs:
                state.write_status = ACK_PENDING
                state.send_time = None
        elif action.name == self.APPLY:
            slot = action.params[1]
            if slot not in state.pending:
                raise TransitionError(f"{self.name}: no pending update at {slot:g}")
            _, value = state.pending.pop(slot)
            state.value = value
        elif action.name == "ACK":
            state.write_status = INACTIVE
            state.apply_slot = None
            state.send_value = None
        elif action.name == self.SNAP:
            state.snap_value = state.value
            state.snap_taken = True
        elif action.name == "RETURN":
            state.read_status = INACTIVE
            state.snap_time = None
            state.resp_time = None
            state.snap_taken = False
        else:
            raise TransitionError(f"{self.name}: cannot fire {action}")

    def deadline(self, state: SlottedState, ctx: ProcessContext) -> float:
        candidates: List[float] = []
        if state.write_status == SEND and state.send_time is not None:
            candidates.append(state.send_time)
        if state.write_status == ACK_PENDING and state.apply_slot is not None:
            candidates.append(state.apply_slot)
        if state.read_status == ACTIVE:
            if not state.snap_taken and state.snap_time is not None:
                candidates.append(state.snap_time)
            if state.snap_taken and state.resp_time is not None:
                candidates.append(state.resp_time)
        if state.pending:
            candidates.append(min(state.pending))
        return min(candidates) if candidates else INFINITY


def _at(clock: float, scheduled: Optional[float]) -> bool:
    return scheduled is not None and abs(clock - scheduled) <= _TOLERANCE

"""Conformance of the incremental engine core against the full scan.

``Simulator(..., incremental=True)`` (the default) runs the dirty-set /
routing-table / deadline-heap core; ``incremental=False`` re-derives
every entity's enabled set and deadline on every event, exactly as the
models' operational semantics read. The two must produce byte-identical
recorder event sequences on every seeded system in the corpus — any
divergence means an entity broke a scheduling promise declared on
:class:`repro.components.base.Entity` (``pure_enabled`` /
``static_deadline`` / ``wakes_at_deadline``).

Also the regression tests for the engine-loop bugs fixed alongside the
rework: ``stop_when`` after injection delivery, and ring-recorder event
totals.
"""

import pytest

from repro.automata.actions import Action
from repro.clocks.sources import DriftingClockSource
from repro.components.pinger import pinger_process_factory, pinger_topology
from repro.core.pipeline import (
    build_clock_system,
    build_mmt_system,
    build_timed_system,
)
from repro.faults.crash import CrashableEntity, CrashSchedule
from repro.faults.models import BernoulliFaults
from repro.registers.system import (
    baseline_register_system,
    clock_register_system,
    timed_register_system,
)
from repro.registers.workload import RegisterWorkload
from repro.sim.clock_drivers import driver_factory
from repro.sim.delay import UniformDelay
from repro.sim.engine import Simulator
from repro.sim.recorder import Recorder
from repro.sim.scheduler import (
    DeterministicScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)

HORIZON = 30.0


def _pinger_timed():
    return build_timed_system(
        pinger_topology(), pinger_process_factory(6, 1.0), 0.2, 0.6
    )


def _pinger_clock():
    return build_clock_system(
        pinger_topology(), pinger_process_factory(6, 1.0), 0.05, 0.2, 0.6,
        driver_factory("mixed", 0.05, seed=3),
    )


def _pinger_mmt():
    return build_mmt_system(
        pinger_topology(), pinger_process_factory(6, 1.0), 0.05, 0.2, 0.6,
        0.1, lambda i: DriftingClockSource(0.05, 1.004, 10.0),
    )


def _timed_register():
    return timed_register_system(
        n=3, d1_prime=0.2, d2_prime=1.0, c=0.3,
        workload=RegisterWorkload(operations=5, seed=4),
        delay_model=UniformDelay(seed=4),
    )


def _clock_register():
    return clock_register_system(
        n=3, d1=0.2, d2=1.0, c=0.3, eps=0.1,
        workload=RegisterWorkload(operations=5, seed=5),
        drivers=driver_factory("random", 0.1, seed=5),
        delay_model=UniformDelay(seed=5),
    )


def _baseline_register():
    return baseline_register_system(
        n=3, d1=0.2, d2=1.0, eps=0.1,
        workload=RegisterWorkload(operations=4, seed=6),
        drivers=driver_factory("mixed", 0.1, seed=6),
        delay_model=UniformDelay(seed=6),
    )


def _crashed_pinger():
    spec = build_timed_system(
        pinger_topology(), pinger_process_factory(8, 1.0), 0.2, 0.6
    )
    spec.entities[:] = [
        CrashableEntity(e, CrashSchedule(4.5)) if e.name == "echo(1)" else e
        for e in spec.entities
    ]
    return spec


def _lossy_pinger():
    return build_timed_system(
        pinger_topology(), pinger_process_factory(8, 1.0), 0.2, 0.6,
        fault_model=BernoulliFaults(seed=9, p_drop=0.3),
    )


CORPUS = [
    ("pinger-timed", _pinger_timed),
    ("pinger-clock", _pinger_clock),
    ("pinger-mmt", _pinger_mmt),
    ("register-timed", _timed_register),
    ("register-clock", _clock_register),
    ("register-baseline", _baseline_register),
    ("crash", _crashed_pinger),
    ("lossy", _lossy_pinger),
]

SCHEDULERS = [
    ("deterministic", DeterministicScheduler),
    ("random", lambda: RandomScheduler(seed=7)),
    ("roundrobin", RoundRobinScheduler),
]


def _run(spec, incremental, scheduler, **kwargs):
    recorder = kwargs.pop("recorder", None) or Recorder()
    sim = Simulator(
        spec.entities, scheduler=scheduler, hidden=spec.hidden,
        incremental=incremental,
    )
    result = sim.run(HORIZON, recorder=recorder, **kwargs)
    return recorder, result


class TestConformance:
    """incremental=True and incremental=False are trace-equivalent."""

    @pytest.mark.parametrize("label,build", CORPUS)
    @pytest.mark.parametrize("sched_label,make_scheduler", SCHEDULERS)
    def test_traces_identical(self, label, build, sched_label, make_scheduler):
        rec_inc, res_inc = _run(build(), True, make_scheduler())
        rec_full, res_full = _run(build(), False, make_scheduler())
        assert rec_inc.events == rec_full.events
        assert res_inc.steps == res_full.steps
        assert res_inc.now == res_full.now
        assert res_inc.stats == res_full.stats

    def test_traces_identical_with_injections(self):
        injections = [
            (Action("NOP", (99,)), 0.5),
            (Action("NOP", (99,)), 3.25),
            (Action("NOP", (99,)), 3.25),
        ]
        runs = [
            _run(_pinger_timed(), incremental, DeterministicScheduler(),
                 initial_inputs=injections)
            for incremental in (True, False)
        ]
        assert runs[0][0].events == runs[1][0].events
        assert runs[0][1].stats["injections"] == 3

    def test_max_steps_equivalent(self):
        spec = _pinger_timed()
        for incremental in (True, False):
            sim = Simulator(
                spec.entities, hidden=spec.hidden,
                max_steps=3, incremental=incremental,
            )
            from repro.errors import SimulationLimitError

            with pytest.raises(SimulationLimitError):
                sim.run(HORIZON)


class TestStopWhenAfterInjection:
    """Regression: stop_when used to be checked only after fired actions,
    so an injection-only run could never early-stop."""

    def _injection_only_spec(self):
        # A system with no locally controlled actions at all: one echo
        # node that never gets pinged. Only injections generate events.
        return build_timed_system(
            pinger_topology(), pinger_process_factory(0, 1.0), 0.2, 0.6
        )

    @pytest.mark.parametrize("incremental", [True, False])
    def test_injection_only_run_stops(self, incremental):
        injections = [(Action("NOP", (99,)), float(t)) for t in (1, 2, 3, 4)]
        seen = []

        def stop(recorder, now):
            seen.append(now)
            return any(e.now >= 2.0 for e in recorder.events)

        spec = self._injection_only_spec()
        sim = Simulator(
            spec.entities, hidden=spec.hidden, incremental=incremental
        )
        result = sim.run(10.0, initial_inputs=injections, stop_when=stop)
        assert result.now == 2.0
        assert not result.completed()
        assert len(result.recorder) == 2  # injections at 1.0 and 2.0 only

    @pytest.mark.parametrize("incremental", [True, False])
    def test_stop_not_called_without_events(self, incremental):
        calls = []

        def stop(recorder, now):
            calls.append(now)
            return False

        spec = self._injection_only_spec()
        sim = Simulator(
            spec.entities, hidden=spec.hidden, incremental=incremental
        )
        result = sim.run(5.0, stop_when=stop)
        assert result.completed()
        assert calls == []  # no actions, no injections -> never consulted


class TestRingRecorderTotals:
    """Regression: summary()/gauges under-reported ring-mode totals."""

    def _ring_run(self):
        ring = Recorder(max_events=10, on_overflow="ring")
        spec = _pinger_timed()
        sim = Simulator(spec.entities, hidden=spec.hidden)
        result = sim.run(HORIZON, recorder=ring)
        return ring, result

    def test_summary_counts_dropped(self):
        ring, result = self._ring_run()
        assert ring.dropped > 0  # the premise: the ring actually wrapped
        summary = result.summary()
        assert summary["events"] == len(ring) + ring.dropped
        assert summary["events_retained"] == len(ring) == 10
        assert summary["events_dropped"] == ring.dropped

    def test_gauges_count_dropped(self):
        ring, result = self._ring_run()
        gauges = result.metrics["gauges"]
        total = float(len(ring) + ring.dropped)
        assert gauges["repro.recorder.events"] == total
        assert gauges["repro.recorder.events_total"] == total
        assert gauges["repro.recorder.events_retained"] == float(len(ring))
        assert gauges["repro.recorder.dropped"] == float(ring.dropped)

    def test_unbounded_recorder_unchanged(self):
        spec = _pinger_timed()
        sim = Simulator(spec.entities, hidden=spec.hidden)
        result = sim.run(HORIZON)
        summary = result.summary()
        assert summary["events"] == summary["events_retained"]
        assert summary["events_dropped"] == 0


class TestRoutingTable:
    """The routing prefilter must be a pure over-approximation."""

    def test_custom_accepts_still_probed(self):
        # An entity that overrides accepts() beyond its signature must
        # keep receiving every routed action (wildcard routing).
        from repro.automata.signature import Signature
        from repro.components.base import Entity

        received = []

        class Sniffer(Entity):
            def __init__(self):
                super().__init__("sniffer", Signature())

            def accepts(self, action):
                return True

            def initial_state(self):
                return None

            def apply_input(self, state, action, now):
                received.append(action.name)

            def enabled(self, state, now):
                return []

        spec = _pinger_timed()
        sim = Simulator(
            spec.entities + [Sniffer()], hidden=spec.hidden, incremental=True
        )
        sim.run(5.0)
        assert "SENDMSG" in received
        assert "RECVMSG" in received

"""Crash–recovery proxies: schedules, restore policies, ARQ interplay."""

import pytest

from repro.automata.actions import Action, action_set
from repro.automata.signature import Signature
from repro.components.base import Entity, TimedNodeEntity
from repro.core.buffers import SendBuffer
from repro.core.pipeline import SystemSpec, build_clock_system, build_timed_system
from repro.errors import SpecificationError
from repro.faults.models import ScriptedFaults
from repro.faults.recovery import (
    INFINITY,
    RecoverableEntity,
    RecoverySchedule,
)
from repro.faults.retransmit import ReliableAdapter
from repro.obs.metrics import MetricsRegistry
from repro.sim.clock_drivers import FastClockDriver, SlowClockDriver
from repro.sim.engine import Simulator
from repro.sim.persistence import decode_state, encode_state
from repro.sim.recorder import Recorder

from helpers import EchoProcess, PingerProcess, pinger_topology


class Chatty(Entity):
    """Emits SAY every second; counts inputs (same probe as crash tests)."""

    def __init__(self):
        super().__init__(
            "chatty",
            Signature(inputs=action_set("HEAR"), outputs=action_set("SAY")),
        )

    def initial_state(self):
        return {"next": 1.0, "heard": 0, "notes": []}

    def enabled(self, state, now):
        if now >= state["next"] - 1e-9:
            return [Action("SAY", (0,))]
        return []

    def fire(self, state, action, now):
        state["next"] += 1.0

    def apply_input(self, state, action, now):
        state["heard"] += 1

    def deadline(self, state, now):
        return state["next"]


class TestRecoverySchedule:
    def test_window_validation(self):
        with pytest.raises(SpecificationError):
            RecoverySchedule.of([(-1.0, 2.0)])
        with pytest.raises(SpecificationError):
            RecoverySchedule.of([(2.0, 2.0)])  # empty window
        with pytest.raises(SpecificationError):
            RecoverySchedule.of([(1.0, 3.0), (2.0, 4.0)])  # overlap

    def test_adjacent_windows_allowed(self):
        schedule = RecoverySchedule.of([(1.0, 2.0), (2.0, 3.0)])
        assert schedule.down(1.5) and schedule.down(2.5)

    def test_down_is_half_open(self):
        schedule = RecoverySchedule.of([(1.0, 2.0)])
        assert not schedule.down(0.99)
        assert schedule.down(1.0)  # down at the crash instant
        assert schedule.down(1.5)
        assert not schedule.down(2.0)  # up again at the recovery instant

    def test_next_boundary(self):
        schedule = RecoverySchedule.of([(1.0, 2.0), (5.0, 6.0)])
        assert schedule.next_boundary(0.0) == 1.0
        assert schedule.next_boundary(1.0) == 2.0
        assert schedule.next_boundary(3.0) == 5.0
        assert schedule.next_boundary(6.0) == INFINITY

    def test_crash_stop_as_special_case(self):
        schedule = RecoverySchedule.of([(4.0, INFINITY)])
        assert schedule.down(1e9)
        assert schedule.next_boundary(4.0) == INFINITY


class TestRecoverableEntity:
    def entity(self, windows, restore="snapshot"):
        return RecoverableEntity(
            Chatty(), RecoverySchedule.of(windows), restore=restore
        )

    def test_restore_policy_validated(self):
        with pytest.raises(SpecificationError):
            self.entity([(1.0, 2.0)], restore="voodoo")

    def test_behaves_normally_while_up(self):
        entity = self.entity([(10.0, 11.0)])
        state = entity.initial_state()
        assert entity.enabled(state, 1.0) == [Action("SAY", (0,))]
        entity.fire(state, Action("SAY", (0,)), 1.0)
        assert state.inner["next"] == 2.0
        entity.apply_input(state, Action("HEAR", (0,)), 1.5)
        assert state.inner["heard"] == 1

    def test_silent_while_down_and_inputs_lost(self):
        entity = self.entity([(1.5, 4.0)])
        state = entity.initial_state()
        entity.apply_input(state, Action("HEAR", (0,)), 1.0)
        assert entity.enabled(state, 2.0) == []
        entity.apply_input(state, Action("HEAR", (0,)), 2.5)
        entity.apply_input(state, Action("HEAR", (0,)), 3.0)
        assert state.lost_inputs == 2
        # the deadline while down is exactly the recovery boundary
        assert entity.deadline(state, 2.0) == pytest.approx(4.0)

    def test_snapshot_restore_resumes_from_the_crash_instant(self):
        entity = self.entity([(1.5, 4.0)])
        state = entity.initial_state()
        entity.fire(state, Action("SAY", (0,)), 1.0)
        entity.apply_input(state, Action("HEAR", (0,)), 1.2)
        entity.enabled(state, 2.0)  # first touch while down: snapshots
        entity.apply_input(state, Action("HEAR", (0,)), 3.0)  # lost
        assert entity.enabled(state, 4.0) == [Action("SAY", (0,))]
        assert state.inner["next"] == 2.0  # progress preserved
        assert state.inner["heard"] == 1  # the down-window input is gone
        assert state.crashes == 1 and state.recoveries == 1
        assert [kind for kind, _ in state.log] == ["crash", "recover"]

    def test_initial_restore_is_amnesia(self):
        entity = self.entity([(1.5, 4.0)], restore="initial")
        state = entity.initial_state()
        entity.fire(state, Action("SAY", (0,)), 1.0)
        entity.apply_input(state, Action("HEAR", (0,)), 1.2)
        entity.enabled(state, 2.0)
        entity.enabled(state, 4.0)
        assert state.inner["next"] == 1.0
        assert state.inner["heard"] == 0

    def test_snapshot_shares_no_structure_with_escaped_state(self):
        entity = self.entity([(2.0, 3.0)])
        state = entity.initial_state()
        escaped = state.inner["notes"]  # alias taken before the crash
        escaped.append("pre")
        entity.enabled(state, 2.0)  # crash: snapshot
        escaped.append("while-down")  # mutation through the alias
        entity.enabled(state, 3.0)  # recover: decode from stable storage
        assert state.inner["notes"] == ["pre"]

    def test_repeated_windows_counted(self):
        entity = self.entity([(1.0, 2.0), (5.0, 6.0)])
        state = entity.initial_state()
        for t in (1.0, 2.0, 5.0, 6.0):
            entity.enabled(state, t)
        assert state.crashes == 2 and state.recoveries == 2

    def test_metrics_counters(self):
        metrics = MetricsRegistry()
        entity = self.entity([(1.0, 2.0)])
        entity.instrument(metrics)
        state = entity.initial_state()
        entity.enabled(state, 1.0)
        entity.apply_input(state, Action("HEAR", (0,)), 1.5)
        entity.enabled(state, 2.0)
        assert metrics.counter("repro.chaos.crashes").value == 1
        assert metrics.counter("repro.chaos.recoveries").value == 1
        assert metrics.counter("repro.chaos.inputs_lost").value == 1

    def test_not_pure_enabled(self):
        # the enabled set grows at the recovery boundary with no
        # fire/apply_input to signal it, so the incremental engine must
        # re-derive it every round
        assert self.entity([(1.0, 2.0)]).pure_enabled is False


class TestSendBufferSnapshotRestore:
    """The send buffer's min-deque is derived state: a stable-storage
    snapshot must never persist it, and a restore must rebuild it from
    the queue (a stale deque would corrupt ``clock_deadline`` — the
    engine's time-passage guard — after a crash–recovery)."""

    def loaded_buffer(self):
        buf = SendBuffer(0, 1)
        # SendBuffer does not enforce stamp monotonicity, so exercise
        # the rebuild with an adversarial (reordered, duplicated) queue
        for stamp in (5.0, 7.0, 3.0, 6.0, 3.0):
            buf.enqueue(("m", stamp), stamp)
        return buf

    def test_snapshot_excludes_the_derived_deque(self):
        snapshot = encode_state(self.loaded_buffer())
        assert "_min_stamps" not in snapshot["f"]
        assert "queue" in snapshot["f"]

    def test_restore_rebuilds_the_deque(self):
        buf = self.loaded_buffer()
        restored = decode_state(encode_state(buf))
        assert restored.queue == buf.queue
        assert list(restored._min_stamps) == list(buf._min_stamps)
        assert restored.clock_deadline() == 3.0

    def test_stale_deque_cannot_ride_through_stable_storage(self):
        buf = self.loaded_buffer()
        # corrupt the live cache after the fact; the snapshot round-trip
        # must rebuild from the queue, not trust any persisted deque
        buf._min_stamps.clear()
        restored = decode_state(encode_state(buf))
        assert restored.clock_deadline() == 3.0

    def test_restored_buffer_drains_deadline_consistently(self):
        restored = decode_state(encode_state(self.loaded_buffer()))
        stamps = [entry[1] for entry in restored.queue]
        while restored.queue:
            assert restored.clock_deadline() == min(stamps)
            restored.emit(10.0)
            stamps.pop(0)
        assert restored.clock_deadline() == INFINITY

    def test_empty_buffer_round_trips(self):
        restored = decode_state(encode_state(SendBuffer(0, 1)))
        assert restored.clock_deadline() == INFINITY
        restored.enqueue("m", 2.0)
        assert restored.clock_deadline() == 2.0


class TestClockNodeCrashStraddlingABufferHold:
    """Chaos regression: a clock node crashes while its receive buffer
    holds a stamped message, recovers, and delivery still happens in
    deadline (stamp) order — byte-identically across both engine cores."""

    # Slow echo clock vs a short channel: ping k is sent at t=k with
    # stamp k (the ping deadline pins the sender's clock there), arrives
    # at t=k+0.1 (constant-fraction delay of [0.05, 0.15]) where the
    # slow echo clock reads only k-0.2, and is held until that clock
    # reaches the stamp at t=k+eps.
    EPS = 0.3
    D1, D2 = 0.05, 0.15
    WINDOW = (1.15, 1.25)  # inside ping 1's hold interval [1.1, 1.3]

    def run_once(self, incremental):
        def processes(i):
            if i == 0:
                return PingerProcess(0, 1, 3, 1.0)
            return EchoProcess(1, 0)

        def drivers(i):
            return FastClockDriver(self.EPS) if i == 0 else SlowClockDriver(self.EPS)

        spec = build_clock_system(
            pinger_topology(), processes, self.EPS, self.D1, self.D2, drivers
        )
        entities = [
            RecoverableEntity(e, RecoverySchedule.of([self.WINDOW]))
            if e.name == "echo(1)^c" else e
            for e in spec.entities
        ]
        recorder = Recorder()
        result = Simulator(
            entities, hidden=spec.hidden, incremental=incremental
        ).run(8.0, recorder=recorder)
        return result, recorder

    def test_held_message_survives_the_crash_and_delivers_in_order(self):
        result, recorder = self.run_once(incremental=True)
        echo = result.final_states["echo(1)^c"]
        assert echo.crashes == 1 and echo.recoveries == 1
        # the ping held across the crash is delivered after recovery...
        deliveries = [
            e for e in recorder.events
            if e.action.name == "RECVMSG" and e.action.params[0] == 1
        ]
        held = [e for e in deliveries if e.action.params[2] == ("ping", 1)]
        assert held and held[0].now >= self.WINDOW[1]
        # ...in stamp (deadline) order, like every other delivery
        indices = [e.action.params[2][1] for e in deliveries]
        assert indices == sorted(indices)
        # and the round trips all complete
        pongs = [e for e in result.trace if e.action.name == "GOTPONG"]
        assert [e.action.params[1] for e in pongs] == [1, 2, 3]
        assert not any(
            rbuf.queue for rbuf in echo.inner.recv_buffers.values()
        )

    def test_trace_identical_across_engine_cores(self):
        result_inc, rec_inc = self.run_once(incremental=True)
        result_full, rec_full = self.run_once(incremental=False)
        assert rec_inc.events == rec_full.events
        assert result_inc.trace == result_full.trace


class TestRecoveryWithInFlightRetransmissions:
    """A crash straddling an ARQ retransmission window (satellite 3)."""

    def entity(self, windows):
        adapter = ReliableAdapter(PingerProcess(0, 1, 1, 1.0), 0.5)
        return RecoverableEntity(
            TimedNodeEntity(adapter), RecoverySchedule.of(windows)
        )

    def test_outbox_survives_the_crash_and_retransmits_late(self):
        entity = self.entity([(1.2, 3.0)])
        state = entity.initial_state()
        entity.fire(state, Action("PING", (0, 1)), 1.0)
        (frame,) = [
            a for a in entity.enabled(state, 1.0) if a.name == "SENDMSG"
        ]
        assert frame.params[2] == ("DATA", 0, ("ping", 1))
        entity.fire(state, frame, 1.0)
        assert state.inner.outbox[(1, 0)].attempts == 1
        # the retransmission due at 1.5 is silenced by the crash
        assert entity.enabled(state, 1.5) == []
        assert entity.deadline(state, 1.5) == pytest.approx(3.0)
        # the peer's ACK arrives while down: lost, so the entry stays
        entity.apply_input(
            state, Action("RECVMSG", (0, 1, ("ACK", 0))), 2.0
        )
        assert state.lost_inputs == 1
        # recovery restores the crash-instant outbox; the overdue
        # retransmission fires immediately at the recovery time
        (retx,) = [
            a for a in entity.enabled(state, 3.0) if a.name == "SENDMSG"
        ]
        assert retx.params[2] == ("DATA", 0, ("ping", 1))
        entity.fire(state, retx, 3.0)
        entry = state.inner.outbox[(1, 0)]
        assert entry.attempts == 2
        assert entry.next_attempt == pytest.approx(3.5)

    def test_ack_after_recovery_clears_the_outbox(self):
        entity = self.entity([(1.2, 3.0)])
        state = entity.initial_state()
        entity.fire(state, Action("PING", (0, 1)), 1.0)
        (frame,) = [
            a for a in entity.enabled(state, 1.0) if a.name == "SENDMSG"
        ]
        entity.fire(state, frame, 1.0)
        entity.enabled(state, 1.2)  # crash
        entity.apply_input(
            state, Action("RECVMSG", (0, 1, ("ACK", 0))), 3.5
        )
        assert not state.inner.outbox

    def test_end_to_end_ping_completes_despite_crash_and_loss(self):
        # node 0 is down across its ping's due time AND the first DATA
        # attempt is dropped: the late ping fires at recovery, the
        # retransmission covers the loss, the pong still arrives
        def processes(i):
            if i == 0:
                return ReliableAdapter(PingerProcess(0, 1, 1, 1.0), 0.5)
            return ReliableAdapter(EchoProcess(1, 0), 0.5)

        spec = build_timed_system(
            pinger_topology(), processes, 0.1, 0.3, None,
            fault_model=ScriptedFaults([0]),
        )
        entities = [
            RecoverableEntity(e, RecoverySchedule.of([(0.5, 2.0)]))
            if e.name.startswith("arq(pinger") else e
            for e in spec.entities
        ]
        result = SystemSpec(entities=entities, hidden=spec.hidden).run(10.0)
        pongs = [e for e in result.trace if e.action.name == "GOTPONG"]
        assert len(pongs) == 1
        assert pongs[0].time >= 2.0  # necessarily after the recovery

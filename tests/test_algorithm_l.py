"""Tests for algorithm L in the timed model (Lemma 6.1)."""

import pytest

from repro.registers.algorithm_l import AlgorithmLProcess, RegisterState
from repro.registers.system import (
    INITIAL_VALUE,
    run_register_experiment,
    timed_register_system,
)
from repro.registers.workload import RegisterWorkload
from repro.sim.delay import MaximalDelay, MinimalDelay, UniformDelay
from repro.sim.scheduler import RandomScheduler
from repro.automata.actions import Action
from repro.components.base import ProcessContext

D1P, D2P = 0.2, 1.0
DELTA = 0.01


def run(c, seed=0, n=3, ops=6, delay_model=None, horizon=60.0):
    workload = RegisterWorkload(operations=ops, read_fraction=0.5, seed=seed)
    spec = timed_register_system(
        n=n, d1_prime=D1P, d2_prime=D2P, c=c, workload=workload,
        algorithm="L", delta=DELTA, delay_model=delay_model,
    )
    return run_register_experiment(
        spec, horizon, scheduler=RandomScheduler(seed=seed)
    )


class TestUnitTransitions:
    def process(self, c=0.3):
        return AlgorithmLProcess(0, [0, 1], D2P, c, delta=DELTA)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AlgorithmLProcess(0, [0], D2P, c=-0.1)
        with pytest.raises(ValueError):
            AlgorithmLProcess(0, [0], D2P, c=D2P + 1.0)
        with pytest.raises(ValueError):
            AlgorithmLProcess(0, [0], D2P, c=0.1, delta=0.0)

    def test_read_schedules_return(self):
        proc = self.process(c=0.3)
        state = proc.initial_state()
        proc.apply_input(state, Action("READ", (0,)), ProcessContext(5.0))
        assert state.read_time == pytest.approx(5.0 + 0.3 + DELTA)
        assert proc.deadline(state, ProcessContext(5.0)) == state.read_time

    def test_write_sends_to_all_peers_then_acks(self):
        proc = self.process(c=0.3)
        state = proc.initial_state()
        ctx = ProcessContext(2.0)
        proc.apply_input(state, Action("WRITE", (0, "v")), ctx)
        sends = [a for a in proc.enabled(state, ctx) if a.name == "SENDMSG"]
        assert {a.params[1] for a in sends} == {0, 1}
        # messages carry t = now + d2'
        assert all(a.params[2] == ("v", 2.0 + D2P) for a in sends)
        for a in sends:
            proc.fire(state, a, ctx)
        assert state.write_status == "ack"
        assert state.ack_time == pytest.approx(2.0 + D2P - 0.3)

    def test_update_applied_at_scheduled_time(self):
        proc = self.process()
        state = proc.initial_state()
        t = 3.0
        proc.apply_input(
            state, Action("RECVMSG", (0, 1, ("v", t))), ProcessContext(2.5)
        )
        ctx = ProcessContext(t + DELTA)
        (update,) = [a for a in proc.enabled(state, ctx) if a.name == "UPDATE"]
        proc.fire(state, update, ctx)
        assert state.value == "v"
        assert not state.updates

    def test_same_time_updates_largest_sender_wins(self):
        proc = self.process()
        state = proc.initial_state()
        ctx = ProcessContext(2.0)
        proc.apply_input(state, Action("RECVMSG", (0, 1, ("from1", 3.0))), ctx)
        proc.apply_input(state, Action("RECVMSG", (0, 2, ("from2", 3.0))), ctx)
        proc.apply_input(state, Action("RECVMSG", (0, 0, ("from0", 3.0))), ctx)
        assert state.updates[3.0 + DELTA] == (2, "from2")

    def test_return_waits_for_same_instant_update(self):
        proc = self.process(c=0.3)
        state = proc.initial_state()
        read_at = 1.0
        proc.apply_input(state, Action("READ", (0,)), ProcessContext(read_at))
        due = state.read_time
        # an update lands at exactly the same instant
        proc.apply_input(
            state,
            Action("RECVMSG", (0, 1, ("new", due - DELTA))),
            ProcessContext(read_at + 0.1),
        )
        ctx = ProcessContext(due)
        enabled = proc.enabled(state, ctx)
        assert all(a.name != "RETURN" for a in enabled)
        (update,) = [a for a in enabled if a.name == "UPDATE"]
        proc.fire(state, update, ctx)
        (ret,) = [a for a in proc.enabled(state, ctx) if a.name == "RETURN"]
        assert ret.params[1] == "new"

    def test_mintime_infinity_when_idle(self):
        proc = self.process()
        state = proc.initial_state()
        assert state.mintime() == float("inf")


class TestLemma61:
    @pytest.mark.parametrize("c", [0.0, 0.3, 0.5, 0.8])
    def test_latency_bounds(self, c):
        result = run(c, seed=1)
        assert result.max_read_latency() <= c + DELTA + 1e-9
        assert result.max_write_latency() <= D2P - c + 1e-9
        assert result.reads and result.writes

    @pytest.mark.parametrize("seed", range(4))
    def test_linearizable_across_seeds(self, seed):
        assert run(0.4, seed=seed).linearizable()

    @pytest.mark.parametrize(
        "delay_model", [MinimalDelay(), MaximalDelay(), UniformDelay(seed=2)],
        ids=lambda d: type(d).__name__,
    )
    def test_linearizable_across_delay_models(self, delay_model):
        assert run(0.4, seed=2, delay_model=delay_model).linearizable()

    def test_read_write_tradeoff(self):
        cheap_reads = run(0.0, seed=3)
        cheap_writes = run(0.8, seed=3)
        assert cheap_reads.max_read_latency() < cheap_writes.max_read_latency()
        assert cheap_writes.max_write_latency() < cheap_reads.max_write_latency()

    def test_five_nodes(self):
        result = run(0.3, seed=5, n=5, ops=4, horizon=80.0)
        assert result.linearizable()
        assert len(result.operations) >= 10

    def test_reads_return_written_values(self):
        result = run(0.4, seed=7)
        written = {op.value for op in result.writes} | {INITIAL_VALUE}
        assert all(op.value in written for op in result.reads)

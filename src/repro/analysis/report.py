"""Plain-text tables for benchmark harnesses.

Benchmarks print paper-vs-measured rows; this keeps the formatting in
one place so every harness reports the same way.
"""

from __future__ import annotations

from typing import List, Sequence


def format_row(cells: Sequence[object], widths: Sequence[int]) -> str:
    """One table row, cells left-justified to the column widths."""
    parts = []
    for cell, width in zip(cells, widths):
        if isinstance(cell, float):
            text = f"{cell:.4g}"
        else:
            text = str(cell)
        parts.append(text.ljust(width))
    return "  ".join(parts).rstrip()


class Table:
    """A fixed-column text table with a title and optional notes."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[object]] = []
        self.notes: List[str] = []

    def add_row(self, *cells: object) -> None:
        """Append a row (one cell per column)."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        """Append a footnote line."""
        self.notes.append(note)

    def render(self) -> str:
        """The table as fixed-column text."""
        widths = [len(c) for c in self.columns]
        rendered_rows = []
        for row in self.rows:
            rendered = []
            for idx, cell in enumerate(row):
                text = f"{cell:.4g}" if isinstance(cell, float) else str(cell)
                rendered.append(text)
                widths[idx] = max(widths[idx], len(text))
            rendered_rows.append(rendered)
        lines = [f"== {self.title} =="]
        lines.append(format_row(self.columns, widths))
        lines.append("  ".join("-" * w for w in widths))
        for row in rendered_rows:
            lines.append(format_row(row, widths))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def print(self) -> None:
        """Render to stdout."""
        print(self.render())

    def __repr__(self) -> str:
        return f"<Table {self.title!r}: {len(self.rows)} rows>"

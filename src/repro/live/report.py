"""The load generator's report: verdicts, quantiles, Theorem 6.5 gate.

Three layers, in order of authority:

1. **Linearizability** — the recorded history is fed (as
   :class:`~repro.traces.linearizability.Operation` records) to the
   budgeted checker; the report carries the full
   :class:`~repro.traces.linearizability.LinearizationReport` including
   how many search nodes the verdict cost.
2. **Theorem 6.5 bounds** — per-kind p99 latencies against the paper's
   clock-time costs (read ``2*eps + delta + c``, write
   ``d2 + 2*eps - c``) stretched to real time by ``2*eps_measured`` —
   the *measured* worst clock skew substituted for the configured
   envelope — plus a configurable ``slack`` for client RTT and event-loop
   jitter, which the virtual-time simulator does not have.
3. **Premises** — the theorem assumes delivery within ``[d1, d2]``; the
   measured one-way wire delay must stay under ``d2`` or the latency
   verdict is judging an execution outside the model.

The report also exports: a version-2 metrics snapshot (counters, gauges,
latency quantile sketches under ``repro.live.*``) and a version-2 JSONL
trace of ``op`` span records, both conforming to the schemas
:mod:`repro.obs.schema` enforces in CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.chaos.monitors import Violation
from repro.chaos.plan import FaultPlan
from repro.core.pipeline import simulation1_delay_bounds
from repro.faults.retransmit import BackoffPolicy
from repro.live.client import ClientRecord
from repro.live.params import LiveParams
from repro.obs.sketch import QuantileSketch
from repro.obs.trace import TRACE_FORMAT, TRACE_VERSION
from repro.registers.algorithm_s import theorem_bounds
from repro.traces.linearizability import LinearizationReport, Operation

CHAOS_REPORT_FORMAT = "repro-live-chaos-report"
CHAOS_REPORT_VERSION = 1

DEFAULT_SLACK = 0.05
"""Default real-time allowance for client RTT and event-loop jitter."""


@dataclass(frozen=True)
class BoundCheck:
    """One measured quantity against one analytic limit."""

    name: str
    measured: float
    limit: float
    detail: str

    @property
    def ok(self) -> bool:
        return self.measured <= self.limit

    def render(self) -> str:
        """One aligned ``measured <= limit verdict`` line."""
        verdict = "ok" if self.ok else "VIOLATED"
        return (
            f"{self.name:<12} {self.measured:8.4f} <= {self.limit:8.4f}  "
            f"{verdict}  ({self.detail})"
        )


@dataclass
class LiveReport:
    """Everything ``python -m repro load`` reports about one run."""

    params: LiveParams
    operations: List[Operation]
    linearization: LinearizationReport
    node_stats: List[Dict[str, object]] = field(default_factory=list)
    slack: float = DEFAULT_SLACK

    def __post_init__(self):
        self.read_sketch = QuantileSketch("repro.live.op.read_latency")
        self.write_sketch = QuantileSketch("repro.live.op.write_latency")
        for op in self.operations:
            sketch = self.read_sketch if op.kind == "R" else self.write_sketch
            sketch.observe(op.latency)

    # -- measurements --------------------------------------------------------

    @property
    def reads(self) -> List[Operation]:
        return [op for op in self.operations if op.kind == "R"]

    @property
    def writes(self) -> List[Operation]:
        return [op for op in self.operations if op.kind == "W"]

    @property
    def eps_measured(self) -> float:
        """Worst observed ``|real - clock|`` across the cluster.

        By construction of the drivers this is at most the configured
        ``eps``; substituting it tightens the real-time stretch term to
        what the clocks actually did. Falls back to the configured
        envelope when no node stats were collected.
        """
        skews = [s["max_skew"] for s in self.node_stats if "max_skew" in s]
        return max(skews) if skews else self.params.eps

    @property
    def wire_max(self) -> float:
        """Worst observed one-way update-message delay."""
        delays = [s["wire_max"] for s in self.node_stats if "wire_max" in s]
        return max(delays) if delays else 0.0

    # -- the Theorem 6.5 gate ------------------------------------------------

    def bound_checks(self) -> List[BoundCheck]:
        """The per-kind p99 latency gate, plus the ``d2`` premise check."""
        p = self.params
        bounds = theorem_bounds("clock", p.eps, p.c, p.delta, p.d2)
        stretch = 2.0 * self.eps_measured
        checks = []
        if self.read_sketch.count:
            checks.append(BoundCheck(
                "read p99",
                self.read_sketch.quantile(0.99),
                bounds["read_clock"] + stretch + self.slack,
                f"2*eps+delta+c = {bounds['read_clock']:g} clock, "
                f"+{stretch:g} stretch, +{self.slack:g} slack",
            ))
        if self.write_sketch.count:
            checks.append(BoundCheck(
                "write p99",
                self.write_sketch.quantile(0.99),
                bounds["write_clock"] + stretch + self.slack,
                f"d2+2*eps-c = {bounds['write_clock']:g} clock, "
                f"+{stretch:g} stretch, +{self.slack:g} slack",
            ))
        checks.append(BoundCheck(
            "wire delay", self.wire_max, p.d2,
            "theorem premise: delivery within [d1, d2]",
        ))
        return checks

    @property
    def bounds_ok(self) -> bool:
        return all(check.ok for check in self.bound_checks())

    @property
    def ok(self) -> bool:
        """Linearizable — the unconditional correctness verdict."""
        return self.linearization.ok

    # -- rendering -----------------------------------------------------------

    def render(self, assert_bounds: bool = False) -> str:
        """The human-readable run summary ``python -m repro load`` prints."""
        p = self.params
        lin = self.linearization
        lines = [
            f"live run: n={p.n} d2={p.d2:g} eps={p.eps:g} c={p.c:g} "
            f"delta={p.delta:g} driver={p.driver} seed={p.seed}",
            f"operations     : {len(self.operations)} "
            f"({len(self.reads)} reads, {len(self.writes)} writes)",
            f"eps measured   : {self.eps_measured:.5f} "
            f"(envelope {p.eps:g})",
            f"linearizable   : {lin.ok} "
            f"({lin.visited} search nodes visited)",
        ]
        for kind, sketch in (("read", self.read_sketch),
                             ("write", self.write_sketch)):
            if not sketch.count:
                continue
            lines.append(
                f"{kind:<5} latency  : p50={sketch.quantile(0.5):.4f} "
                f"p99={sketch.quantile(0.99):.4f} "
                f"max={sketch.maximum:.4f} (n={sketch.count})"
            )
        if assert_bounds:
            lines.append("Theorem 6.5 gate (measured eps substituted):")
            for check in self.bound_checks():
                lines.append("  " + check.render())
        return "\n".join(lines)

    # -- exports -------------------------------------------------------------

    def to_metrics(self, registry) -> None:
        """Publish the run into a v2 metrics registry."""
        registry.counter("repro.live.ops.completed").inc(len(self.operations))
        registry.counter("repro.live.ops.reads").inc(len(self.reads))
        registry.counter("repro.live.ops.writes").inc(len(self.writes))
        registry.counter("repro.live.linearizability.visited").inc(
            self.linearization.visited
        )
        registry.gauge("repro.live.eps.measured").set(self.eps_measured)
        registry.gauge("repro.live.wire.max_delay").set(self.wire_max)
        registry.gauge("repro.live.linearizable").set(
            1.0 if self.linearization.ok else 0.0
        )
        reads = registry.sketch("repro.live.op.read_latency")
        for op in self.reads:
            reads.observe(op.latency)
        writes = registry.sketch("repro.live.op.write_latency")
        for op in self.writes:
            writes.observe(op.latency)

    def write_trace(self, path: str) -> None:
        """Write the history as a version-2 JSONL trace of ``op`` spans."""
        horizon = max((op.res_time for op in self.operations), default=0.0)
        with open(path, "w") as handle:
            def emit(record):
                handle.write(json.dumps(record, sort_keys=True) + "\n")

            emit({"format": TRACE_FORMAT, "version": TRACE_VERSION})
            emit({"k": "run_start", "horizon": horizon})
            emit({"k": "meta", "m": {
                "workload": "live-register", **self.params.to_dict(),
            }})
            events = []
            for op in self.operations:
                sid = f"L{op.node}-{op.op_id}"
                events.append((op.inv_time, {
                    "k": "span", "span": "op", "sid": sid, "ph": "inv",
                    "now": op.inv_time, "node": op.node, "kind": op.kind,
                }))
                events.append((op.res_time, {
                    "k": "span", "span": "op", "sid": sid, "ph": "res",
                    "now": op.res_time, "node": op.node, "kind": op.kind,
                    "latency": op.latency,
                }))
            for _, record in sorted(events, key=lambda pair: pair[0]):
                emit(record)
            emit({"k": "run_end", "now": horizon,
                  "steps": 2 * len(self.operations)})

    def __repr__(self) -> str:
        return (
            f"<LiveReport {len(self.operations)} ops, "
            f"linearizable={self.linearization.ok}, "
            f"bounds_ok={self.bounds_ok}>"
        )


@dataclass
class LiveChaosReport(LiveReport):
    """A :class:`LiveReport` for a fault-injected run: degraded mode.

    Differences from the fault-free report:

    - latency sketches are built from the *completed* client records
      (``ok``/``retried``); a timed-out write still appears in
      ``operations`` as a possibly-effective phantom (its window open to
      the run horizon, so the checker may linearize it last), but its
      non-latency must not pollute the p99 gate;
    - the Theorem 6.5 gate runs in **degraded mode**: the *fault-adjusted
      measured* ``eps`` (which under a ``clock_fault`` exceeds the
      configured envelope) is substituted into the Simulation 1
      widening — ``d1' = max(d1 - 2*eps, 0)``, ``d2' = d2 + 2*eps`` —
      and a retry allowance derived from the worst observed attempt
      count (each failed attempt costs at most ``op_timeout`` plus its
      backoff gap) is added, with every widening term recorded in the
      check's detail and in :meth:`to_payload`;
    - every monitor violation carries its plan-event attribution;
      :attr:`unattributed` must be zero for a healthy chaos run.
    """

    plan: Optional[FaultPlan] = None
    violations: List[Violation] = field(default_factory=list)
    records: List[ClientRecord] = field(default_factory=list)
    retries: int = 0
    dropped: int = 0

    def __post_init__(self):
        # gate latencies on completed records only (see class docstring)
        self.read_sketch = QuantileSketch("repro.live.op.read_latency")
        self.write_sketch = QuantileSketch("repro.live.op.write_latency")
        for record in self.records:
            if not record.completed:
                continue
            sketch = (
                self.read_sketch if record.kind == "R" else self.write_sketch
            )
            sketch.observe(record.latency)

    # -- fault accounting ----------------------------------------------------

    @property
    def outcomes(self) -> Dict[str, int]:
        counts = {"ok": 0, "retried": 0, "timeout": 0}
        for record in self.records:
            counts[record.outcome] = counts.get(record.outcome, 0) + 1
        return counts

    @property
    def faults(self) -> Dict[str, int]:
        """Node-side fault counters summed across the cluster."""
        totals = {"crashes": 0, "recoveries": 0, "retransmits": 0,
                  "wire_errors": 0, "inputs_lost": 0}
        for stats in self.node_stats:
            for key in totals:
                totals[key] += int(stats.get(key, 0))
        totals["dropped"] = self.dropped
        return totals

    @property
    def unattributed(self) -> int:
        return sum(
            1 for v in self.violations if v.event_index is None
        )

    @property
    def eps_adjusted(self) -> float:
        """Fault-adjusted eps: what the clocks *did*, envelope included.

        Under a ``clock_fault`` the measured skew exceeds the configured
        envelope; the degraded gate must widen by what actually
        happened, never by less than the design envelope.
        """
        return max(self.eps_measured, self.params.eps)

    @property
    def widened_bounds(self) -> Dict[str, float]:
        """The Simulation 1 arithmetic at the fault-adjusted eps."""
        d1p, d2p = simulation1_delay_bounds(
            self.params.d1, self.params.d2, self.eps_adjusted
        )
        return {"d1_prime": d1p, "d2_prime": d2p}

    @property
    def retry_allowance(self) -> float:
        """Worst-case client-side stall the retry loop can add.

        ``A`` failed attempts cost at most ``A * op_timeout`` waiting
        plus the first ``A`` backoff gaps; ``A`` is the worst *observed*
        attempt count minus one, so a run that never retried gets a
        zero allowance and degrades gracefully to the fault-free gate.
        """
        worst = max(
            (r.attempts for r in self.records if r.completed), default=1
        )
        extra = worst - 1
        if extra <= 0:
            return 0.0
        p = self.params
        return extra * p.op_timeout + BackoffPolicy(
            seed=p.seed
        ).worst_case_gap_sum(p.retry_base, extra)

    # -- the degraded-mode Theorem 6.5 gate ----------------------------------

    def bound_checks(self) -> List[BoundCheck]:
        """The p99 gate against Simulation-1-widened degraded bounds."""
        p = self.params
        eps_adj = self.eps_adjusted
        widened = self.widened_bounds
        bounds = theorem_bounds("clock", eps_adj, p.c, p.delta, p.d2)
        stretch = 2.0 * eps_adj
        allowance = self.retry_allowance
        degraded = (
            f"degraded: eps_adj={eps_adj:g}, "
            f"d2'={widened['d2_prime']:g}, +{stretch:g} stretch, "
            f"+{allowance:g} retry allowance, +{self.slack:g} slack"
        )
        checks = []
        if self.read_sketch.count:
            checks.append(BoundCheck(
                "read p99",
                self.read_sketch.quantile(0.99),
                bounds["read_clock"] + stretch + allowance + self.slack,
                f"2*eps+delta+c = {bounds['read_clock']:g} clock; {degraded}",
            ))
        if self.write_sketch.count:
            checks.append(BoundCheck(
                "write p99",
                self.write_sketch.quantile(0.99),
                bounds["write_clock"] + stretch + allowance + self.slack,
                f"d2+2*eps-c = {bounds['write_clock']:g} clock; {degraded}",
            ))
        checks.append(BoundCheck(
            "wire delay", self.wire_max, widened["d2_prime"],
            "degraded premise: delivery within [d1', d2'] "
            f"(d2' = d2 + 2*eps_adj = {widened['d2_prime']:g})",
        ))
        return checks

    @property
    def ok(self) -> bool:
        """Linearizable *and* every violation attributed to its cause."""
        return self.linearization.ok and self.unattributed == 0

    # -- rendering -----------------------------------------------------------

    def render(self, assert_bounds: bool = False) -> str:
        lines = [super().render(assert_bounds=False)]
        plan_name = self.plan.name if self.plan is not None else "?"
        outcomes = self.outcomes
        faults = self.faults
        widened = self.widened_bounds
        lines.append(
            f"fault plan     : {plan_name} "
            f"({len(self.plan.events) if self.plan else 0} events)"
        )
        lines.append(
            f"outcomes       : ok={outcomes['ok']} "
            f"retried={outcomes['retried']} timeout={outcomes['timeout']} "
            f"(client retries: {self.retries})"
        )
        lines.append(
            f"faults applied : crashes={faults['crashes']} "
            f"recoveries={faults['recoveries']} dropped={faults['dropped']} "
            f"retransmits={faults['retransmits']} "
            f"wire_errors={faults['wire_errors']}"
        )
        lines.append(
            f"degraded bounds: eps_adj={self.eps_adjusted:.5f} "
            f"d1'={widened['d1_prime']:g} d2'={widened['d2_prime']:g} "
            f"(Simulation 1 widening)"
        )
        if self.violations:
            lines.append(
                f"violations     : {len(self.violations)} "
                f"({self.unattributed} unattributed)"
            )
            for violation in self.violations:
                lines.append("  " + violation.describe())
        else:
            lines.append("violations     : none")
        if assert_bounds:
            lines.append("Theorem 6.5 degraded gate (Simulation 1 widened):")
            for check in self.bound_checks():
                lines.append("  " + check.render())
        return "\n".join(lines)

    # -- exports -------------------------------------------------------------

    def to_metrics(self, registry) -> None:
        super().to_metrics(registry)
        registry.counter("repro.live.chaos.retries").inc(self.retries)
        registry.counter("repro.live.chaos.violations").inc(
            len(self.violations)
        )
        registry.gauge("repro.live.chaos.unattributed").set(
            float(self.unattributed)
        )
        for key, value in self.outcomes.items():
            registry.counter(f"repro.live.chaos.outcome.{key}").inc(value)

    def to_payload(self) -> Dict[str, object]:
        """The machine-readable report ``tools/validate_live_chaos.py``
        schema-checks in CI."""

        def _violation(v: Violation) -> Dict[str, object]:
            return {
                "monitor": v.monitor,
                "kind": v.kind,
                "time": v.time,
                "node": v.node,
                "edge": list(v.edge) if v.edge is not None else None,
                "detail": v.detail,
                "event_index": v.event_index,
                "event": v.event.describe() if v.event is not None else None,
            }

        return {
            "format": CHAOS_REPORT_FORMAT,
            "version": CHAOS_REPORT_VERSION,
            "params": self.params.to_dict(),
            "plan": self.plan.to_dict() if self.plan is not None else None,
            "operations": len(self.operations),
            "outcomes": self.outcomes,
            "retries": self.retries,
            "linearizable": self.linearization.ok,
            "visited": self.linearization.visited,
            "eps_measured": self.eps_measured,
            "eps_adjusted": self.eps_adjusted,
            "widened_bounds": self.widened_bounds,
            "retry_allowance": self.retry_allowance,
            "bound_checks": [
                {
                    "name": c.name, "measured": c.measured,
                    "limit": c.limit, "ok": c.ok, "detail": c.detail,
                }
                for c in self.bound_checks()
            ],
            "bounds_ok": self.bounds_ok,
            "faults": self.faults,
            "violations": [_violation(v) for v in self.violations],
            "unattributed": self.unattributed,
            "ok": self.ok,
        }

    def write_payload(self, path: str) -> None:
        """Write :meth:`to_payload` to ``path`` as stable, indented JSON."""
        with open(path, "w") as handle:
            json.dump(self.to_payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def __repr__(self) -> str:
        return (
            f"<LiveChaosReport {len(self.operations)} ops, "
            f"outcomes={self.outcomes}, "
            f"linearizable={self.linearization.ok}, "
            f"violations={len(self.violations)} "
            f"({self.unattributed} unattributed)>"
        )

"""Metamorphic test: the whole stack is time-scale invariant.

Scaling every time parameter of a system (delays, c, delta, think
times) by a constant ``k`` must scale every event time and latency by
exactly ``k`` — there are no hidden absolute time constants anywhere in
the engine, channels, or algorithms. A strong whole-stack regression
check: any buried magic number breaks it.
"""

import pytest

from repro.registers.system import (
    run_register_experiment,
    timed_register_system,
)
from repro.registers.workload import RegisterWorkload
from repro.sim.delay import ConstantFractionDelay
from repro.sim.scheduler import DeterministicScheduler


def run_scaled(k, seed=3, ops=4):
    workload = RegisterWorkload(
        operations=ops, read_fraction=0.5, seed=seed,
        think_min=0.5 * k, think_max=0.5 * k,  # constant: keep RNG draws equal
    )
    spec = timed_register_system(
        n=3, d1_prime=0.2 * k, d2_prime=1.0 * k, c=0.3 * k,
        workload=workload, delta=0.01 * k,
        delay_model=ConstantFractionDelay(0.5),
    )
    return run_register_experiment(
        spec, 60.0 * k, scheduler=DeterministicScheduler()
    )


class TestTimeScaleInvariance:
    @pytest.mark.parametrize("k", [2.0, 0.5, 10.0])
    def test_event_times_scale_linearly(self, k):
        base = run_scaled(1.0)
        scaled = run_scaled(k)
        base_events = base.result.recorder.events
        scaled_events = scaled.result.recorder.events
        assert len(base_events) == len(scaled_events)
        for b, s in zip(base_events, scaled_events):
            assert b.action.name == s.action.name
            assert s.now == pytest.approx(b.now * k, rel=1e-9, abs=1e-9)

    @pytest.mark.parametrize("k", [2.0, 0.5])
    def test_latencies_scale_linearly(self, k):
        base = run_scaled(1.0)
        scaled = run_scaled(k)
        assert scaled.max_read_latency() == pytest.approx(
            base.max_read_latency() * k
        )
        assert scaled.max_write_latency() == pytest.approx(
            base.max_write_latency() * k
        )

    def test_correctness_invariant_under_scaling(self):
        for k in (0.25, 5.0):
            assert run_scaled(k).linearizable()

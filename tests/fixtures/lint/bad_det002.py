"""Fixture: reads the wall clock in simulation code (one DET002 finding)."""

import time


def stamp(event):
    """Attach the host machine's clock to a simulated event."""
    event.at = time.time()
    return event

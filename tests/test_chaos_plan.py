"""Tests for fault-plan data: events, validation, compile, serialization."""

import math

import pytest

from repro.chaos.plan import (
    FaultEvent,
    FaultPlan,
    clock_fault,
    crash,
    drop_burst,
    heal,
    partition,
    recover,
)
from repro.errors import SpecificationError
from repro.faults.partition import EdgeDropWindow, PartitionWindow

INFINITY = float("inf")


class TestFaultEvent:
    def test_constructors(self):
        assert crash(0, 1.0).kind == "crash"
        assert recover(0, 2.0).kind == "recover"
        assert partition([[0], [1]], 3.0).groups == ((0,), (1,))
        assert heal(4.0).kind == "heal"
        fault = clock_fault(1, 2.0, 5.0, excess=0.5)
        assert (fault.t, fault.end, fault.excess) == (2.0, 5.0, 0.5)
        burst = drop_burst((0, 1), 1.0, 2.0)
        assert burst.edge == (0, 1)

    def test_validation(self):
        with pytest.raises(SpecificationError):
            FaultEvent("meteor", 0.0)
        with pytest.raises(SpecificationError):
            crash(0, -1.0)
        with pytest.raises(SpecificationError):
            FaultEvent("crash", 1.0)  # no node
        with pytest.raises(SpecificationError):
            clock_fault(0, 2.0, 2.0, excess=0.5)  # empty window
        with pytest.raises(SpecificationError):
            clock_fault(0, 2.0, 3.0, excess=0.0)  # no excess
        with pytest.raises(SpecificationError):
            FaultEvent("drop_burst", 1.0, end=2.0)  # no edge
        with pytest.raises(SpecificationError):
            FaultEvent("partition", 1.0)  # no groups

    def test_describe_mentions_the_parameters(self):
        assert "node=0" in crash(0, 17.0).describe()
        assert "t=[2.5,6)" in clock_fault(1, 2.5, 6.0, 1.5).describe()
        assert "edge=(0, 1)" in drop_burst((0, 1), 1.0, 2.0).describe()

    def test_dict_round_trip(self):
        for event in (
            crash(0, 1.0),
            recover(0, 2.0),
            partition([[0, 2], [1]], 3.0),
            heal(4.0),
            clock_fault(1, 2.0, 5.0, excess=-0.5),
            drop_burst((0, 1), 1.0, 2.0),
        ):
            assert FaultEvent.from_dict(event.to_dict()) == event

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(SpecificationError):
            FaultEvent.from_dict({"kind": "crash", "t": 1.0, "node": 0,
                                  "severity": "high"})


class TestFaultPlanValidation:
    def test_lenient_allows_orphans(self):
        plan = FaultPlan.of([recover(0, 5.0), heal(3.0)])
        plan.validate()  # orphan recover/heal are no-ops, not errors
        compiled = plan.compile()
        assert compiled.recovery == {}
        assert compiled.drop_windows == ()

    def test_strict_requires_pairing(self):
        with pytest.raises(SpecificationError):
            FaultPlan.of([recover(0, 5.0)]).validate(strict=True)
        with pytest.raises(SpecificationError):
            FaultPlan.of([heal(3.0)]).validate(strict=True)
        with pytest.raises(SpecificationError):
            FaultPlan.of([crash(0, 1.0), crash(0, 2.0)]).validate(strict=True)
        # well-paired passes
        FaultPlan.of(
            [crash(0, 1.0), recover(0, 2.0), partition([[0], [1]], 3.0),
             heal(4.0)]
        ).validate(strict=True)


class TestFaultPlanCompile:
    def test_crash_recover_pairing(self):
        compiled = FaultPlan.of(
            [crash(0, 1.0), recover(0, 2.0), crash(0, 5.0)]
        ).compile()
        assert compiled.recovery[0].windows == ((1.0, 2.0), (5.0, INFINITY))

    def test_partition_closes_at_heal(self):
        compiled = FaultPlan.of(
            [partition([[0], [1]], 2.0), heal(4.0)]
        ).compile()
        (window,) = compiled.drop_windows
        assert isinstance(window, PartitionWindow)
        assert (window.start, window.end) == (2.0, 4.0)
        assert window.severs((0, 1), 3.0)
        assert not window.severs((0, 1), 5.0)

    def test_new_partition_closes_the_open_one(self):
        compiled = FaultPlan.of(
            [partition([[0], [1]], 2.0), partition([[0, 1], [2]], 5.0)]
        ).compile()
        first, second = compiled.drop_windows
        assert (first.start, first.end) == (2.0, 5.0)
        assert second.end == INFINITY

    def test_clock_and_drop_windows(self):
        compiled = FaultPlan.of(
            [clock_fault(1, 2.0, 5.0, excess=1.0), drop_burst((0, 1), 3.0, 4.0)]
        ).compile()
        (window,) = compiled.clock_windows[1]
        assert (window.start, window.end, window.excess) == (2.0, 5.0, 1.0)
        (drop,) = compiled.drop_windows
        assert isinstance(drop, EdgeDropWindow)
        assert drop.severs((0, 1), 3.5) and not drop.severs((1, 0), 3.5)


class TestFaultPlanSerialization:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan.of(
            [clock_fault(1, 2.5, 6.0, 1.5), crash(0, 17.0), recover(0, 18.0)],
            name="demo",
        )
        path = tmp_path / "plan.json"
        plan.save(str(path))
        assert FaultPlan.load(str(path)) == plan

    def test_toml_round_trip(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")  # Python 3.11+
        del tomllib
        path = tmp_path / "plan.toml"
        path.write_text(
            'format = "repro-fault-plan"\n'
            "version = 1\n"
            'name = "handwritten"\n'
            "[[events]]\n"
            'kind = "clock_fault"\n'
            "t = 2.5\nend = 6.0\nnode = 1\nexcess = 1.5\n"
            "[[events]]\n"
            'kind = "crash"\nt = 17.0\nnode = 0\n'
        )
        plan = FaultPlan.load(str(path))
        assert plan.name == "handwritten"
        assert plan.events == (
            clock_fault(1, 2.5, 6.0, 1.5), crash(0, 17.0)
        )

    def test_loads_rejects_wrong_format_and_version(self):
        with pytest.raises(SpecificationError):
            FaultPlan.from_dict({"format": "not-a-plan"})
        with pytest.raises(SpecificationError):
            FaultPlan.from_dict({"format": "repro-fault-plan", "version": 99})

    def test_dumps_is_stable(self):
        plan = FaultPlan.of([crash(0, 1.0), recover(0, 2.0)])
        assert plan.dumps() == plan.dumps()
        assert FaultPlan.loads(plan.dumps()) == plan


class TestRandomPlans:
    def test_deterministic_per_seed(self):
        edges = [(0, 1), (1, 0)]
        a = FaultPlan.random(7, n_nodes=2, edges=edges, horizon=20.0)
        b = FaultPlan.random(7, n_nodes=2, edges=edges, horizon=20.0)
        assert a == b
        assert a != FaultPlan.random(8, n_nodes=2, edges=edges, horizon=20.0)

    def test_always_compiles_and_fits_horizon(self):
        for seed in range(25):
            plan = FaultPlan.random(
                seed, n_nodes=3, edges=[(0, 1), (1, 2)], horizon=30.0
            )
            compiled = plan.compile()  # never raises
            for event in plan.events:
                assert 0.0 <= event.t <= 30.0
                if math.isfinite(event.end):
                    assert event.end <= 30.0
            del compiled


class TestAttribution:
    def plan(self):
        return FaultPlan.of(
            [
                clock_fault(1, 2.5, 6.0, excess=1.5),
                drop_burst((0, 1), 15.0, 15.5),
                crash(0, 17.0),
                recover(0, 18.0),
            ],
            name="demo",
        )

    def test_active_window_and_node_win(self):
        event, index = self.plan().attribute(3.0, node=1)
        assert index == 0 and event.kind == "clock_fault"

    def test_edge_locality(self):
        event, index = self.plan().attribute(15.2, edge=(0, 1))
        assert index == 1 and event.kind == "drop_burst"

    def test_fallback_to_most_recent_past_event(self):
        # long after every effect interval: the latest past event wins
        event, index = self.plan().attribute(500.0)
        assert index == 3 and event.kind == "recover"

    def test_empty_plan_attributes_nothing(self):
        assert FaultPlan().attribute(1.0) == (None, None)

    def test_active_events(self):
        active = self.plan().active_events(3.0)
        assert [e.kind for e in active] == ["clock_fault"]

"""THM5.1: Simulation 2 end-to-end.

Regenerates the theorem as a measurement: under the lazy (worst-case)
step policy, every output of the MMT system is shifted into the future
by at most ``k*l + 2*eps + 3*l``, and the measured shift grows with the
step bound ``l``. The timed benchmark measures one MMT run with ticks.
"""

from bench_util import save_table
from harness import exp_thm51, pinger_process_factory, pinger_topology

from repro.clocks.sources import OffsetClockSource
from repro.core.mmt_transform import LazyStepPolicy
from repro.core.pipeline import build_mmt_system
from repro.sim.delay import UniformDelay

EPS = 0.05


def _mmt_run():
    spec = build_mmt_system(
        pinger_topology(), pinger_process_factory(count=6, interval=1.5),
        EPS, d1=0.2, d2=1.0, step_bound=0.05,
        sources=lambda i: OffsetClockSource(EPS, EPS if i == 0 else -EPS),
        step_policy_factory=lambda i: LazyStepPolicy(),
        delay_model=UniformDelay(seed=2),
    )
    return spec.run(20.0)


def test_thm51_simulation2(benchmark):
    result = benchmark(_mmt_run)
    assert result.completed()

    table, shapes = exp_thm51()
    save_table("THM5.1", table)
    assert shapes["all_within"]
    bounds = shapes["bound_grows_with_l"]
    assert bounds == sorted(bounds)

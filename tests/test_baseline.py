"""Tests for the [10]-style slotted baseline register (Section 6.3)."""

import pytest

from repro.registers.baseline import SlottedRegisterProcess
from repro.registers.system import (
    baseline_register_system,
    clock_register_system,
    run_register_experiment,
)
from repro.registers.workload import RegisterWorkload
from repro.sim.clock_drivers import driver_factory
from repro.sim.delay import MaximalDelay, MinimalDelay, UniformDelay
from repro.sim.scheduler import RandomScheduler
from repro.automata.actions import Action
from repro.components.base import ProcessContext

D1, D2 = 0.2, 1.0
EPS = 0.1
U = 2 * EPS


def run_baseline(seed=0, driver_kind="mixed", delay_model=None, ops=5,
                 horizon=80.0, eps=EPS):
    workload = RegisterWorkload(operations=ops, read_fraction=0.5, seed=seed)
    spec = baseline_register_system(
        n=3, d1=D1, d2=D2, eps=eps, workload=workload,
        drivers=driver_factory(driver_kind, eps, seed=seed),
        delay_model=delay_model or UniformDelay(seed=seed),
    )
    return run_register_experiment(
        spec, horizon, scheduler=RandomScheduler(seed=seed)
    )


class TestUnitTransitions:
    def process(self):
        return SlottedRegisterProcess(0, [0, 1, 2], D2, U)

    def test_slot_width_validated(self):
        with pytest.raises(ValueError):
            SlottedRegisterProcess(0, [0], D2, 0.0)

    def test_write_targets_slot_boundary(self):
        proc = self.process()
        state = proc.initial_state()
        proc.apply_input(state, Action("WRITE", (0, "v")), ProcessContext(1.07))
        slot = state.apply_slot
        assert slot % U == pytest.approx(0.0, abs=1e-9)
        assert slot >= 1.07 + D2 + U - 1e-9
        assert slot < 1.07 + D2 + 2 * U

    def test_read_schedule(self):
        proc = self.process()
        state = proc.initial_state()
        proc.apply_input(state, Action("READ", (0,)), ProcessContext(2.0))
        assert state.snap_time == pytest.approx(2.0 + 2 * U)
        assert state.resp_time == pytest.approx(2.0 + 4 * U)

    def test_same_slot_largest_sender_wins(self):
        proc = self.process()
        state = proc.initial_state()
        ctx = ProcessContext(0.0)
        proc.apply_input(state, Action("RECVMSG", (0, 1, ("a", 2.0))), ctx)
        proc.apply_input(state, Action("RECVMSG", (0, 2, ("b", 2.0))), ctx)
        assert state.pending[2.0] == (2, "b")

    def test_apply_at_slot(self):
        proc = self.process()
        state = proc.initial_state()
        proc.apply_input(
            state, Action("RECVMSG", (0, 1, ("v", 2.0))), ProcessContext(1.5)
        )
        ctx = ProcessContext(2.0)
        (apply_action,) = [
            a for a in proc.enabled(state, ctx) if a.name == proc.APPLY
        ]
        proc.fire(state, apply_action, ctx)
        assert state.value == "v"


class TestSectionSixThreeBounds:
    @pytest.mark.parametrize("seed", range(4))
    def test_linearizable(self, seed):
        assert run_baseline(seed=seed).linearizable()

    @pytest.mark.parametrize(
        "driver_kind", ["perfect", "fast", "slow", "mixed", "random"]
    )
    def test_linearizable_across_drivers(self, driver_kind):
        assert run_baseline(seed=2, driver_kind=driver_kind).linearizable()

    @pytest.mark.parametrize(
        "delay_model", [MinimalDelay(), MaximalDelay()],
        ids=lambda d: type(d).__name__,
    )
    def test_linearizable_across_delays(self, delay_model):
        assert run_baseline(seed=3, delay_model=delay_model).linearizable()

    def test_read_latency_is_4u(self):
        result = run_baseline(seed=1)
        # clock-time latency 4u; +2*eps real-time stretch = 5u here
        assert result.max_read_latency() <= 4 * U + 2 * EPS + 1e-9
        assert result.max_read_latency() >= 4 * U - 2 * EPS - 1e-9

    def test_write_latency_at_most_d2_plus_3u(self):
        result = run_baseline(seed=1)
        assert result.max_write_latency() <= D2 + 2 * U + 2 * EPS + 1e-9


class TestComparison:
    def test_transformed_s_beats_baseline_on_combined_latency(self):
        """The Section 6.3 comparison: combined read+write cost
        d2 + 2u (ours) vs d2 + 7u ([10]-style) in clock time."""
        eps = 0.1
        seed = 5
        workload = RegisterWorkload(operations=6, read_fraction=0.5, seed=seed)
        ours_spec = clock_register_system(
            n=3, d1=D1, d2=D2, c=0.1, eps=eps, workload=workload,
            drivers=driver_factory("mixed", eps, seed=seed),
            delay_model=UniformDelay(seed=seed),
        )
        ours = run_register_experiment(
            ours_spec, 80.0, scheduler=RandomScheduler(seed=seed)
        )
        theirs = run_baseline(seed=seed)
        ours_combined = ours.max_read_latency() + ours.max_write_latency()
        theirs_combined = theirs.max_read_latency() + theirs.max_write_latency()
        assert ours.linearizable() and theirs.linearizable()
        assert ours_combined < theirs_combined

"""End-to-end tests of Simulation 1 (Theorem 4.7).

Strategy, following the paper's proof:

1. Run the transformed system ``D_C`` on a real ``[d1, d2]`` network with
   clock accuracy ``eps`` under a battery of adversaries.
2. Build ``gamma_alpha`` (Definition 4.2): the visible trace re-stamped
   with the acting node's *clock* and stably re-sorted.
3. Check (Theorem 4.6) that ``t-trace(alpha) =_{eps,K} gamma_alpha``
   with ``K`` the per-node action classes.
4. Check that ``gamma_alpha`` satisfies the *design-model* problem ``P``
   (round-trip bounds computed against ``[d1', d2']``), so
   ``t-trace(alpha)`` is in ``P_eps``.
"""

import pytest

from helpers import pinger_process_factory, pinger_topology
from repro.automata.actions import ActionPattern, PatternActionSet
from repro.core.pipeline import (
    build_clock_system,
    build_timed_system,
    simulation1_delay_bounds,
)
from repro.sim.clock_drivers import driver_factory
from repro.sim.delay import (
    AlternatingExtremesDelay,
    MaximalDelay,
    MinimalDelay,
    UniformDelay,
)
from repro.sim.scheduler import RandomScheduler
from repro.traces.relations import equivalent_eps, max_time_displacement

EPS = 0.25
D1, D2 = 0.3, 1.2
D1P, D2P = simulation1_delay_bounds(D1, D2, EPS)
KAPPA = [
    PatternActionSet([ActionPattern("PING"), ActionPattern("GOTPONG")]),
]


def run_clock_system(driver_kind, delay_model, seed=0, count=5, horizon=30.0):
    spec = build_clock_system(
        pinger_topology(),
        pinger_process_factory(count, 2.0),
        EPS,
        d1=D1,
        d2=D2,
        drivers=driver_factory(driver_kind, EPS, seed=seed),
        delay_model=delay_model,
    )
    return spec.run(horizon, scheduler=RandomScheduler(seed=seed))


def round_trips(trace):
    pings = {}
    rtts = {}
    for ev in trace:
        if ev.action.name == "PING":
            pings[ev.action.params[1]] = ev.time
        elif ev.action.name == "GOTPONG":
            rtts[ev.action.params[1]] = ev.time - pings[ev.action.params[1]]
    return rtts


def in_design_problem(trace):
    """P: every pong arrives within [2*d1', 2*d2'] of its ping."""
    rtts = round_trips(trace)
    return all(
        2 * D1P - 1e-9 <= rtt <= 2 * D2P + 1e-9 for rtt in rtts.values()
    ) and len(rtts) > 0


DRIVERS = ["perfect", "fast", "slow", "mixed", "random", "drift", "sawtooth"]
DELAYS = [
    MinimalDelay(),
    MaximalDelay(),
    UniformDelay(seed=5),
    AlternatingExtremesDelay(),
]


class TestTheorem47:
    @pytest.mark.parametrize("driver_kind", DRIVERS)
    def test_gamma_satisfies_design_problem(self, driver_kind):
        result = run_clock_system(driver_kind, UniformDelay(seed=1))
        gamma = result.clock_trace()
        assert in_design_problem(gamma)

    @pytest.mark.parametrize("driver_kind", DRIVERS)
    def test_trace_eps_equivalent_to_gamma(self, driver_kind):
        result = run_clock_system(driver_kind, UniformDelay(seed=1))
        gamma = result.clock_trace()
        assert equivalent_eps(result.trace, gamma, EPS, KAPPA)

    @pytest.mark.parametrize("delay_model", DELAYS, ids=lambda d: type(d).__name__)
    def test_across_delay_adversaries(self, delay_model):
        result = run_clock_system("mixed", delay_model, seed=3)
        gamma = result.clock_trace()
        assert in_design_problem(gamma)
        assert equivalent_eps(result.trace, gamma, EPS, KAPPA)

    def test_relaxation_to_p_eps_is_necessary(self):
        """The raw real-time trace may fall outside ``P`` even when
        ``gamma`` is inside — which is exactly why Theorem 4.7 proves
        membership in ``P_eps`` rather than ``P``.

        Take the (legitimate) design spec "PING k occurs exactly at time
        2k": ``gamma`` satisfies it (the pinger acts on its clock), but
        with a skewed clock the real-time trace does not.
        """
        result = run_clock_system("fast", UniformDelay(seed=2))

        def pings_exact(trace):
            return all(
                abs(ev.time - 2.0 * ev.action.params[1]) < 1e-9
                for ev in trace
                if ev.action.name == "PING"
            )

        assert pings_exact(result.clock_trace())
        assert not pings_exact(result.trace)

    def test_displacement_bounded_by_eps(self):
        result = run_clock_system("mixed", UniformDelay(seed=9), seed=2)
        gamma = result.clock_trace()
        displacement = max_time_displacement(result.trace, gamma, KAPPA)
        assert displacement is not None
        assert displacement <= EPS + 1e-9

    def test_perfect_clocks_reduce_to_timed_model(self):
        """With eps-accurate clocks that are in fact perfect, D_C behaves
        like D_T up to the widened channel interface."""
        clock_result = run_clock_system("perfect", MinimalDelay())
        timed_spec = build_timed_system(
            pinger_topology(),
            pinger_process_factory(5, 2.0),
            D1,
            D2,
            MinimalDelay(),
        )
        timed_result = timed_spec.run(30.0)
        assert equivalent_eps(
            clock_result.trace, timed_result.trace, 1e-9, KAPPA
        )

    def test_all_pings_answered(self):
        result = run_clock_system("mixed", UniformDelay(seed=4))
        rtts = round_trips(result.trace)
        assert len(rtts) == 5

"""Sequential consistency of register histories (Attiya-Welch [2]).

The paper's algorithm L descends from Attiya and Welch's *Sequential
Consistency Versus Linearizability* [2]. This module supplies the weaker
condition so the cost gap can be measured (benchmark ABL4):

A history is **sequentially consistent** when there is a total order of
all operations that (a) preserves each node's program order and (b) is
legal for the register (every read returns the latest preceding write,
or the initial value). Unlike linearizability there is *no* real-time
constraint across nodes.

The checker searches for such an order: depth-first over "which
operation next", where a candidate must be the next program-order
operation of its node, memoized on (per-node positions, register
value). Histories come from the same ``READ``/``RETURN``/``WRITE``/
``ACK`` traces the linearizability checker consumes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.automata.executions import TimedSequence
from repro.traces.linearizability import (
    AlternationViolation,
    Operation,
    extract_operations,
)


def find_sequentialization(
    ops: Sequence[Operation],
    initial_value: object = None,
) -> Optional[List[int]]:
    """A program-order-preserving legal total order, or ``None``.

    Returns the operation ids in order.
    """
    per_node: Dict[int, List[Operation]] = {}
    for op in sorted(ops, key=lambda o: o.inv_time):
        per_node.setdefault(op.node, []).append(op)
    nodes = sorted(per_node)
    total = len(ops)
    memo = set()
    order: List[int] = []

    def recurse(positions: Tuple[int, ...], value: object) -> bool:
        if len(order) == total:
            return True
        key = (positions, value)
        if key in memo:
            return False
        for idx, node in enumerate(nodes):
            position = positions[idx]
            if position >= len(per_node[node]):
                continue
            op = per_node[node][position]
            if op.kind == "R" and op.value != value:
                continue
            new_value = op.value if op.kind == "W" else value
            new_positions = (
                positions[:idx] + (position + 1,) + positions[idx + 1:]
            )
            order.append(op.op_id)
            if recurse(new_positions, new_value):
                return True
            order.pop()
        memo.add(key)
        return False

    if recurse(tuple(0 for _ in nodes), initial_value):
        return list(order)
    return None


def is_sequentially_consistent(
    history: Iterable,
    initial_value: object = None,
) -> bool:
    """Whether a history (trace or operation list) is sequentially
    consistent. Traces whose alternation condition is violated by the
    environment are vacuously accepted, mirroring problem ``P``."""
    if isinstance(history, TimedSequence):
        try:
            ops: List[Operation] = extract_operations(history)
        except AlternationViolation as violation:
            if violation.by_environment:
                return True
            raise
    else:
        ops = list(history)
    return find_sequentialization(ops, initial_value) is not None

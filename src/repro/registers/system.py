"""One-call builders for register systems in all three models.

Each builder wires: register processes on a complete topology with
self-loops (algorithm S updates the sender's own copy by message),
channels with the model-appropriate payloads, per-node clients, and — in
the clock/MMT models — clock drivers or tick sources.

:func:`run_register_experiment` runs a built system and packages the
outcome as a :class:`RegisterRun`: completed operations, latency
summaries, and correctness checks against the problems ``P`` and ``Q``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.components.base import Process
from repro.core.mmt_transform import StepPolicy
from repro.core.pipeline import (
    SystemSpec,
    build_clock_system,
    build_mmt_system,
    build_native_clock_system,
    build_timed_system,
    simulation1_delay_bounds,
)
from repro.network.topology import Topology
from repro.registers.algorithm_l import AlgorithmLProcess, RegisterProcess
from repro.registers.algorithm_s import (
    AlgorithmSProcess,
    NaiveSuperlinearizableProcess,
)
from repro.registers.baseline import SlottedRegisterProcess
from repro.registers.workload import ClientEntity, CompletedOp, RegisterWorkload
from repro.sim.delay import DelayModel
from repro.sim.engine import SimulationResult
from repro.sim.scheduler import Scheduler
from repro.traces.linearizability import is_linearizable, is_superlinearizable

INITIAL_VALUE = ("v", -1, 0)
"""Default initial register value ``v0`` (distinct from client values)."""


def _register_process_factory(
    algorithm: str,
    n: int,
    d2_prime: float,
    c: float,
    eps: float,
    delta: float,
    initial_value: object,
) -> Callable[[int], Process]:
    peers = list(range(n))

    def make(i: int) -> Process:
        if algorithm == "L":
            return AlgorithmLProcess(
                i, peers, d2_prime, c, delta=delta, initial_value=initial_value
            )
        if algorithm == "S":
            return AlgorithmSProcess(
                i, peers, d2_prime, c, eps, delta=delta,
                initial_value=initial_value,
            )
        if algorithm == "naive":
            return NaiveSuperlinearizableProcess(
                i, peers, d2_prime, c, eps, delta=delta,
                initial_value=initial_value,
            )
        raise ValueError(f"unknown algorithm {algorithm!r}")

    return make


def _attach_clients(
    spec: SystemSpec, n: int, workload: RegisterWorkload, schedules=None
) -> SystemSpec:
    if schedules is not None and len(schedules) != n:
        raise ValueError(f"need {n} schedules, got {len(schedules)}")
    clients = [
        ClientEntity(i, workload, schedule=schedules[i] if schedules else None)
        for i in range(n)
    ]
    return spec.add(*clients)


def timed_register_system(
    n: int,
    d1_prime: float,
    d2_prime: float,
    c: float,
    workload: RegisterWorkload,
    algorithm: str = "L",
    eps: float = 0.0,
    delta: float = 0.01,
    delay_model: Optional[DelayModel] = None,
    initial_value: object = INITIAL_VALUE,
    schedules=None,
) -> SystemSpec:
    """``D_T(G, L/S, E_{[d1',d2']})`` with clients (Lemmas 6.1, 6.2).

    ``schedules`` (optional): one precomputed
    :class:`~repro.registers.opstream.OpSchedule` per node, replayed
    instead of the online workload draws — the sim side of sim/live
    cross-validation.
    """
    topology = Topology.complete(n, self_loops=True)
    factory = _register_process_factory(
        algorithm, n, d2_prime, c, eps, delta, initial_value
    )
    spec = build_timed_system(topology, factory, d1_prime, d2_prime, delay_model)
    return _attach_clients(spec, n, workload, schedules)


def clock_register_system(
    n: int,
    d1: float,
    d2: float,
    c: float,
    eps: float,
    workload: RegisterWorkload,
    drivers,
    algorithm: str = "S",
    delta: float = 0.01,
    delay_model: Optional[DelayModel] = None,
    initial_value: object = INITIAL_VALUE,
    schedules=None,
) -> SystemSpec:
    """``D_C(G, S^c_eps, E^c_{[d1,d2]})`` with clients (Theorem 6.5).

    The process is parameterized for the *design* bounds
    ``[d1', d2'] = [max(d1 - 2*eps, 0), d2 + 2*eps]``; the physical
    channels run at ``[d1, d2]``. ``schedules`` (optional) replays
    precomputed per-node op schedules — the sim side of sim/live
    cross-validation (see :mod:`repro.live`).
    """
    _, d2_prime = simulation1_delay_bounds(d1, d2, eps)
    topology = Topology.complete(n, self_loops=True)
    factory = _register_process_factory(
        algorithm, n, d2_prime, c, eps, delta, initial_value
    )
    spec = build_clock_system(
        topology, factory, eps, d1, d2, drivers, delay_model
    )
    return _attach_clients(spec, n, workload, schedules)


def baseline_register_system(
    n: int,
    d1: float,
    d2: float,
    eps: float,
    workload: RegisterWorkload,
    drivers,
    delay_model: Optional[DelayModel] = None,
    initial_value: object = INITIAL_VALUE,
) -> SystemSpec:
    """The [10]-style slotted register, native in the clock model.

    Slot width ``u = 2*eps`` (the models' correspondence of
    Section 6.3).
    """
    topology = Topology.complete(n, self_loops=True)
    u = 2.0 * eps
    peers = list(range(n))

    def factory(i: int) -> Process:
        return SlottedRegisterProcess(i, peers, d2, u, initial_value=initial_value)

    spec = build_native_clock_system(
        topology, factory, eps, d1, d2, drivers, delay_model
    )
    return _attach_clients(spec, n, workload)


def mmt_register_system(
    n: int,
    d1: float,
    d2: float,
    c: float,
    eps: float,
    step_bound: float,
    sources,
    workload: RegisterWorkload,
    algorithm: str = "S",
    delta: float = 0.01,
    tick_interval: Optional[float] = None,
    step_policy_factory: Optional[Callable[[int], StepPolicy]] = None,
    delay_model: Optional[DelayModel] = None,
    initial_value: object = INITIAL_VALUE,
) -> SystemSpec:
    """``D_M`` register system via both simulations (Theorem 5.2)."""
    _, d2_prime = simulation1_delay_bounds(d1, d2, eps)
    topology = Topology.complete(n, self_loops=True)
    factory = _register_process_factory(
        algorithm, n, d2_prime, c, eps, delta, initial_value
    )
    spec = build_mmt_system(
        topology,
        factory,
        eps,
        d1,
        d2,
        step_bound,
        sources,
        tick_interval=tick_interval,
        step_policy_factory=step_policy_factory,
        delay_model=delay_model,
    )
    return _attach_clients(spec, n, workload)


@dataclass
class RegisterRun:
    """Outcome of one register experiment."""

    result: SimulationResult
    operations: List[CompletedOp]
    initial_value: object

    @property
    def reads(self) -> List[CompletedOp]:
        return [op for op in self.operations if op.kind == "R"]

    @property
    def writes(self) -> List[CompletedOp]:
        return [op for op in self.operations if op.kind == "W"]

    def max_read_latency(self) -> float:
        """Worst completed-read latency."""
        return max((op.latency for op in self.reads), default=0.0)

    def max_write_latency(self) -> float:
        """Worst completed-write latency."""
        return max((op.latency for op in self.writes), default=0.0)

    def mean_read_latency(self) -> float:
        """Mean completed-read latency (0 with no reads)."""
        reads = self.reads
        return sum(op.latency for op in reads) / len(reads) if reads else 0.0

    def mean_write_latency(self) -> float:
        """Mean completed-write latency (0 with no writes)."""
        writes = self.writes
        return sum(op.latency for op in writes) / len(writes) if writes else 0.0

    def linearizable(self) -> bool:
        """Membership of the run's trace in problem ``P``."""
        return is_linearizable(self.result.trace, self.initial_value)

    def superlinearizable(self, eps: float) -> bool:
        """Membership of the run's trace in problem ``Q``."""
        return is_superlinearizable(self.result.trace, eps, self.initial_value)

    def __repr__(self) -> str:
        return (
            f"<RegisterRun: {len(self.reads)} reads "
            f"(max {self.max_read_latency():.3f}), {len(self.writes)} writes "
            f"(max {self.max_write_latency():.3f})>"
        )


def run_register_experiment(
    spec: SystemSpec,
    horizon: float,
    scheduler: Optional[Scheduler] = None,
    initial_value: object = INITIAL_VALUE,
    max_steps: int = 1_000_000,
    recorder=None,
    metrics=None,
    tracer=None,
    shards=None,
    window=None,
) -> RegisterRun:
    """Run a built register system and collect per-operation results.

    ``shards`` selects the sharded engine mode; the system must be
    shard-safe (replay-schedule clients, a shard-safe delay model, and
    — for the clock model — granularity-free drivers), or
    :class:`~repro.errors.ShardingError` is raised.
    """
    result = spec.run(
        horizon, scheduler=scheduler, max_steps=max_steps,
        recorder=recorder, metrics=metrics, tracer=tracer,
        shards=shards, window=window,
    )
    operations: List[CompletedOp] = []
    for name, state in result.final_states.items():
        if name.startswith("client(") and hasattr(state, "completed"):
            operations.extend(state.completed)
    operations.sort(key=lambda op: op.inv_time)
    return RegisterRun(
        result=result, operations=operations, initial_value=initial_value
    )

"""Executable components (operational layer).

The theory layer (:mod:`repro.automata`) encodes the paper's definitions
relationally; this subpackage provides the *operational* counterparts the
discrete-event simulator runs:

- :class:`~repro.components.base.Process` — an algorithm automaton
  ``A_i`` written against perfect real time (the paper's simple
  programming model, Section 3). The same process code runs unchanged in
  all three system models; the transformations in :mod:`repro.core`
  reinterpret its notion of time.
- :class:`~repro.components.base.Entity` — a top-level scheduling unit
  of the simulator (node, channel, client, tick source).
- :class:`~repro.components.base.TimedNodeEntity` — a node of the timed
  model ``D_T`` (process sees the global ``now``).
- :mod:`repro.components.mmt` — MMT boundmap machinery and step policies.
- :mod:`repro.components.tick` — the clock subsystem ``C^m`` that feeds
  ``TICK(c)`` actions to MMT nodes.
- :mod:`repro.components.pinger` — the minimal pinger/echo workload used
  by the simulation tests, the experiment harness, and campaign smoke
  grids.
"""

from repro.components.base import (
    Entity,
    Process,
    ProcessContext,
    TimedNodeEntity,
)

__all__ = [
    "Entity",
    "Process",
    "ProcessContext",
    "TimedNodeEntity",
]

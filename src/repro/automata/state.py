"""Immutable state records for the theory layer.

Theory-layer automata (Definitions 2.1 and 2.3) manipulate whole states as
values: transitions are triples ``(s, a, s')``. :class:`State` is a small
immutable mapping with attribute access, structural equality, and hashing,
so states can be stored in sets and compared in axiom checks.

Every timed-automaton state has a ``now`` component; clock-automaton
states additionally have a ``clock`` component. ``tbasic`` / ``cbasic``
views (everything except ``now`` / except ``now`` and ``clock``) are
provided to match the paper's notation.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Tuple


def _freeze(value: Any) -> Any:
    """Convert common mutable containers to hashable equivalents."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, set):
        return frozenset(_freeze(v) for v in value)
    return value


class State(Mapping):
    """An immutable automaton state.

    Fields are supplied as keyword arguments; mutable containers are
    frozen on construction so every state is hashable.

    >>> s = State(now=0.0, queue=[1, 2])
    >>> s.now
    0.0
    >>> s.queue
    (1, 2)
    >>> s.replace(now=1.0).now
    1.0
    """

    __slots__ = ("_data", "_hash")

    def __init__(self, **fields: Any):
        object.__setattr__(self, "_data", {k: _freeze(v) for k, v in fields.items()})
        object.__setattr__(self, "_hash", None)

    # -- mapping protocol -----------------------------------------------

    def __getitem__(self, key: str) -> Any:
        return self._data[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    # -- attribute access -----------------------------------------------

    def __getattr__(self, name: str) -> Any:
        try:
            return self._data[name]
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("State is immutable; use .replace()")

    # -- value semantics -------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, State):
            return NotImplemented
        return self._data == other._data

    def __hash__(self) -> int:
        if self._hash is None:
            object.__setattr__(
                self, "_hash", hash(tuple(sorted(self._data.items(), key=lambda kv: kv[0])))
            )
        return self._hash

    # -- construction helpers ---------------------------------------------

    def replace(self, **fields: Any) -> "State":
        """Return a copy with the given fields replaced."""
        data: Dict[str, Any] = dict(self._data)
        data.update(fields)
        return State(**data)

    def project(self, *names: str) -> "State":
        """Return a state containing only the named fields."""
        return State(**{k: self._data[k] for k in names})

    def drop(self, *names: str) -> Tuple[Tuple[str, Any], ...]:
        """Return the remaining fields, sorted, as a hashable tuple."""
        return tuple(
            sorted((k, v) for k, v in self._data.items() if k not in names)
        )

    # -- paper notation ----------------------------------------------------

    @property
    def tbasic(self) -> Tuple[Tuple[str, Any], ...]:
        """All components except ``now`` (Definition 2.1)."""
        return self.drop("now")

    @property
    def cbasic(self) -> Tuple[Tuple[str, Any], ...]:
        """All components except ``now`` and ``clock`` (Definition 2.3)."""
        return self.drop("now", "clock")

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._data.items()))
        return f"State({inner})"

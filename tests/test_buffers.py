"""Tests for the Figure 2 send/receive buffers (FIG2 semantics)."""

import pytest

from repro.core.buffers import ReceiveBuffer, SendBuffer
from repro.errors import TransitionError

INFINITY = float("inf")


class TestSendBuffer:
    def test_tags_with_send_clock(self):
        buf = SendBuffer(0, 1)
        buf.enqueue("m", clock=2.5)
        assert buf.front() == ("m", 2.5)

    def test_emission_urgent_once_buffered(self):
        buf = SendBuffer(0, 1)
        assert not buf.can_emit(1.0)
        buf.enqueue("m", clock=1.0)
        assert buf.can_emit(1.0)

    def test_clock_deadline_pins_clock(self):
        buf = SendBuffer(0, 1)
        assert buf.clock_deadline() == INFINITY
        buf.enqueue("m", clock=3.0)
        assert buf.clock_deadline() == 3.0

    def test_fifo_order(self):
        buf = SendBuffer(0, 1)
        buf.enqueue("a", clock=1.0)
        buf.enqueue("b", clock=1.0)
        assert buf.emit(1.0) == ("a", 1.0)
        assert buf.emit(1.0) == ("b", 1.0)

    def test_emit_empty_raises(self):
        with pytest.raises(TransitionError):
            SendBuffer(0, 1).emit(0.0)


class TestReceiveBuffer:
    def test_holds_until_clock_reaches_stamp(self):
        buf = ReceiveBuffer(0, 1)
        buf.enqueue("m", stamp=5.0, clock=4.0)
        assert not buf.can_deliver(4.9)
        assert buf.can_deliver(5.0)

    def test_immediate_delivery_for_past_stamps(self):
        buf = ReceiveBuffer(0, 1)
        buf.enqueue("m", stamp=1.0, clock=3.0)
        assert buf.can_deliver(3.0)

    def test_clock_deadline_forces_delivery_time(self):
        buf = ReceiveBuffer(0, 1)
        buf.enqueue("m", stamp=5.0, clock=4.0)
        assert buf.clock_deadline() == 5.0

    def test_min_stamp_first_despite_arrival_order(self):
        # Reordering network: the late-stamped message arrives first.
        buf = ReceiveBuffer(0, 1)
        buf.enqueue("late", stamp=5.0, clock=2.0)
        buf.enqueue("early", stamp=3.0, clock=2.0)
        assert buf.front() == ("early", 3.0)
        assert buf.clock_deadline() == 3.0  # no wedge: min stamp governs

    def test_fifo_within_equal_stamps(self):
        buf = ReceiveBuffer(0, 1)
        buf.enqueue("first", stamp=3.0, clock=2.0)
        buf.enqueue("second", stamp=3.0, clock=2.0)
        assert buf.deliver(3.0) == ("first", 3.0)
        assert buf.deliver(3.0) == ("second", 3.0)

    def test_deliver_too_early_raises(self):
        buf = ReceiveBuffer(0, 1)
        buf.enqueue("m", stamp=5.0, clock=0.0)
        with pytest.raises(TransitionError):
            buf.deliver(4.0)

    def test_hold_statistics(self):
        buf = ReceiveBuffer(0, 1)
        buf.enqueue("held", stamp=5.0, clock=4.0)     # had to wait 1.0
        buf.enqueue("instant", stamp=2.0, clock=4.0)  # no wait
        assert buf.held_count == 1
        assert buf.total_hold_clock == pytest.approx(1.0)

    def test_lamport_invariant(self):
        """Receive clock time is never below the send clock stamp."""
        buf = ReceiveBuffer(0, 1)
        stamps = [4.0, 2.0, 7.0, 3.5]
        for i, stamp in enumerate(stamps):
            buf.enqueue(("m", i), stamp=stamp, clock=1.0)
        clock = 1.0
        delivered = []
        while buf.front() is not None:
            clock = max(clock, buf.clock_deadline())
            message, stamp = buf.deliver(clock)
            assert clock >= stamp - 1e-9
            delivered.append(stamp)
        assert delivered == sorted(stamps)

"""Generic MMT automata and the T-transformation of [7] (Section 5.1).

An MMT automaton is an I/O automaton with *no* ``now`` state and no
time-passage action; timing enters only through a partition of the
locally controlled actions into classes and a *boundmap* assigning each
class a closed interval ``[lower, upper]``: once some action of a class
is continuously enabled, an action of the class must occur within
``upper`` (and may not before ``lower``).

:class:`TimedFromMMT` is the executable version of the trace-preserving
transformation ``T`` from MMT automata to timed automata used in
Section 5.2 ([7]): it adds one timer per class. The timer semantics:

- when a class goes from disabled to enabled (or fires), its window is
  reset to ``[now + lower, now + upper]``;
- while the class is enabled, actions of it are offered only inside the
  window, and the ``nu`` deadline caps time at the window's end;
- when the class becomes disabled, its timer is cleared.

A :class:`~repro.core.mmt_transform.StepPolicy` narrows the firing
instant within the window, playing the adversary the boundmap allows.

The special case used by Simulation 2 (single class, boundmap
``[0, l]``) is built directly into
:class:`~repro.core.mmt_transform.MMTNodeEntity` for efficiency; this
module provides the general machinery for other MMT algorithms and for
testing the model itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.automata.actions import Action
from repro.automata.signature import Signature
from repro.components.base import Entity
from repro.core.mmt_transform import EagerStepPolicy, StepPolicy
from repro.errors import SpecificationError, TransitionError

from repro.constants import INFINITY, TOLERANCE as _TOLERANCE


@dataclass(frozen=True)
class Boundmap:
    """Per-class timing bounds ``class -> [lower, upper]``."""

    bounds: Tuple[Tuple[Hashable, float, float], ...]

    def __init__(self, bounds: Dict[Hashable, Tuple[float, float]]):
        normalized = []
        for cls, (lower, upper) in sorted(bounds.items(), key=lambda kv: str(kv[0])):
            if lower < 0 or upper < lower:
                raise SpecificationError(
                    f"class {cls!r}: invalid bounds [{lower}, {upper}]"
                )
            normalized.append((cls, float(lower), float(upper)))
        object.__setattr__(self, "bounds", tuple(normalized))

    def classes(self) -> List[Hashable]:
        """All partition classes, in canonical order."""
        return [cls for cls, _, __ in self.bounds]

    def interval(self, cls: Hashable) -> Tuple[float, float]:
        """The ``[lower, upper]`` bounds of one class."""
        for candidate, lower, upper in self.bounds:
            if candidate == cls:
                return (lower, upper)
        raise KeyError(cls)


class MMTAutomaton:
    """Abstract MMT automaton (Section 5.1).

    Subclasses supply the untimed transition structure plus the class
    partition: :meth:`class_of` maps each locally controlled action to
    its class, and :meth:`boundmap` gives the timing bounds.
    """

    def __init__(self, signature: Signature, name: str = "M"):
        self.signature = signature
        self.name = name

    def initial_state(self) -> Any:
        """A fresh mutable state object."""
        raise NotImplementedError

    def apply_input(self, state: Any, action: Action) -> None:
        """Apply an input action (untimed effect)."""
        raise NotImplementedError

    def enabled(self, state: Any) -> List[Action]:
        """Locally controlled actions enabled in this state (untimed)."""
        raise NotImplementedError

    def fire(self, state: Any, action: Action) -> None:
        """Perform one enabled locally controlled action."""
        raise NotImplementedError

    def class_of(self, action: Action) -> Hashable:
        """The partition class of a locally controlled action."""
        raise NotImplementedError

    def boundmap(self) -> Boundmap:
        """The per-class timing bounds."""
        raise NotImplementedError


@dataclass
class _ClassTimer:
    """One class's window ``[not_before, deadline]`` (absolute times)."""

    not_before: float
    deadline: float
    target: float  # the policy-chosen firing instant within the window


@dataclass
class TimedFromMMTState:
    inner: Any
    timers: Dict[Hashable, _ClassTimer] = field(default_factory=dict)


class TimedFromMMT(Entity):
    """``T(A)``: the timed (entity) form of an MMT automaton.

    Trace-preserving ([7]): for every execution of this entity there is
    an MMT execution with the same timed trace, and vice versa.
    """

    # deadline == min class-timer target (timers are state, set by
    # fire/apply_input), and a class only becomes enabled when time
    # reaches its timer's target.
    static_deadline = True
    wakes_at_deadline = True

    def __init__(
        self,
        automaton: MMTAutomaton,
        step_policies: Optional[Dict[Hashable, StepPolicy]] = None,
    ):
        super().__init__(f"T({automaton.name})", automaton.signature)
        self.automaton = automaton
        self._bounds = automaton.boundmap()
        self._policies = dict(step_policies or {})

    def _policy(self, cls: Hashable) -> StepPolicy:
        if cls not in self._policies:
            self._policies[cls] = EagerStepPolicy()
        return self._policies[cls]

    # -- timer maintenance ------------------------------------------------

    def _enabled_classes(self, state: TimedFromMMTState) -> Dict[Hashable, List[Action]]:
        grouped: Dict[Hashable, List[Action]] = {}
        for action in self.automaton.enabled(state.inner):
            grouped.setdefault(self.automaton.class_of(action), []).append(action)
        return grouped

    def _refresh_timers(self, state: TimedFromMMTState, now: float) -> None:
        grouped = self._enabled_classes(state)
        for cls in list(state.timers):
            if cls not in grouped:
                del state.timers[cls]
        for cls in grouped:
            if cls not in state.timers:
                lower, upper = self._bounds.interval(cls)
                window_start = now + lower
                window_end = now + upper
                target = self._policy(cls).next_step(window_start, upper - lower)
                target = min(max(target, window_start), window_end)
                state.timers[cls] = _ClassTimer(window_start, window_end, target)

    # -- entity interface -------------------------------------------------------

    def initial_state(self) -> TimedFromMMTState:
        state = TimedFromMMTState(inner=self.automaton.initial_state())
        self._refresh_timers(state, 0.0)
        return state

    def apply_input(self, state: TimedFromMMTState, action: Action, now: float) -> None:
        self.automaton.apply_input(state.inner, action)
        self._refresh_timers(state, now)

    def enabled(self, state: TimedFromMMTState, now: float) -> List[Action]:
        grouped = self._enabled_classes(state)
        offered: List[Action] = []
        for cls, actions in grouped.items():
            timer = state.timers.get(cls)
            if timer is None:
                continue
            if now + _TOLERANCE >= timer.target:
                offered.extend(actions)
        return offered

    def fire(self, state: TimedFromMMTState, action: Action, now: float) -> None:
        cls = self.automaton.class_of(action)
        timer = state.timers.get(cls)
        if timer is None or now + _TOLERANCE < timer.not_before:
            raise TransitionError(
                f"{self.name}: {action} fired outside its class window"
            )
        self.automaton.fire(state.inner, action)
        # Firing resets the class's obligation.
        del state.timers[cls]
        self._refresh_timers(state, now)

    def deadline(self, state: TimedFromMMTState, now: float) -> float:
        if not state.timers:
            return INFINITY
        return min(timer.target for timer in state.timers.values())

"""Clients, workloads, and system builders for generalized objects."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.automata.actions import Action, ActionPattern, PatternActionSet
from repro.automata.signature import Signature
from repro.components.base import Entity, Process
from repro.core.pipeline import (
    SystemSpec,
    build_clock_system,
    build_timed_system,
    simulation1_delay_bounds,
)
from repro.errors import TransitionError
from repro.network.topology import Topology
from repro.objects.algorithm import BlindUpdateObjectProcess
from repro.objects.history import (
    is_object_linearizable,
    is_object_superlinearizable,
)
from repro.objects.specs import SequentialSpec
from repro.sim.delay import DelayModel
from repro.sim.engine import SimulationResult
from repro.sim.scheduler import Scheduler

from repro.constants import INFINITY, TOLERANCE as _TOLERANCE

PayloadGenerator = Callable[[random.Random, int, int, bool], Tuple]
"""``f(rng, node, seq, is_update) -> payload`` for workload generation."""


def default_payloads(spec: SequentialSpec) -> PayloadGenerator:
    """A sensible random payload generator per built-in spec."""

    def register(rng, node, seq, is_update):
        if is_update:
            return ("write", ("v", node, seq))
        return ("read",)

    def counter(rng, node, seq, is_update):
        if is_update:
            return (rng.choice(["add", "add", "sub"]), rng.randint(1, 5)) \
                if spec.name == "pn-counter" else ("add", rng.randint(1, 5))
        return ("read",)

    def max_register(rng, node, seq, is_update):
        if is_update:
            return ("writemax", rng.randint(0, 100))
        return ("read",)

    def g_set(rng, node, seq, is_update):
        if is_update:
            return ("add", (node, seq))
        if rng.random() < 0.5:
            return ("size",)
        return ("contains", (rng.randrange(3), rng.randrange(max(seq, 1))))

    def lww_map(rng, node, seq, is_update):
        key = rng.choice(["a", "b", "c"])
        if is_update:
            if rng.random() < 0.2:
                return ("remove", key)
            return ("put", key, ("v", node, seq))
        if rng.random() < 0.3:
            return ("size",)
        return ("get", key)

    table = {
        "register": register,
        "counter": counter,
        "pn-counter": counter,
        "max-register": max_register,
        "g-set": g_set,
        "lww-map": lww_map,
    }
    if spec.name not in table:
        raise ValueError(
            f"no default payload generator for spec {spec.name!r}; "
            f"pass payloads= explicitly"
        )
    return table[spec.name]


@dataclass
class ObjectWorkload:
    """Closed-loop workload over a generalized object."""

    operations: int = 8
    update_fraction: float = 0.5
    think_min: float = 0.3
    think_max: float = 1.5
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.update_fraction <= 1.0:
            raise ValueError("update_fraction must be in [0, 1]")
        if self.think_min < 0 or self.think_max < self.think_min:
            raise ValueError("invalid think time range")


@dataclass
class CompletedObjOp:
    kind: str            # "U" or "Q"
    payload: Tuple
    response: object
    inv_time: float
    res_time: float

    @property
    def latency(self) -> float:
        return self.res_time - self.inv_time


@dataclass
class ObjectClientState:
    next_inv_time: float = 0.0
    issued: int = 0
    pending: Optional[Tuple[str, Tuple, float]] = None
    completed: List[CompletedObjOp] = field(default_factory=list)


class ObjectClientEntity(Entity):
    """Closed-loop client issuing DO/ASK invocations for node ``i``."""

    # enabled() draws from the workload RNG (operation and payload
    # choice), so the engine must re-evaluate it every round to keep the
    # draw sequence identical across execution strategies.
    pure_enabled = False

    def __init__(self, node: int, workload: ObjectWorkload,
                 payloads: PayloadGenerator):
        signature = Signature(
            inputs=PatternActionSet(
                [ActionPattern("DONE", (node,)), ActionPattern("REPLY", (node,))]
            ),
            outputs=PatternActionSet(
                [ActionPattern("DO", (node,)), ActionPattern("ASK", (node,))]
            ),
        )
        super().__init__(f"objclient({node})", signature)
        self.node = node
        self.workload = workload
        self.payloads = payloads
        self._rng = random.Random(workload.seed * 99_991 + node)
        self._seq = 0

    def initial_state(self) -> ObjectClientState:
        return ObjectClientState()

    def enabled(self, state: ObjectClientState, now: float) -> List[Action]:
        if state.pending is not None or state.issued >= self.workload.operations:
            return []
        if now + _TOLERANCE < state.next_inv_time:
            return []
        is_update = self._rng.random() < self.workload.update_fraction
        payload = self.payloads(self._rng, self.node, self._seq, is_update)
        name = "DO" if is_update else "ASK"
        return [Action(name, (self.node, payload))]

    def fire(self, state: ObjectClientState, action: Action, now: float) -> None:
        kind = "U" if action.name == "DO" else "Q"
        state.pending = (kind, action.params[1], now)
        state.issued += 1
        self._seq += 1

    def apply_input(self, state: ObjectClientState, action: Action, now: float) -> None:
        if state.pending is None:
            raise TransitionError(f"{self.name}: response with nothing pending")
        kind, payload, inv_time = state.pending
        if action.name == "DONE":
            if kind != "U":
                raise TransitionError(f"{self.name}: DONE answers a query")
            state.completed.append(CompletedObjOp("U", payload, None, inv_time, now))
        elif action.name == "REPLY":
            if kind != "Q":
                raise TransitionError(f"{self.name}: REPLY answers an update")
            # repro: lint-ignore[ISO003] -- the reply value is recorded
            # for the offline history checker, which only reads it
            state.completed.append(
                CompletedObjOp("Q", payload, action.params[1], inv_time, now)
            )
        else:
            raise TransitionError(f"{self.name}: unexpected input {action}")
        state.pending = None
        state.next_inv_time = now + self._rng.uniform(
            self.workload.think_min, self.workload.think_max
        )

    def deadline(self, state: ObjectClientState, now: float) -> float:
        if state.pending is not None or state.issued >= self.workload.operations:
            return INFINITY
        return max(state.next_inv_time, now)


def _object_factory(
    spec: SequentialSpec, n: int, d2_prime: float, c: float, eps: float,
    delta: float,
) -> Callable[[int], Process]:
    peers = list(range(n))

    def make(i: int) -> Process:
        return BlindUpdateObjectProcess(
            i, peers, spec, d2_prime, c, eps=eps, delta=delta
        )

    return make


def timed_object_system(
    spec: SequentialSpec,
    n: int,
    d1_prime: float,
    d2_prime: float,
    c: float,
    workload: ObjectWorkload,
    eps: float = 0.0,
    delta: float = 0.01,
    delay_model: Optional[DelayModel] = None,
    payloads: Optional[PayloadGenerator] = None,
) -> SystemSpec:
    """The generalized object in the timed model (Lemma 6.2 analogue)."""
    topology = Topology.complete(n, self_loops=True)
    system = build_timed_system(
        topology,
        _object_factory(spec, n, d2_prime, c, eps, delta),
        d1_prime, d2_prime, delay_model,
    )
    generator = payloads or default_payloads(spec)
    clients = [ObjectClientEntity(i, workload, generator) for i in range(n)]
    return system.add(*clients)


def clock_object_system(
    spec: SequentialSpec,
    n: int,
    d1: float,
    d2: float,
    c: float,
    eps: float,
    workload: ObjectWorkload,
    drivers,
    delta: float = 0.01,
    delay_model: Optional[DelayModel] = None,
    payloads: Optional[PayloadGenerator] = None,
) -> SystemSpec:
    """The generalized object in the clock model (Theorem 6.5 analogue)."""
    _, d2_prime = simulation1_delay_bounds(d1, d2, eps)
    topology = Topology.complete(n, self_loops=True)
    system = build_clock_system(
        topology,
        _object_factory(spec, n, d2_prime, c, eps, delta),
        eps, d1, d2, drivers, delay_model,
    )
    generator = payloads or default_payloads(spec)
    clients = [ObjectClientEntity(i, workload, generator) for i in range(n)]
    return system.add(*clients)


@dataclass
class ObjectRun:
    """Outcome of one generalized-object experiment."""

    result: SimulationResult
    operations: List[CompletedObjOp]
    spec: SequentialSpec

    @property
    def updates(self) -> List[CompletedObjOp]:
        return [op for op in self.operations if op.kind == "U"]

    @property
    def queries(self) -> List[CompletedObjOp]:
        return [op for op in self.operations if op.kind == "Q"]

    def max_update_latency(self) -> float:
        """Worst completed-update latency."""
        return max((op.latency for op in self.updates), default=0.0)

    def max_query_latency(self) -> float:
        """Worst completed-query latency."""
        return max((op.latency for op in self.queries), default=0.0)

    def linearizable(self) -> bool:
        """Spec-driven linearizability of the run's trace."""
        return is_object_linearizable(self.result.trace, self.spec)

    def superlinearizable(self, eps: float) -> bool:
        """Spec-driven eps-superlinearizability of the run's trace."""
        return is_object_superlinearizable(self.result.trace, self.spec, eps)

    def __repr__(self) -> str:
        return (
            f"<ObjectRun[{self.spec.name}]: {len(self.queries)} queries, "
            f"{len(self.updates)} updates>"
        )


def run_object_experiment(
    spec_obj: SystemSpec,
    spec: SequentialSpec,
    horizon: float,
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 1_000_000,
    recorder=None,
    metrics=None,
    tracer=None,
) -> ObjectRun:
    """Run a built object system and collect per-operation results."""
    result = spec_obj.run(
        horizon, scheduler=scheduler, max_steps=max_steps,
        recorder=recorder, metrics=metrics, tracer=tracer,
    )
    operations: List[CompletedObjOp] = []
    for name, state in result.final_states.items():
        if name.startswith("objclient(") and hasattr(state, "completed"):
            operations.extend(state.completed)
    operations.sort(key=lambda op: op.inv_time)
    return ObjectRun(result=result, operations=operations, spec=spec)

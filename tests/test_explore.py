"""Tests for bounded exhaustive exploration of theory automata."""

import pytest

from repro.automata.actions import Action, action_set
from repro.automata.explore import explore
from repro.automata.signature import Signature
from repro.automata.state import State
from repro.automata.theory_clock import SimpleClockAutomaton, c_epsilon
from repro.automata.theory_timed import SimpleTimedAutomaton
from repro.core.theory_transform import TheoryClockTransform
from repro.errors import SimulationLimitError

TICK = Action("TICKED")


def counter_automaton(limit=None):
    """Emits TICKED at 1, 2, 3, ... incrementing a counter."""

    def discrete(state):
        if limit is not None and state.count >= limit:
            return
        if abs(state.now - state.next) < 1e-9:
            yield TICK, state.replace(next=state.next + 1.0,
                                      count=state.count + 1)

    return SimpleTimedAutomaton(
        signature=Signature(outputs=action_set("TICKED")),
        starts=[State(now=0.0, next=1.0, count=0)],
        discrete=discrete,
        deadline=lambda s: s.next,
        name="counter",
    )


class TestTimedExploration:
    def test_invariant_holds(self):
        result = explore(
            counter_automaton(), quantum=0.5, horizon=4.0,
            invariant=lambda s: s.count <= s.now + 1e-9,
        )
        assert result.ok
        assert result.states_visited > 5

    def test_violation_found_with_shortest_path(self):
        result = explore(
            counter_automaton(), quantum=0.5, horizon=6.0,
            invariant=lambda s: s.count < 3,
        )
        assert not result.ok
        violation = result.violation
        assert violation.state.count == 3
        # the path's discrete steps are exactly three TICKs
        ticks = [label for label, _ in violation.path if label == TICK]
        assert len(ticks) == 3
        # breadth-first: no shorter path reaches count == 3 than
        # 3 ticks + 6 half-quantum... at least the path replays validly
        cursor_count = 0
        for label, state in violation.path:
            if label == TICK:
                cursor_count += 1
            assert state.count == cursor_count

    def test_horizon_respected(self):
        result = explore(
            counter_automaton(), quantum=1.0, horizon=2.0,
            invariant=lambda s: True,
        )
        assert result.ok
        # no explored state beyond the horizon... by construction; and
        # the count can reach at most 2
        result = explore(
            counter_automaton(), quantum=1.0, horizon=2.0,
            invariant=lambda s: s.count <= 2,
        )
        assert result.ok

    def test_state_budget_enforced(self):
        with pytest.raises(SimulationLimitError):
            explore(
                counter_automaton(), quantum=0.25, horizon=50.0,
                invariant=lambda s: True, max_states=20,
            )

    def test_quantum_validated(self):
        with pytest.raises(ValueError):
            explore(counter_automaton(), 0.0, 1.0, lambda s: True)

    def test_input_probes_explored(self):
        POKE = Action("POKE")

        def inputs(state, action):
            return [state.replace(poked=True)]

        auto = SimpleTimedAutomaton(
            signature=Signature(inputs=action_set("POKE")),
            starts=[State(now=0.0, poked=False)],
            discrete=lambda s: [],
            inputs=inputs,
            name="pokeable",
        )
        result = explore(
            auto, quantum=1.0, horizon=1.0,
            invariant=lambda s: not s.poked,
            inputs=[POKE],
        )
        assert not result.ok
        assert result.violation.path[-1][0] == POKE


class TestClockExploration:
    def beeper(self, eps=0.5):
        BEEP = Action("BEEP")

        def discrete(state):
            if abs(state.clock - state.next) < 1e-9:
                yield BEEP, state.replace(next=state.next + 1.0)

        return SimpleClockAutomaton(
            signature=Signature(outputs=action_set("BEEP")),
            starts=[State(now=0.0, clock=0.0, next=1.0)],
            discrete=discrete,
            clock_deadline=lambda s: s.next,
            predicate=c_epsilon(eps),
            name="beeper",
        )

    def test_envelope_invariant_holds_everywhere(self):
        eps = 0.5
        result = explore(
            self.beeper(eps), quantum=0.5, horizon=3.0,
            invariant=lambda s: abs(s.now - s.clock) <= eps + 1e-9,
        )
        assert result.ok
        assert result.states_visited > 10

    def test_clock_grid_explores_skews(self):
        """Both fast- and slow-clock corners are reached."""
        seen = {"fast": False, "slow": False}

        def spy(state):
            if state.clock - state.now >= 0.5 - 1e-9:
                seen["fast"] = True
            if state.now - state.clock >= 0.5 - 1e-9:
                seen["slow"] = True
            return True

        explore(self.beeper(0.5), quantum=0.5, horizon=3.0, invariant=spy)
        assert seen["fast"] and seen["slow"]

    def test_definition41_transform_exploration(self):
        """Definition 4.1's transformation explored exhaustively: the
        inner deadline caps the clock, never real time."""
        inner = counter_automaton()
        transform = TheoryClockTransform(inner, eps=0.5)
        result = explore(
            transform, quantum=0.5, horizon=3.0,
            invariant=lambda s: s.count <= s.clock + 1e-9,
        )
        assert result.ok


class TestDeadlockDetection:
    def test_deadlock_reported(self):
        stuck = SimpleTimedAutomaton(
            signature=Signature(),
            starts=[State(now=0.0)],
            discrete=lambda s: [],
            deadline=lambda s: 0.0,  # refuses to let time pass, forever
        )
        result = explore(
            stuck, quantum=1.0, horizon=5.0,
            invariant=lambda s: True, detect_deadlocks=True,
        )
        assert result.ok
        assert len(result.deadlocks) == 1

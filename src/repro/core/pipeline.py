"""System builders: ``D_T``, ``D_C``, ``D_M`` (Theorems 4.7, 5.1, 5.2).

Each builder assembles a full distributed system — node entities per the
model, channel entities per edge, plus any extra entities (clients) —
and returns a :class:`SystemSpec` ready to simulate.

The delay-bound bookkeeping of the theorems is captured by
:func:`simulation1_delay_bounds` (``d1' = max(d1 - 2*eps, 0)``,
``d2' = d2 + 2*eps``) and :func:`simulation2_shift_bound`
(``k*l + 2*eps + 3*l``): design and verify the algorithm in the timed
model against ``[d1', d2']``, then run the transformed system on the
real ``[d1, d2]`` network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.automata.actions import ActionSet, UnionActionSet
from repro.components.base import Entity, Process, TimedNodeEntity
from repro.components.tick import TickEntity
from repro.core.clock_transform import (
    ClockMachine,
    ClockNodeEntity,
    NativeClockNodeEntity,
)
from repro.core.mmt_transform import MMTNodeEntity, StepPolicy
from repro.network.channel import ChannelEntity, channel_actions
from repro.network.topology import Topology
from repro.sim.clock_drivers import ClockDriver
from repro.sim.delay import DelayModel
from repro.sim.engine import SimulationResult, Simulator
from repro.sim.scheduler import Scheduler

ProcessFactory = Callable[[int], Process]
DriverFactory = Callable[[int], ClockDriver]
SourceFactory = Callable[[int], object]


@dataclass
class SystemSpec:
    """A fully assembled system: entities plus the hidden-action set."""

    entities: List[Entity]
    hidden: ActionSet
    label: str = "system"
    node_entities: Dict[int, Entity] = field(default_factory=dict)

    def add(self, *extra: Entity) -> "SystemSpec":
        """Return a new spec with extra entities (e.g. clients)."""
        return SystemSpec(
            entities=self.entities + list(extra),
            hidden=self.hidden,
            label=self.label,
            node_entities=dict(self.node_entities),
        )

    def simulator(
        self,
        scheduler: Optional[Scheduler] = None,
        max_steps: int = 1_000_000,
    ) -> Simulator:
        """A simulator over this system's entities and hidden set."""
        return Simulator(
            self.entities, scheduler=scheduler, hidden=self.hidden,
            max_steps=max_steps,
        )

    def run(
        self,
        horizon: float,
        scheduler: Optional[Scheduler] = None,
        max_steps: int = 1_000_000,
        recorder=None,
        metrics=None,
        tracer=None,
        shards=None,
        window=None,
    ) -> SimulationResult:
        """Build a simulator and run it to the horizon.

        ``shards``/``window`` select the sharded execution mode (see
        :mod:`repro.sim.sharded`); the default ``None`` is the serial
        engine.
        """
        return self.simulator(scheduler, max_steps).run(
            horizon, recorder=recorder, metrics=metrics, tracer=tracer,
            shards=shards, window=window,
        )


def simulation1_delay_bounds(
    d1: float, d2: float, eps: float
) -> Tuple[float, float]:
    """Theorem 4.7's design bounds: the ``[d1', d2']`` the timed-model
    algorithm must be correct against so its transformation is correct
    on a real ``[d1, d2]`` network with clock accuracy ``eps``."""
    return (max(d1 - 2.0 * eps, 0.0), d2 + 2.0 * eps)


def simulation2_shift_bound(k: int, step_bound: float, eps: float) -> float:
    """Theorem 5.1's output shift bound ``k*l + 2*eps + 3*l``."""
    return k * step_bound + 2.0 * eps + 3.0 * step_bound


def _channels(
    topology: Topology,
    d1: float,
    d2: float,
    delay_model: Optional[DelayModel],
    prefix: str,
    fault_model=None,
) -> List[Entity]:
    if fault_model is not None:
        from repro.faults.lossy_channel import LossyChannelEntity

        return [
            LossyChannelEntity(
                i, j, d1, d2, delay_model=delay_model,
                fault_model=fault_model, prefix=prefix,
            )
            for (i, j) in sorted(topology.edges)
        ]
    return [
        ChannelEntity(i, j, d1, d2, delay_model=delay_model, prefix=prefix)
        for (i, j) in sorted(topology.edges)
    ]


def build_timed_system(
    topology: Topology,
    processes: ProcessFactory,
    d1: float,
    d2: float,
    delay_model: Optional[DelayModel] = None,
    fault_model=None,
) -> SystemSpec:
    """``D_T(G, A, E_{[d1,d2]})`` (Section 3.3).

    Nodes see perfect real time; the ``SENDMSG``/``RECVMSG`` interface
    is hidden.
    """
    nodes: Dict[int, Entity] = {
        i: TimedNodeEntity(processes(i)) for i in topology.nodes()
    }
    entities: List[Entity] = list(nodes.values())
    entities += _channels(topology, d1, d2, delay_model, prefix="",
                          fault_model=fault_model)
    return SystemSpec(
        entities=entities,
        hidden=channel_actions(""),
        label=f"D_T[{d1:g},{d2:g}]",
        node_entities=nodes,
    )


def build_clock_system(
    topology: Topology,
    processes: ProcessFactory,
    eps: float,
    d1: float,
    d2: float,
    drivers: DriverFactory,
    delay_model: Optional[DelayModel] = None,
    fault_model=None,
) -> SystemSpec:
    """``D_C(G, A^c_eps, E^c_{[d1,d2]})`` via Simulation 1 (Theorem 4.7).

    Each process is wrapped by the clock transformation plus the
    Figure 2 buffers; channels carry clock-stamped payloads; both the
    internal node interface and the ``ESENDMSG``/``ERECVMSG`` edge
    interface are hidden (Section 4.1).
    """
    nodes: Dict[int, Entity] = {}
    for i in topology.nodes():
        nodes[i] = ClockNodeEntity(
            processes(i),
            drivers(i),
            out_edges=topology.out_neighbors(i),
            in_edges=topology.in_neighbors(i),
        )
    entities: List[Entity] = list(nodes.values())
    entities += _channels(topology, d1, d2, delay_model, prefix="E",
                          fault_model=fault_model)
    return SystemSpec(
        entities=entities,
        hidden=UnionActionSet([channel_actions(""), channel_actions("E")]),
        label=f"D_C[{d1:g},{d2:g}] eps={eps:g}",
        node_entities=nodes,
    )


def build_native_clock_system(
    topology: Topology,
    processes: ProcessFactory,
    eps: float,
    d1: float,
    d2: float,
    drivers: DriverFactory,
    delay_model: Optional[DelayModel] = None,
) -> SystemSpec:
    """A clock-model system whose processes were *designed* for clocks.

    No transformation, no buffers: processes read the node clock
    directly and exchange raw messages (the Section 6.3 comparison
    class, e.g. the [10]-style baseline register).
    """
    nodes: Dict[int, Entity] = {
        i: NativeClockNodeEntity(processes(i), drivers(i))
        for i in topology.nodes()
    }
    entities: List[Entity] = list(nodes.values())
    entities += _channels(topology, d1, d2, delay_model, prefix="")
    return SystemSpec(
        entities=entities,
        hidden=channel_actions(""),
        label=f"native-clock[{d1:g},{d2:g}] eps={eps:g}",
        node_entities=nodes,
    )


def build_mmt_system(
    topology: Topology,
    processes: ProcessFactory,
    eps: float,
    d1: float,
    d2: float,
    step_bound: float,
    sources: SourceFactory,
    tick_interval: Optional[float] = None,
    step_policy_factory: Optional[Callable[[int], StepPolicy]] = None,
    delay_model: Optional[DelayModel] = None,
    idle_skip: bool = True,
) -> SystemSpec:
    """``D_M(G, A^m_{eps,l}, E^m_{[d1,d2]})`` via both simulations
    (Theorem 5.2).

    Each node is ``M(A^c_{i,eps}, l)`` over the Simulation 1 machine,
    composed with a tick entity reading a per-node clock source.
    ``tick_interval`` defaults to the step bound ``l``.
    """
    interval = tick_interval if tick_interval is not None else step_bound
    nodes: Dict[int, Entity] = {}
    entities: List[Entity] = []
    for i in topology.nodes():
        machine = ClockMachine(
            processes(i),
            out_edges=topology.out_neighbors(i),
            in_edges=topology.in_neighbors(i),
        )
        policy = step_policy_factory(i) if step_policy_factory else None
        node = MMTNodeEntity(
            machine, step_bound, step_policy=policy, idle_skip=idle_skip
        )
        nodes[i] = node
        entities.append(node)
        entities.append(
            TickEntity(i, sources(i), interval, eps)
        )
    entities += _channels(topology, d1, d2, delay_model, prefix="E")
    from repro.automata.actions import ActionPattern, PatternActionSet

    tick_actions = PatternActionSet([ActionPattern("TICK")])
    return SystemSpec(
        entities=entities,
        hidden=UnionActionSet(
            [channel_actions(""), channel_actions("E"), tick_actions]
        ),
        label=f"D_M[{d1:g},{d2:g}] eps={eps:g} l={step_bound:g}",
        node_entities=nodes,
    )

"""Register edge cases: boundary parameters, contention, scale."""

import pytest

from repro.registers.system import (
    clock_register_system,
    run_register_experiment,
    timed_register_system,
)
from repro.registers.workload import RegisterWorkload
from repro.sim.clock_drivers import driver_factory
from repro.sim.delay import UniformDelay
from repro.sim.scheduler import RandomScheduler

D1P, D2P = 0.2, 1.0
DELTA = 0.01


def run_timed(c, seed=0, n=3, ops=5, read_fraction=0.5, think=(0.5, 2.0),
              horizon=60.0, algorithm="L", eps=0.0):
    workload = RegisterWorkload(
        operations=ops, read_fraction=read_fraction, seed=seed,
        think_min=think[0], think_max=think[1],
    )
    spec = timed_register_system(
        n=n, d1_prime=D1P, d2_prime=D2P, c=c, workload=workload,
        algorithm=algorithm, eps=eps, delta=DELTA,
        delay_model=UniformDelay(seed=seed),
    )
    return run_register_experiment(
        spec, horizon, scheduler=RandomScheduler(seed=seed)
    )


class TestBoundaryParameters:
    def test_c_equals_zero(self):
        run = run_timed(0.0, seed=1)
        assert run.linearizable()
        assert run.max_read_latency() <= DELTA + 1e-9

    def test_c_at_upper_design_limit(self):
        """c = d2' - 2*eps with eps=0: writes complete instantly-ish."""
        run = run_timed(D2P, seed=2)
        assert run.linearizable()
        assert run.max_write_latency() <= 1e-9

    def test_single_node(self):
        run = run_timed(0.3, seed=3, n=1)
        assert run.linearizable()
        assert len(run.operations) == 5

    def test_two_nodes(self):
        assert run_timed(0.3, seed=4, n=2).linearizable()

    def test_six_nodes(self):
        run = run_timed(0.3, seed=5, n=6, ops=3, horizon=80.0)
        assert run.linearizable()
        assert len(run.operations) >= 12


class TestWorkloadExtremes:
    def test_all_reads(self):
        run = run_timed(0.3, seed=6, read_fraction=1.0)
        assert run.writes == []
        assert run.linearizable()
        # all reads must return the initial value
        values = {op.value for op in run.reads}
        assert len(values) == 1

    def test_all_writes(self):
        run = run_timed(0.3, seed=7, read_fraction=0.0)
        assert run.reads == []
        assert run.linearizable()

    def test_zero_think_time_contention(self):
        run = run_timed(0.3, seed=8, think=(0.0, 0.0), ops=6)
        assert run.linearizable()
        assert len(run.operations) == 18

    def test_contention_in_clock_model(self):
        eps = 0.15
        workload = RegisterWorkload(
            operations=5, read_fraction=0.5, seed=9,
            think_min=0.0, think_max=0.1,
        )
        spec = clock_register_system(
            n=4, d1=0.2, d2=1.0, c=0.3, eps=eps, workload=workload,
            drivers=driver_factory("mixed", eps, seed=9),
            delay_model=UniformDelay(seed=9),
        )
        run = run_register_experiment(
            spec, 80.0, scheduler=RandomScheduler(seed=9)
        )
        assert run.linearizable()
        assert len(run.operations) == 20


class TestConcurrentWritesSameInstant:
    def test_simultaneous_writes_tie_break(self):
        """All clients write at t=0 (zero start delay, zero think):
        updates collide at the same apply instant; the largest sender
        must win everywhere, and the history stays linearizable."""
        workload = RegisterWorkload(
            operations=1, read_fraction=0.0, seed=10,
            think_min=0.0, think_max=0.0, start_delay=0.0,
        )
        spec = timed_register_system(
            n=4, d1_prime=D1P, d2_prime=D2P, c=0.3, workload=workload,
            delay_model=UniformDelay(seed=10),
        )
        run = run_register_experiment(spec, 20.0)
        assert len(run.writes) == 4
        assert run.linearizable()
        # after quiescence every replica holds the same value
        values = set()
        for name, state in run.result.final_states.items():
            if name.startswith("L(") and hasattr(state, "value"):
                values.add(state.value)
        assert len(values) == 1

    def test_reader_at_write_instant(self):
        """A read whose deadline coincides with an update instant must
        see the post-update value (Figure 3's RETURN guard)."""
        run = run_timed(0.3, seed=11, think=(0.0, 0.0), ops=8, n=3)
        assert run.linearizable()

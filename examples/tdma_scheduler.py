"""Scheduling a shared resource with clocks alone (no messages).

The paper's introduction motivates time information "to schedule the
use of resources". This example coordinates three nodes around a shared
resource *without exchanging a single message*: node ``i`` owns time
slots ``i, i+3, i+6, ...``, entering ``guard`` after its slot opens and
leaving ``guard`` before it closes.

It is also the cleanest demonstration of Section 7.1's second design
technique. The real spec ``P`` ("critical sections never overlap") is a
real-time property, so solving ``P_eps`` is not good enough — an
``eps``-perturbation of a legal trace can overlap. The fix is to design
a *stronger* problem ``Q`` ("sections separated by ``2*guard``") with
``Q_eps ⊆ P``, which holds exactly when ``guard >= eps``.

Run::

    python examples/tdma_scheduler.py
"""

from repro import FastClockDriver, SlowClockDriver
from repro.tdma import (
    build_tdma_system,
    critical_intervals,
    max_overlap,
    min_gap,
    utilization,
)

EPS = 0.1          # clock accuracy of the deployment
SLOT = 1.0         # slot width
SECTIONS = 3       # rounds per node


def adversarial(i):
    # neighbors disagree by the full 2*eps: the worst case for overlap
    return FastClockDriver(EPS) if i % 2 == 0 else SlowClockDriver(EPS)


def run(guard):
    spec = build_tdma_system(
        "clock", n=3, slot_width=SLOT, guard=guard, sections=SECTIONS,
        eps=EPS, drivers=adversarial,
    )
    return critical_intervals(spec.run(15.0).trace)


def main():
    print(f"three nodes, slot width {SLOT}, clocks within ±{EPS} "
          f"of real time, zero messages\n")
    print(f"{'guard':>7s} {'guard/eps':>10s} {'worst overlap':>14s} "
          f"{'min gap':>9s} {'utilization':>12s}  mutual exclusion")
    busy_span = SECTIONS * 3 * SLOT
    for guard in (0.0, 0.05, 0.1, 0.2):
        intervals = run(guard)
        overlap = max_overlap(intervals)
        ok = overlap <= 1e-9
        print(f"{guard:7.2f} {guard / EPS:10.1f} {overlap:14.3f} "
              f"{min_gap(intervals):9.3f} "
              f"{utilization(intervals, busy_span):12.3f}  "
              f"{'yes' if ok else 'VIOLATED'}")

    print("\nthe crossover sits exactly at guard = eps: below it the "
          "sections of fast- and slow-clocked neighbors overlap by "
          "2*(eps - guard); above it you trade utilization for margin.")
    assert max_overlap(run(EPS)) <= 1e-9
    assert max_overlap(run(EPS / 2)) > 0


if __name__ == "__main__":
    main()

"""Tests for the Figure 1 channel automaton (FIG1 conformance)."""

import pytest

from repro.automata.actions import Action
from repro.network.channel import ChannelEntity, channel_actions
from repro.sim.delay import (
    AlternatingExtremesDelay,
    ConstantFractionDelay,
    MaximalDelay,
    MinimalDelay,
    UniformDelay,
)
from repro.errors import TransitionError

INFINITY = float("inf")


def send(channel, state, message, now):
    channel.apply_input(state, Action("SENDMSG", (channel.src, channel.dst, message)), now)


class TestChannelBasics:
    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            ChannelEntity(0, 1, 2.0, 1.0)
        with pytest.raises(ValueError):
            ChannelEntity(0, 1, -1.0, 1.0)

    def test_signature(self):
        chan = ChannelEntity(0, 1, 0.1, 1.0)
        assert chan.accepts(Action("SENDMSG", (0, 1, "m")))
        assert not chan.accepts(Action("SENDMSG", (1, 0, "m")))
        assert chan.signature.is_output(Action("RECVMSG", (1, 0, "m")))

    def test_clock_model_prefix(self):
        chan = ChannelEntity(0, 1, 0.1, 1.0, prefix="E")
        assert chan.accepts(Action("ESENDMSG", (0, 1, ("m", 0.5))))
        assert chan.signature.is_output(Action("ERECVMSG", (1, 0, ("m", 0.5))))


class TestDeliveryWindow:
    def test_not_deliverable_before_sampled_time(self):
        chan = ChannelEntity(0, 1, 1.0, 2.0, delay_model=ConstantFractionDelay(0.5))
        state = chan.initial_state()
        send(chan, state, "m", now=0.0)
        assert chan.enabled(state, 1.0) == []
        assert chan.enabled(state, 1.5) == [Action("RECVMSG", (1, 0, "m"))]

    def test_deadline_is_sampled_delivery_time(self):
        chan = ChannelEntity(0, 1, 1.0, 2.0, delay_model=MaximalDelay())
        state = chan.initial_state()
        send(chan, state, "m", now=3.0)
        assert chan.deadline(state, 3.0) == pytest.approx(5.0)

    def test_empty_channel_never_blocks_time(self):
        chan = ChannelEntity(0, 1, 1.0, 2.0)
        assert chan.deadline(chan.initial_state(), 0.0) == INFINITY

    def test_delivery_removes_message(self):
        chan = ChannelEntity(0, 1, 0.0, 1.0, delay_model=MinimalDelay())
        state = chan.initial_state()
        send(chan, state, "m", now=0.0)
        action = chan.enabled(state, 0.0)[0]
        chan.fire(state, action, 0.0)
        assert state.buffer == []
        assert state.delivered == 1

    def test_firing_undeliverable_raises(self):
        chan = ChannelEntity(0, 1, 1.0, 2.0, delay_model=MaximalDelay())
        state = chan.initial_state()
        send(chan, state, "m", now=0.0)
        with pytest.raises(TransitionError):
            chan.fire(state, Action("RECVMSG", (1, 0, "m")), 0.5)

    def test_delay_model_violating_bounds_rejected(self):
        class Bad:
            def sample(self, edge, message, send_time, d1, d2):
                return d2 + 1.0

        chan = ChannelEntity(0, 1, 0.0, 1.0, delay_model=Bad())
        state = chan.initial_state()
        with pytest.raises(TransitionError):
            send(chan, state, "m", now=0.0)


class TestReordering:
    def test_alternating_extremes_reorders(self):
        chan = ChannelEntity(0, 1, 0.1, 2.0, delay_model=AlternatingExtremesDelay())
        state = chan.initial_state()
        send(chan, state, "first", now=0.0)   # delay d1 = 0.1
        send(chan, state, "second", now=0.0)  # delay d2 = 2.0
        send(chan, state, "third", now=0.0)   # delay d1 again
        ready_early = {a.params[2] for a in chan.enabled(state, 0.1)}
        assert ready_early == {"first", "third"}
        assert "second" not in ready_early

    def test_all_messages_eventually_delivered(self):
        chan = ChannelEntity(0, 1, 0.5, 1.5, delay_model=UniformDelay(seed=3))
        state = chan.initial_state()
        for k in range(20):
            send(chan, state, ("m", k), now=0.0)
        # advance to past d2: everything deliverable
        enabled = chan.enabled(state, 1.5)
        assert len(enabled) == 20

    def test_duplicate_payloads_each_delivered_once(self):
        chan = ChannelEntity(0, 1, 0.0, 1.0, delay_model=MinimalDelay())
        state = chan.initial_state()
        send(chan, state, "same", now=0.0)
        send(chan, state, "same", now=0.0)
        action = Action("RECVMSG", (1, 0, "same"))
        chan.fire(state, action, 0.0)
        chan.fire(state, action, 0.0)
        assert state.delivered == 2
        with pytest.raises(TransitionError):
            chan.fire(state, action, 0.0)


class TestHiddenActionSet:
    def test_channel_actions_pattern(self):
        hidden = channel_actions("")
        assert Action("SENDMSG", (0, 1, "m")) in hidden
        assert Action("RECVMSG", (1, 0, "m")) in hidden
        assert Action("ESENDMSG", (0, 1, ("m", 1.0))) not in hidden
        e_hidden = channel_actions("E")
        assert Action("ESENDMSG", (0, 1, ("m", 1.0))) in e_hidden

"""FIG1: channel automaton conformance (Figure 1).

Regenerates the Figure 1 transition-system guarantees as measurements:
every message is delivered exactly once, within ``[d1, d2]``, across
delay-model adversaries and bound configurations. The timed benchmark
measures a message-storm run through a single channel pair.
"""

from bench_util import save_table
from harness import exp_fig1_channel, pinger_process_factory, pinger_topology

from repro.core.pipeline import build_timed_system
from repro.sim.delay import UniformDelay


def _storm():
    spec = build_timed_system(
        pinger_topology(), pinger_process_factory(count=50, interval=0.2),
        0.05, 0.15, UniformDelay(seed=1),
    )
    return spec.run(12.0)


def test_fig1_channel_conformance(benchmark):
    result = benchmark(_storm)
    assert result.completed()

    table, shapes = exp_fig1_channel()
    save_table("FIG1", table)
    assert shapes["all_in_bounds"]
    assert shapes["all_delivered"]

"""Parallel parameter-sweep campaigns over the simulator.

The paper's results — Theorem 4.7's simulation guarantee, Theorem 5.1's
shift bound, the Lemma 6.1/6.2 register latency bounds — are statements
about how behavior varies with ``eps``, ``[d1, d2]``, and ``n``. This
package runs that variation systematically: a :class:`Grid` spec
expands cartesian products over those parameters (plus workload, fault
model, and deterministic seed batches) into grid points; a
:class:`CampaignRunner` shards the points across a process pool with
per-task timeouts and bounded retry of crashed or hung workers (falling
back to serial execution where processes are unavailable); a
:class:`Checkpoint` makes interrupted campaigns resumable; and an
:class:`Aggregator` merges the per-run metrics snapshots into
campaign-level summaries — percentile latencies, violation counts,
skew-vs-eps curves — exported as JSONL and CSV.

The whole pipeline is deterministic: the same grid and seeds produce a
byte-identical aggregate whether run with 1 worker or N, straight
through or across an interruption and resume.

Entry points: ``python -m repro sweep`` (see ``docs/campaign.md``), or
programmatically::

    from repro.campaign import Aggregator, CampaignRunner, Checkpoint, Grid

    grid = Grid({"eps": [0.05, 0.1, 0.2]}, seeds=4)
    runner = CampaignRunner(workers=4)
    outcomes = runner.run(grid.points())
    payload = Aggregator(grid.grid_id()).build(outcomes)
"""

from repro.campaign.aggregate import (
    AGGREGATE_FORMAT,
    AGGREGATE_VERSION,
    Aggregator,
    CSV_COLUMNS,
)
from repro.campaign.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    Checkpoint,
)
from repro.campaign.grid import AXES, DEFAULTS, Grid, RUN_DEFAULTS, point_key
from repro.campaign.runner import (
    CampaignRunner,
    DEFAULT_TASK,
    Outcome,
    resolve_task,
)
from repro.campaign.worker import run_point

__all__ = [
    "AGGREGATE_FORMAT",
    "AGGREGATE_VERSION",
    "AXES",
    "Aggregator",
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CSV_COLUMNS",
    "CampaignRunner",
    "Checkpoint",
    "DEFAULTS",
    "DEFAULT_TASK",
    "Grid",
    "Outcome",
    "RUN_DEFAULTS",
    "point_key",
    "resolve_task",
    "run_point",
]

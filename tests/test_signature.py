"""Unit tests for action signatures."""

import pytest

from repro.automata.actions import Action, ActionPattern, PatternActionSet, action_set
from repro.automata.signature import NU, Signature, check_compatible
from repro.errors import SignatureError


def make_signature():
    return Signature(
        inputs=action_set("IN"),
        outputs=action_set("OUT"),
        internals=action_set("INT"),
    )


class TestClassification:
    def test_classify_each_kind(self):
        sig = make_signature()
        assert sig.classify(Action("IN", (1,))) == "input"
        assert sig.classify(Action("OUT")) == "output"
        assert sig.classify(Action("INT")) == "internal"

    def test_classify_unknown_raises(self):
        with pytest.raises(SignatureError):
            make_signature().classify(Action("OTHER"))

    def test_classify_ambiguous_raises(self):
        sig = Signature(inputs=action_set("X"), outputs=action_set("X"))
        with pytest.raises(SignatureError):
            sig.classify(Action("X"))

    def test_is_predicates(self):
        sig = make_signature()
        assert sig.is_input(Action("IN"))
        assert sig.is_output(Action("OUT"))
        assert sig.is_internal(Action("INT"))
        assert not sig.is_input(Action("OUT"))


class TestDerivedSets:
    def test_visible_is_in_union_out(self):
        sig = make_signature()
        assert Action("IN") in sig.visible
        assert Action("OUT") in sig.visible
        assert Action("INT") not in sig.visible

    def test_uacts_includes_internal(self):
        sig = make_signature()
        assert Action("INT") in sig.uacts

    def test_locally_controlled(self):
        sig = make_signature()
        assert Action("OUT") in sig.locally_controlled
        assert Action("INT") in sig.locally_controlled
        assert Action("IN") not in sig.locally_controlled

    def test_external_includes_nu(self):
        sig = make_signature()
        assert sig.is_external(NU)
        assert sig.is_external(Action("IN"))
        assert not sig.is_external(Action("INT"))

    def test_contains_includes_nu(self):
        assert make_signature().contains(NU)

    def test_default_signature_is_empty(self):
        sig = Signature()
        assert not sig.contains(Action("ANYTHING"))
        assert sig.contains(NU)


class TestHiding:
    def test_hidden_outputs_become_internal(self):
        sig = make_signature()
        hidden = sig.hide(action_set("OUT"))
        assert hidden.is_internal(Action("OUT"))
        assert not hidden.is_output(Action("OUT"))

    def test_hiding_preserves_inputs(self):
        hidden = make_signature().hide(action_set("OUT"))
        assert hidden.is_input(Action("IN"))

    def test_hiding_non_outputs_is_noop(self):
        hidden = make_signature().hide(action_set("IN"))
        assert hidden.is_input(Action("IN"))
        assert not hidden.is_internal(Action("IN"))

    def test_partial_hiding(self):
        sig = Signature(
            outputs=PatternActionSet(
                [ActionPattern("A"), ActionPattern("B")]
            )
        )
        hidden = sig.hide(action_set("A"))
        assert hidden.is_internal(Action("A"))
        assert hidden.is_output(Action("B"))


class TestCompatibility:
    def test_shared_output_rejected(self):
        s1 = Signature(outputs=action_set("X"))
        s2 = Signature(outputs=action_set("X"))
        with pytest.raises(SignatureError):
            check_compatible([s1, s2], [Action("X")])

    def test_shared_internal_rejected(self):
        s1 = Signature(internals=action_set("X"))
        s2 = Signature(inputs=action_set("X"))
        with pytest.raises(SignatureError):
            check_compatible([s1, s2], [Action("X")])

    def test_input_output_pairing_ok(self):
        s1 = Signature(outputs=action_set("X"))
        s2 = Signature(inputs=action_set("X"))
        check_compatible([s1, s2], [Action("X")])

"""The full realistic stack: timed design -> clock model -> MMT model.

This example composes everything the paper builds, end to end:

1. The Figure 3 register algorithm, written against perfect real time.
2. Simulation 1 (Theorem 4.7): the clock transformation with send and
   receive buffers.
3. Simulation 2 (Theorems 5.1/5.2): the MMT transformation — nodes have
   *no* direct access to time at all; they learn the clock through
   ``TICK`` inputs and take steps at most ``l`` apart.
4. A *simulated clock synchronization service* (the paper cites NTP
   [12]): each node's clock source is a drifting hardware oscillator
   disciplined by periodic Cristian-style exchanges with a time server;
   the achieved envelope is the ``eps`` the transformation needs.

The run demonstrates Theorem 5.2: the composed system still implements a
linearizable register.

Run::

    python examples/realistic_stack.py
"""

from repro import (
    RegisterWorkload,
    UniformDelay,
    UniformStepPolicy,
    mmt_register_system,
    run_register_experiment,
    simulation2_shift_bound,
)
from repro.clocks.sync import SynchronizedClockSource, achievable_epsilon


def main():
    # --- the clock subsystem: NTP-like sync over a LAN ----------------
    rho = 1.0015           # hardware oscillators drift ~1500 ppm
    sync_period = 5.0      # resynchronize every 5 time units
    sync_d1, sync_d2 = 0.005, 0.04  # the sync network's delay bounds
    horizon = 150.0

    eps = achievable_epsilon(rho, sync_period, sync_d1, sync_d2)
    print(f"clock sync service achieves eps = {eps:.4f} "
          f"(drift {abs(rho - 1) * 1e6:.0f} ppm, period {sync_period})")

    def sources(i: int):
        # every node disciplines its own oscillator (fast/slow alternating)
        node_rho = rho if i % 2 == 0 else 2.0 - rho
        return SynchronizedClockSource(
            node_rho, sync_period, sync_d1, sync_d2, horizon, seed=100 + i
        )

    # --- the application network and algorithm parameters --------------
    n, d1, d2, c = 3, 0.2, 1.0, 0.3
    step_bound = 0.05      # processors take a step at least every 0.05

    workload = RegisterWorkload(
        operations=8, read_fraction=0.5, think_min=0.4, think_max=1.8, seed=21
    )

    spec = mmt_register_system(
        n=n, d1=d1, d2=d2, c=c, eps=eps, step_bound=step_bound,
        sources=sources, workload=workload,
        step_policy_factory=lambda i: UniformStepPolicy(seed=i),
        delay_model=UniformDelay(seed=21),
    )

    run = run_register_experiment(spec, horizon, max_steps=3_000_000)

    k = 4  # outputs per burst: n update sends + one response
    shift = simulation2_shift_bound(k, step_bound, eps)
    print(f"\nMMT register system ({n} nodes, l = {step_bound}):")
    print(f"  completed ops    : {len(run.operations)}")
    print(f"  max read latency : {run.max_read_latency():.3f}"
          f"  (clock-model bound {2 * eps + 0.01 + c:.3f}"
          f" + shift <= {shift:.3f})")
    print(f"  max write latency: {run.max_write_latency():.3f}"
          f"  (clock-model bound {d2 + 2 * eps - c:.3f}"
          f" + shift <= {shift:.3f})")
    print(f"  linearizable     : {run.linearizable()}")
    print(f"  engine events    : {len(run.result.recorder)}")

    assert run.linearizable()
    print("\nno process ever read real time; no process even read a clock "
          "register — ticks, steps, and messages were all it had.")


if __name__ == "__main__":
    main()

"""Property-based tests for the trace relations (hypothesis)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.actions import Action, action_set
from repro.automata.executions import TimedEvent, TimedSequence
from repro.traces.relations import (
    equivalent_eps,
    find_eps_matching,
    max_time_displacement,
    shifted_delta,
    verify_eps_bijection,
)

NODES = [0, 1]
NAMES = ["A", "B"]
KAPPA = [action_set(("A", (i,)), ("B", (i,))) for i in NODES]


@st.composite
def traces(draw, max_events=8):
    count = draw(st.integers(min_value=0, max_value=max_events))
    events = []
    t = 0.0
    for _ in range(count):
        t += draw(st.floats(min_value=0.0, max_value=2.0))
        name = draw(st.sampled_from(NAMES))
        node = draw(st.sampled_from(NODES))
        events.append(TimedEvent(Action(name, (node,)), t))
    return TimedSequence(events)


def perturb(trace, eps, seed):
    """An eps-perturbation preserving per-node order (a known witness)."""
    rng = random.Random(seed)
    last = {}
    events = []
    for ev in trace:
        node = ev.action.params[0]
        lo = max(ev.time - eps, last.get(node, -1e9))
        hi = ev.time + eps
        t = rng.uniform(lo, hi) if lo < hi else lo
        last[node] = t
        events.append(TimedEvent(ev.action, t))
    events.sort(key=lambda e: e.time)
    return TimedSequence(events)


class TestEpsilonEquivalenceProperties:
    @given(traces())
    def test_reflexive(self, trace):
        assert equivalent_eps(trace, trace, 0.0, KAPPA)

    @given(traces(), st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=60)
    def test_perturbation_within_eps_is_equivalent(self, trace, eps, seed):
        other = perturb(trace, eps, seed)
        assert equivalent_eps(trace, other, eps + 1e-6, KAPPA)

    @given(traces(), st.floats(min_value=0.05, max_value=1.0),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=60)
    def test_symmetry(self, trace, eps, seed):
        other = perturb(trace, eps, seed)
        forward = equivalent_eps(trace, other, eps + 1e-6, KAPPA)
        backward = equivalent_eps(other, trace, eps + 1e-6, KAPPA)
        assert forward == backward

    @given(traces(), st.floats(min_value=0.05, max_value=0.5),
           st.integers(min_value=0, max_value=50))
    @settings(max_examples=60)
    def test_matching_verifies_against_definition(self, trace, eps, seed):
        other = perturb(trace, eps, seed)
        matching = find_eps_matching(trace, other, eps + 1e-6, KAPPA)
        assert matching is not None
        assert verify_eps_bijection(trace, other, eps + 1e-6, KAPPA, matching)

    @given(traces(), st.floats(min_value=0.05, max_value=0.5),
           st.integers(min_value=0, max_value=50))
    @settings(max_examples=60)
    def test_displacement_at_most_eps(self, trace, other_eps, seed):
        other = perturb(trace, other_eps, seed)
        displacement = max_time_displacement(trace, other, KAPPA)
        assert displacement is not None
        assert displacement <= other_eps + 1e-6

    @given(traces())
    @settings(max_examples=40)
    def test_dropping_an_event_breaks_equivalence(self, trace):
        if len(trace) == 0:
            return
        shorter = TimedSequence(list(trace)[:-1])
        assert not equivalent_eps(trace, shorter, 1e9, KAPPA)


class TestDeltaShiftProperties:
    BIG_K = [action_set("B")]

    @given(traces())
    def test_reflexive(self, trace):
        assert shifted_delta(trace, trace, 0.0, self.BIG_K)

    @given(traces(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60)
    def test_uniform_forward_shift_of_class(self, trace, delta):
        events = [
            TimedEvent(ev.action, ev.time + (delta if ev.action.name == "B" else 0.0))
            for ev in trace
        ]
        events.sort(key=lambda e: e.time)
        shifted = TimedSequence(events)
        assert shifted_delta(trace, shifted, delta + 1e-6, self.BIG_K)

    @given(traces(), st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=60)
    def test_transitive_composition_adds_deltas(self, trace, delta):
        def shift_b(seq, amount):
            events = [
                TimedEvent(
                    ev.action,
                    ev.time + (amount if ev.action.name == "B" else 0.0),
                )
                for ev in seq
            ]
            events.sort(key=lambda e: e.time)
            return TimedSequence(events)

        once = shift_b(trace, delta)
        twice = shift_b(once, delta)
        assert shifted_delta(trace, twice, 2 * delta + 1e-6, self.BIG_K)

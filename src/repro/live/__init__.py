"""``repro.live`` — Algorithm S as a real networked register service.

The simulator executes the clock model under a virtual-time engine; this
package runs the *same* state machine
(:class:`~repro.registers.algorithm_s.AlgorithmSProcess`) over real TCP
sockets on real (wall-clock) time:

- :mod:`repro.live.clock` — per-node clocks driven by the simulator's
  :class:`~repro.sim.clock_drivers.ClockDriver` envelopes, mapped onto
  wall-clock time, so every node's clock stays inside ``C_eps``;
- :mod:`repro.live.wire` — JSON-lines framing, with the Figure 2
  ``S_{ij,eps}`` / ``R_{ji,eps}`` buffers reused as wire middleware
  (stamp on send, hold on receive until the local clock catches up);
- :mod:`repro.live.node` — one asyncio register node: server socket,
  peer mesh, and a timer loop that fires the process's due actions;
- :mod:`repro.live.client` — load clients replaying the same
  :class:`~repro.registers.opstream.OpSchedule` objects the simulator's
  clients replay, so a live run and a sim run of one seed issue
  identical operation streams;
- :mod:`repro.live.service` — cluster lifecycle (start, peer wiring,
  manifest for out-of-process load generators, stats RPC);
- :mod:`repro.live.load` — the load generator: run the schedules, record
  the timed history, and cross-validate against a simulated replay;
- :mod:`repro.live.report` — linearizability verdict, latency quantiles,
  and the Theorem 6.5 bound check with *measured* ``eps`` substituted;
- :mod:`repro.live.chaos` — the fault-injection bridge: lowers a
  declarative :class:`~repro.chaos.plan.FaultPlan` onto a running
  cluster (crash/recover via state snapshots, partitions and drop
  bursts via a wire shim, clock faults via
  :class:`~repro.sim.clock_drivers.FaultyClockDriver`), with
  plan-attributed safety monitors and a degraded-mode report.

Driven from the CLI as ``python -m repro serve`` / ``python -m repro
load`` / ``python -m repro chaos --live`` (see
:doc:`docs/live.md </docs/live>`).
"""

from repro.live.chaos import (
    LiveChaosController,
    WireFaultInjector,
    chaos_params,
    demo_live_plan,
    run_live_chaos,
    validate_for_live,
)
from repro.live.client import ClientRecord, LiveLoadClient
from repro.live.clock import LiveClock
from repro.live.load import build_operations, run_load, sim_replay
from repro.live.node import LiveRegisterNode
from repro.live.params import LiveParams
from repro.live.report import BoundCheck, LiveChaosReport, LiveReport
from repro.live.service import LiveCluster, fetch_stats

__all__ = [
    "LiveParams",
    "LiveClock",
    "LiveRegisterNode",
    "LiveCluster",
    "LiveLoadClient",
    "ClientRecord",
    "fetch_stats",
    "run_load",
    "sim_replay",
    "build_operations",
    "LiveReport",
    "LiveChaosReport",
    "BoundCheck",
    "LiveChaosController",
    "WireFaultInjector",
    "chaos_params",
    "demo_live_plan",
    "run_live_chaos",
    "validate_for_live",
]

"""Determinism lint (``DET001``–``DET004``).

Simulation code must be a pure function of its seeds: the trace archive,
the campaign aggregator's byte-identical resumes, and the chaos
shrinker's oracle replays all assume that re-running a configuration
reproduces it exactly. These rules flag the four ways Python code
silently breaks that:

``DET001``
    Calls on the process-global RNG (``random.random()``,
    ``random.shuffle()``, …) share hidden state across every caller —
    the draw sequence then depends on unrelated code. Seeded
    ``random.Random`` instances are the repo-wide discipline
    (``random.Random(seed)`` constructions are allowed).
``DET002``
    Wall-clock reads (``time.time``/``monotonic``/``perf_counter``,
    ``datetime.now``, ``os.urandom``) inject the host machine into the
    run. The live backend (``repro/live/``) is the one place model time
    is *defined* by ``time.monotonic()``, so that call is allowlisted
    there; profiling-only reads elsewhere carry inline suppressions.
``DET003``
    ``sorted(key=id)`` / ``key=hash`` orders by memory address or
    (for str/bytes) by the per-process hash seed.
``DET004``
    Iterating a set (literal, constructor, comprehension, set algebra —
    including dict-view unions like ``a.keys() | b.keys()``) yields a
    PYTHONHASHSEED-dependent order once non-int elements are involved.
    Flagged in ordering-sensitive positions (``for`` targets,
    ``list()``/``tuple()``/``enumerate()``); ``sorted(...)``,
    membership tests, and order-insensitive folds (``min``/``sum``/
    ``len``) are fine. Plain ``dict``/``.keys()`` iteration is exempt:
    insertion order is deterministic.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.lint.core import (
    Finding,
    RNG_METHODS,
    SourceModule,
    dotted_name,
    scope_name,
)

#: Wall-clock entry points (dotted), including ``from datetime import
#: datetime`` spellings.
WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "os.urandom",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "date.today", "datetime.date.today",
    "uuid.uuid1", "uuid.uuid4",
}

#: ``time.monotonic`` is the live backend's *definition* of model time.
LIVE_ALLOWED = {"time.monotonic", "time.monotonic_ns"}

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate", "iter", "reversed"}


def _is_keys_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("keys", "items")
        and not node.args
    )


def _is_set_expr(node: ast.expr, set_locals: Set[str]) -> bool:
    """Whether ``node`` statically evaluates to a set/frozenset."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and node.id in set_locals:
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        left_setlike = _is_set_expr(node.left, set_locals) or _is_keys_call(node.left)
        right_setlike = _is_set_expr(node.right, set_locals) or _is_keys_call(node.right)
        # dict-view algebra (keys() | keys()) produces a *set*; require
        # at least one genuinely set-like side so int arithmetic with
        # ``-``/``|`` never matches.
        return left_setlike and right_setlike
    return False


def _is_rng_constructor(node: ast.Call) -> bool:
    name = dotted_name(node.func)
    return name in ("random.Random", "random.SystemRandom")


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, module: SourceModule):
        self.module = module
        self.findings: List[Finding] = []
        self.stack: List[str] = []
        self.set_locals: List[Set[str]] = [set()]
        self._collect_set_locals(module.tree, self.set_locals[0])

    # -- bookkeeping -------------------------------------------------------

    def _collect_set_locals(self, scope: ast.AST, out: Set[str]) -> None:
        """Names bound (only) to set expressions in this scope's body.

        Walks compound statements but never descends into nested
        function/class scopes, so module-level tracking stays clean.
        """

        def visit_stmts(stmts) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    if isinstance(target, ast.Name):
                        if _is_set_expr(stmt.value, out):
                            out.add(target.id)
                        else:
                            out.discard(target.id)
                for attr in ("body", "orelse", "finalbody"):
                    visit_stmts(getattr(stmt, attr, []))
                for handler in getattr(stmt, "handlers", []):
                    visit_stmts(handler.body)

        visit_stmts(getattr(scope, "body", []))

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                path=self.module.relpath,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                scope=scope_name(self.stack),
                message=message,
            )
        )

    # -- scope tracking ----------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    def _visit_function(self, node) -> None:
        self.stack.append(node.name)
        locals_here: Set[str] = set(self.set_locals[-1])
        self._collect_set_locals(node, locals_here)
        self.set_locals.append(locals_here)
        self.generic_visit(node)
        self.set_locals.pop()
        self.stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- rules -------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None:
            parts = name.split(".")
            if (
                len(parts) == 2
                and parts[0] == "random"
                and parts[1] in RNG_METHODS
            ):
                self._emit(
                    "DET001", node,
                    f"call to the process-global RNG random.{parts[1]}(); "
                    f"use a seeded random.Random instance",
                )
            if name in WALL_CLOCK_CALLS and not (
                name in LIVE_ALLOWED and "repro/live/" in self.module.relpath
            ):
                self._emit(
                    "DET002", node,
                    f"wall-clock call {name}() in simulation code",
                )
        if name == "sorted" or (
            isinstance(node.func, ast.Attribute) and node.func.attr == "sort"
        ):
            for keyword in node.keywords:
                if keyword.arg == "key" and self._is_identity_key(keyword.value):
                    self._emit(
                        "DET003", node,
                        "sort key uses id()/hash(): interpreter-dependent "
                        "ordering",
                    )
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_SENSITIVE_CALLS
            and node.args
        ):
            self._flag_unordered(node.args[0], f"{node.func.id}()")
        self.generic_visit(node)

    @staticmethod
    def _is_identity_key(node: ast.expr) -> bool:
        if isinstance(node, ast.Name) and node.id in ("id", "hash"):
            return True
        if isinstance(node, ast.Lambda):
            body = node.body
            if (
                isinstance(body, ast.Call)
                and isinstance(body.func, ast.Name)
                and body.func.id in ("id", "hash")
            ):
                return True
        return False

    def _flag_unordered(self, iter_node: ast.expr, context: str) -> None:
        if _is_set_expr(iter_node, self.set_locals[-1]):
            self._emit(
                "DET004", iter_node,
                f"iteration over an unordered set expression in {context}; "
                f"wrap in sorted() for a deterministic order",
            )

    def visit_For(self, node: ast.For) -> None:
        self._flag_unordered(node.iter, "a for loop")
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            self._flag_unordered(generator.iter, "a comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    # set/dict comprehensions build unordered results; iterating a set
    # *into* one is unobservable, so only ordered comprehensions count.


def check_module(module: SourceModule) -> List[Finding]:
    """All determinism findings (``DET*``) for one source module."""
    visitor = _DeterminismVisitor(module)
    visitor.visit(module.tree)
    return visitor.findings

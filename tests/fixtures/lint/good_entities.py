"""Fixture: contract- and isolation-clean entity classes."""

import copy


class KeptPromisesEntity(Entity):  # noqa: F821 -- parsed, never imported
    """Every declared promise matches the method bodies."""

    pure_enabled = True
    static_deadline = True
    wakes_at_deadline = True

    def __init__(self):
        self.cache = {}  # instance-rebound: not a shared class default

    def enabled(self, state, now):
        """Pure: reads state and now only."""
        if state.pending and now >= state.due:
            return list(state.pending)
        return []

    def apply_input(self, state, action, now):
        """Copies the payload before retaining it (no ISO003)."""
        state.queue.append(copy.deepcopy(action.params[0]))

    def fire(self, state, action, now):
        """Writes its own state only (no ISO001/ISO002)."""
        state.fired += 1
        self.cache.update({action.name: now})

    def deadline(self, state, now):
        """State-only, as static_deadline promises."""
        return state.due

    def advance(self, state, old_now, new_now):
        """Touches nothing deadline() reads."""
        state.elapsed += new_now - old_now


class FullWrapper(Entity):  # noqa: F821 -- parsed, never imported
    """Forwards the complete contract (no CON004)."""

    def __init__(self, inner):
        self.inner = inner
        self.pure_enabled = getattr(inner, "pure_enabled", True)
        self.static_deadline = getattr(inner, "static_deadline", False)
        self.wakes_at_deadline = getattr(inner, "wakes_at_deadline", False)

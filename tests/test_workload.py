"""Tests for register clients and workloads."""

import pytest

from repro.automata.actions import Action
from repro.errors import TransitionError
from repro.registers.workload import ClientEntity, CompletedOp, RegisterWorkload


class TestWorkloadValidation:
    def test_read_fraction_validated(self):
        with pytest.raises(ValueError):
            RegisterWorkload(read_fraction=1.5)

    def test_think_range_validated(self):
        with pytest.raises(ValueError):
            RegisterWorkload(think_min=2.0, think_max=1.0)
        with pytest.raises(ValueError):
            RegisterWorkload(think_min=-1.0)


class TestClient:
    def make(self, **kwargs):
        defaults = dict(operations=3, read_fraction=0.0, seed=1)
        defaults.update(kwargs)
        return ClientEntity(0, RegisterWorkload(**defaults))

    def test_respects_start_delay(self):
        client = self.make(start_delay=5.0)
        state = client.initial_state()
        assert client.enabled(state, 1.0) == []
        assert client.enabled(state, 5.0) != []
        assert client.deadline(state, 1.0) == 5.0

    def test_alternation_no_new_op_while_pending(self):
        client = self.make()
        state = client.initial_state()
        (inv,) = client.enabled(state, 0.0)
        client.fire(state, inv, 0.0)
        assert client.enabled(state, 10.0) == []
        assert client.deadline(state, 10.0) == float("inf")

    def test_response_completes_and_schedules_next(self):
        client = self.make(read_fraction=0.0, think_min=1.0, think_max=1.0)
        state = client.initial_state()
        (inv,) = client.enabled(state, 0.0)
        assert inv.name == "WRITE"
        client.fire(state, inv, 0.0)
        client.apply_input(state, Action("ACK", (0,)), 0.7)
        assert len(state.completed) == 1
        op = state.completed[0]
        assert op.kind == "W" and op.latency == pytest.approx(0.7)
        assert state.next_inv_time == pytest.approx(1.7)

    def test_written_values_unique(self):
        client = self.make(operations=5, think_min=0.0, think_max=0.0)
        state = client.initial_state()
        values = set()
        now = 0.0
        for _ in range(5):
            (inv,) = client.enabled(state, now)
            client.fire(state, inv, now)
            values.add(inv.params[1])
            client.apply_input(state, Action("ACK", (0,)), now + 0.1)
            now += 0.2
        assert len(values) == 5

    def test_stops_after_operation_budget(self):
        client = self.make(operations=1, think_min=0.0, think_max=0.0)
        state = client.initial_state()
        (inv,) = client.enabled(state, 0.0)
        client.fire(state, inv, 0.0)
        client.apply_input(state, Action("ACK", (0,)), 0.1)
        assert client.enabled(state, 1.0) == []

    def test_mismatched_response_rejected(self):
        client = self.make(read_fraction=1.0)
        state = client.initial_state()
        (inv,) = client.enabled(state, 0.0)
        assert inv.name == "READ"
        client.fire(state, inv, 0.0)
        with pytest.raises(TransitionError):
            client.apply_input(state, Action("ACK", (0,)), 0.5)

    def test_unsolicited_response_rejected(self):
        client = self.make()
        state = client.initial_state()
        with pytest.raises(TransitionError):
            client.apply_input(state, Action("ACK", (0,)), 0.0)

    def test_read_fraction_one_only_reads(self):
        client = self.make(operations=4, read_fraction=1.0,
                           think_min=0.0, think_max=0.0)
        state = client.initial_state()
        now = 0.0
        kinds = []
        for _ in range(4):
            (inv,) = client.enabled(state, now)
            kinds.append(inv.name)
            client.fire(state, inv, now)
            client.apply_input(state, Action("RETURN", (0, "v")), now + 0.1)
            now += 0.2
        assert kinds == ["READ"] * 4

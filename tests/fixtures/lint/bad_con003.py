"""Fixture: advance() writes state that deadline() reads (one CON003)."""


class DriftingEntity(Entity):  # noqa: F821 -- parsed, never imported
    """static_deadline=True, yet the deadline input mutates per advance."""

    static_deadline = True

    def advance(self, state, old_now, new_now):
        """Accumulates elapsed time into the very field deadline() uses."""
        state.timer += new_now - old_now

    def deadline(self, state, now):
        """Reads the advance-mutated timer."""
        return state.timer

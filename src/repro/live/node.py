"""One live register node: Algorithm S over sockets and a real clock.

The node owns exactly the pieces the clock-model composition of
Section 4 owns, with the transport swapped from virtual channels to TCP:

- an :class:`~repro.registers.algorithm_s.AlgorithmSProcess` (the
  Figure 3 state machine, unchanged) running on the node's *clock* time;
- a :class:`~repro.live.clock.LiveClock` driven by a simulator
  :class:`~repro.sim.clock_drivers.ClockDriver` within ``C_eps``;
- one Figure 2 :class:`~repro.core.buffers.SendBuffer` per outgoing edge
  and :class:`~repro.core.buffers.ReceiveBuffer` per incoming edge —
  the simulator's own classes, reused as wire middleware;
- an asyncio server accepting client invocations (``read``/``write``)
  and peer ``msg`` frames, and a timer task that wakes at the next
  clock deadline and fires the process's due actions.

The timer uses :meth:`RegisterProcess.due_actions
<repro.registers.algorithm_l.RegisterProcess.due_actions>` — the
late-firing (``now >= scheduled``) twin of the simulator's exact-time
``enabled()`` — because a real event loop wakes strictly after a
deadline by its scheduling jitter. Self-addressed update messages (the
algorithm updates its own copy by message) short-circuit through the
node's own receive buffer without touching the network, exactly like
the simulator's self-loop channels.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Tuple

from repro.automata.actions import Action
from repro.components.base import ProcessContext
from repro.constants import INFINITY
from repro.core.buffers import ReceiveBuffer, SendBuffer
from repro.errors import LiveServiceError
from repro.live.clock import LiveClock
from repro.live.params import LiveParams
from repro.live.wire import decode_frame, encode_frame
from repro.obs.metrics import NULL_METRICS
from repro.registers.algorithm_s import AlgorithmSProcess
from repro.registers.system import INITIAL_VALUE
from repro.sim.clock_drivers import ClockDriver

#: Floor on the timer sleep when a deadline is already overdue but the
#: clock has not quite caught up to it (tolerance-edge states) — keeps
#: the loop from busy-spinning without measurably delaying anything.
MIN_SLEEP = 1e-4


class LiveRegisterNode:
    """One node of the live cluster: server, peer mesh, timer loop."""

    def __init__(
        self,
        node: int,
        params: LiveParams,
        driver: ClockDriver,
        epoch: float,
        host: str = "127.0.0.1",
        metrics=NULL_METRICS,
    ):
        peers = list(range(params.n))
        self.node = node
        self.params = params
        self.host = host
        self.process = AlgorithmSProcess(
            node, peers, params.d2_prime, params.c, params.eps,
            delta=params.delta, initial_value=INITIAL_VALUE,
        )
        self.state = self.process.initial_state()
        self.clock = LiveClock(driver, epoch)
        self.send_bufs: Dict[int, SendBuffer] = {
            j: SendBuffer(node, j) for j in peers
        }
        self.recv_bufs: Dict[int, ReceiveBuffer] = {
            j: ReceiveBuffer(j, node) for j in peers
        }
        self._peer_writers: Dict[int, asyncio.StreamWriter] = {}
        self._responder: Optional[asyncio.StreamWriter] = None
        self._kick = asyncio.Event()
        self._stopped = asyncio.Event()
        self._server: Optional[asyncio.base_events.Server] = None
        self._timer_task: Optional[asyncio.Task] = None
        self.port: Optional[int] = None
        # wire-delay measurement (one-way; meaningful because all nodes
        # of a cluster share one epoch inside one process)
        self._wire_count = 0
        self._wire_sum = 0.0
        self._wire_max = 0.0
        self._msgs_sent = metrics.counter("repro.live.msgs.sent")
        self._msgs_received = metrics.counter("repro.live.msgs.received")
        self._wire_sketch = metrics.sketch("repro.live.wire.delay")
        self.clock.skew_sketch = metrics.sketch("repro.live.clock.skew")

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind the server socket (ephemeral port) and start the timer."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, 0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._timer_task = asyncio.ensure_future(self._run_timer())
        return self.host, self.port

    async def connect_peers(self, addresses: List[Tuple[str, int]]) -> None:
        """Dial every other node; outgoing ``msg`` frames use these links."""
        for j, (host, port) in enumerate(addresses):
            if j == self.node:
                continue
            _, writer = await asyncio.open_connection(host, port)
            writer.write(encode_frame({"t": "hello", "src": self.node}))
            self._peer_writers[j] = writer

    async def stop(self) -> None:
        """Stop the timer, close the peer links and the server socket."""
        self._stopped.set()
        self._kick.set()
        if self._timer_task is not None:
            await self._timer_task
        for writer in self._peer_writers.values():
            writer.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- connection handling -------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                frame = decode_frame(line)
                kind = frame["t"]
                if kind == "hello":
                    continue  # incoming peer link; msg frames follow
                if kind == "msg":
                    self._on_peer_msg(frame)
                elif kind in ("read", "write"):
                    self._on_invocation(kind, frame, writer)
                elif kind == "stats":
                    writer.write(encode_frame(self.stats()))
                else:
                    writer.write(encode_frame(
                        {"t": "error", "reason": f"unexpected frame {kind!r}"}
                    ))
        except (ConnectionResetError, LiveServiceError):
            pass
        except asyncio.CancelledError:
            pass  # event-loop teardown; the cluster is already stopping
        finally:
            if self._responder is writer:
                self._responder = None
            writer.close()

    def _on_peer_msg(self, frame) -> None:
        src = frame["src"]
        message = frame["m"]  # (value, t), tuplified by decode_frame
        stamp = frame["stamp"]
        real, clk = self.clock.read()
        delay = max(0.0, real - frame.get("sr", real))
        self._wire_count += 1
        self._wire_sum += delay
        if delay > self._wire_max:
            self._wire_max = delay
        self._wire_sketch.observe(delay)
        self._msgs_received.inc()
        self.recv_bufs[src].enqueue(message, stamp, clk)
        self._kick.set()

    def _on_invocation(self, kind, frame, writer) -> None:
        if self._responder is not None:
            # the alternation condition: one outstanding op per node
            writer.write(encode_frame(
                {"t": "error", "reason": "operation already pending"}
            ))
            return
        _, clk = self.clock.read()
        if kind == "read":
            action = Action("READ", (self.node,))
        else:
            action = Action("WRITE", (self.node, frame["value"]))
        self.process.apply_input(self.state, action, ProcessContext(clk))
        self._responder = writer
        self._kick.set()

    # -- the timer loop ------------------------------------------------------

    async def _run_timer(self) -> None:
        while not self._stopped.is_set():
            _, clk = self.clock.read()
            progressed = self._drain(clk)
            deadline = self._next_deadline()
            if deadline == INFINITY:
                await self._kick.wait()
                self._kick.clear()
                continue
            delay = self.clock.wall_delay(deadline)
            if delay <= 0.0 and not progressed:
                delay = MIN_SLEEP
            if delay <= 0.0:
                continue
            try:
                await asyncio.wait_for(self._kick.wait(), delay)
                self._kick.clear()
            except asyncio.TimeoutError:
                pass

    def _next_deadline(self) -> float:
        deadline = self.state.mintime()
        for buf in self.recv_bufs.values():
            deadline = min(deadline, buf.clock_deadline())
        return deadline

    def _drain(self, clk: float) -> bool:
        """Deliver due messages and fire due actions until quiescent.

        Re-polls after every batch: a RETURN suppressed by a same-instant
        pending update becomes due on the next round, after the update
        fired (Figure 3's read-the-post-update-value guard).
        """
        progressed = False
        while True:
            delivered = False
            for src, buf in self.recv_bufs.items():
                while buf.can_deliver(clk):
                    message, _stamp = buf.deliver(clk)
                    self.process.apply_input(
                        self.state,
                        Action("RECVMSG", (self.node, src, message)),
                        ProcessContext(clk),
                    )
                    delivered = True
            actions = self.process.due_actions(self.state, clk)
            if not actions and not delivered:
                return progressed
            progressed = True
            for action in actions:
                self.process.fire(self.state, action, ProcessContext(clk))
                if action.name == "SENDMSG":
                    self._send(action.params[1], action.params[2], clk)
                elif action.name == "RETURN":
                    self._respond({"t": "return", "value": action.params[1]})
                elif action.name == "ACK":
                    self._respond({"t": "ack"})
                # UPDATE is internal: the fire already applied it

    def _send(self, dst: int, payload, clk: float) -> None:
        """Route one ``SENDMSG`` through the Figure 2 send buffer."""
        buf = self.send_bufs[dst]
        buf.enqueue(payload, clk)
        message, stamp = buf.emit(clk)  # emission is urgent (Figure 2)
        self._msgs_sent.inc()
        real = self.clock.real_now()
        if dst == self.node:
            # self-loop edge: deliver locally through the receive buffer
            self.recv_bufs[dst].enqueue(message, stamp, clk)
            return
        writer = self._peer_writers.get(dst)
        if writer is None:
            raise LiveServiceError(
                f"node {self.node}: no peer link to {dst} "
                f"(connect_peers not run?)"
            )
        writer.write(encode_frame({
            "t": "msg", "src": self.node, "m": list(message),
            "stamp": stamp, "sr": real,
        }))

    def _respond(self, frame) -> None:
        if self._responder is None:
            raise LiveServiceError(
                f"node {self.node}: response with no pending invocation"
            )
        self._responder.write(encode_frame(frame))
        self._responder = None

    # -- measurement ---------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """The node-side measurements the load generator's report needs."""
        real, clk = self.clock.read()
        return {
            "t": "stats",
            "node": self.node,
            "real": real,
            "clock": clk,
            "max_skew": self.clock.max_skew,
            "eps": self.params.eps,
            "wire_count": self._wire_count,
            "wire_sum": self._wire_sum,
            "wire_max": self._wire_max,
        }

    def __repr__(self) -> str:
        return f"<LiveRegisterNode {self.node} @ {self.host}:{self.port}>"

"""The static invariant analyzer against its fixture corpus.

Every rule ID in the catalog has a ``bad_<rule>.py`` fixture under
``tests/fixtures/lint/`` that must trigger exactly that rule, plus
clean counterparts (``good.py``, ``good_entities.py``) that must stay
silent.  On top of the per-rule checks this file pins down the
suppression-comment semantics, the baseline add/remove lifecycle, the
version-1 JSON report schema, the CLI exit codes, and — the meta-check
the whole package exists for — that ``src/`` itself lints clean.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.lint import (
    RULES,
    Baseline,
    ProjectIndex,
    apply_baseline,
    build_isolation_report,
    load_modules,
    render_json,
    render_text,
    run_lint,
    rule_family,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO_ROOT, "tests", "fixtures", "lint")
SRC = os.path.join(REPO_ROOT, "src")

#: rule -> (fixture basename, expected line of the single finding).
EXPECTED = {
    "DET001": ("bad_det001.py", 8),
    "DET002": ("bad_det002.py", 8),
    "DET003": ("bad_det003.py", 6),
    "DET004": ("bad_det004.py", 6),
    "CON001": ("bad_con001.py", 11),
    "CON002": ("bad_con002.py", 11),
    "CON003": ("bad_con003.py", 9),
    "CON004": ("bad_con004.py", 7),
    "ISO001": ("bad_iso001.py", 11),
    "ISO002": ("bad_iso002.py", 11),
    "ISO003": ("bad_iso003.py", 10),
}


def lint_fixture(name, select=None):
    return run_lint(
        [os.path.join(FIXTURES, name)], root=REPO_ROOT, select=select
    )


class TestRuleCatalog:
    def test_every_rule_has_a_fixture(self):
        assert sorted(EXPECTED) == sorted(RULES)

    @pytest.mark.parametrize("rule", sorted(EXPECTED))
    def test_bad_fixture_triggers_exactly_its_rule(self, rule):
        name, line = EXPECTED[rule]
        result = lint_fixture(name)
        findings = [a.finding for a in result.new]
        assert [f.rule for f in findings] == [rule]
        assert findings[0].line == line
        assert findings[0].path == f"tests/fixtures/lint/{name}"
        assert rule_family(rule) in (
            "determinism", "contract", "shard-isolation",
        )

    @pytest.mark.parametrize("name", ["good.py", "good_entities.py"])
    def test_good_fixtures_are_clean(self, name):
        result = lint_fixture(name)
        assert result.assessed == []

    def test_select_filters_rules(self):
        result = run_lint([FIXTURES], root=REPO_ROOT, select=["DET002"])
        rules = {a.finding.rule for a in result.assessed}
        assert rules == {"DET002"}

    def test_unknown_select_rule_rejected(self):
        from repro.lint.core import LintConfigError

        with pytest.raises(LintConfigError):
            run_lint([FIXTURES], root=REPO_ROOT, select=["NOPE999"])


class TestSuppressions:
    def result(self):
        return lint_fixture("suppressed.py")

    def test_same_line_comment_suppresses(self):
        by_line = {a.finding.line: a for a in self.result().assessed}
        assert by_line[8].status == "suppressed"
        assert by_line[8].justification == "test fixture"

    def test_standalone_comment_above_suppresses(self):
        # The suppression sits two comment lines above the call — the
        # scanner walks upward through the comment block.
        by_line = {a.finding.line: a for a in self.result().assessed}
        assert by_line[15].status == "suppressed"

    def test_wrong_rule_does_not_cover(self):
        by_line = {a.finding.line: a for a in self.result().assessed}
        assert by_line[20].status == "new"
        assert by_line[20].finding.rule == "DET002"

    def test_suppressed_findings_do_not_fail_the_run(self):
        result = self.result()
        assert not result.ok  # the wrong-rule finding is still new
        assert len(result.suppressed) == 2


class TestBaseline:
    def test_add_then_apply_covers_all_new(self):
        result = lint_fixture("bad_det001.py")
        assert len(result.new) == 1
        baseline = Baseline.from_result(result, justification="pinned")
        fresh = apply_baseline(lint_fixture("bad_det001.py"), baseline)
        assert fresh.new == []
        assert len(fresh.baselined) == 1
        assert fresh.baselined[0].justification == "pinned"
        assert fresh.stale_baseline == []
        assert fresh.ok

    def test_fixed_finding_makes_entry_stale(self):
        baseline = Baseline.from_result(lint_fixture("bad_det001.py"))
        # "Fix" the finding by linting a clean file against the same
        # baseline: the entry matches nothing and must be reported.
        result = apply_baseline(lint_fixture("good.py"), baseline)
        assert len(result.stale_baseline) == 1
        assert result.stale_baseline[0]["rule"] == "DET001"
        assert not result.ok

    def test_save_load_roundtrip(self, tmp_path):
        baseline = Baseline.from_result(lint_fixture("bad_iso003.py"))
        path = os.path.join(str(tmp_path), "baseline.json")
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == baseline.entries
        with open(path) as handle:
            data = json.load(handle)
        assert data["version"] == 1

    def test_malformed_baseline_rejected(self, tmp_path):
        from repro.lint.core import LintConfigError

        path = os.path.join(str(tmp_path), "bad.json")
        with open(path, "w") as handle:
            handle.write('{"entries": "not-a-mapping"}')
        with pytest.raises(LintConfigError):
            Baseline.load(path)

    def test_fingerprint_ignores_line_number(self):
        result = lint_fixture("bad_det002.py")
        finding = result.new[0].finding
        moved = type(finding)(
            rule=finding.rule,
            path=finding.path,
            line=finding.line + 40,
            col=0,
            scope=finding.scope,
            message=finding.message,
        )
        assert moved.fingerprint == finding.fingerprint


class TestJsonReport:
    def test_schema(self):
        result = run_lint([FIXTURES], root=REPO_ROOT)
        report = json.loads(render_json(result))
        assert report["version"] == 1
        assert report["files_scanned"] == result.files_scanned
        assert report["ok"] is False
        summary = report["summary"]
        assert set(summary) == {
            "baselined", "by_rule", "new", "stale_baseline", "suppressed",
        }
        assert summary["new"] == len(EXPECTED) + 1  # + wrong-rule case
        assert summary["suppressed"] == 2
        for finding in report["findings"]:
            assert set(finding) >= {
                "rule", "family", "path", "line", "col",
                "scope", "message", "fingerprint", "status",
            }
            assert finding["rule"] in RULES
        statuses = {f["status"] for f in report["findings"]}
        assert statuses == {"new", "suppressed"}

    def test_text_report_mentions_each_new_finding(self):
        result = run_lint([FIXTURES], root=REPO_ROOT)
        text = render_text(result)
        for rule, (name, line) in EXPECTED.items():
            assert f"tests/fixtures/lint/{name}:{line}:" in text
            assert rule in text
        # Suppressed findings only appear in verbose mode.
        assert "[suppressed]" not in text
        assert "[suppressed]" in render_text(result, verbose=True)


class TestIsolationReport:
    def test_fixture_entities_classified(self):
        modules = load_modules(
            [os.path.join(FIXTURES, name) for name in (
                "bad_iso001.py", "bad_iso002.py", "bad_iso003.py",
                "good_entities.py",
            )],
            root=REPO_ROOT,
        )
        report = build_isolation_report(ProjectIndex(modules))
        assert report["version"] == 1
        by_class = {entry["class"]: entry for entry in report["classes"]}
        assert by_class["CachingEntity"]["verdict"] == "blocked"
        assert by_class["LoggingEntity"]["verdict"] == "blocked"
        assert by_class["KeptPromisesEntity"]["verdict"] == "independent"
        # Payload aliasing is a transfer edge, not a blocker.
        buffering = by_class["BufferingEntity"]
        assert buffering["verdict"] == "independent"
        assert len(buffering["transfer_edges"]) == 1
        summary = report["summary"]
        assert summary["blocked"] == 2
        assert summary["transfer_edges"] >= 1


class TestRepoIsClean:
    def test_src_has_no_new_findings(self):
        result = run_lint([SRC], root=REPO_ROOT)
        messages = [
            f"{a.finding.location()} {a.finding.rule} {a.finding.message}"
            for a in result.new
        ]
        assert messages == []

    def test_every_src_suppression_is_justified(self):
        result = run_lint([SRC], root=REPO_ROOT)
        for assessed in result.suppressed:
            assert assessed.justification.strip(), assessed.finding.location()


class TestCli:
    def run_cli(self, *argv):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        return subprocess.run(
            [sys.executable, "-m", "repro", "lint", *argv],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
        )

    def test_repo_scan_exits_zero(self):
        proc = self.run_cli("--baseline", "lint-baseline.json")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_fixture_scan_exits_nonzero_with_json(self):
        proc = self.run_cli("tests/fixtures/lint", "--format", "json")
        assert proc.returncode == 1
        report = json.loads(proc.stdout)
        assert report["summary"]["new"] == len(EXPECTED) + 1

    def test_list_rules(self):
        proc = self.run_cli("--list-rules")
        assert proc.returncode == 0
        for rule in RULES:
            assert rule in proc.stdout

"""Message-delay models: adversaries for the ``[d1, d2]`` channels.

The channel automaton of Figure 1 delivers each message at some
nondeterministic time within ``[send + d1, send + d2]``. A
:class:`DelayModel` resolves that nondeterminism: the channel samples a
delivery time for each message on arrival. Correctness theorems quantify
over all resolutions, so tests exercise several models including the
extremes.
"""

from __future__ import annotations

import random
from typing import Tuple


class DelayModel:
    """Chooses per-message delays within ``[d1, d2]``."""

    def sample(
        self, edge: Tuple[int, int], message: object, send_time: float,
        d1: float, d2: float,
    ) -> float:
        """Return the chosen delay (must lie in ``[d1, d2]``)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class ConstantFractionDelay(DelayModel):
    """Every message takes ``d1 + fraction * (d2 - d1)``."""

    def __init__(self, fraction: float = 0.5):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        self.fraction = fraction

    def sample(self, edge, message, send_time, d1, d2) -> float:
        return d1 + self.fraction * (d2 - d1)


class MinimalDelay(ConstantFractionDelay):
    """Every message takes exactly ``d1`` (fastest network)."""

    def __init__(self):
        super().__init__(0.0)


class MaximalDelay(ConstantFractionDelay):
    """Every message takes exactly ``d2`` (slowest permitted network)."""

    def __init__(self):
        super().__init__(1.0)


class UniformDelay(DelayModel):
    """Seeded i.i.d. uniform delays over ``[d1, d2]``."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def sample(self, edge, message, send_time, d1, d2) -> float:
        return self._rng.uniform(d1, d2)


class AlternatingExtremesDelay(DelayModel):
    """Alternate ``d1`` and ``d2`` per message, per edge.

    A cheap adversary that maximizes reordering between consecutive
    messages on the same edge (the paper's channels may reorder).
    """

    def __init__(self):
        self._toggle = {}

    def sample(self, edge, message, send_time, d1, d2) -> float:
        flip = self._toggle.get(edge, False)
        self._toggle[edge] = not flip
        return d2 if flip else d1


class JitteredDelay(DelayModel):
    """Mostly-fast network with occasional near-``d2`` stragglers."""

    def __init__(self, seed: int = 0, straggler_probability: float = 0.1):
        if not 0.0 <= straggler_probability <= 1.0:
            raise ValueError("straggler_probability must be in [0, 1]")
        self._rng = random.Random(seed)
        self.straggler_probability = straggler_probability

    def sample(self, edge, message, send_time, d1, d2) -> float:
        if self._rng.random() < self.straggler_probability:
            return self._rng.uniform(d1 + 0.9 * (d2 - d1), d2)
        return self._rng.uniform(d1, d1 + 0.2 * (d2 - d1))

"""Experiment harnesses: one function per paper artifact.

Each ``exp_*`` function runs its sweep and returns a
:class:`~repro.analysis.report.Table` whose rows are the paper-vs-measured
comparison recorded in EXPERIMENTS.md, plus a dict of shape assertions the
pytest benchmarks check ("who wins, by roughly what factor, where the
crossovers fall").

The pytest-benchmark wrappers in ``benchmarks/bench_*.py`` time one
representative configuration per experiment and print/assert these
tables; ``benchmarks/run_all.py`` regenerates every table at once
(optionally sharded across workers through
:class:`repro.campaign.CampaignRunner`).

Historical note: this module lived at ``benchmarks/harness.py`` and
reached the pinger helpers through a ``sys.path`` insert into the tests
directory. It is now part of the installed ``repro`` package — the shim
left at the old path just re-exports these names — so campaign workers
and benchmarks import it without any path manipulation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.analysis.report import Table
from repro.automata.actions import ActionPattern, PatternActionSet
from repro.clocks.sources import OffsetClockSource
from repro.components.pinger import pinger_process_factory, pinger_topology
from repro.core.clock_transform import ClockNodeEntity
from repro.core.pipeline import (
    build_clock_system,
    build_mmt_system,
    build_timed_system,
    simulation1_delay_bounds,
    simulation2_shift_bound,
)
from repro.core.rate import smallest_k
from repro.registers.system import (
    baseline_register_system,
    clock_register_system,
    run_register_experiment,
    timed_register_system,
)
from repro.registers.workload import RegisterWorkload
from repro.sim.clock_drivers import driver_factory
from repro.sim.delay import (
    AlternatingExtremesDelay,
    MaximalDelay,
    MinimalDelay,
    UniformDelay,
)
from repro.sim.scheduler import RandomScheduler
from repro.traces.relations import equivalent_eps, max_time_displacement

PINGER_KAPPA = [PatternActionSet([ActionPattern("PING"), ActionPattern("GOTPONG")])]
DELTA = 0.01


# ---------------------------------------------------------------------------
# FIG1 — channel automaton conformance
# ---------------------------------------------------------------------------


def exp_fig1_channel() -> Tuple[Table, Dict]:
    """Figure 1: every message delivered exactly once within [d1, d2]."""
    table = Table(
        "FIG1: channel E_{ij,[d1,d2]} conformance (Figure 1)",
        ["d1", "d2", "delay model", "msgs", "min delay", "max delay", "in bounds"],
    )
    shapes = {"all_in_bounds": True, "all_delivered": True}
    configs = [(0.1, 0.1), (0.1, 1.0), (0.5, 2.0), (0.0, 0.3)]
    models = [
        ("uniform", lambda: UniformDelay(seed=7)),
        ("minimal", MinimalDelay),
        ("maximal", MaximalDelay),
        ("alternating", AlternatingExtremesDelay),
    ]
    for d1, d2 in configs:
        for label, make_model in models:
            spec = build_timed_system(
                pinger_topology(),
                pinger_process_factory(count=20, interval=max(2 * d2, 0.5)),
                d1,
                d2,
                make_model(),
            )
            result = spec.run(25 * max(2 * d2, 0.5))
            sends: Dict[object, float] = {}
            delays: List[float] = []
            for record in result.recorder.events:
                if record.action.name == "SENDMSG":
                    sends[record.action.params[2]] = record.now
                elif record.action.name == "RECVMSG":
                    delays.append(record.now - sends[record.action.params[2]])
            in_bounds = all(d1 - 1e-9 <= d <= d2 + 1e-9 for d in delays)
            shapes["all_in_bounds"] &= in_bounds
            shapes["all_delivered"] &= len(delays) == len(sends)
            table.add_row(
                d1, d2, label, len(delays),
                min(delays) if delays else 0.0,
                max(delays) if delays else 0.0,
                "yes" if in_bounds else "NO",
            )
    table.add_note("paper: nu is blocked past t + d2; delivery not before t + d1")
    return table, shapes


# ---------------------------------------------------------------------------
# FIG2 — send/receive buffers
# ---------------------------------------------------------------------------


def exp_fig2_buffers(d1: float = 0.2, d2: float = 1.0) -> Tuple[Table, Dict]:
    """Figure 2: buffering activates iff d1 < 2*eps; clock-time delays
    stay in [max(0, d1 - 2*eps), d2 + 2*eps] (Lemma 4.5)."""
    table = Table(
        "FIG2: Figure 2 buffers — clock-time delay bounds and buffering",
        [
            "eps", "2*eps", "buffering expected", "msgs held", "mean hold (clock)",
            "min clk delay", "max clk delay", "bound lo", "bound hi",
        ],
    )
    shapes = {"bounds_hold": True, "activation_matches": True}
    for eps in (0.01, 0.05, 0.1, 0.15, 0.3, 0.5):
        spec = build_clock_system(
            pinger_topology(),
            pinger_process_factory(count=15, interval=2.0),
            eps,
            d1,
            d2,
            drivers=driver_factory("mixed", eps, seed=3),
            delay_model=MinimalDelay(),
        )
        result = spec.run(40.0)
        lo, hi = simulation1_delay_bounds(d1, d2, eps)
        sends: Dict[object, float] = {}
        clock_delays: List[float] = []
        for record in result.recorder.events:
            if record.action.name == "ESENDMSG":
                message, stamp = record.action.params[2]
                sends[message] = stamp
            elif record.action.name == "RECVMSG" and record.clock is not None:
                clock_delays.append(record.clock - sends[record.action.params[2]])
        held = 0
        hold_total = 0.0
        for entity in spec.entities:
            if isinstance(entity, ClockNodeEntity):
                stats = entity.buffering_stats(result.final_states[entity.name])
                held += stats["messages_held"]
                hold_total += stats["total_hold_clock"]
        expected = d1 < 2 * eps
        observed = held > 0
        in_bounds = all(lo - 1e-9 <= d <= hi + 1e-9 for d in clock_delays)
        shapes["bounds_hold"] &= in_bounds
        # activation: buffering can only occur when d1 < 2*eps
        if observed and not expected:
            shapes["activation_matches"] = False
        table.add_row(
            eps, 2 * eps, "yes" if expected else "no", held,
            hold_total / held if held else 0.0,
            min(clock_delays) if clock_delays else 0.0,
            max(clock_delays) if clock_delays else 0.0,
            lo, hi,
        )
    table.add_note(
        "Section 7.2: when the minimum delay exceeds 2*eps, buffering is never needed"
    )
    return table, shapes


# ---------------------------------------------------------------------------
# FIG3 — algorithm S transition relation
# ---------------------------------------------------------------------------


def exp_fig3_algorithm_s() -> Tuple[Table, Dict]:
    """Figure 3: executions of S satisfy Q (superlinearizability)."""
    eps, d1p, d2p, c = 0.1, 0.2, 1.0, 0.3
    table = Table(
        "FIG3: algorithm S (Figure 3) executions solve Q (Lemma 6.2)",
        ["seed", "reads", "writes", "superlinearizable", "linearizable"],
    )
    shapes = {"all_super": True}
    for seed in range(6):
        workload = RegisterWorkload(operations=6, read_fraction=0.5, seed=seed)
        spec = timed_register_system(
            n=3, d1_prime=d1p, d2_prime=d2p, c=c, workload=workload,
            algorithm="S", eps=eps, delta=DELTA,
            delay_model=UniformDelay(seed=seed),
        )
        run = run_register_experiment(
            spec, 60.0, scheduler=RandomScheduler(seed=seed)
        )
        is_super = run.superlinearizable(eps)
        shapes["all_super"] &= is_super
        table.add_row(
            seed, len(run.reads), len(run.writes),
            "yes" if is_super else "NO",
            "yes" if run.linearizable() else "NO",
        )
    return table, shapes


# ---------------------------------------------------------------------------
# THM4.7 — Simulation 1
# ---------------------------------------------------------------------------


def exp_thm47(d1: float = 0.3, d2: float = 1.2) -> Tuple[Table, Dict]:
    """Theorem 4.7: t-trace(D_C) is =_eps to gamma, and gamma is in P."""
    table = Table(
        "THM4.7: Simulation 1 — D_C solves P_eps",
        [
            "eps", "driver", "events", "trace =_eps gamma",
            "gamma in design P", "max displacement", "<= eps",
        ],
    )
    shapes = {"all_equivalent": True, "all_in_p": True, "displacement_ok": True}
    for eps in (0.02, 0.1, 0.25):
        d1p, d2p = simulation1_delay_bounds(d1, d2, eps)
        for driver_kind in ("fast", "slow", "mixed", "random"):
            spec = build_clock_system(
                pinger_topology(),
                pinger_process_factory(count=6, interval=2.5),
                eps, d1, d2,
                drivers=driver_factory(driver_kind, eps, seed=11),
                delay_model=UniformDelay(seed=5),
            )
            result = spec.run(40.0, scheduler=RandomScheduler(seed=1))
            gamma = result.clock_trace()
            equivalent = equivalent_eps(result.trace, gamma, eps, PINGER_KAPPA)
            pings, in_p = {}, True
            for ev in gamma:
                if ev.action.name == "PING":
                    pings[ev.action.params[1]] = ev.time
                elif ev.action.name == "GOTPONG":
                    rtt = ev.time - pings[ev.action.params[1]]
                    in_p &= 2 * d1p - 1e-9 <= rtt <= 2 * d2p + 1e-9
            displacement = max_time_displacement(result.trace, gamma, PINGER_KAPPA)
            shapes["all_equivalent"] &= equivalent
            shapes["all_in_p"] &= in_p
            shapes["displacement_ok"] &= (
                displacement is not None and displacement <= eps + 1e-9
            )
            table.add_row(
                eps, driver_kind, len(result.recorder),
                "yes" if equivalent else "NO",
                "yes" if in_p else "NO",
                displacement if displacement is not None else -1.0,
                "yes" if displacement is not None and displacement <= eps + 1e-9 else "NO",
            )
    table.add_note("gamma: visible trace re-stamped with node clocks (Def 4.2)")
    return table, shapes


# ---------------------------------------------------------------------------
# THM5.1 — Simulation 2
# ---------------------------------------------------------------------------


def exp_thm51(eps: float = 0.05) -> Tuple[Table, Dict]:
    """Theorems 5.1/5.2: output shift <= k*l + 2*eps + 3*l."""
    from repro.core.mmt_transform import LazyStepPolicy

    table = Table(
        "THM5.1: Simulation 2 — measured output shift vs bound k*l + 2*eps + 3*l",
        ["l (step bound)", "k (measured)", "shift bound", "max observed shift", "within"],
    )
    shapes = {"all_within": True, "bound_grows_with_l": []}
    for ell in (0.01, 0.05, 0.1, 0.2):
        spec = build_mmt_system(
            pinger_topology(),
            pinger_process_factory(count=6, interval=2.0),
            eps, d1=0.2, d2=1.0, step_bound=ell,
            sources=lambda i: OffsetClockSource(eps, eps if i == 0 else -eps),
            step_policy_factory=lambda i: LazyStepPolicy(),
            delay_model=UniformDelay(seed=2),
        )
        result = spec.run(25.0)
        # PING k is scheduled at clock 2k; its real emission may lag.
        shifts = []
        for record in result.recorder.events:
            if record.action.name == "PING":
                scheduled = 2.0 * record.action.params[1]
                shifts.append(record.now - (scheduled - eps))
        outputs = PatternActionSet(
            [ActionPattern("PING"), ActionPattern("GOTPONG"),
             ActionPattern("ESENDMSG", (0,))]
        )
        k = smallest_k(result.schedule, ell, outputs) or 4
        bound = simulation2_shift_bound(k, ell, eps)
        observed = max(shifts) if shifts else 0.0
        within = observed <= bound + 1e-9
        shapes["all_within"] &= within
        shapes["bound_grows_with_l"].append(bound)
        table.add_row(ell, k, bound, observed, "yes" if within else "NO")
    table.add_note("lazy step policy: the adversary always waits the full l")
    return table, shapes


# ---------------------------------------------------------------------------
# LEM6.1 / LEM6.2 — algorithms L and S in the timed model
# ---------------------------------------------------------------------------


def exp_lem61(d1p: float = 0.2, d2p: float = 1.0) -> Tuple[Table, Dict]:
    """Lemma 6.1: L's read <= c + delta, write <= d2' - c."""
    table = Table(
        "LEM6.1: algorithm L latencies vs analytic bounds (timed model)",
        [
            "c", "read bound", "max read", "write bound", "max write",
            "within", "linearizable",
        ],
    )
    shapes = {"all_within": True, "all_linearizable": True,
              "read_latencies": [], "write_latencies": []}
    for c in (0.0, 0.2, 0.4, 0.6, 0.8):
        workload = RegisterWorkload(operations=8, read_fraction=0.5, seed=4)
        spec = timed_register_system(
            n=3, d1_prime=d1p, d2_prime=d2p, c=c, workload=workload,
            algorithm="L", delta=DELTA, delay_model=UniformDelay(seed=4),
        )
        run = run_register_experiment(spec, 80.0, scheduler=RandomScheduler(seed=4))
        read_bound, write_bound = c + DELTA, d2p - c
        within = (
            run.max_read_latency() <= read_bound + 1e-9
            and run.max_write_latency() <= write_bound + 1e-9
        )
        linearizable = run.linearizable()
        shapes["all_within"] &= within
        shapes["all_linearizable"] &= linearizable
        shapes["read_latencies"].append(run.max_read_latency())
        shapes["write_latencies"].append(run.max_write_latency())
        table.add_row(
            c, read_bound, run.max_read_latency(), write_bound,
            run.max_write_latency(), "yes" if within else "NO",
            "yes" if linearizable else "NO",
        )
    table.add_note("c trades read latency against write latency (Section 6.1)")
    return table, shapes


def exp_lem62(d1p: float = 0.2, d2p: float = 1.0, c: float = 0.3) -> Tuple[Table, Dict]:
    """Lemma 6.2: S's read <= 2*eps + c + delta, write <= d2' - c; solves Q."""
    table = Table(
        "LEM6.2: algorithm S latencies and superlinearizability (timed model)",
        ["eps", "read bound", "max read", "write bound", "max write",
         "superlin", "within"],
    )
    shapes = {"all_within": True, "all_super": True}
    for eps in (0.0, 0.05, 0.1, 0.2):
        workload = RegisterWorkload(operations=8, read_fraction=0.5, seed=6)
        spec = timed_register_system(
            n=3, d1_prime=d1p, d2_prime=d2p, c=c, workload=workload,
            algorithm="S", eps=eps, delta=DELTA,
            delay_model=UniformDelay(seed=6),
        )
        run = run_register_experiment(spec, 80.0, scheduler=RandomScheduler(seed=6))
        read_bound, write_bound = 2 * eps + c + DELTA, d2p - c
        within = (
            run.max_read_latency() <= read_bound + 1e-9
            and run.max_write_latency() <= write_bound + 1e-9
        )
        is_super = run.superlinearizable(eps)
        shapes["all_within"] &= within
        shapes["all_super"] &= is_super
        table.add_row(
            eps, read_bound, run.max_read_latency(), write_bound,
            run.max_write_latency(), "yes" if is_super else "NO",
            "yes" if within else "NO",
        )
    return table, shapes


# ---------------------------------------------------------------------------
# THM6.5 — the transformed register in the clock model
# ---------------------------------------------------------------------------


def exp_thm65(d1: float = 0.2, d2: float = 1.0) -> Tuple[Table, Dict]:
    """Theorem 6.5: read <= 2*eps + delta + c, write <= d2 + 2*eps - c
    (clock time; +2*eps real-time stretch), plainly linearizable."""
    table = Table(
        "THM6.5: transformed S in the clock model",
        ["eps", "c", "driver", "read bound", "max read", "write bound",
         "max write", "linearizable"],
    )
    shapes = {"all_linearizable": True, "all_within": True}
    for eps in (0.05, 0.1, 0.2):
        for c in (0.1, 0.4):
            for driver_kind in ("mixed", "random"):
                workload = RegisterWorkload(operations=6, read_fraction=0.5, seed=8)
                spec = clock_register_system(
                    n=3, d1=d1, d2=d2, c=c, eps=eps, workload=workload,
                    drivers=driver_factory(driver_kind, eps, seed=8),
                    delta=DELTA, delay_model=UniformDelay(seed=8),
                )
                run = run_register_experiment(
                    spec, 80.0, scheduler=RandomScheduler(seed=8)
                )
                read_bound = (2 * eps + DELTA + c) + 2 * eps
                write_bound = (d2 + 2 * eps - c) + 2 * eps
                linearizable = run.linearizable()
                within = (
                    run.max_read_latency() <= read_bound + 1e-9
                    and run.max_write_latency() <= write_bound + 1e-9
                )
                shapes["all_linearizable"] &= linearizable
                shapes["all_within"] &= within
                table.add_row(
                    eps, c, driver_kind, read_bound, run.max_read_latency(),
                    write_bound, run.max_write_latency(),
                    "yes" if linearizable else "NO",
                )
    table.add_note(
        "bounds shown include the +2*eps real-time stretch of clock-time guarantees"
    )
    return table, shapes


# ---------------------------------------------------------------------------
# TAB6.3 — comparison against the [10]-style baseline
# ---------------------------------------------------------------------------


def exp_tab63(d1: float = 0.2, d2: float = 1.0) -> Tuple[Table, Dict]:
    """Section 6.3: ours (read c+u, write d2-c+u; combined d2+2u) vs
    [10]-style (read 4u, write d2+3u; combined d2+7u)."""
    table = Table(
        "TAB6.3: transformed S vs [10]-style time-sliced baseline",
        [
            "u=2*eps", "c", "ours read", "ours write", "ours comb",
            "base read", "base write", "base comb",
            "paper ours comb (d2+2u)", "paper base comb (d2+7u)", "ours wins",
        ],
    )
    shapes = {"ours_always_wins_combined": True, "gap_ratios": []}
    for eps in (0.05, 0.1, 0.15):
        u = 2 * eps
        c = u  # ours read = c + u = 2u: comfortably under the baseline's 4u
        workload = RegisterWorkload(operations=6, read_fraction=0.5, seed=9)
        ours_spec = clock_register_system(
            n=3, d1=d1, d2=d2, c=c, eps=eps, workload=workload,
            drivers=driver_factory("mixed", eps, seed=9),
            delta=DELTA, delay_model=UniformDelay(seed=9),
        )
        ours = run_register_experiment(
            ours_spec, 90.0, scheduler=RandomScheduler(seed=9)
        )
        workload_b = RegisterWorkload(operations=6, read_fraction=0.5, seed=9)
        base_spec = baseline_register_system(
            n=3, d1=d1, d2=d2, eps=eps, workload=workload_b,
            drivers=driver_factory("mixed", eps, seed=9),
            delay_model=UniformDelay(seed=9),
        )
        base = run_register_experiment(
            base_spec, 90.0, scheduler=RandomScheduler(seed=9)
        )
        ours_comb = ours.max_read_latency() + ours.max_write_latency()
        base_comb = base.max_read_latency() + base.max_write_latency()
        wins = ours_comb < base_comb
        shapes["ours_always_wins_combined"] &= wins
        shapes["gap_ratios"].append((base_comb - ours_comb) / u)
        table.add_row(
            u, c, ours.max_read_latency(), ours.max_write_latency(), ours_comb,
            base.max_read_latency(), base.max_write_latency(), base_comb,
            d2 + 2 * u, d2 + 7 * u, "yes" if wins else "NO",
        )
    table.add_note("paper predicts a combined-latency gap of 5u; both measured "
                   "systems are linearizable")
    return table, shapes


# ---------------------------------------------------------------------------
# ABL1 — delay placement ablation (Section 6.2 remark)
# ---------------------------------------------------------------------------


def exp_abl1(d1p: float = 0.2, d2p: float = 1.0, c: float = 0.3) -> Tuple[Table, Dict]:
    """Naive +2*eps on every op vs S's read-only delay."""
    table = Table(
        "ABL1: delay placement — S (read-only +2*eps) vs naive (+2*eps on all ops)",
        ["eps", "S write", "naive write", "write penalty", "S read", "naive read",
         "both superlin"],
    )
    shapes = {"penalty_tracks_two_eps": True, "all_super": True}
    for eps in (0.05, 0.1, 0.2):
        runs = {}
        for algorithm in ("S", "naive"):
            workload = RegisterWorkload(operations=8, read_fraction=0.5, seed=10)
            spec = timed_register_system(
                n=3, d1_prime=d1p, d2_prime=d2p, c=c, workload=workload,
                algorithm=algorithm, eps=eps, delta=DELTA,
                delay_model=UniformDelay(seed=10),
            )
            runs[algorithm] = run_register_experiment(
                spec, 80.0, scheduler=RandomScheduler(seed=10)
            )
        penalty = (
            runs["naive"].max_write_latency() - runs["S"].max_write_latency()
        )
        both_super = runs["S"].superlinearizable(eps) and runs[
            "naive"
        ].superlinearizable(eps)
        shapes["penalty_tracks_two_eps"] &= abs(penalty - 2 * eps) <= eps
        shapes["all_super"] &= both_super
        table.add_row(
            eps, runs["S"].max_write_latency(), runs["naive"].max_write_latency(),
            penalty, runs["S"].max_read_latency(), runs["naive"].max_read_latency(),
            "yes" if both_super else "NO",
        )
    table.add_note("judicious placement saves 2*eps on every write at no cost")
    return table, shapes


# ---------------------------------------------------------------------------
# ABL2 — buffering cost in practice (Section 7.2)
# ---------------------------------------------------------------------------


def exp_abl2(d2: float = 1.0) -> Tuple[Table, Dict]:
    """Fraction of messages buffered and mean hold time vs d1 / (2*eps)."""
    table = Table(
        "ABL2: buffering cost vs d1/(2*eps) (Section 7.2)",
        ["d1", "eps", "d1/(2*eps)", "msgs", "held", "frac held", "mean hold"],
    )
    shapes = {"no_holds_above_one": True, "holds_below_one": 0}
    eps = 0.15
    for d1 in (0.0, 0.1, 0.2, 0.3, 0.45, 0.6):
        spec = build_clock_system(
            pinger_topology(),
            pinger_process_factory(count=15, interval=1.5),
            eps, d1, d2,
            drivers=driver_factory("mixed", eps, seed=12),
            delay_model=MinimalDelay(),
        )
        result = spec.run(30.0)
        held, hold_total, total = 0, 0.0, 0
        for entity in spec.entities:
            if isinstance(entity, ClockNodeEntity):
                stats = entity.buffering_stats(result.final_states[entity.name])
                held += stats["messages_held"]
                hold_total += stats["total_hold_clock"]
        total = result.recorder.count("ERECVMSG") or result.recorder.count("RECVMSG")
        ratio = d1 / (2 * eps) if eps else float("inf")
        if ratio >= 1.0 and held > 0:
            shapes["no_holds_above_one"] = False
        if ratio < 1.0:
            shapes["holds_below_one"] += held
        table.add_row(
            d1, eps, ratio, total, held,
            held / total if total else 0.0,
            hold_total / held if held else 0.0,
        )
    table.add_note("paper: buffering is never needed once d1 > 2*eps; below that "
                   "the hold time is at most 2*eps - d1")
    return table, shapes


# ---------------------------------------------------------------------------
# ENG — engine throughput
# ---------------------------------------------------------------------------


def exp_engine_throughput() -> Tuple[Table, Dict]:
    """Substrate sizing: events/second for n-node register systems."""
    import time

    from repro.obs import MetricsRegistry

    table = Table(
        "ENG: simulation engine throughput",
        ["nodes", "events", "wall (s)", "events/s", "engine steps/s"],
    )
    shapes = {"rates": [], "metrics": []}
    for n in (2, 3, 5, 8):
        workload = RegisterWorkload(operations=10, read_fraction=0.5, seed=13,
                                    think_min=0.1, think_max=0.5)
        spec = timed_register_system(
            n=n, d1_prime=0.2, d2_prime=1.0, c=0.3, workload=workload,
            delay_model=UniformDelay(seed=13),
        )
        metrics = MetricsRegistry()
        # repro: lint-ignore[DET002] -- throughput measurement brackets;
        # the rate is a reported figure, not simulation input
        start = time.perf_counter()
        run = run_register_experiment(spec, 60.0, metrics=metrics)
        wall = time.perf_counter() - start  # repro: lint-ignore[DET002] -- volatile wall-time figure
        events = len(run.result.recorder)
        rate = events / wall if wall > 0 else 0.0
        snapshot = metrics.snapshot(include_volatile=True)
        shapes["rates"].append(rate)
        shapes["metrics"].append({"nodes": n, "snapshot": snapshot})
        table.add_row(
            n, events, wall, rate,
            snapshot["gauges"].get("repro.engine.steps_per_sec", 0.0),
        )
    return table, shapes


ALL_EXPERIMENTS: Dict[str, Callable[[], Tuple[Table, Dict]]] = {
    "FIG1": exp_fig1_channel,
    "FIG2": exp_fig2_buffers,
    "FIG3": exp_fig3_algorithm_s,
    "THM4.7": exp_thm47,
    "THM5.1": exp_thm51,
    "LEM6.1": exp_lem61,
    "LEM6.2": exp_lem62,
    "THM6.5": exp_thm65,
    "TAB6.3": exp_tab63,
    "ABL1": exp_abl1,
    "ABL2": exp_abl2,
    "ENG": exp_engine_throughput,
}


# ---------------------------------------------------------------------------
# ABL3 — TDMA guard crossover (Section 7.1 second technique)
# ---------------------------------------------------------------------------


def exp_abl3_tdma(eps: float = 0.1) -> Tuple[Table, Dict]:
    """Q_eps ⊆ P iff guard >= eps; overlap below the crossover is
    exactly 2*(eps - guard)."""
    from repro.sim.clock_drivers import FastClockDriver, SlowClockDriver
    from repro.tdma import (
        build_tdma_system,
        critical_intervals,
        max_overlap,
        min_gap,
        utilization,
    )

    def adversarial(i):
        return FastClockDriver(eps) if i % 2 == 0 else SlowClockDriver(eps)

    table = Table(
        f"ABL3: TDMA guard sweep (Q_eps ⊆ P iff guard >= eps; eps = {eps:g})",
        ["guard", "guard/eps", "max overlap", "predicted overlap",
         "min gap", "utilization", "mutual exclusion"],
    )
    shapes = {"crossover_at_eps": True, "overlap_matches_formula": True}
    busy_span = 9.0
    for guard in (0.0, 0.025, 0.05, 0.075, 0.1, 0.15, 0.2):
        spec = build_tdma_system(
            "clock", n=3, slot_width=1.0, guard=guard, sections=3,
            eps=eps, drivers=adversarial,
        )
        intervals = critical_intervals(spec.run(15.0).trace)
        overlap = max_overlap(intervals)
        predicted = max(2 * (eps - guard), 0.0)
        exclusion = overlap <= 1e-9
        if (guard >= eps) != exclusion:
            shapes["crossover_at_eps"] = False
        if guard < eps and abs(overlap - predicted) > 1e-6:
            shapes["overlap_matches_formula"] = False
        table.add_row(
            guard, guard / eps, overlap, predicted,
            min_gap(intervals), utilization(intervals, busy_span),
            "yes" if exclusion else "NO",
        )
    table.add_note("message-free mutual exclusion; the guard is the price "
                   "of the eps clock error")
    return table, shapes


# ---------------------------------------------------------------------------
# EXT1 — generalized blind-update objects (Section 6's closing remark)
# ---------------------------------------------------------------------------


def exp_ext1_objects(d1: float = 0.2, d2: float = 1.0) -> Tuple[Table, Dict]:
    """All blind-update object types stay linearizable in the clock model
    with the register's latency bounds."""
    from repro.objects import (
        CounterSpec, GrowSetSpec, LWWMapSpec, MaxRegisterSpec, PNCounterSpec,
        ObjectWorkload, clock_object_system, run_object_experiment,
    )

    eps, c = 0.1, 0.3
    table = Table(
        "EXT1: generalized objects in the clock model (Thm 6.5 bounds)",
        ["object", "queries", "updates", "max query", "query bound",
         "max update", "update bound", "linearizable"],
    )
    shapes = {"all_linearizable": True, "all_within": True}
    query_bound = (2 * eps + DELTA + c) + 2 * eps
    update_bound = (d2 + 2 * eps - c) + 2 * eps
    for spec in (CounterSpec(), PNCounterSpec(), MaxRegisterSpec(),
                 GrowSetSpec(), LWWMapSpec()):
        workload = ObjectWorkload(operations=6, update_fraction=0.5, seed=14)
        system = clock_object_system(
            spec, n=3, d1=d1, d2=d2, c=c, eps=eps, workload=workload,
            drivers=driver_factory("mixed", eps, seed=14),
            delay_model=UniformDelay(seed=14),
        )
        run = run_object_experiment(
            system, spec, 90.0, scheduler=RandomScheduler(seed=14)
        )
        linearizable = run.linearizable()
        within = (
            run.max_query_latency() <= query_bound + 1e-9
            and run.max_update_latency() <= update_bound + 1e-9
        )
        shapes["all_linearizable"] &= linearizable
        shapes["all_within"] &= within
        table.add_row(
            spec.name, len(run.queries), len(run.updates),
            run.max_query_latency(), query_bound,
            run.max_update_latency(), update_bound,
            "yes" if linearizable else "NO",
        )
    table.add_note("same machinery as the register: blind updates applied "
                   "at the same scheduled instant everywhere")
    return table, shapes


# ---------------------------------------------------------------------------
# EXT2 — fault tolerance (Section 7.3)
# ---------------------------------------------------------------------------


def exp_ext2_faults(d1: float = 0.2, d2: float = 1.0) -> Tuple[Table, Dict]:
    """The register over lossy/duplicating channels via the ARQ adapter:
    linearizable with the *effective* delay bounds d2 + B*R."""
    from repro.core.pipeline import build_clock_system
    from repro.faults import BernoulliFaults, ReliableAdapter, effective_delay_bounds
    from repro.network.topology import Topology
    from repro.registers.algorithm_s import AlgorithmSProcess
    from repro.registers.system import INITIAL_VALUE, run_register_experiment
    from repro.registers.workload import ClientEntity, RegisterWorkload

    eps, c, retx, n = 0.1, 0.3, 0.5, 3
    table = Table(
        "EXT2: register over lossy channels (ARQ, effective bounds d2 + B*R)",
        ["p_drop", "B", "dropped", "duplicated", "max write",
         "write bound", "linearizable"],
    )
    shapes = {"all_linearizable": True, "all_within": True, "loss_observed": True}
    for p_drop, max_drops in ((0.1, 2), (0.3, 3), (0.5, 4)):
        d1e, d2e = effective_delay_bounds(d1, d2, retx, max_drops)
        _, d2p = simulation1_delay_bounds(d1e, d2e, eps)

        def processes(i):
            inner = AlgorithmSProcess(
                i, list(range(n)), d2p, c, eps, delta=DELTA,
                initial_value=INITIAL_VALUE,
            )
            return ReliableAdapter(inner, retransmit_interval=retx)

        faults = BernoulliFaults(
            seed=17, p_drop=p_drop, p_duplicate=0.1,
            max_consecutive_drops=max_drops,
        )
        spec = build_clock_system(
            Topology.complete(n, True), processes, eps, d1, d2,
            driver_factory("mixed", eps, seed=17), UniformDelay(seed=17),
            fault_model=faults,
        )
        workload = RegisterWorkload(operations=4, read_fraction=0.5, seed=17)
        spec = spec.add(*[ClientEntity(i, workload) for i in range(n)])
        run = run_register_experiment(
            spec, 130.0, scheduler=RandomScheduler(seed=17),
            max_steps=3_000_000,
        )
        dropped = sum(
            state.dropped for name, state in run.result.final_states.items()
            if name.startswith("lossychan")
        )
        duplicated = sum(
            state.duplicated for name, state in run.result.final_states.items()
            if name.startswith("lossychan")
        )
        write_bound = (d2e + 2 * eps - c) + 2 * eps
        linearizable = run.linearizable()
        within = run.max_write_latency() <= write_bound + 1e-9
        shapes["all_linearizable"] &= linearizable
        shapes["all_within"] &= within
        shapes["loss_observed"] &= dropped > 0
        table.add_row(
            p_drop, max_drops, dropped, duplicated,
            run.max_write_latency(), write_bound,
            "yes" if linearizable else "NO",
        )
    table.add_note("every theorem applies verbatim with the effective "
                   "bounds; the adapter itself is eps-time independent")
    return table, shapes


ALL_EXPERIMENTS["ABL3"] = exp_abl3_tdma
ALL_EXPERIMENTS["EXT1"] = exp_ext1_objects
ALL_EXPERIMENTS["EXT2"] = exp_ext2_faults


# ---------------------------------------------------------------------------
# EXT3 — multi-hop: flooding latency and leader-election simultaneity
# ---------------------------------------------------------------------------


def exp_ext3_multihop(d1: float = 0.1, d2: float = 1.0) -> Tuple[Table, Dict]:
    """Flood delivery within dist*d2' (clock stamps) and leader
    announcements within 2*eps of each other, across topologies."""
    from repro.automata.actions import Action
    from repro.broadcast import (
        build_flood_system,
        build_leader_system,
        deliveries,
        election_outcomes,
    )
    from repro.broadcast.flood import _distances, diameter
    from repro.network.topology import Topology

    eps = 0.1
    table = Table(
        "EXT3: multi-hop flooding + leader election (clock model)",
        ["topology", "diameter", "flood worst slack", "flood in bound",
         "leader agreed", "announce spread", "<= 2*eps"],
    )
    shapes = {"all_in_bound": True, "all_agree": True, "spread_ok": True}
    topologies = {
        "ring5": Topology.ring(5),
        "chain4": Topology.chain(4),
        "star5": Topology.star(5),
        "complete4": Topology.complete(4, self_loops=False),
    }
    for name, topology in sorted(topologies.items()):
        dia = diameter(topology)
        d2_design = d2 + 2 * eps
        spec = build_flood_system(
            "clock", topology, d1, d2, eps=eps,
            drivers=driver_factory("mixed", eps, seed=19),
            delay_model=UniformDelay(seed=19),
        )
        inject_at = 1.0
        result = spec.simulator().run(
            3.0 + dia * d2_design,
            initial_inputs=[(Action("BCAST", (0, ("m", 1))), inject_at)],
        )
        delivered = deliveries(result.clock_trace())
        dist = _distances(topology, 0)
        worst_slack = -1e9
        in_bound = len(delivered) == topology.n
        for (node, _), stamp in delivered.items():
            bound = inject_at + eps + dist[node] * d2_design
            worst_slack = max(worst_slack, stamp - bound)
            in_bound &= stamp <= bound + 1e-9
        shapes["all_in_bound"] &= in_bound

        spec = build_leader_system(
            "clock", topology, d1, d2, eps=eps,
            drivers=driver_factory("mixed", eps, seed=19),
            delay_model=UniformDelay(seed=19),
        )
        result = spec.run(dia * d2_design + 2.0)
        outcomes = election_outcomes(result.trace)
        agreed = (
            len(outcomes) == topology.n
            and {leader for leader, _ in outcomes.values()} == {0}
        )
        times = [t for _, t in outcomes.values()]
        spread = max(times) - min(times) if times else 1e9
        shapes["all_agree"] &= agreed
        shapes["spread_ok"] &= spread <= 2 * eps + 1e-9
        table.add_row(
            name, dia, worst_slack, "yes" if in_bound else "NO",
            "yes" if agreed else "NO", spread,
            "yes" if spread <= 2 * eps + 1e-9 else "NO",
        )
    table.add_note("announcements are simultaneous in the timed model; the "
                   "clock transformation spreads them by at most 2*eps")
    return table, shapes


ALL_EXPERIMENTS["EXT3"] = exp_ext3_multihop


# ---------------------------------------------------------------------------
# ABL4 — internal vs real-time specifications (Section 4.3 discussion)
# ---------------------------------------------------------------------------


def exp_abl4_internal_specs(d1: float = 0.1, d2: float = 1.0) -> Tuple[Table, Dict]:
    """Lamport/Neiger-Toueg internal specifications need no margin:
    transformed L(c=0) stays sequentially consistent (an internal spec)
    in the clock model but frequently violates linearizability (a
    real-time spec); algorithm S's 2*eps read margin restores it."""
    from repro.registers.system import INITIAL_VALUE
    from repro.sim.delay import MaximalDelay
    from repro.traces.sequential_consistency import is_sequentially_consistent

    eps = 0.3
    seeds = range(12)
    table = Table(
        "ABL4: internal (SC) vs real-time (linearizability) specifications",
        ["algorithm", "runs", "SC holds", "linearizable holds",
         "max read latency"],
    )
    shapes = {
        "sc_always": True,
        "l_violations_seen": False,
        "s_always_linearizable": True,
    }
    for algorithm, c in (("L", 0.0), ("S", 0.0)):
        sc_ok = lin_ok = 0
        worst_read = 0.0
        for seed in seeds:
            workload = RegisterWorkload(
                operations=6, read_fraction=0.6, seed=seed,
                think_min=0.05, think_max=0.6,
            )
            spec = clock_register_system(
                n=3, d1=d1, d2=d2, c=c, eps=eps, workload=workload,
                drivers=driver_factory("mixed", eps, seed=seed),
                delay_model=MaximalDelay(), algorithm=algorithm,
            )
            run = run_register_experiment(
                spec, 80.0, scheduler=RandomScheduler(seed=seed)
            )
            if is_sequentially_consistent(run.result.trace, INITIAL_VALUE):
                sc_ok += 1
            else:
                shapes["sc_always"] = False
            if run.linearizable():
                lin_ok += 1
            elif algorithm == "S":
                shapes["s_always_linearizable"] = False
            worst_read = max(worst_read, run.max_read_latency())
        if algorithm == "L" and lin_ok < len(list(seeds)):
            shapes["l_violations_seen"] = True
        table.add_row(
            f"{algorithm}(c=0)", len(list(seeds)),
            f"{sc_ok}/{len(list(seeds))}", f"{lin_ok}/{len(list(seeds))}",
            worst_read,
        )
    table.add_note("SC never references real time, so P_eps = P and the "
                   "bare transformation suffices (Lamport [5], "
                   "Neiger-Toueg [13]); linearizability needs S's 2*eps")
    return table, shapes


ALL_EXPERIMENTS["ABL4"] = exp_abl4_internal_specs


# ---------------------------------------------------------------------------
# EXT4 — the sync protocol inside the engine (Section 4.3 hybrid model)
# ---------------------------------------------------------------------------


def exp_ext4_sync_protocol(d1s: float = 0.01, d2s: float = 0.08) -> Tuple[Table, Dict]:
    """Clients on free-running drifting clocks, disciplined by a
    real-time server node: achieved software-clock error vs the
    analytic envelope, per drift rate and sync period."""
    from repro.clocks.protocol import build_sync_protocol_system, software_clock_errors
    from repro.clocks.sync import achievable_epsilon

    table = Table(
        "EXT4: in-engine Cristian sync vs analytic envelope "
        "(Section 4.3 hybrid model)",
        ["rho (ppm)", "period", "max software err", "analytic envelope",
         "within", "raw drift at horizon"],
    )
    shapes = {"all_within": True, "sync_beats_raw_drift": True}
    horizon = 120.0
    for rho, period in ((1.003, 5.0), (0.998, 5.0), (1.001, 10.0),
                        (1.005, 2.0)):
        spec = build_sync_protocol_system(
            1, d1s, d2s, period, [rho], delay_model=UniformDelay(seed=23)
        )
        result = spec.run(horizon)
        series = software_clock_errors(result)[1]
        steady = max(
            abs(err) for t, err in series if t > 2 * period + 1.0
        )
        envelope = achievable_epsilon(rho, period, d1s, d2s)
        raw = abs(rho - 1.0) * horizon
        within = steady <= envelope
        shapes["all_within"] &= within
        shapes["sync_beats_raw_drift"] &= steady < raw
        table.add_row(
            (rho - 1.0) * 1e6, period, steady, envelope,
            "yes" if within else "NO", raw,
        )
    table.add_note("the eps every transformation assumes, produced by a "
                   "protocol running in the very model they target")
    return table, shapes


ALL_EXPERIMENTS["EXT4"] = exp_ext4_sync_protocol

"""The discrete-event simulator.

The engine realizes the operational semantics shared by all three system
models:

1. While any entity has an enabled locally controlled action, the
   scheduler picks one and it fires *now* (actions take zero time, S2).
   If the action is an output, it is synchronously applied as an input
   to every entity that accepts it (the composition rule of
   Definition 2.2).
2. When no action is enabled, time advances to the minimum of all
   entities' deadlines (the operational reading of the ``nu``
   preconditions) capped by the horizon; entities update their
   time-dependent state (clocks, timers) in ``advance``.
3. A deadline equal to the current time with no enabled action is a
   *timelock* — a modeling bug — and raises immediately rather than
   spinning.

Every fired action is recorded with its real time and the owner's local
clock, so the run yields both ``t-trace`` (real-time stamps) and the
``gamma`` sequences of Definition 4.2 (clock stamps).

Two execution strategies share one loop (see docs/performance.md):

- the **incremental** core (default) tracks a *dirty set* of entities
  whose enabled set may have changed — seeded by fire, routing,
  injection, and time-advance targets — consults a precomputed
  action-routing table instead of probing every entity per output, and
  keeps per-entity deadlines in a lazily-invalidated min-heap;
- the **full-scan** reference path (``Simulator(..., incremental=False)``)
  re-derives every entity's enabled set and deadline on every event,
  exactly as the models' operational semantics are written down.

Both produce identical traces for entities honoring the scheduling
contract declared on :class:`~repro.components.base.Entity`
(``pure_enabled`` / ``static_deadline`` / ``wakes_at_deadline``);
``benchmarks/bench_engine_core.py`` and the conformance tests check
this across the seeded corpus.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.automata.actions import (
    ANY,
    Action,
    ActionSet,
    EmptyActionSet,
    FiniteActionSet,
    PatternActionSet,
    UnionActionSet,
)
from repro.automata.executions import TimedSequence
from repro.automata.signature import _DifferenceActionSet, _IntersectionActionSet
from repro.components.base import Entity
from repro.errors import ScheduleError, SimulationLimitError, TimelockError
from repro.obs.metrics import MetricsRegistry, stats_from_metrics
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sim.recorder import Recorder
from repro.sim.scheduler import DeterministicScheduler, Scheduler

from repro.constants import TOLERANCE as _TOLERANCE

INFINITY = float("inf")


@dataclass
class SimulationResult:
    """Everything observable about one finished run."""

    horizon: float
    now: float
    steps: int
    recorder: Recorder
    final_states: Dict[str, Any]
    stats: Dict[str, int] = field(default_factory=dict)
    metrics: Optional[Dict[str, Any]] = None
    """Deterministic metrics snapshot of the run (see :mod:`repro.obs`)."""

    @property
    def trace(self) -> TimedSequence:
        """``t-trace``: visible actions with real-time stamps."""
        return self.recorder.timed_trace()

    @property
    def schedule(self) -> TimedSequence:
        """All recorded actions with real-time stamps."""
        return self.recorder.timed_schedule()

    def clock_trace(self, resort: bool = True) -> TimedSequence:
        """Clock-stamped visible trace (``gamma`` of Definition 4.2)."""
        return self.recorder.clock_stamped_trace(resort=resort)

    def completed(self) -> bool:
        """Whether the run covered the whole horizon (admissibility)."""
        return self.now >= self.horizon - _TOLERANCE

    def summary(self) -> Dict[str, Any]:
        """A picklable, JSON-ready digest of the run.

        The worker-safe entrypoint for sharded campaigns: recorder
        events and final entity states hold arbitrary (possibly
        unpicklable) objects, so worker processes ship this plain-dict
        digest — horizon/now/steps, event counts, the canonical stats,
        and the deterministic metrics snapshot — back to the parent
        instead of the full :class:`SimulationResult`.

        ``events`` counts every recorded action including any a
        ring-mode recorder has since overwritten; ``events_retained``
        and ``events_dropped`` break the total down.
        """
        return {
            "horizon": self.horizon,
            "now": self.now,
            "steps": self.steps,
            "events": len(self.recorder) + self.recorder.dropped,
            "events_retained": len(self.recorder),
            "events_dropped": self.recorder.dropped,
            "completed": self.completed(),
            "stats": dict(self.stats),
            "metrics": self.metrics,
        }

    def __repr__(self) -> str:
        return (
            f"<SimulationResult: {self.steps} steps, "
            f"{len(self.recorder)} events, now={self.now:g}/{self.horizon:g}>"
        )


class _Wildcard:
    """Routing-key marker: matches any first parameter."""

    def __repr__(self) -> str:
        return "_ANY_FIRST"


_ANY_FIRST = _Wildcard()
_NO_PARAMS = _Wildcard()  # distinct marker for zero-parameter actions


def _first_param_key(name: str, params: Tuple) -> Tuple[str, Any]:
    return (name, params[0] if params else _NO_PARAMS)


def _input_action_keys(action_set: ActionSet) -> Optional[Set[Tuple[str, Any]]]:
    """Over-approximate an input set as ``(name, first param)`` keys.

    The first parameter of the network-interface actions is the owning
    node (``RECVMSG_i``) or edge source, so keying on it sends each
    routed action straight to its few true recipients instead of every
    entity sharing the action name. ``_ANY_FIRST`` marks patterns that
    accept any first parameter. Returns ``None`` when the set cannot be
    decomposed (predicate sets, unknown subclasses) — the owning entity
    is then probed for every routed action, exactly like the full scan.
    The keys may over-approximate the truly accepted actions (e.g. for
    difference sets); routing always re-checks ``accepts`` on the
    prefiltered entities, so over-approximation is safe and
    under-approximation is the only thing that would be a bug.
    """
    if isinstance(action_set, EmptyActionSet):
        return set()
    if isinstance(action_set, FiniteActionSet):
        return {_first_param_key(a.name, a.params) for a in action_set.actions}
    if isinstance(action_set, PatternActionSet):
        keys: Set[Tuple[str, Any]] = set()
        for p in action_set.patterns:
            if p.prefix and p.prefix[0] is not ANY:
                keys.add((p.name, p.prefix[0]))
            else:
                keys.add((p.name, _ANY_FIRST))
        return keys
    if isinstance(action_set, UnionActionSet):
        keys = set()
        for member in action_set.members:
            sub = _input_action_keys(member)
            if sub is None:
                return None
            keys |= sub
        return keys
    if isinstance(action_set, _DifferenceActionSet):
        return _input_action_keys(action_set._left)
    if isinstance(action_set, _IntersectionActionSet):
        left = _input_action_keys(action_set._left)
        if left is not None:
            return left
        return _input_action_keys(action_set._right)
    return None


class _EntityInfo:
    """Per-entity data precomputed once per :class:`Simulator`."""

    __slots__ = (
        "entity",
        "index",
        "name",
        "pure_enabled",
        "static_deadline",
        "wakes_at_deadline",
        "probe_always",
        "input_keys",
        "advances",
    )

    def __init__(self, entity: Entity, index: int):
        self.entity = entity
        self.index = index
        self.name = entity.name
        self.pure_enabled = bool(getattr(entity, "pure_enabled", True))
        self.static_deadline = bool(getattr(entity, "static_deadline", False))
        self.wakes_at_deadline = self.static_deadline and bool(
            getattr(entity, "wakes_at_deadline", False)
        )
        # Entities overriding accepts() may take inputs beyond their
        # declared signature; keep probing them for every action.
        self.probe_always = type(entity).accepts is not Entity.accepts
        self.input_keys = (
            None if self.probe_always
            else _input_action_keys(entity.signature.inputs)
        )
        self.advances = type(entity).advance is not Entity.advance

    def may_accept(self, key: Tuple[str, Any]) -> bool:
        keys = self.input_keys
        if keys is None:
            return True
        return key in keys or (key[0], _ANY_FIRST) in keys


class Simulator:
    """Composes entities and runs them to a horizon.

    Parameters
    ----------
    entities:
        the top-level automata (nodes, channels, clients, tick sources).
        Entity names must be unique — they key the state map.
    scheduler:
        policy among simultaneously enabled actions (default
        deterministic).
    hidden:
        actions matching this set are recorded as invisible; they appear
        in the timed schedule but not the timed trace. System builders
        hide the node/channel interface actions per Sections 3.3 and 4.1.
    max_steps:
        safety valve against runaway action loops.
    incremental:
        run the event-driven core (dirty-set scheduling, routing table,
        deadline heap). ``False`` selects the full-scan reference path,
        which re-derives everything per event; both yield identical
        traces for entities honoring the declared scheduling contract.
    """

    def __init__(
        self,
        entities: Sequence[Entity],
        scheduler: Optional[Scheduler] = None,
        hidden: Optional[ActionSet] = None,
        max_steps: int = 1_000_000,
        strict: bool = False,
        incremental: bool = True,
    ):
        names = [e.name for e in entities]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ScheduleError(f"duplicate entity names: {duplicates}")
        self.entities = list(entities)
        self.scheduler = scheduler or DeterministicScheduler()
        self.hidden = hidden
        self.max_steps = max_steps
        self.strict = strict
        self.incremental = incremental
        self._infos = [_EntityInfo(e, i) for i, e in enumerate(self.entities)]
        # (action name, first param) -> tuple of _EntityInfo that may
        # accept it, in composition order (routing and injection
        # delivery order).
        self._route_table: Dict[Tuple[str, Any], Tuple[_EntityInfo, ...]] = {}

    # -- internals ---------------------------------------------------------

    def _is_visible(self, action: Action, owner: Entity) -> bool:
        if not owner.signature.is_output(action):
            return False
        if self.hidden is not None and action in self.hidden:
            return False
        return True

    def _route_targets(self, action: Action) -> Tuple[_EntityInfo, ...]:
        """Entities that may accept the action (lazily filled table)."""
        try:
            key = _first_param_key(action.name, action.params)
            targets = self._route_table.get(key)
            if targets is None:
                targets = tuple(
                    info for info in self._infos if info.may_accept(key)
                )
                self._route_table[key] = targets
            return targets
        except TypeError:
            # Unhashable first parameter: fall back to probing every
            # entity whose keys mention the name at all.
            name = action.name
            return tuple(
                info
                for info in self._infos
                if info.input_keys is None
                or any(k[0] == name for k in info.input_keys)
            )

    def _route(
        self,
        action: Action,
        owner: Entity,
        states: Dict[str, Any],
        now: float,
    ) -> None:
        """Deliver an output action to every entity accepting it.

        The full-scan delivery used by the reference path and kept as
        the public routing primitive; the incremental loop inlines the
        routing-table equivalent so it can dirty the recipients.
        """
        if not owner.signature.is_output(action):
            return
        for entity in self.entities:
            if entity is owner:
                continue
            if entity.accepts(action):
                entity.apply_input(states[entity.name], action, now)

    # -- main loop -------------------------------------------------------------

    def run(
        self,
        horizon: float,
        recorder: Optional[Recorder] = None,
        initial_inputs: Sequence[Tuple[Action, float]] = (),
        stop_when: Optional[Callable[[Recorder, float], bool]] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        shards: Optional[int] = None,
        window: Optional[float] = None,
    ) -> SimulationResult:
        """Run the composed system until ``now`` reaches ``horizon``.

        ``initial_inputs`` optionally injects environment actions at
        given times — a convenience for driving open systems without
        writing a client entity. (Most workloads use client entities.)

        ``stop_when(recorder, now)``, checked after every fired action
        and after every injection round, ends the run early when it
        returns true — e.g. "stop once every node announced a leader".
        An early-stopped run reports ``completed() == False``.

        ``metrics`` is a :class:`~repro.obs.metrics.MetricsRegistry`
        (one is created when omitted; pass
        :data:`~repro.obs.metrics.NULL_METRICS` to disable collection
        entirely). ``tracer`` emits structured span/event records; the
        default null tracer makes every hook a no-op.

        ``shards`` selects the sharded execution mode (see
        :mod:`repro.sim.sharded`): entities are partitioned into up to
        ``shards`` shards that advance independently through safe
        windows of width derived from the channels' ``d1`` lookahead,
        exchanging cross-shard messages at the window barriers. Traces
        are byte-identical to the serial engine at every shard count;
        the system must satisfy the shard-safety preconditions or
        :class:`~repro.errors.ShardingError` is raised. ``None``
        (the default) is the plain serial path; ``window`` optionally
        narrows the barrier spacing below the derived safe width.
        """
        if shards is not None:
            from repro.sim.sharded import run_sharded

            return run_sharded(
                self,
                horizon,
                shards,
                window=window,
                recorder=recorder,
                initial_inputs=initial_inputs,
                stop_when=stop_when,
                metrics=metrics,
                tracer=tracer,
            )
        if recorder is None:  # `or` would discard an empty (falsy) Recorder
            recorder = Recorder()
        if metrics is None:
            metrics = MetricsRegistry()
        tracer = tracer or NULL_TRACER
        core = _EngineCore(
            self, recorder, metrics, tracer, initial_inputs, stop_when
        )
        # repro: lint-ignore[DET002] -- events/sec instrumentation; the
        # wall figures are published as volatile metrics, excluded from
        # the deterministic export (see below)
        wall_start = time.perf_counter()
        tracer.run_start(horizon)
        tracer.meta({"entities": [e.name for e in self.entities]})
        core.run_until(horizon)
        wall = time.perf_counter() - wall_start  # repro: lint-ignore[DET002] -- volatile wall-time figure
        now = core.now
        steps = core.steps
        tracer.run_end(now, steps)

        # Run-level publishing. Wall-clock figures are volatile (kept out
        # of the deterministic export); everything else is a pure
        # function of the seeded run.
        metrics.gauge("repro.engine.now").set(now)
        metrics.gauge("repro.engine.horizon").set(horizon)
        # ``events`` counts every recorded action — a ring-mode recorder's
        # overwritten entries included (they used to be silently excluded).
        events_total = float(len(recorder) + recorder.dropped)
        metrics.gauge("repro.recorder.events").set(events_total)
        metrics.gauge("repro.recorder.events_total").set(events_total)
        metrics.gauge("repro.recorder.events_retained").set(float(len(recorder)))
        metrics.gauge("repro.recorder.dropped").set(float(recorder.dropped))
        metrics.gauge("repro.engine.wall_seconds", volatile=True).set(wall)
        if wall > 0:
            metrics.gauge("repro.engine.steps_per_sec", volatile=True).set(
                steps / wall
            )
            metrics.gauge("repro.engine.sim_time_ratio", volatile=True).set(
                now / wall
            )

        return SimulationResult(
            horizon=horizon,
            now=now,
            steps=steps,
            recorder=recorder,
            final_states=core.states,
            stats=stats_from_metrics(metrics),
            metrics=metrics.snapshot(),
        )


class _EngineCore:
    """Resumable execution state for one run (or one shard of one).

    Owns everything the main loop keeps between events: per-entity
    states, the enabled-set cache, the dirty sets, the deadline heap,
    and the injection cursor. :meth:`run_until` advances the loop to a
    time limit and may be called repeatedly — the serial path makes one
    inclusive call to the horizon; the sharded driver
    (:mod:`repro.sim.sharded`) drives one core per shard window by
    window, feeding cross-shard outputs back in through
    :meth:`apply_external` at the barriers.

    ``emit``, when given, is called ``emit(action, now)`` for every
    output action fired — the sharded driver's hook for capturing
    messages that must cross a shard boundary. ``record_injections``
    exists because every shard's core processes the *full* injection
    list (each must deliver to its local acceptors and cap its time
    advances at pending injection times), but only one shard may record
    the environment events and bump the injection counters, or the
    merged run would count them once per shard.
    """

    def __init__(
        self,
        sim: Simulator,
        recorder: Recorder,
        metrics: MetricsRegistry,
        tracer: Tracer,
        initial_inputs: Sequence[Tuple[Action, float]] = (),
        stop_when: Optional[Callable[[Recorder, float], bool]] = None,
        emit: Optional[Callable[[Action, float], None]] = None,
        record_injections: bool = True,
    ):
        self.sim = sim
        self.recorder = recorder
        self.metrics = metrics
        self.tracer = tracer
        self.stop_when = stop_when
        self.emit = emit
        self.record_injections = record_injections
        self.stopped = False

        for entity in sim.entities:
            entity.instrument(metrics)
        sim.scheduler.instrument(metrics)
        self.states: Dict[str, Any] = {
            e.name: e.initial_state() for e in sim.entities
        }
        self.now = 0.0
        self.steps = 0
        self.injections = sorted(initial_inputs, key=lambda pair: pair[1])
        self.inject_idx = 0

        self.c_steps = metrics.counter("repro.engine.steps")
        self.c_actions = metrics.counter("repro.engine.actions")
        self.c_advances = metrics.counter("repro.engine.time_advances")
        self.c_injections = metrics.counter("repro.engine.injections")
        self.c_visible = metrics.counter("repro.engine.visible_events")
        self.c_hidden = metrics.counter("repro.engine.hidden_events")

        infos = sim._infos
        self.infos = infos
        self.info_by_name = {info.name: info for info in infos}
        n_entities = len(infos)
        self.all_idx = range(n_entities)
        self.state_by_idx = [self.states[info.name] for info in infos]
        self.entity_by_idx = [info.entity for info in infos]

        # Enabled-set cache: per-entity candidate lists, assembled into
        # the scheduler's candidate sequence from the non-empty entries.
        # Candidates carry an interned (entity name, action repr) sort
        # key so schedulers never recompute repr() per pick.
        self.active: Dict[int, List[Tuple[Entity, Action, Tuple[str, str]]]] = {}
        # Entities whose enabled set must be re-derived before the next
        # pick. The full-scan path simply treats every entity as dirty
        # every round; impure entities are re-marked every round so
        # their enabled() call sequence matches the full scan's.
        self.dirty: Set[int] = set(self.all_idx)
        self.impure_idx = [i.index for i in infos if not i.pure_enabled]

        # Min-deadline cache (incremental path only). Static-deadline
        # entities live in a lazily-invalidated heap of
        # (deadline, index, generation); dynamic ones are re-evaluated
        # at every advance query, as the full scan does for everyone.
        static_idx = [i.index for i in infos if i.static_deadline]
        self.dynamic_idx = [i.index for i in infos if not i.static_deadline]
        self.dl_val: List[float] = [INFINITY] * n_entities
        self.dl_gen: List[int] = [0] * n_entities
        self.dl_heap: List[Tuple[float, int, int]] = []
        self.dl_dirty: Set[int] = set(static_idx)
        self.advancing_idx = [i.index for i in infos if i.advances]
        self.nonwake_idx = [i.index for i in infos if not i.wakes_at_deadline]
        self.nonwake_static_idx = [
            i.index
            for i in infos
            if i.static_deadline and not i.wakes_at_deadline
        ]

    def mark_dirty(self, info: _EntityInfo) -> None:
        """Queue an entity for enabled-set (and deadline) re-derivation."""
        self.dirty.add(info.index)
        if info.static_deadline:
            self.dl_dirty.add(info.index)

    def apply_external(self, action: Action, at_time: float) -> None:
        """Deliver a foreign shard's output action to local acceptors.

        ``at_time`` is the original fire time on the producing shard:
        channels sample their delay against the true send time even
        though the action crosses the shard boundary one window barrier
        later, so ``deliver_at = send + delay`` is exactly the serial
        engine's.
        """
        state_by_idx = self.state_by_idx
        for info in self.sim._route_targets(action):
            entity = info.entity
            if entity.accepts(action):
                entity.apply_input(state_by_idx[info.index], action, at_time)
                self.mark_dirty(info)

    def run_until(self, limit: float, inclusive: bool = True) -> None:
        """Advance the loop until ``now`` reaches ``limit``.

        ``inclusive=True`` is the serial semantics: actions enabled
        exactly *at* the limit still fire, and the call returns when
        nothing is enabled there (the run's final state).

        ``inclusive=False`` stops at the top of the loop as soon as
        ``now`` has reached the limit — before delivering injections or
        firing actions stamped exactly at it. Events on a window
        barrier therefore belong to the *next* window, after the
        barrier's mailbox exchange, which is what makes the sharded
        schedule merge back into the serial order exactly once each.
        """
        sim = self.sim
        recorder = self.recorder
        tracer = self.tracer
        stop_when = self.stop_when
        emit = self.emit
        record_injections = self.record_injections
        states = self.states
        injections = self.injections
        n_injections = len(injections)
        inject_idx = self.inject_idx
        now = self.now
        steps = self.steps

        # Hot-loop bindings: one attribute lookup per call, not per event.
        c_steps = self.c_steps
        c_actions = self.c_actions
        c_advances = self.c_advances
        c_injections = self.c_injections
        c_visible = self.c_visible
        c_hidden = self.c_hidden
        trace_action = tracer.action
        trace_advance = tracer.advance
        record = recorder.record
        pick = sim.scheduler.pick
        strict = sim.strict
        max_steps = sim.max_steps
        incremental = sim.incremental
        route_targets = sim._route_targets
        hidden = sim.hidden
        entities = sim.entities

        infos = self.infos
        info_by_name = self.info_by_name
        all_idx = self.all_idx
        state_by_idx = self.state_by_idx
        entity_by_idx = self.entity_by_idx
        active = self.active
        dirty = self.dirty
        impure_idx = self.impure_idx
        dynamic_idx = self.dynamic_idx
        dl_val = self.dl_val
        dl_gen = self.dl_gen
        dl_heap = self.dl_heap
        dl_dirty = self.dl_dirty
        advancing_idx = self.advancing_idx
        nonwake_idx = self.nonwake_idx
        nonwake_static_idx = self.nonwake_static_idx

        def refresh(idx: int) -> None:
            entity = entity_by_idx[idx]
            name = infos[idx].name
            state = state_by_idx[idx]
            enabled = entity.enabled(state, now)
            if enabled:
                active[idx] = [
                    (entity, action, (name, repr(action))) for action in enabled
                ]
            else:
                active.pop(idx, None)

        def mark_dirty(info: _EntityInfo) -> None:
            dirty.add(info.index)
            if info.static_deadline:
                dl_dirty.add(info.index)

        try:
            while True:
                # Window barrier: with ``inclusive=False`` every event
                # stamped exactly at the limit — injection delivery
                # included — is left for the next call.
                if not inclusive and now >= limit - _TOLERANCE:
                    break

                # Deliver any injections scheduled at (or before) this time.
                if inject_idx < n_injections and injections[inject_idx][1] <= now + _TOLERANCE:
                    while (
                        inject_idx < n_injections
                        and injections[inject_idx][1] <= now + _TOLERANCE
                    ):
                        action, _ = injections[inject_idx]
                        inject_idx += 1
                        if record_injections:
                            c_injections.inc()
                        if incremental:
                            for info in route_targets(action):
                                if info.entity.accepts(action):
                                    info.entity.apply_input(
                                        state_by_idx[info.index], action, now
                                    )
                                    mark_dirty(info)
                        else:
                            for entity in entities:
                                if entity.accepts(action):
                                    entity.apply_input(states[entity.name], action, now)
                        if record_injections:
                            record(action, now, "environment", None, True)
                            c_visible.inc()
                            tracer.injection(now, action)
                    if stop_when is not None and stop_when(recorder, now):
                        self.stopped = True
                        break

                # Re-derive enabled sets for entities whose state (or time)
                # may have changed, then gather the candidate actions.
                if incremental:
                    dirty.update(impure_idx)
                    if dirty:
                        for idx in sorted(dirty):
                            refresh(idx)
                        dirty.clear()
                else:
                    for idx in all_idx:
                        refresh(idx)
                if active:
                    if len(active) == 1:
                        (candidates,) = active.values()
                    else:
                        candidates = [
                            cand for lst in active.values() for cand in lst
                        ]
                else:
                    candidates = []

                if candidates:
                    if steps >= max_steps:
                        raise SimulationLimitError(
                            f"exceeded {max_steps} steps at now={now:g}"
                        )
                    picked = pick(candidates, now)
                    entity, action = picked[0], picked[1]
                    if strict and not (
                        entity.signature.is_output(action)
                        or entity.signature.is_internal(action)
                    ):
                        raise ScheduleError(
                            f"{entity.name} offered {action}, which is not a "
                            f"locally controlled action of its signature"
                        )
                    state = states[entity.name]
                    clock = entity.clock_value(state, now)
                    entity.fire(state, action, now)
                    is_output = entity.signature.is_output(action)
                    visible = is_output and (
                        hidden is None or action not in hidden
                    )
                    record(action, now, entity.name, clock, visible)
                    (c_visible if visible else c_hidden).inc()
                    trace_action(now, entity.name, action, clock, visible)
                    if is_output:
                        if emit is not None:
                            emit(action, now)
                        if incremental:
                            for info in route_targets(action):
                                target_entity = info.entity
                                if target_entity is entity:
                                    continue
                                if target_entity.accepts(action):
                                    target_entity.apply_input(
                                        state_by_idx[info.index], action, now
                                    )
                                    mark_dirty(info)
                        else:
                            sim._route(action, entity, states, now)
                    steps += 1
                    c_steps.inc()
                    c_actions.inc()
                    if incremental:
                        mark_dirty(info_by_name[entity.name])
                    if stop_when is not None and stop_when(recorder, now):
                        self.stopped = True
                        break
                    continue

                # No action enabled: advance time. The target starts at the
                # limit capped by the next injection and is pulled down by
                # the minimum entity deadline; reaching the limit with
                # nothing enabled ends the call (the former separate
                # "horizon drain" is subsumed by the loop's candidate
                # gathering above).
                target = limit
                if inject_idx < n_injections:
                    inj_time = injections[inject_idx][1]
                    if inj_time < target:
                        target = inj_time
                blocker = None
                if incremental:
                    if dl_dirty:
                        for idx in sorted(dl_dirty):
                            value = entity_by_idx[idx].deadline(state_by_idx[idx], now)
                            dl_val[idx] = value
                            dl_gen[idx] += 1
                            heappush(dl_heap, (value, idx, dl_gen[idx]))
                        dl_dirty.clear()
                    while dl_heap and dl_heap[0][2] != dl_gen[dl_heap[0][1]]:
                        heappop(dl_heap)
                    best_val = INFINITY
                    best_idx = -1
                    if dl_heap:
                        best_val, best_idx = dl_heap[0][0], dl_heap[0][1]
                    for idx in dynamic_idx:
                        value = entity_by_idx[idx].deadline(state_by_idx[idx], now)
                        if value < best_val or (value == best_val and idx < best_idx):
                            best_val = value
                            best_idx = idx
                    if best_val < target:
                        target = best_val
                        blocker = entity_by_idx[best_idx]
                else:
                    for entity in entities:
                        entity_deadline = entity.deadline(states[entity.name], now)
                        if entity_deadline < target:
                            target = entity_deadline
                            blocker = entity
                if target <= now + _TOLERANCE:
                    if now >= limit - _TOLERANCE:
                        break
                    tracer.timelock(now, blocker.name if blocker else None)
                    raise TimelockError(
                        f"timelock at now={now:g}: entity "
                        f"{blocker.name if blocker else '?'} blocks time passage "
                        f"but nothing is enabled"
                    )
                if incremental:
                    for idx in advancing_idx:
                        entity_by_idx[idx].advance(state_by_idx[idx], now, target)
                else:
                    for entity in entities:
                        entity.advance(states[entity.name], now, target)
                trace_advance(now, target, blocker.name if blocker else None)
                now = target
                c_advances.inc()
                if incremental:
                    # Time moved: re-derive every entity that has not
                    # promised its enabled set only changes at its deadline,
                    # plus the promised ones whose deadline just arrived.
                    dirty.update(nonwake_idx)
                    dl_dirty.update(nonwake_static_idx)
                    while dl_heap and dl_heap[0][0] <= now + _TOLERANCE:
                        value, idx, gen = heappop(dl_heap)
                        if gen == dl_gen[idx]:
                            dirty.add(idx)
                            dl_dirty.add(idx)
        finally:
            # Scalars live in locals for the loop's sake; the mutable
            # caches (states, active, dirty, heap) were mutated in
            # place, so writing these three back fully resynchronizes
            # the core for the next call.
            self.now = now
            self.steps = steps
            self.inject_idx = inject_idx

"""Small statistics helpers (no numpy dependency in the core library)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    stdev: float

    def __repr__(self) -> str:
        return (
            f"Summary(n={self.count}, mean={self.mean:.4f}, "
            f"min={self.minimum:.4f}, p50={self.p50:.4f}, "
            f"p95={self.p95:.4f}, max={self.maximum:.4f})"
        )


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of an already sorted sample."""
    if not sorted_values:
        raise ValueError("empty sample")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    lo = int(math.floor(position))
    hi = int(math.ceil(position))
    if lo == hi:
        return sorted_values[lo]
    frac = position - lo
    value = sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac
    # clamp away the 1-ulp overshoot float interpolation can produce
    return min(max(value, sorted_values[lo]), sorted_values[hi])


def summarize(values: Iterable[float]) -> Summary:
    """Summarize a sample; an empty sample yields all-zero fields."""
    data: List[float] = sorted(values)
    if not data:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    n = len(data)
    mean = sum(data) / n
    if n > 1:
        variance = sum((x - mean) ** 2 for x in data) / (n - 1)
    else:
        variance = 0.0
    return Summary(
        count=n,
        mean=mean,
        minimum=data[0],
        maximum=data[-1],
        p50=percentile(data, 0.50),
        p95=percentile(data, 0.95),
        stdev=math.sqrt(variance),
    )

"""EXT3: multi-hop flooding and leader election across topologies.

Flooding delivers within ``dist * d2'`` on the clock-stamped trace, and
timeout-based leader election agrees everywhere with announcements
spread at most ``2*eps`` — the real-time-specification design technique
on graphs with diameter greater than one.
"""

from bench_util import save_table
from harness import exp_ext3_multihop

from repro.automata.actions import Action
from repro.broadcast import build_flood_system, deliveries
from repro.network.topology import Topology
from repro.sim.clock_drivers import driver_factory
from repro.sim.delay import UniformDelay


def _ring_flood():
    eps = 0.1
    topology = Topology.ring(5)
    spec = build_flood_system(
        "clock", topology, 0.1, 1.0, eps=eps,
        drivers=driver_factory("mixed", eps, seed=4),
        delay_model=UniformDelay(seed=4),
    )
    result = spec.simulator().run(
        6.0, initial_inputs=[(Action("BCAST", (0, ("m", 1))), 1.0)]
    )
    assert len(deliveries(result.trace)) == 5
    return result


def test_ext3_multihop(benchmark):
    result = benchmark(_ring_flood)
    assert result.completed()

    table, shapes = exp_ext3_multihop()
    save_table("EXT3", table)
    assert shapes["all_in_bound"]
    assert shapes["all_agree"]
    assert shapes["spread_ok"]

"""Tests for Simulation 2's node (M(A^c, l), Definition 5.1)."""

import pytest

from helpers import PingerProcess, pinger_process_factory, pinger_topology
from repro.automata.actions import Action
from repro.clocks.sources import OffsetClockSource, PerfectClockSource
from repro.core.clock_transform import ClockMachine
from repro.core.mmt_transform import (
    EagerStepPolicy,
    LazyStepPolicy,
    MMTNodeEntity,
    UniformStepPolicy,
)
from repro.core.pipeline import build_mmt_system, simulation2_shift_bound
from repro.errors import TransitionError
from repro.sim.delay import ConstantFractionDelay

INFINITY = float("inf")


def make_node(step_bound=0.1, policy=None, count=2, interval=1.0):
    machine = ClockMachine(PingerProcess(0, 1, count, interval), [1], [1])
    return MMTNodeEntity(machine, step_bound, step_policy=policy)


class TestLazySimulation:
    def test_tick_only_updates_mmtclock(self):
        node = make_node()
        state = node.initial_state()
        node.apply_input(state, Action("TICK", (0, 0.7)), 0.7)
        assert state.mmtclock == 0.7
        assert state.machine_state.clock == 0.0  # lazy: not caught up yet

    def test_stale_tick_ignored(self):
        node = make_node()
        state = node.initial_state()
        node.apply_input(state, Action("TICK", (0, 0.7)), 0.7)
        node.apply_input(state, Action("TICK", (0, 0.5)), 0.8)
        assert state.mmtclock == 0.7

    def test_catch_up_queues_outputs(self):
        node = make_node()
        state = node.initial_state()
        node.apply_input(state, Action("TICK", (0, 1.0)), 1.0)
        # a step is due: tau catches up through PING + SENDMSG (internal)
        # and queues the visible outputs
        assert node.enabled(state, 1.0)
        while node.enabled(state, 1.0):
            node.fire(state, node.enabled(state, 1.0)[0], 1.0)
        assert state.machine_state.clock == pytest.approx(1.0)

    def test_outputs_fire_from_pending_in_order(self):
        node = make_node(step_bound=0.05)
        state = node.initial_state()
        node.apply_input(state, Action("TICK", (0, 1.0)), 1.0)
        fired = []
        now = 1.0
        for _ in range(20):
            enabled = node.enabled(state, now)
            if not enabled:
                now = node.deadline(state, now)
                if now == INFINITY:
                    break
                continue
            node.fire(state, enabled[0], now)
            fired.append(enabled[0].name)
        assert "PING" in fired and "ESENDMSG" in fired
        assert fired.index("PING") < fired.index("ESENDMSG")

    def test_firing_wrong_pending_output_raises(self):
        node = make_node()
        state = node.initial_state()
        with pytest.raises(TransitionError):
            node.fire(state, Action("PING", (0, 99)), 0.0)

    def test_idle_node_has_no_deadline(self):
        node = make_node(count=0)  # nothing to do, ever
        state = node.initial_state()
        assert node.enabled(state, 1.0) == []
        assert node.deadline(state, 1.0) == INFINITY

    def test_inputs_apply_at_caught_up_state(self):
        node = make_node()
        state = node.initial_state()
        node.apply_input(state, Action("TICK", (0, 2.5)), 2.5)
        # ERECVMSG applied after catch-up: machine clock reaches 2.5 first
        node.apply_input(
            state, Action("ERECVMSG", (0, 1, (("pong", 1), 2.0))), 2.5
        )
        assert state.machine_state.clock == pytest.approx(2.5)

    def test_clock_value_is_simulated_clock(self):
        node = make_node()
        state = node.initial_state()
        node.apply_input(state, Action("TICK", (0, 1.5)), 1.5)
        node.fire(state, node.enabled(state, 1.5)[0], 1.5)  # tau: catch up
        assert node.clock_value(state, 1.5) == pytest.approx(1.5)

    def test_invalid_step_bound(self):
        with pytest.raises(ValueError):
            make_node(step_bound=0.0)


class TestShiftBound:
    def test_formula(self):
        assert simulation2_shift_bound(2, 0.1, 0.05) == pytest.approx(
            2 * 0.1 + 2 * 0.05 + 3 * 0.1
        )

    @pytest.mark.parametrize("policy_cls", [EagerStepPolicy, LazyStepPolicy])
    def test_end_to_end_outputs_within_shift_bound(self, policy_cls):
        """Theorem 5.1: each D_M output is at most the shift bound later
        than its clock-model schedule (clock stamps approximate this)."""
        eps, ell = 0.05, 0.05
        spec = build_mmt_system(
            pinger_topology(),
            pinger_process_factory(4, 2.0),
            eps=eps,
            d1=0.2,
            d2=1.0,
            step_bound=ell,
            sources=lambda i: OffsetClockSource(eps, eps if i == 0 else -eps),
            step_policy_factory=lambda i: policy_cls(),
            delay_model=ConstantFractionDelay(0.5),
        )
        result = spec.run(20.0)
        # The pinger schedules PING k at clock time 2k; the MMT node must
        # emit it within the shift bound of (clock time ~ real time +- eps).
        k_rate = 3  # sends come in bursts of <= 3 per k*l window here
        bound = simulation2_shift_bound(k_rate, ell, eps)
        pings = [e for e in result.recorder.events if e.action.name == "PING"]
        assert len(pings) == 4
        for record in pings:
            k = record.action.params[1]
            scheduled_clock = 2.0 * k
            # real emission time vs the scheduled clock instant
            assert record.now >= scheduled_clock - eps - 1e-9
            assert record.now <= scheduled_clock + eps + bound + 1e-9

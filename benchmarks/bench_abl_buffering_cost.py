"""ABL2: buffering cost in practice (Section 7.2).

Sweeps ``d1`` across the ``d1 = 2*eps`` crossover. Shape: no message is
ever held once ``d1 >= 2*eps``; below the crossover the mean hold time
is ``2*eps - d1`` (a few "milliseconds" in the paper's terms).
"""

from bench_util import save_table
from harness import exp_abl2, pinger_process_factory, pinger_topology

from repro.core.pipeline import build_clock_system
from repro.sim.clock_drivers import driver_factory
from repro.sim.delay import MinimalDelay


def _cross_run():
    eps = 0.15
    spec = build_clock_system(
        pinger_topology(), pinger_process_factory(count=15, interval=1.0),
        eps, d1=0.0, d2=0.8,
        drivers=driver_factory("mixed", eps, seed=8),
        delay_model=MinimalDelay(),
    )
    return spec.run(20.0)


def test_abl2_buffering_cost(benchmark):
    result = benchmark(_cross_run)
    assert result.completed()

    table, shapes = exp_abl2()
    save_table("ABL2", table)
    assert shapes["no_holds_above_one"]
    assert shapes["holds_below_one"] > 0

"""LEM6.1: algorithm L latencies in the timed model.

Regenerates the lemma as a measurement over the ``c`` sweep: read time
is at most ``c + delta``, write time at most ``d2' - c``, every run
linearizable, and the read/write tradeoff is monotone in ``c``.
"""

from bench_util import save_table
from harness import exp_lem61

from repro.registers.system import run_register_experiment, timed_register_system
from repro.registers.workload import RegisterWorkload
from repro.sim.delay import UniformDelay


def _run_l():
    workload = RegisterWorkload(operations=8, read_fraction=0.5, seed=2)
    spec = timed_register_system(
        n=3, d1_prime=0.2, d2_prime=1.0, c=0.4, workload=workload,
        algorithm="L", delay_model=UniformDelay(seed=2),
    )
    run = run_register_experiment(spec, 70.0)
    assert run.linearizable()
    return run


def test_lem61_algorithm_l(benchmark):
    run = benchmark(_run_l)
    assert len(run.operations) >= 15

    table, shapes = exp_lem61()
    save_table("LEM6.1", table)
    assert shapes["all_within"]
    assert shapes["all_linearizable"]
    # tradeoff shape: reads get slower, writes faster, as c grows
    assert shapes["read_latencies"] == sorted(shapes["read_latencies"])
    assert shapes["write_latencies"] == sorted(
        shapes["write_latencies"], reverse=True
    )

"""Tests for theory-layer timed automata (Definition 2.1, axioms S1-S5)."""

import pytest

from repro.automata.actions import Action, action_set
from repro.automata.signature import Signature
from repro.automata.state import State
from repro.automata.theory_timed import (
    ComposedTimedAutomaton,
    SimpleTimedAutomaton,
    check_timed_axioms,
    hide,
    reachable_states,
)
from repro.errors import AxiomViolation, TransitionError

TICK = Action("TICKED")


def ticker(period=1.0):
    """Emits TICKED at period, 2*period, ... (a one-action timed automaton)."""

    def discrete(state):
        if abs(state.now - state.next) < 1e-9:
            yield TICK, state.replace(next=state.next + period)

    return SimpleTimedAutomaton(
        signature=Signature(outputs=action_set("TICKED")),
        starts=[State(now=0.0, next=period)],
        discrete=discrete,
        deadline=lambda s: s.next,
        name="ticker",
    )


class TestSimpleTimedAutomaton:
    def test_start_state_now_zero(self):
        (s0,) = ticker().start_states()
        assert s0.now == 0.0

    def test_time_passage_capped_by_deadline(self):
        auto = ticker(1.0)
        (s0,) = auto.start_states()
        assert auto.time_passage(s0, 0.5) is not None
        assert auto.time_passage(s0, 1.0) is not None
        assert auto.time_passage(s0, 1.5) is None

    def test_zero_or_negative_dt_rejected(self):
        auto = ticker()
        (s0,) = auto.start_states()
        assert auto.time_passage(s0, 0.0) is None
        assert auto.time_passage(s0, -1.0) is None

    def test_discrete_enabled_at_deadline(self):
        auto = ticker(1.0)
        (s0,) = auto.start_states()
        s1 = auto.time_passage(s0, 1.0)
        transitions = list(auto.discrete_transitions(s1))
        assert [a for a, _ in transitions] == [TICK]

    def test_apply_unique_transition(self):
        auto = ticker(1.0)
        (s0,) = auto.start_states()
        s1 = auto.time_passage(s0, 1.0)
        s2 = auto.apply(s1, TICK)
        assert s2.next == 2.0
        assert s2.now == 1.0  # S2

    def test_apply_not_enabled_raises(self):
        auto = ticker(1.0)
        (s0,) = auto.start_states()
        with pytest.raises(TransitionError):
            auto.apply(s0, TICK)

    def test_inputs_default_to_stutter(self):
        auto = ticker()
        (s0,) = auto.start_states()
        assert list(auto.input_transitions(s0, Action("ANY"))) == [s0]


class TestAxioms:
    def test_ticker_satisfies_axioms(self):
        auto = ticker()
        states = reachable_states(auto, durations=(0.5, 1.0), max_states=50)
        check_timed_axioms(auto, states)

    def test_s1_violation_detected(self):
        bad = SimpleTimedAutomaton(
            signature=Signature(),
            starts=[State(now=3.0)],
            discrete=lambda s: [],
        )
        with pytest.raises(AxiomViolation) as err:
            check_timed_axioms(bad, [])
        assert err.value.axiom == "S1"

    def test_s2_violation_detected(self):
        def discrete(state):
            yield TICK, state.replace(now=state.now + 1.0)

        bad = SimpleTimedAutomaton(
            signature=Signature(outputs=action_set("TICKED")),
            starts=[State(now=0.0)],
            discrete=discrete,
        )
        with pytest.raises(AxiomViolation) as err:
            check_timed_axioms(bad, bad.start_states())
        assert err.value.axiom == "S2"

    def test_s5_violation_detected(self):
        class NoMidpoint(SimpleTimedAutomaton):
            def time_passage(self, state, dt):
                # Only whole-unit advances: violates trajectory axiom S5.
                if dt in (1.0, 2.0):
                    return state.replace(now=state.now + dt)
                return None

        bad = NoMidpoint(
            signature=Signature(),
            starts=[State(now=0.0)],
            discrete=lambda s: [],
        )
        with pytest.raises(AxiomViolation) as err:
            check_timed_axioms(bad, bad.start_states(), durations=(1.0,))
        assert err.value.axiom == "S5"

    def test_evolve_must_track_now(self):
        auto = SimpleTimedAutomaton(
            signature=Signature(),
            starts=[State(now=0.0)],
            discrete=lambda s: [],
            evolve=lambda s, t: s,  # forgets to update now
        )
        (s0,) = auto.start_states()
        with pytest.raises(TransitionError):
            auto.time_passage(s0, 1.0)


class TestReachability:
    def test_reachable_states_explores_time_and_actions(self):
        states = reachable_states(ticker(1.0), durations=(1.0,), max_states=10)
        nows = {s.now for s in states}
        assert 0.0 in nows and 1.0 in nows

    def test_max_states_respected(self):
        states = reachable_states(ticker(0.5), durations=(0.5,), max_states=7)
        assert len(states) <= 7


class TestComposition:
    def make_pair(self):
        return ComposedTimedAutomaton([ticker(1.0), ticker(1.5)])

    def test_start_states(self):
        (s0,) = self.make_pair().start_states()
        assert s0.now == 0.0
        assert len(s0.parts) == 2

    def test_time_passage_lockstep_min_deadline(self):
        comp = self.make_pair()
        (s0,) = comp.start_states()
        assert comp.time_passage(s0, 1.0) is not None
        assert comp.time_passage(s0, 1.2) is None  # first ticker blocks

    def test_discrete_transition_advances_one_component(self):
        comp = self.make_pair()
        (s0,) = comp.start_states()
        s1 = comp.time_passage(s0, 1.0)
        transitions = list(comp.discrete_transitions(s1))
        assert len(transitions) == 1  # only the period-1 ticker fires
        _, s2 = transitions[0]
        assert s2.parts[0].next == 2.0
        assert s2.parts[1].next == 1.5

    def test_projection(self):
        comp = self.make_pair()
        (s0,) = comp.start_states()
        part = comp.project(s0, 1)
        assert part.next == 1.5
        assert part.now == 0.0

    def test_axioms_preserved_by_composition(self):
        comp = self.make_pair()
        states = reachable_states(comp, durations=(0.5, 1.0), max_states=40)
        check_timed_axioms(comp, states)

    def test_output_action_shared_with_input(self):
        # A listener whose input is the ticker's output: composition
        # must apply the input transition simultaneously.
        def no_discrete(state):
            return []

        def count_input(state, action):
            return [state.replace(count=state.count + 1)]

        listener = SimpleTimedAutomaton(
            signature=Signature(inputs=action_set("TICKED")),
            starts=[State(now=0.0, count=0)],
            discrete=no_discrete,
            inputs=count_input,
            name="listener",
        )
        comp = ComposedTimedAutomaton([ticker(1.0), listener])
        (s0,) = comp.start_states()
        s1 = comp.time_passage(s0, 1.0)
        ((action, s2),) = list(comp.discrete_transitions(s1))
        assert action == TICK
        assert s2.parts[1].count == 1


class TestHiding:
    def test_hidden_output_is_internal(self):
        hidden = hide(ticker(), action_set("TICKED"))
        assert hidden.signature.is_internal(TICK)
        assert not hidden.signature.is_output(TICK)

    def test_hidden_behaviour_unchanged(self):
        plain, hidden = ticker(), hide(ticker(), action_set("TICKED"))
        (s0,) = hidden.start_states()
        s1 = hidden.time_passage(s0, 1.0)
        assert [a for a, _ in hidden.discrete_transitions(s1)] == [TICK]

"""Chaos run orchestration: apply a plan, monitor, attribute, shrink.

The entry point is :func:`run_chaos`: build a fresh system, lower a
:class:`~repro.chaos.plan.FaultPlan` onto it, attach the online monitors
as the engine tracer, run, and return a :class:`ChaosResult` with every
attributed :class:`~repro.chaos.monitors.Violation`.

``builder`` is a zero-argument callable returning a *fresh*
:class:`~repro.core.pipeline.SystemSpec` — fresh because clock drivers
and fault models may be stateful, and because the same builder is run
repeatedly: once per shrink candidate
(:func:`violation_oracle` + :func:`~repro.chaos.shrink.shrink_plan`) and
twice for the engine-conformance check (:func:`conformance_check`, which
asserts a chaos run is trace-identical between the incremental and
full-scan engine cores).

:func:`demo_builder`/:func:`demo_plan` ship the canonical demonstration:
a two-node heartbeat detector with the Theorem 4.7 timeout
``d2 + 2*eps``, correct under every eps-accurate clock — until a
scripted ``clock_fault`` drives the monitor's clock beyond the envelope,
the detector falsely suspects a live sender, the clock-predicate monitor
flags the broken assumption and attributes it to the plan event, and the
shrinker reduces the plan to that single-event witness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.chaos.apply import apply_plan
from repro.chaos.monitors import (
    ChannelBoundMonitor,
    ChaosMonitor,
    ClockPredicateMonitor,
    HeartbeatMonitor,
    MonitorTracer,
    TeeTracer,
    Violation,
)
from repro.chaos.plan import (
    FaultPlan,
    clock_fault,
    crash,
    drop_burst,
    heal,
    partition,
    recover,
)
from repro.chaos.shrink import ShrinkResult, shrink_plan
from repro.core.pipeline import SystemSpec
from repro.detector.heartbeat import build_detector_system, detector_timeout
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.sim.clock_drivers import driver_factory
from repro.sim.engine import SimulationResult, Simulator
from repro.sim.recorder import Recorder

Builder = Callable[[], SystemSpec]
MonitorsFactory = Callable[[FaultPlan], List[ChaosMonitor]]


@dataclass
class ChaosResult:
    """Everything observable about one chaos run."""

    plan: FaultPlan
    sim: SimulationResult
    violations: List[Violation] = field(default_factory=list)

    @property
    def violated(self) -> bool:
        return bool(self.violations)

    @property
    def first_violation(self) -> Optional[Violation]:
        if not self.violations:
            return None
        return min(
            enumerate(self.violations),
            key=lambda pair: (pair[1].time, pair[0]),
        )[1]


def run_chaos(
    builder: Builder,
    plan: FaultPlan,
    horizon: float,
    monitors: Optional[List[ChaosMonitor]] = None,
    monitors_factory: Optional[MonitorsFactory] = None,
    incremental: bool = True,
    scheduler=None,
    max_steps: int = 1_000_000,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    restore: str = "snapshot",
) -> ChaosResult:
    """Apply the plan to a fresh system, run it monitored, attribute."""
    spec = apply_plan(builder(), plan, restore=restore)
    if monitors_factory is not None:
        monitors = list(monitors_factory(plan))
    monitor_tracer = MonitorTracer(monitors or [], plan)
    registry = metrics if metrics is not None else MetricsRegistry()
    monitor_tracer.bind_metrics(registry)
    effective: Tracer = monitor_tracer
    if tracer is not None:
        effective = TeeTracer(monitor_tracer, tracer)
    simulator = Simulator(
        spec.entities,
        scheduler=scheduler,
        hidden=spec.hidden,
        max_steps=max_steps,
        incremental=incremental,
    )
    result = simulator.run(
        horizon, recorder=Recorder(), metrics=registry, tracer=effective
    )
    return ChaosResult(
        plan=plan, sim=result, violations=monitor_tracer.violations
    )


def violation_oracle(
    builder: Builder,
    horizon: float,
    monitors_factory: MonitorsFactory,
    match_kind: Optional[str] = None,
    **run_kwargs,
) -> Callable[[FaultPlan], bool]:
    """An oracle for :func:`~repro.chaos.shrink.shrink_plan`.

    ``match_kind`` pins the oracle to one violation kind, so shrinking a
    plan with several latent failures converges on a witness for the
    *original* violation instead of drifting to a different one.
    """

    def oracle(plan: FaultPlan) -> bool:
        outcome = run_chaos(
            builder, plan, horizon, monitors_factory=monitors_factory,
            **run_kwargs,
        )
        if match_kind is None:
            return outcome.violated
        return any(v.kind == match_kind for v in outcome.violations)

    return oracle


def shrink_chaos(
    builder: Builder,
    plan: FaultPlan,
    horizon: float,
    monitors_factory: MonitorsFactory,
    match_kind: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
    **run_kwargs,
) -> ShrinkResult:
    """Minimize a violating plan to a smallest witness (ddmin)."""
    oracle = violation_oracle(
        builder, horizon, monitors_factory, match_kind=match_kind,
        **run_kwargs,
    )
    return shrink_plan(plan, oracle, log=log)


def conformance_check(
    builder: Builder,
    plan: FaultPlan,
    horizon: float,
    monitors_factory: Optional[MonitorsFactory] = None,
    **run_kwargs,
) -> bool:
    """Chaos runs must be trace-identical across both engine cores.

    Runs the plan under the incremental and the full-scan core (fresh
    system each) and compares the recorded event sequences exactly.
    Raises :class:`AssertionError` on the first divergence, so failures
    are debuggable; returns True on success.
    """
    runs = {}
    for incremental in (True, False):
        runs[incremental] = run_chaos(
            builder, plan, horizon, monitors_factory=monitors_factory,
            incremental=incremental, **run_kwargs,
        )
    fast = runs[True].sim.recorder.events
    slow = runs[False].sim.recorder.events
    for index, (a, b) in enumerate(zip(fast, slow)):
        if a != b:
            raise AssertionError(
                f"engine cores diverge at event {index}: "
                f"incremental={a!r} full-scan={b!r}"
            )
    if len(fast) != len(slow):
        raise AssertionError(
            f"engine cores diverge in length: incremental={len(fast)} "
            f"full-scan={len(slow)}"
        )
    return True


# -- the canonical demonstration -------------------------------------------

DEMO_PERIOD = 2.0
DEMO_COUNT = 8
DEMO_D1 = 0.1
DEMO_D2 = 1.0
DEMO_EPS = 0.1
DEMO_TIMEOUT = detector_timeout(DEMO_D2, DEMO_EPS)  # the 4.7 rule: 1.2
DEMO_HORIZON = 20.0


def demo_builder() -> SystemSpec:
    """A fresh two-node heartbeat detector in the clock model.

    Perfect clocks and the Theorem 4.7 timeout: fault-free, this system
    never falsely suspects — any violation a chaos run surfaces is the
    plan's doing.
    """
    return build_detector_system(
        "clock",
        period=DEMO_PERIOD,
        timeout=DEMO_TIMEOUT,
        count=DEMO_COUNT,
        d1=DEMO_D1,
        d2=DEMO_D2,
        eps=DEMO_EPS,
        drivers=driver_factory("perfect", DEMO_EPS),
    )


def demo_plan() -> FaultPlan:
    """The demo timeline: one real fault among harmless red herrings.

    The ``clock_fault`` drives the monitor's clock up to ``1.5`` beyond
    the envelope during ``[2.5, 6.0)`` — its next-beat deadline fires
    early in *real* time, so it suspects a sender whose beats are still
    in flight. The burst and the crash land after the last beat
    (``count * period = 16``) and change nothing; the shrinker strips
    them, leaving the single-event witness.
    """
    return FaultPlan.of(
        [
            clock_fault(1, 2.5, 6.0, excess=1.5),
            drop_burst((0, 1), 15.0, 15.5),
            crash(0, 17.0),
            recover(0, 18.0),
        ],
        name="demo",
    )


def conformance_corpus() -> List[FaultPlan]:
    """One plan per :func:`~repro.chaos.apply.apply_plan` lowering path.

    Each plan opens *and closes* its fault window while the demo's beat
    stream is still active (beats run to ``count * period = 16``), so
    the incremental core's dirty-set bookkeeping is exercised at every
    boundary the lowering can produce:

    - ``crash``/``recover`` — :class:`~repro.faults.recovery.RecoverableEntity`
      wrapping (state snapshot/restore, lost inputs while down);
    - ``partition`` + ``heal`` — channels rebuilt as
      :class:`~repro.faults.lossy_channel.LossyChannelEntity` with a
      :class:`~repro.faults.partition.PartitionWindow` that severs and
      then stops severing mid-run;
    - ``clock_fault`` with a window that *exits* well before the
      horizon — :class:`~repro.sim.clock_drivers.FaultyClockDriver`
      wrapping, where the post-window decay back inside the envelope
      must re-probe the node on both cores identically;
    - ``drop_burst`` — an :class:`~repro.faults.partition.EdgeDropWindow`
      cutting one directed edge mid-stream;
    - the demo plan itself (clock fault plus post-traffic red herrings).

    :func:`conformance_check` over this corpus is the regression gate
    that every lowering path marks affected entities dirty: any missed
    invalidation shows up as an incremental/full-scan trace divergence.
    """
    return [
        demo_plan(),
        FaultPlan.of([crash(0, 3.0), recover(0, 9.0)], name="crash-recover"),
        FaultPlan.of(
            [partition([[0], [1]], 3.0), heal(9.0)], name="partition-heal"
        ),
        FaultPlan.of(
            [clock_fault(1, 2.5, 6.0, excess=1.5)], name="clock-fault-exit"
        ),
        FaultPlan.of(
            [clock_fault(0, 2.5, 6.0, excess=-1.5)], name="clock-fault-slow"
        ),
        FaultPlan.of([drop_burst((0, 1), 3.0, 9.0)], name="drop-burst"),
        FaultPlan.of(
            [
                partition([[0], [1]], 3.0),
                heal(9.0),
                drop_burst((1, 0), 11.0, 12.5),
            ],
            name="mixed-network",
        ),
    ]


def demo_monitors(plan: FaultPlan) -> List[ChaosMonitor]:
    """The monitor suite for the demo detector, plan as ground truth."""
    compiled = plan.compile()
    return [
        ClockPredicateMonitor(DEMO_EPS),
        ChannelBoundMonitor(DEMO_D1, DEMO_D2),
        HeartbeatMonitor(
            sender=0,
            monitor_node=1,
            period=DEMO_PERIOD,
            timeout=DEMO_TIMEOUT,
            count=DEMO_COUNT,
            eps=DEMO_EPS,
            sender_schedule=compiled.recovery.get(0),
            monitor_schedule=compiled.recovery.get(1),
        ),
    ]


def causal_attribution(trace_path: str) -> str:
    """Render a causal attribution summary of a chaos run's trace.

    Reconstructs the happens-before DAG from the trace file a chaos run
    wrote (``--trace-out`` / ``--causal``) and summarizes where message
    latency went, phase by phase — including the spans that never
    completed because a fault dropped or stranded them.
    """
    from repro.obs.causal import CausalTrace

    trace = CausalTrace.from_file(trace_path)
    lines = [
        f"causal attribution: {len(trace.events)} events, "
        f"{len(trace.spans)} message spans, {len(trace.ops)} operation spans"
    ]
    problems = trace.check()
    lines.append(
        "  happens-before DAG: "
        + ("acyclic, sound" if not problems else "; ".join(problems))
    )
    delivered = sum(1 for span in trace.spans if span.delivered)
    lines.append(
        f"  delivered {delivered}/{len(trace.spans)} message spans; "
        f"{len(trace.open_spans)} open (dropped or in flight at the horizon)"
    )
    for label, stats in sorted(trace.phase_summary().items()):
        lines.append(
            f"  phase {label:<12} n={stats['count']:<5} "
            f"mean={stats['mean']:.4f} max={stats['max']:.4f}"
        )
    return "\n".join(lines)


def run_demo(
    shrink: bool = False, incremental: bool = True
) -> "tuple[ChaosResult, Optional[ShrinkResult]]":
    """Run the canonical demo; optionally shrink the plan afterwards."""
    outcome = run_chaos(
        demo_builder,
        demo_plan(),
        DEMO_HORIZON,
        monitors_factory=demo_monitors,
        incremental=incremental,
    )
    shrunk: Optional[ShrinkResult] = None
    if shrink and outcome.violated:
        shrunk = shrink_chaos(
            demo_builder,
            demo_plan(),
            DEMO_HORIZON,
            monitors_factory=demo_monitors,
            match_kind=outcome.first_violation.kind,
        )
    return outcome, shrunk

"""Fixture: wrapper forwards only some contract flags (one CON004)."""


class PartialWrapper(Entity):  # noqa: F821 -- parsed, never imported
    """Forwards the deadline flags but silently drops pure_enabled."""

    def __init__(self, inner):
        self.inner = inner
        self.static_deadline = getattr(inner, "static_deadline", False)
        self.wakes_at_deadline = getattr(inner, "wakes_at_deadline", False)

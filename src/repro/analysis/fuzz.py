"""Adversary search: sweep seeded adversaries hunting worst cases.

The theorems quantify over all clock trajectories, delay resolutions,
and interleavings; a single run checks one. :func:`fuzz` runs a
configuration across a grid of seeded adversaries, collects a metric
and a correctness verdict per run, and reports the worst case — the
empirical analogue of "for all adversaries".

Used three ways:

- *assurance*: ``fuzz(...).all_passed`` over hundreds of adversaries;
- *bound tightness*: ``worst_metric`` vs the analytic bound;
- *counterexample hunting*: when a property is expected to fail
  (naive deployments, insufficient guards), ``failures`` holds seeded,
  replayable witnesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.sim.clock_drivers import driver_factory
from repro.sim.delay import UniformDelay
from repro.sim.scheduler import RandomScheduler

DRIVER_KINDS = ("perfect", "fast", "slow", "mixed", "random", "drift")


@dataclass(frozen=True)
class AdversaryChoice:
    """One point in the adversary grid (fully determines a run).

    ``plan_seed`` is the scripted-fault axis: when set, the adversary
    also carries a seeded random :class:`~repro.chaos.plan.FaultPlan`
    (crashes, partitions, eps-violating clock windows) to lower onto
    the system under test via :meth:`plan`; ``None`` means fault-free.
    """

    seed: int
    driver_kind: str
    plan_seed: Optional[int] = None

    def drivers(self, eps: float):
        """A per-node driver factory for this adversary."""
        return driver_factory(self.driver_kind, eps, seed=self.seed)

    def delay_model(self):
        """The seeded delay model for this adversary."""
        return UniformDelay(seed=self.seed)

    def scheduler(self):
        """The seeded scheduler for this adversary."""
        return RandomScheduler(seed=self.seed)

    def plan(self, n_nodes: int, edges, horizon: float, eps: float = 0.1):
        """The adversary's fault plan, or ``None`` when fault-free.

        A pure function of ``plan_seed`` and the topology, so a fuzz
        run with faults is exactly as replayable as one without.
        """
        if self.plan_seed is None:
            return None
        from repro.chaos.plan import FaultPlan

        return FaultPlan.random(
            self.plan_seed, n_nodes=n_nodes, edges=edges, horizon=horizon,
            eps=eps,
        )

    def __repr__(self) -> str:
        plan = f", plan_seed={self.plan_seed}" if self.plan_seed is not None else ""
        return f"Adversary(seed={self.seed}, driver={self.driver_kind}{plan})"


@dataclass(frozen=True)
class FuzzOutcome:
    adversary: AdversaryChoice
    passed: bool
    metric: float


@dataclass
class FuzzReport:
    outcomes: List[FuzzOutcome] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.outcomes)

    @property
    def failures(self) -> List[FuzzOutcome]:
        return [o for o in self.outcomes if not o.passed]

    @property
    def all_passed(self) -> bool:
        return not self.failures

    @property
    def worst(self) -> Optional[FuzzOutcome]:
        if not self.outcomes:
            return None
        return max(self.outcomes, key=lambda o: o.metric)

    @property
    def worst_metric(self) -> float:
        worst = self.worst
        return worst.metric if worst is not None else 0.0

    def __repr__(self) -> str:
        return (
            f"<FuzzReport: {self.runs} runs, {len(self.failures)} failures, "
            f"worst metric {self.worst_metric:.4g}>"
        )


def adversary_grid(
    seeds: Iterable[int],
    driver_kinds: Sequence[str] = DRIVER_KINDS,
    plan_seeds: Sequence[Optional[int]] = (None,),
) -> List[AdversaryChoice]:
    """The cross product of seeds, driver kinds, and fault-plan seeds.

    The default ``plan_seeds=(None,)`` keeps the grid fault-free and
    identical to the historical two-axis grid; pass integers to add
    scripted-fault adversaries (``None`` may be kept in the list to
    retain the fault-free baseline).
    """
    return [
        AdversaryChoice(seed, kind, plan_seed)
        for seed in seeds
        for kind in driver_kinds
        for plan_seed in plan_seeds
    ]


def fuzz(
    run_one: Callable[[AdversaryChoice], Tuple[bool, float]],
    adversaries: Iterable[AdversaryChoice],
) -> FuzzReport:
    """Run ``run_one`` for every adversary; collect verdicts and metrics.

    ``run_one`` returns ``(passed, metric)``; exceptions are *not*
    swallowed — a crash is a finding, not noise.
    """
    report = FuzzReport()
    for adversary in adversaries:
        passed, metric = run_one(adversary)
        report.outcomes.append(FuzzOutcome(adversary, bool(passed), float(metric)))
    return report

"""Bounded exhaustive exploration of theory-layer automata.

The paper's methodology says "design and *verify* in the simple model".
For small instances, verification can be exhaustive: this module
explores every reachable state of a theory-layer automaton under a
discretized time quantum and checks an invariant on each, returning a
counterexample *path* on violation.

Discretization is sound but not complete in general: only time-passage
steps that are multiples of ``quantum`` (and, for clock automata,
``(dt, dc)`` pairs on the quantum grid within the envelope) are
explored. For automata whose guards and deadlines are themselves
multiples of the quantum — which the paper's algorithms arrange by
construction — the discretized system hits every discrete transition
the dense one can, so an exhaustive pass over it is meaningful
assurance (and a found violation is always a real one).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.automata.actions import NU, Action
from repro.automata.state import State
from repro.automata.theory_clock import ClockAutomaton
from repro.automata.theory_timed import TimedAutomaton
from repro.errors import SimulationLimitError

Step = Tuple[object, State]  # (action or NU, resulting state)


@dataclass
class Violation:
    """An invariant violation plus the path that reaches it."""

    state: State
    path: List[Step]

    def __repr__(self) -> str:
        return f"<Violation at now={self.state.now:g} after {len(self.path)} steps>"


@dataclass
class ExplorationResult:
    states_visited: int
    transitions_taken: int
    violation: Optional[Violation] = None
    deadlocks: List[State] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.violation is None

    def __repr__(self) -> str:
        status = "ok" if self.ok else "VIOLATION"
        return (
            f"<ExplorationResult {status}: {self.states_visited} states, "
            f"{self.transitions_taken} transitions, "
            f"{len(self.deadlocks)} deadlocks>"
        )


def _clock_steps(quantum: float, max_multiple: int) -> List[Tuple[float, float]]:
    """The ``(dt, dc)`` grid for clock automata."""
    grid = []
    for i in range(1, max_multiple + 1):
        for j in range(1, max_multiple + 1):
            grid.append((i * quantum, j * quantum))
    return grid


def explore(
    automaton: TimedAutomaton,
    quantum: float,
    horizon: float,
    invariant: Callable[[State], bool],
    inputs: Sequence[Action] = (),
    max_states: int = 200_000,
    max_time_multiple: int = 2,
    detect_deadlocks: bool = False,
) -> ExplorationResult:
    """Breadth-first exhaustive exploration up to ``horizon``.

    Successors of each state: every discrete locally controlled
    transition, every probe input in ``inputs``, and time passage by
    ``quantum .. max_time_multiple*quantum`` (for clock automata, the
    ``(dt, dc)`` grid). Returns the first invariant violation with its
    path, breadth-first — i.e. a *shortest* (in steps) counterexample.

    A state is a *deadlock* when it has no successor at all before the
    horizon (time blocked, nothing enabled): usually a modeling bug,
    reported when ``detect_deadlocks`` is set.
    """
    if quantum <= 0:
        raise ValueError("quantum must be positive")
    is_clock = isinstance(automaton, ClockAutomaton)
    time_steps = (
        _clock_steps(quantum, max_time_multiple)
        if is_clock
        else [(i * quantum,) for i in range(1, max_time_multiple + 1)]
    )

    parents: Dict[State, Optional[Tuple[State, object]]] = {}
    frontier = deque()
    result = ExplorationResult(states_visited=0, transitions_taken=0)

    def path_to(state: State) -> List[Step]:
        path: List[Step] = []
        cursor = state
        while parents[cursor] is not None:
            previous, label = parents[cursor]
            path.append((label, cursor))
            cursor = previous
        path.reverse()
        return path

    for start in automaton.start_states():
        if start not in parents:
            parents[start] = None
            frontier.append(start)

    while frontier:
        state = frontier.popleft()
        result.states_visited += 1
        if result.states_visited > max_states:
            raise SimulationLimitError(
                f"exploration exceeded {max_states} states"
            )
        if not invariant(state):
            result.violation = Violation(state, path_to(state))
            return result

        successors: List[Tuple[object, State]] = []
        for action, target in automaton.discrete_transitions(state):
            successors.append((action, target))
        for probe in inputs:
            for target in automaton.input_transitions(state, probe):
                successors.append((probe, target))
        if state.now < horizon - 1e-12:
            for step in time_steps:
                if is_clock:
                    target = automaton.time_passage_clock(state, *step)
                else:
                    target = automaton.time_passage(state, *step)
                if target is not None and target.now <= horizon + 1e-12:
                    successors.append((NU, target))

        if not successors and detect_deadlocks and state.now < horizon - 1e-12:
            result.deadlocks.append(state)

        for label, target in successors:
            result.transitions_taken += 1
            if target not in parents:
                parents[target] = (state, label)
                frontier.append(target)

    return result

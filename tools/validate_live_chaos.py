#!/usr/bin/env python
"""Validate a live-chaos report (the CI gate for ``chaos --live``).

Checks, in order:

1. the file is a well-formed ``repro-live-chaos-report`` version 1
   payload with every required field of the right shape;
2. the run is healthy: linearizable, **zero unattributed violations**
   (every monitor violation names the plan event responsible), and every
   client operation ended in ok / retried / timeout;
3. the fault machinery was actually exercised: at least one crash and
   recovery applied, frames dropped and retransmitted, and the client
   retry path taken (nonzero retries) — a chaos smoke that injected
   nothing proves nothing;
4. the degraded gate recorded the Simulation 1 widening
   (``d1' = max(d1 - 2*eps_adj, 0)``, ``d2' = d2 + 2*eps_adj``).

Usage: ``python tools/validate_live_chaos.py REPORT.json``
"""

import json
import sys

REQUIRED = {
    "format": str,
    "version": int,
    "params": dict,
    "plan": dict,
    "operations": int,
    "outcomes": dict,
    "retries": int,
    "linearizable": bool,
    "visited": int,
    "eps_measured": (int, float),
    "eps_adjusted": (int, float),
    "widened_bounds": dict,
    "retry_allowance": (int, float),
    "bound_checks": list,
    "bounds_ok": bool,
    "faults": dict,
    "violations": list,
    "unattributed": int,
    "ok": bool,
}

FAULT_KEYS = (
    "crashes", "recoveries", "dropped", "retransmits",
    "wire_errors", "inputs_lost",
)


def fail(message: str) -> "None":
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: validate_live_chaos.py REPORT.json")
    try:
        with open(sys.argv[1]) as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"cannot read report: {exc}")

    # 1. schema
    for key, kind in REQUIRED.items():
        if key not in report:
            fail(f"missing field {key!r}")
        if not isinstance(report[key], kind):
            fail(f"field {key!r} has type {type(report[key]).__name__}")
    if report["format"] != "repro-live-chaos-report":
        fail(f"unexpected format {report['format']!r}")
    if report["version"] != 1:
        fail(f"unexpected version {report['version']!r}")
    for key in ("d1_prime", "d2_prime"):
        if key not in report["widened_bounds"]:
            fail(f"widened_bounds missing {key!r}")
    for key in FAULT_KEYS:
        if key not in report["faults"]:
            fail(f"faults missing {key!r}")
    for violation in report["violations"]:
        for key in ("monitor", "kind", "time", "detail", "event_index",
                    "event"):
            if key not in violation:
                fail(f"violation missing {key!r}")

    # 2. health
    if not report["linearizable"]:
        fail("history is not linearizable")
    if report["unattributed"] != 0:
        fail(f"{report['unattributed']} violation(s) unattributed")
    for violation in report["violations"]:
        if violation["event_index"] is None:
            fail(f"violation {violation['kind']!r} has no event_index")
    unknown = set(report["outcomes"]) - {"ok", "retried", "timeout"}
    if unknown:
        fail(f"unknown outcomes {sorted(unknown)}")
    if sum(report["outcomes"].values()) <= 0:
        fail("no client operations recorded")

    # 3. the faults actually happened and the retry path ran
    faults = report["faults"]
    if faults["crashes"] < 1 or faults["recoveries"] < 1:
        fail("plan applied no crash/recovery")
    if faults["dropped"] < 1:
        fail("wire shim dropped nothing")
    if faults["retransmits"] < 1:
        fail("ARQ layer never retransmitted")
    if report["retries"] < 1:
        fail("client retry path was never exercised")

    # 4. the Simulation 1 widening is recorded and arithmetically right
    params = report["params"]
    eps_adj = report["eps_adjusted"]
    widened = report["widened_bounds"]
    want_d2 = params["d2"] + 2.0 * eps_adj
    want_d1 = max(params["d1"] - 2.0 * eps_adj, 0.0)
    if abs(widened["d2_prime"] - want_d2) > 1e-9:
        fail(f"d2' = {widened['d2_prime']} but d2 + 2*eps_adj = {want_d2}")
    if abs(widened["d1_prime"] - want_d1) > 1e-9:
        fail(f"d1' = {widened['d1_prime']} but max(d1 - 2*eps_adj, 0) "
             f"= {want_d1}")
    if eps_adj + 1e-12 < report["eps_measured"]:
        fail("eps_adjusted below eps_measured")

    outcomes = report["outcomes"]
    print(
        f"live chaos report ok: {report['operations']} ops "
        f"(ok={outcomes.get('ok', 0)} retried={outcomes.get('retried', 0)} "
        f"timeout={outcomes.get('timeout', 0)}), "
        f"{faults['crashes']} crash(es), {faults['dropped']} dropped, "
        f"{faults['retransmits']} retransmit(s), "
        f"{len(report['violations'])} violation(s) all attributed, "
        f"d2'={widened['d2_prime']:g}"
    )


if __name__ == "__main__":
    main()

"""One live register node: Algorithm S over sockets and a real clock.

The node owns exactly the pieces the clock-model composition of
Section 4 owns, with the transport swapped from virtual channels to TCP:

- an :class:`~repro.registers.algorithm_s.AlgorithmSProcess` (the
  Figure 3 state machine, unchanged) running on the node's *clock* time;
- a :class:`~repro.live.clock.LiveClock` driven by a simulator
  :class:`~repro.sim.clock_drivers.ClockDriver` within ``C_eps``;
- one Figure 2 :class:`~repro.core.buffers.SendBuffer` per outgoing edge
  and :class:`~repro.core.buffers.ReceiveBuffer` per incoming edge —
  the simulator's own classes, reused as wire middleware;
- an asyncio server accepting client invocations (``read``/``write``)
  and peer ``msg`` frames, and a timer task that wakes at the next
  clock deadline and fires the process's due actions.

The timer uses :meth:`RegisterProcess.due_actions
<repro.registers.algorithm_l.RegisterProcess.due_actions>` — the
late-firing (``now >= scheduled``) twin of the simulator's exact-time
``enabled()`` — because a real event loop wakes strictly after a
deadline by its scheduling jitter. Self-addressed update messages (the
algorithm updates its own copy by message) short-circuit through the
node's own receive buffer without touching the network, exactly like
the simulator's self-loop channels.

**Fault tolerance.** Three layers, all inert in a fault-free run:

- *wire hardening* — malformed or truncated frames and handler-level
  protocol errors are logged-and-dropped (counted in the
  ``repro.live.wire_errors`` metric), never allowed to kill a serve
  loop; an abruptly closed peer link is re-dialed in the background;
- *crash recovery* — :meth:`crash` snapshots the process state, the
  Figure 2 buffers, and the ARQ bookkeeping through the same
  ``encode_state``/``decode_state`` stable-storage protocol the chaos
  layer's :class:`~repro.faults.recovery.RecoverableEntity` uses, then
  abruptly drops every connection; :meth:`recover` restores the
  snapshot (``__post_restore__`` rebuilding derived caches), re-binds
  the *same* port, and re-dials the mesh — the clock, unread while
  down, jumps to the ``C_eps`` envelope edge on its first post-recovery
  read, exactly the simulator's crash-recovery clock semantics;
- *peer ARQ* — when a fault plan is attached (:meth:`attach_faults`),
  ``msg`` frames carry per-edge sequence numbers, receivers ack and
  dedup, and unacked frames are retransmitted every
  ``params.retry_base`` seconds, so partitions, drop bursts, and
  crashes *delay* update messages instead of losing them — the
  :func:`~repro.faults.retransmit.effective_delay_bounds` regime under
  which Theorem 6.5 keeps holding with widened ``d2``.

Client invocations queue per node and run one at a time through the
single-op Figure 3 automaton, with the alternation condition enforced
per *client* (``cid``-tagged frames); a retried invocation of an
already-executed operation gets the cached response replayed instead of
executing twice, which makes client-side retry safe for writes.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.automata.actions import Action
from repro.components.base import ProcessContext
from repro.constants import INFINITY
from repro.core.buffers import ReceiveBuffer, SendBuffer
from repro.errors import LiveServiceError
from repro.live.clock import LiveClock
from repro.live.params import LiveParams
from repro.live.wire import decode_frame, encode_frame
from repro.obs.metrics import NULL_METRICS
from repro.registers.algorithm_s import AlgorithmSProcess
from repro.registers.system import INITIAL_VALUE
from repro.sim.clock_drivers import ClockDriver
from repro.sim.persistence import decode_state, encode_state

#: Floor on the timer sleep when a deadline is already overdue but the
#: clock has not quite caught up to it (tolerance-edge states) — keeps
#: the loop from busy-spinning without measurably delaying anything.
MIN_SLEEP = 1e-4

#: Wire-delay slop before an arrival counts as a ``[d1, d2]`` excursion.
_DELAY_SLOP = 1e-6

#: Cap on recorded excursions — enough for any report, bounded forever.
_MAX_EXCURSIONS = 100


class LiveRegisterNode:
    """One node of the live cluster: server, peer mesh, timer loop."""

    def __init__(
        self,
        node: int,
        params: LiveParams,
        driver: ClockDriver,
        epoch: float,
        host: str = "127.0.0.1",
        metrics=NULL_METRICS,
        wire_faults=None,
    ):
        peers = list(range(params.n))
        self.node = node
        self.params = params
        self.host = host
        self.process = AlgorithmSProcess(
            node, peers, params.d2_prime, params.c, params.eps,
            delta=params.delta, initial_value=INITIAL_VALUE,
        )
        self.state = self.process.initial_state()
        self.clock = LiveClock(driver, epoch)
        self._peers = peers
        self.send_bufs: Dict[int, SendBuffer] = {
            j: SendBuffer(node, j) for j in peers
        }
        self.recv_bufs: Dict[int, ReceiveBuffer] = {
            j: ReceiveBuffer(j, node) for j in peers
        }
        self._peer_writers: Dict[int, asyncio.StreamWriter] = {}
        self._peer_addresses: Optional[List[Tuple[str, int]]] = None
        self._reconnect: Dict[int, asyncio.Task] = {}
        self._conns: Set[asyncio.StreamWriter] = set()
        # invocation serialization: one op inside the automaton at a
        # time (the node-level alternation condition), the rest queued;
        # the per-client alternation guard is keyed on cid (or, for
        # legacy untagged clients, on their connection)
        self._active: Optional[dict] = None
        self._waiting: Deque[dict] = deque()
        self._inflight: Dict[object, dict] = {}
        self._done: Dict[str, Tuple[object, dict]] = {}
        # peer ARQ (armed by attach_faults): per-edge sequence numbers,
        # an outbox of unacked frames, and a receive-side dedup set
        self.wire_faults = wire_faults
        self._arq = wire_faults is not None
        self._next_seq: Dict[int, int] = {}
        self._outbox: Dict[int, Dict[int, dict]] = {}
        self._seen: Dict[int, Set[int]] = {}
        # crash recovery
        self._down = False
        self._snapshot = None
        self.crashes = 0
        self.recoveries = 0
        self.inputs_lost = 0
        self.retransmits = 0
        self.wire_errors = 0
        self.orphan_responses = 0
        #: first-crossing ``[d1, d2]`` lateness excursions, as
        #: ``(real, src, end_to_end_delay)`` — the live channel monitor
        self.delay_excursions: List[Tuple[float, int, float]] = []
        self._kick = asyncio.Event()
        self._stopped = asyncio.Event()
        self._server: Optional[asyncio.base_events.Server] = None
        self._timer_task: Optional[asyncio.Task] = None
        self._retransmit_task: Optional[asyncio.Task] = None
        self.port: Optional[int] = None
        # wire-delay measurement (one-way; meaningful because all nodes
        # of a cluster share one epoch inside one process)
        self._wire_count = 0
        self._wire_sum = 0.0
        self._wire_max = 0.0
        self._msgs_sent = metrics.counter("repro.live.msgs.sent")
        self._msgs_received = metrics.counter("repro.live.msgs.received")
        self._wire_errors_counter = metrics.counter("repro.live.wire_errors")
        self._retransmits_counter = metrics.counter("repro.live.retransmits")
        self._crashes_counter = metrics.counter("repro.chaos.crashes")
        self._recoveries_counter = metrics.counter("repro.chaos.recoveries")
        self._wire_sketch = metrics.sketch("repro.live.wire.delay")
        self.clock.skew_sketch = metrics.sketch("repro.live.clock.skew")

    # -- lifecycle -----------------------------------------------------------

    @property
    def down(self) -> bool:
        """Whether the node is currently crashed."""
        return self._down

    def attach_faults(self, injector) -> None:
        """Arm the wire fault shim and the peer ARQ layer (chaos runs).

        Must be called before :meth:`start`; fault-free clusters never
        call it, which keeps their peer traffic byte-identical to the
        pre-chaos protocol.
        """
        if self._timer_task is not None:
            raise LiveServiceError(
                f"node {self.node}: attach_faults after start"
            )
        self.wire_faults = injector
        self._arq = True

    async def start(self) -> Tuple[str, int]:
        """Bind the server socket (ephemeral port) and start the timer."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, 0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._timer_task = asyncio.ensure_future(self._run_timer())
        if self._arq:
            self._retransmit_task = asyncio.ensure_future(
                self._run_retransmit()
            )
        return self.host, self.port

    async def connect_peers(self, addresses: List[Tuple[str, int]]) -> None:
        """Dial every other node; outgoing ``msg`` frames use these links."""
        self._peer_addresses = list(addresses)
        for j, (host, port) in enumerate(addresses):
            if j == self.node:
                continue
            _, writer = await asyncio.open_connection(host, port)
            writer.write(encode_frame({"t": "hello", "src": self.node}))
            self._peer_writers[j] = writer

    async def stop(self) -> None:
        """Stop the timer, close the peer links and the server socket."""
        self._stopped.set()
        self._kick.set()
        for task in self._reconnect.values():
            task.cancel()
        self._reconnect.clear()
        if self._timer_task is not None:
            await self._timer_task
        if self._retransmit_task is not None:
            self._retransmit_task.cancel()
            try:
                await self._retransmit_task
            except asyncio.CancelledError:
                pass
        for writer in self._peer_writers.values():
            writer.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- crash / recovery ----------------------------------------------------

    async def crash(self) -> None:
        """Go down abruptly: snapshot stable state, drop every connection.

        The snapshot carries the Figure 3 process state, the Figure 2
        buffers, the response cache, and the ARQ outbox — the node's
        "stable storage", exactly what the simulator's
        :class:`~repro.faults.recovery.RecoverableEntity` persists.
        Volatile memory (queued invocations, live sockets) is lost.
        """
        if self._down:
            return
        self._down = True
        self.crashes += 1
        self._crashes_counter.inc()
        active_meta = None
        if self._active is not None:
            active_meta = {
                key: self._active.get(key)
                for key in ("key", "cid", "op", "kind")
            }
        self._snapshot = encode_state({
            "state": self.state,
            "send_bufs": self.send_bufs,
            "recv_bufs": self.recv_bufs,
            "done": self._done,
            "outbox": self._outbox,
            "next_seq": self._next_seq,
            "seen": self._seen,
            "active": active_meta,
        })
        # volatile memory: in-flight invocations are simply gone
        self.inputs_lost += len(self._waiting)
        self._active = None
        self._waiting.clear()
        self._inflight.clear()
        self._done = {}
        self._outbox = {}
        self._next_seq = {}
        self._seen = {}
        self.state = self.process.initial_state()
        self.send_bufs = {j: SendBuffer(self.node, j) for j in self._peers}
        self.recv_bufs = {j: ReceiveBuffer(j, self.node) for j in self._peers}
        # every connection dies abruptly (RST, not FIN): peers and
        # clients observe exactly what a process kill looks like
        for task in self._reconnect.values():
            task.cancel()
        self._reconnect.clear()
        for writer in self._peer_writers.values():
            self._abort(writer)
        self._peer_writers.clear()
        for writer in list(self._conns):
            self._abort(writer)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._kick.set()

    async def recover(self) -> None:
        """Come back up: restore the snapshot, re-bind, re-dial the mesh.

        The clock was not read while down; its first post-recovery read
        steps the driver across the whole outage and the ``C_eps`` clamp
        lands it on the envelope edge — overdue timetable work then
        fires late, the crash-recovery semantics of the chaos layer.
        """
        if not self._down or self._snapshot is None:
            return
        snap = decode_state(self._snapshot)
        self.state = snap["state"]
        self.send_bufs = snap["send_bufs"]
        self.recv_bufs = snap["recv_bufs"]
        self._done = snap["done"]
        self._outbox = snap["outbox"]
        self._next_seq = snap["next_seq"]
        self._seen = snap["seen"]
        self._active = None
        meta = snap["active"]
        if meta is not None:
            # the operation the automaton was executing at the crash
            # instant: it is inside the restored state and will emit its
            # RETURN/ACK late; route that to the client's retry
            entry = dict(meta)
            entry["value"] = None
            entry["writer"] = None
            self._active = entry
            self._inflight[entry["key"]] = entry
        self.recoveries += 1
        self._recoveries_counter.inc()
        self._down = False
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        if self._peer_addresses is not None:
            for j in self._peers:
                if j != self.node:
                    self._ensure_peer(j)
        self._kick.set()

    @staticmethod
    def _abort(writer: asyncio.StreamWriter) -> None:
        """Abruptly drop a connection (no FIN handshake)."""
        try:
            transport = writer.transport
            if transport is not None:
                transport.abort()
            else:
                writer.close()
        except (RuntimeError, OSError):
            pass

    # -- connection handling -------------------------------------------------

    def _wire_error(self, exc: Exception) -> None:
        """Log-and-drop: a bad frame must never kill a serve loop."""
        self.wire_errors += 1
        self._wire_errors_counter.inc()

    async def _on_connection(self, reader, writer) -> None:
        self._conns.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError as exc:
                    # over-limit line (asyncio's own frame-size guard):
                    # the stream cannot be resynchronized, drop the link
                    self._wire_error(exc)
                    break
                if not line:
                    break
                try:
                    frame = decode_frame(line)
                except LiveServiceError as exc:
                    self._wire_error(exc)
                    continue
                try:
                    self._dispatch(frame, writer)
                except (KeyError, IndexError, TypeError, ValueError) as exc:
                    # structurally valid JSON, semantically broken frame
                    self._wire_error(exc)
        except (ConnectionResetError, LiveServiceError):
            pass
        except asyncio.CancelledError:
            pass  # event-loop teardown; the cluster is already stopping
        finally:
            self._conns.discard(writer)
            if self._active is not None and self._active.get("writer") is writer:
                self._active["writer"] = None
            for entry in list(self._waiting):
                if entry.get("writer") is writer:
                    if entry.get("cid") is None:
                        # untagged client: its queued op can never be
                        # answered or retried, drop it
                        self._waiting.remove(entry)
                        self._inflight.pop(entry["key"], None)
                    else:
                        entry["writer"] = None
            writer.close()

    def _dispatch(self, frame: dict, writer) -> None:
        kind = frame["t"]
        if self._down:
            # a racing frame on a connection the crash has not torn
            # down yet: a dead node hears nothing
            self.inputs_lost += 1
            return
        if kind == "hello":
            return  # incoming peer link; msg frames follow
        if kind == "msg":
            self._on_peer_msg(frame)
        elif kind == "msgack":
            self._on_msgack(frame)
        elif kind in ("read", "write"):
            self._on_invocation(kind, frame, writer)
        elif kind == "stats":
            self._write(writer, self.stats())
        else:
            self._write(writer, {
                "t": "error", "reason": f"unexpected frame {kind!r}",
            })

    def _on_peer_msg(self, frame) -> None:
        src = frame["src"]
        message = frame["m"]  # (value, t), tuplified by decode_frame
        stamp = frame["stamp"]
        seq = frame.get("seq")
        real, clk = self.clock.read()
        if seq is not None:
            # ack first (the ack may itself be dropped; retransmission
            # plus this dedup absorbs every such loss)
            self._ack_peer(src, seq)
            seen = self._seen.setdefault(src, set())
            if seq in seen:
                return
            seen.add(seq)
        delay = max(0.0, real - frame.get("sr", real))
        self._wire_count += 1
        self._wire_sum += delay
        if delay > self._wire_max:
            self._wire_max = delay
        self._wire_sketch.observe(delay)
        self._msgs_received.inc()
        # end-to-end lateness, measured from the *first* transmission
        # attempt: a dropped-then-retransmitted frame shows up here as a
        # delivery outside [d1, d2] — the live channel-bound monitor
        total = max(0.0, real - frame.get("s0", frame.get("sr", real)))
        if (
            total > self.params.d2 + _DELAY_SLOP
            and len(self.delay_excursions) < _MAX_EXCURSIONS
        ):
            self.delay_excursions.append((real, src, total))
        self.recv_bufs[src].enqueue(message, stamp, clk)
        self._kick.set()

    def _ack_peer(self, src: int, seq: int) -> None:
        self._wire_send(src, {"t": "msgack", "src": self.node, "seq": seq})

    def _on_msgack(self, frame) -> None:
        self._outbox.get(frame["src"], {}).pop(frame["seq"], None)

    def _on_invocation(self, kind, frame, writer) -> None:
        cid = frame.get("cid")
        op = frame.get("op")
        if cid is not None:
            # a retry of an operation already in flight re-binds the
            # (possibly reconnected) response channel...
            if (
                self._active is not None
                and self._active.get("cid") == cid
                and self._active.get("op") == op
            ):
                self._active["writer"] = writer
                return
            for entry in self._waiting:
                if entry.get("cid") == cid and entry.get("op") == op:
                    entry["writer"] = writer
                    return
            # ...and a retry of an operation already *executed* gets the
            # cached response replayed (at-most-once semantics)
            done = self._done.get(cid)
            if done is not None and done[0] == op:
                self._write(writer, done[1])
                return
        key = cid if cid is not None else id(writer)
        if key in self._inflight:
            # the alternation condition, per client
            self._write(writer, {
                "t": "error", "reason": "operation already pending",
            })
            return
        # validate before registering anything: a malformed invocation
        # (missing value) must leave no stale inflight entry behind
        value = frame["value"] if kind == "write" else None
        entry = {
            "key": key, "cid": cid, "op": op, "kind": kind,
            "value": value, "writer": writer,
        }
        self._inflight[key] = entry
        self._waiting.append(entry)
        self._pump()
        self._kick.set()

    def _pump(self) -> None:
        """Feed the next queued invocation into the (idle) automaton."""
        while self._active is None and self._waiting:
            entry = self._waiting.popleft()
            _, clk = self.clock.read()
            if entry["kind"] == "read":
                action = Action("READ", (self.node,))
            else:
                action = Action("WRITE", (self.node, entry["value"]))
            self.process.apply_input(self.state, action, ProcessContext(clk))
            self._active = entry

    # -- the timer loop ------------------------------------------------------

    async def _run_timer(self) -> None:
        while not self._stopped.is_set():
            if self._down:
                await self._kick.wait()
                self._kick.clear()
                continue
            _, clk = self.clock.read()
            progressed = self._drain(clk)
            deadline = self._next_deadline()
            if deadline == INFINITY:
                await self._kick.wait()
                self._kick.clear()
                continue
            delay = self.clock.wall_delay(deadline)
            if delay <= 0.0 and not progressed:
                delay = MIN_SLEEP
            if delay <= 0.0:
                continue
            try:
                await asyncio.wait_for(self._kick.wait(), delay)
                self._kick.clear()
            except asyncio.TimeoutError:
                pass

    async def _run_retransmit(self) -> None:
        """Resend unacked peer frames every ``retry_base`` seconds."""
        interval = self.params.retry_base
        while not self._stopped.is_set():
            await asyncio.sleep(interval)
            if self._down or self._stopped.is_set():
                continue
            real = self.clock.real_now()
            for dst, entries in self._outbox.items():
                for seq, entry in list(entries.items()):
                    if real - entry["ts"] < interval:
                        continue
                    entry["ts"] = real
                    frame = dict(entry["frame"])
                    frame["sr"] = real
                    if self._wire_send(dst, frame):
                        self.retransmits += 1
                        self._retransmits_counter.inc()

    def _next_deadline(self) -> float:
        deadline = self.state.mintime()
        for buf in self.recv_bufs.values():
            deadline = min(deadline, buf.clock_deadline())
        return deadline

    def _drain(self, clk: float) -> bool:
        """Deliver due messages and fire due actions until quiescent.

        Re-polls after every batch: a RETURN suppressed by a same-instant
        pending update becomes due on the next round, after the update
        fired (Figure 3's read-the-post-update-value guard).
        """
        progressed = False
        while True:
            delivered = False
            for src, buf in self.recv_bufs.items():
                while buf.can_deliver(clk):
                    message, _stamp = buf.deliver(clk)
                    self.process.apply_input(
                        self.state,
                        Action("RECVMSG", (self.node, src, message)),
                        ProcessContext(clk),
                    )
                    delivered = True
            actions = self.process.due_actions(self.state, clk)
            if not actions and not delivered:
                return progressed
            progressed = True
            for action in actions:
                self.process.fire(self.state, action, ProcessContext(clk))
                if action.name == "SENDMSG":
                    self._send(action.params[1], action.params[2], clk)
                elif action.name == "RETURN":
                    self._respond({"t": "return", "value": action.params[1]})
                elif action.name == "ACK":
                    self._respond({"t": "ack"})
                # UPDATE is internal: the fire already applied it

    def _send(self, dst: int, payload, clk: float) -> None:
        """Route one ``SENDMSG`` through the Figure 2 send buffer."""
        buf = self.send_bufs[dst]
        buf.enqueue(payload, clk)
        message, stamp = buf.emit(clk)  # emission is urgent (Figure 2)
        self._msgs_sent.inc()
        real = self.clock.real_now()
        if dst == self.node:
            # self-loop edge: deliver locally through the receive buffer
            self.recv_bufs[dst].enqueue(message, stamp, clk)
            return
        frame = {
            "t": "msg", "src": self.node, "m": list(message),
            "stamp": stamp, "sr": real,
        }
        if self._arq:
            seq = self._next_seq.get(dst, 0)
            self._next_seq[dst] = seq + 1
            frame["seq"] = seq
            frame["s0"] = real
            self._outbox.setdefault(dst, {})[seq] = {
                "frame": dict(frame), "ts": real,
            }
        self._wire_send(dst, frame)

    def _wire_send(self, dst: int, frame: dict) -> bool:
        """Write one frame to a peer, through the fault shim.

        Returns False when the frame was dropped (severed edge) or the
        link is down — in which case a background re-dial is scheduled
        and, for ARQ frames, the retransmission loop will retry.
        """
        real = self.clock.real_now()
        if self.wire_faults is not None and self.wire_faults.drops(
            self.node, dst, real
        ):
            return False
        writer = self._peer_writers.get(dst)
        if writer is None or writer.is_closing():
            if self._peer_addresses is None:
                raise LiveServiceError(
                    f"node {self.node}: no peer link to {dst} "
                    f"(connect_peers not run?)"
                )
            self._ensure_peer(dst)
            return False
        try:
            writer.write(encode_frame(frame))
        except (ConnectionError, RuntimeError, OSError) as exc:
            self._wire_error(exc)
            self._ensure_peer(dst)
            return False
        return True

    def _ensure_peer(self, dst: int) -> None:
        """Schedule a background re-dial of a broken peer link."""
        if self._stopped.is_set() or self._down:
            return
        task = self._reconnect.get(dst)
        if task is not None and not task.done():
            return
        self._reconnect[dst] = asyncio.ensure_future(
            self._reconnect_peer(dst)
        )

    async def _reconnect_peer(self, dst: int) -> None:
        delay = self.params.retry_base
        while not self._stopped.is_set() and not self._down:
            try:
                host, port = self._peer_addresses[dst]
                _, writer = await asyncio.open_connection(host, port)
            except OSError:
                await asyncio.sleep(delay)
                delay = min(delay * 2.0, 1.0)
                continue
            writer.write(encode_frame({"t": "hello", "src": self.node}))
            old = self._peer_writers.get(dst)
            if old is not None and not old.is_closing():
                old.close()
            self._peer_writers[dst] = writer
            self._kick.set()
            return

    def _respond(self, frame) -> None:
        entry = self._active
        self._active = None
        if entry is None:
            # a response with nobody to route it to (e.g. the automaton
            # completed an op whose restored metadata was untagged):
            # never kill the timer over it
            self.orphan_responses += 1
            return
        self._inflight.pop(entry["key"], None)
        if entry.get("cid") is not None:
            # cache the response so a retry after a lost reply (client
            # timeout, node crash) replays instead of re-executing
            self._done[entry["cid"]] = (entry.get("op"), dict(frame))
        self._write(entry.get("writer"), frame)
        self._pump()

    def _write(self, writer, frame) -> None:
        """Best-effort frame write; a dead client just misses the reply."""
        if writer is None or writer.is_closing():
            return
        try:
            writer.write(encode_frame(frame))
        except (ConnectionError, RuntimeError, OSError) as exc:
            self._wire_error(exc)

    # -- measurement ---------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """The node-side measurements the load generator's report needs.

        Fault counters appear only when nonzero, so a fault-free run's
        stats frame is byte-identical to the pre-chaos protocol.
        """
        real, clk = self.clock.read()
        payload: Dict[str, object] = {
            "t": "stats",
            "node": self.node,
            "real": real,
            "clock": clk,
            "max_skew": self.clock.max_skew,
            "eps": self.params.eps,
            "wire_count": self._wire_count,
            "wire_sum": self._wire_sum,
            "wire_max": self._wire_max,
        }
        for key, value in (
            ("wire_errors", self.wire_errors),
            ("crashes", self.crashes),
            ("recoveries", self.recoveries),
            ("retransmits", self.retransmits),
            ("inputs_lost", self.inputs_lost),
        ):
            if value:
                payload[key] = value
        return payload

    def __repr__(self) -> str:
        return f"<LiveRegisterNode {self.node} @ {self.host}:{self.port}>"

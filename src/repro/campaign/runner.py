"""The campaign runner: shard grid points across a worker pool.

:class:`CampaignRunner` executes a list of grid points (any picklable
dicts carrying ``index`` and ``key``) through a *task* — a module-level
callable, or a ``"module:function"`` reference resolved in the worker —
and returns one :class:`Outcome` per point, sorted by index.

Worker model
------------
One process per task attempt (``fork`` start method where available,
``spawn`` otherwise), up to ``workers`` in flight, each reporting back
over its own pipe. This deliberately avoids pool-recycling machinery:
simulation points are coarse-grained (milliseconds to minutes), and a
dedicated process gives three properties pools make awkward:

- **per-task timeouts** — a hung point is ``terminate()``-ed (then
  ``kill()``-ed) without poisoning a shared pool;
- **crash containment** — a worker dying abruptly (segfault,
  ``os._exit``, OOM kill) surfaces as EOF on its pipe and triggers a
  bounded retry of just that point, up to ``retries`` extra attempts;
- **graceful degradation** — if processes cannot be started at all
  (restricted sandboxes), the runner logs a warning and finishes the
  remaining points serially in-process.

With ``workers <= 1`` the runner is serial from the start: the task runs
in-process (``_serial`` is set on the point so chaos hooks simulate
crashes with exceptions instead of killing the interpreter). Timeouts
are not enforceable serially and are ignored there.

Checkpoint integration: points whose ``key`` already appears in the
given :class:`~repro.campaign.checkpoint.Checkpoint` are not rerun —
their stored result is replayed as a ``"cached"`` outcome, which is what
makes interrupted campaigns resume byte-identically.
"""

from __future__ import annotations

import importlib
import multiprocessing
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_connections
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.campaign.checkpoint import Checkpoint
from repro.errors import CampaignError

TaskRef = Union[str, Callable[[Dict], Dict]]

DEFAULT_TASK = "repro.campaign.worker:run_point"
"""The default task: run one register grid point."""

_POLL_SECONDS = 0.05
_KILL_GRACE_SECONDS = 5.0


def resolve_task(ref: TaskRef) -> Callable[[Dict], Dict]:
    """Resolve a task reference to a callable.

    Accepts a callable (returned unchanged) or a ``"module:function"``
    string, which must name an importable module-level callable — the
    form that survives pickling into ``spawn``-ed workers.
    """
    if callable(ref):
        return ref
    module_name, sep, func_name = str(ref).partition(":")
    if not sep or not module_name or not func_name:
        raise CampaignError(
            f"task reference {ref!r} is not 'module:function'"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise CampaignError(f"cannot import task module {module_name!r}: {exc}")
    task = getattr(module, func_name, None)
    if not callable(task):
        raise CampaignError(
            f"task {func_name!r} in module {module_name!r} is not callable"
        )
    return task


def _worker_entry(task: Callable[[Dict], Dict], point: Dict, conn) -> None:
    """Child-process entry: run the task, ship the payload, exit.

    Sends ``("ok", payload)`` or ``("err", message)``; an abrupt death
    (chaos ``os._exit``, segfault, kill) sends nothing, which the parent
    observes as EOF.
    """
    try:
        payload = task(point)
        conn.send(("ok", payload))
    except BaseException as exc:  # ship any failure; never hang the parent
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


@dataclass
class Outcome:
    """What happened to one grid point."""

    index: int
    key: str
    status: str  # "done" | "cached" | "failed"
    result: Optional[Dict]
    wall: float
    attempts: int
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the point produced a result (ran now or cached)."""
        return self.status in ("done", "cached")


@dataclass
class _Running:
    """Book-keeping for one in-flight worker process."""

    point: Dict
    attempt: int
    process: object
    started: float


class CampaignRunner:
    """Run grid points through a worker pool with retries and timeouts.

    Parameters
    ----------
    task:
        callable or ``"module:function"`` reference; defaults to the
        register-experiment worker (:data:`DEFAULT_TASK`).
    workers:
        worker processes in flight; ``<= 1`` runs serially in-process.
    timeout:
        per-attempt wall-clock budget in seconds (parallel mode only);
        an expired attempt is killed and retried.
    retries:
        extra attempts after the first for a crashed/failed/hung point.
    checkpoint:
        optional :class:`Checkpoint`; finished points are recorded there
        and replayed (not rerun) on subsequent runs.
    log:
        optional callable for progress lines (e.g. ``print``).
    """

    def __init__(
        self,
        task: TaskRef = DEFAULT_TASK,
        workers: int = 1,
        timeout: Optional[float] = None,
        retries: int = 2,
        checkpoint: Optional[Checkpoint] = None,
        log: Optional[Callable[[str], None]] = None,
    ):
        if retries < 0:
            raise CampaignError("retries must be >= 0")
        if timeout is not None and timeout <= 0:
            raise CampaignError("timeout must be positive")
        self.task_ref = task
        self.workers = int(workers)
        self.timeout = timeout
        self.retries = int(retries)
        self.checkpoint = checkpoint
        self._log = log or (lambda message: None)
        self._task = resolve_task(task)

    # -- public API ----------------------------------------------------------

    def run(self, points: Sequence[Dict]) -> List[Outcome]:
        """Execute every point; return outcomes sorted by point index."""
        seen = set()
        for point in points:
            if point["key"] in seen:
                raise CampaignError(
                    f"duplicate point key {point['key']!r}; grid points "
                    "must be unique for checkpointing to be sound"
                )
            seen.add(point["key"])
        outcomes: Dict[int, Outcome] = {}
        queue = deque()
        for point in points:
            cached = (
                self.checkpoint.completed.get(point["key"])
                if self.checkpoint is not None
                else None
            )
            if cached is not None:
                outcomes[point["index"]] = Outcome(
                    index=point["index"],
                    key=point["key"],
                    status="cached",
                    result=cached["result"],
                    wall=float(cached.get("wall", 0.0)),
                    attempts=int(cached.get("attempts", 1)),
                )
            else:
                queue.append((point, 0))
        if queue:
            if self.workers <= 1:
                self._run_serial(queue, outcomes)
            else:
                self._run_parallel(queue, outcomes)
        return [outcomes[index] for index in sorted(outcomes)]

    # -- serial path ---------------------------------------------------------

    def _record_success(
        self, outcomes: Dict[int, Outcome], point: Dict, payload, attempt: int
    ) -> None:
        if not (isinstance(payload, dict) and "result" in payload):
            payload = {"result": payload, "wall": 0.0}
        wall = float(payload.get("wall", 0.0))
        outcomes[point["index"]] = Outcome(
            index=point["index"],
            key=point["key"],
            status="done",
            result=payload["result"],
            wall=wall,
            attempts=attempt + 1,
        )
        if self.checkpoint is not None:
            self.checkpoint.append(
                point["key"], payload["result"], wall, attempt + 1
            )

    def _retry_or_fail(
        self,
        queue: deque,
        outcomes: Dict[int, Outcome],
        point: Dict,
        attempt: int,
        error: str,
    ) -> None:
        if attempt < self.retries:
            self._log(
                f"point {point['index']}: attempt {attempt + 1} failed "
                f"({error}); retrying"
            )
            queue.append((point, attempt + 1))
        else:
            self._log(
                f"point {point['index']}: giving up after {attempt + 1} "
                f"attempts ({error})"
            )
            outcomes[point["index"]] = Outcome(
                index=point["index"],
                key=point["key"],
                status="failed",
                result=None,
                wall=0.0,
                attempts=attempt + 1,
                error=error,
            )

    def _run_serial(self, queue: deque, outcomes: Dict[int, Outcome]) -> None:
        while queue:
            point, attempt = queue.popleft()
            attempt_point = dict(point)
            attempt_point["_attempt"] = attempt
            attempt_point["_serial"] = True
            try:
                payload = self._task(attempt_point)
            except Exception as exc:
                self._retry_or_fail(
                    queue, outcomes, point, attempt,
                    f"{type(exc).__name__}: {exc}",
                )
            else:
                self._record_success(outcomes, point, payload, attempt)

    # -- parallel path -------------------------------------------------------

    def _context(self):
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0]
        )

    def _run_parallel(self, queue: deque, outcomes: Dict[int, Outcome]) -> None:
        try:
            ctx = self._context()
        except (ValueError, OSError, ImportError) as exc:
            self._log(f"multiprocessing unavailable ({exc}); running serially")
            self._run_serial(queue, outcomes)
            return
        running: Dict[object, _Running] = {}
        try:
            while queue or running:
                # Launch until the pool is full.
                while queue and len(running) < self.workers:
                    point, attempt = queue.popleft()
                    attempt_point = dict(point)
                    attempt_point["_attempt"] = attempt
                    try:
                        parent_conn, child_conn = ctx.Pipe(duplex=False)
                        process = ctx.Process(
                            target=_worker_entry,
                            args=(self._task, attempt_point, child_conn),
                        )
                        process.start()
                    except (OSError, ValueError, PermissionError) as exc:
                        self._log(
                            f"cannot start worker process ({exc}); "
                            "degrading to serial execution"
                        )
                        queue.appendleft((point, attempt))
                        self._drain_running(running, queue)
                        self._run_serial(queue, outcomes)
                        return
                    child_conn.close()
                    running[parent_conn] = _Running(
                        # repro: lint-ignore[DET002] -- wall-clock budget
                        # for reaping hung workers; never enters results
                        point, attempt, process, time.monotonic()
                    )

                ready = _wait_connections(
                    list(running), timeout=_POLL_SECONDS
                )
                for conn in ready:
                    info = running.pop(conn)
                    try:
                        kind, payload = conn.recv()
                    except (EOFError, OSError):
                        info.process.join(_KILL_GRACE_SECONDS)
                        kind, payload = "crash", (
                            "worker crashed (exit code "
                            f"{info.process.exitcode})"
                        )
                    conn.close()
                    info.process.join()
                    if kind == "ok":
                        self._record_success(
                            outcomes, info.point, payload, info.attempt
                        )
                    else:
                        self._retry_or_fail(
                            queue, outcomes, info.point, info.attempt,
                            str(payload),
                        )

                # Reap attempts over their wall-clock budget.
                if self.timeout is not None:
                    # repro: lint-ignore[DET002] -- timeout reaping is
                    # wall-clock by definition; never enters results
                    now = time.monotonic()
                    for conn, info in list(running.items()):
                        if now - info.started <= self.timeout:
                            continue
                        running.pop(conn)
                        self._kill(info.process)
                        conn.close()
                        self._retry_or_fail(
                            queue, outcomes, info.point, info.attempt,
                            f"timed out after {self.timeout:g}s",
                        )
        finally:
            for conn, info in running.items():
                self._kill(info.process)
                conn.close()

    def _drain_running(self, running: Dict[object, _Running], queue: deque) -> None:
        """Kill in-flight workers and requeue their points (serial fallback)."""
        for conn, info in running.items():
            self._kill(info.process)
            conn.close()
            queue.append((info.point, info.attempt))
        running.clear()

    @staticmethod
    def _kill(process) -> None:
        process.terminate()
        process.join(_KILL_GRACE_SECONDS)
        if process.is_alive():
            process.kill()
            process.join()

    def __repr__(self) -> str:
        return (
            f"<CampaignRunner task={self.task_ref!r} workers={self.workers} "
            f"retries={self.retries} timeout={self.timeout}>"
        )

"""Property-based tests: the TDMA overlap formula and sync envelopes."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.clocks.sync import CristianSimulation, HardwareClock, achievable_epsilon
from repro.sim.clock_drivers import FastClockDriver, SlowClockDriver
from repro.tdma import build_tdma_system, critical_intervals, max_overlap


class TestTDMAOverlapFormula:
    @given(
        st.floats(min_value=0.02, max_value=0.2),   # eps
        st.floats(min_value=0.0, max_value=1.0),    # guard as fraction of eps
    )
    @settings(max_examples=25, deadline=None)
    def test_overlap_is_two_eps_minus_two_guard(self, eps, fraction):
        guard = round(eps * fraction, 6)
        assume(2 * guard < 1.0)  # slot width is 1.0

        def drivers(i):
            return FastClockDriver(eps) if i % 2 == 0 else SlowClockDriver(eps)

        spec = build_tdma_system(
            "clock", n=3, slot_width=1.0, guard=guard, sections=2,
            eps=eps, drivers=drivers,
        )
        intervals = critical_intervals(spec.run(10.0).trace)
        overlap = max_overlap(intervals)
        predicted = 2 * (eps - guard)
        if guard >= eps:
            assert overlap <= 1e-9
        else:
            assert abs(overlap - predicted) <= 1e-6

    @given(st.floats(min_value=0.02, max_value=0.2))
    @settings(max_examples=15, deadline=None)
    def test_guard_equal_eps_is_always_safe(self, eps):
        def drivers(i):
            return FastClockDriver(eps) if i % 2 == 0 else SlowClockDriver(eps)

        spec = build_tdma_system(
            "clock", n=3, slot_width=1.0, guard=eps, sections=2,
            eps=eps, drivers=drivers,
        )
        intervals = critical_intervals(spec.run(10.0).trace)
        assert max_overlap(intervals) <= 1e-9


class TestSyncEnvelopeProperty:
    @given(
        st.floats(min_value=0.995, max_value=1.005),  # rho
        st.floats(min_value=2.0, max_value=10.0),     # period
        st.integers(min_value=0, max_value=50),       # seed
    )
    @settings(max_examples=20, deadline=None)
    def test_steady_error_within_envelope(self, rho, period, seed):
        d1, d2 = 0.01, 0.08
        sim = CristianSimulation(
            HardwareClock(rho, 0.2), period, d1, d2, horizon=80.0, seed=seed
        )
        envelope = achievable_epsilon(rho, period, d1, d2)
        assert sim.max_error(start=sim.converged_after()) <= envelope
        assert sim.is_monotone()

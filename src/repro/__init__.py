"""repro — partially synchronized clocks (PODC 1993 reproduction).

A production-quality implementation of Chaudhuri, Gawlick & Lynch,
*Designing Algorithms for Distributed Systems with Partially Synchronized
Clocks* (PODC 1993):

- the three system models (timed automata, clock automata, MMT
  automata), both as relation-level theory objects and as an executable
  discrete-event formulation;
- **Simulation 1** (Theorem 4.7): the clock transformation ``C(A, eps)``
  with the Figure 2 send/receive buffers — design against real time,
  run against an ``eps``-accurate clock;
- **Simulation 2** (Theorems 5.1/5.2): the MMT transformation
  ``M(A^c, l)`` — delayed simulation with a pending-output buffer,
  tolerating clock granularity and bounded step times;
- the Section 6 application: linearizable read-write registers
  (algorithms L and S, eps-superlinearizability, and the [10]-style
  baseline), with analytic-vs-measured latency benchmarks.

Quickstart::

    from repro import (
        RegisterWorkload, clock_register_system, run_register_experiment,
        driver_factory,
    )

    eps, d1, d2 = 0.05, 0.2, 1.0
    spec = clock_register_system(
        n=3, d1=d1, d2=d2, c=0.3, eps=eps,
        workload=RegisterWorkload(operations=5, seed=1),
        drivers=driver_factory("mixed", eps),
    )
    run = run_register_experiment(spec, horizon=60.0)
    assert run.linearizable()
"""

from repro.automata.actions import NU, Action, ActionPattern, action_set
from repro.automata.executions import Execution, TimedEvent, TimedSequence
from repro.automata.signature import Signature
from repro.components.base import Entity, Process, ProcessContext, TimedNodeEntity
from repro.core.buffers import ReceiveBuffer, SendBuffer
from repro.core.clock_transform import (
    ClockMachine,
    ClockNodeEntity,
    NativeClockNodeEntity,
)
from repro.core.mmt_transform import (
    EagerStepPolicy,
    LazyStepPolicy,
    MMTNodeEntity,
    UniformStepPolicy,
)
from repro.core.pipeline import (
    SystemSpec,
    build_clock_system,
    build_mmt_system,
    build_native_clock_system,
    build_timed_system,
    simulation1_delay_bounds,
    simulation2_shift_bound,
)
from repro.core.rate import check_output_rate, max_outputs_in_window, smallest_k
from repro.errors import (
    AxiomViolation,
    ClockEnvelopeError,
    CompositionError,
    ReproError,
    ScheduleError,
    SignatureError,
    SimulationLimitError,
    SpecificationError,
    TimelockError,
    TransitionError,
)
from repro.network.channel import ChannelEntity
from repro.network.topology import Topology
from repro.registers.algorithm_l import AlgorithmLProcess, RegisterProcess
from repro.registers.algorithm_s import (
    AlgorithmSProcess,
    NaiveSuperlinearizableProcess,
)
from repro.registers.baseline import SlottedRegisterProcess
from repro.registers.spec import (
    linearizable_register_problem,
    superlinearizable_register_problem,
)
from repro.registers.system import (
    RegisterRun,
    baseline_register_system,
    clock_register_system,
    mmt_register_system,
    run_register_experiment,
    timed_register_system,
)
from repro.registers.workload import ClientEntity, CompletedOp, RegisterWorkload
from repro.sim.clock_drivers import (
    ClockDriver,
    DriftingClockDriver,
    FastClockDriver,
    PerfectClockDriver,
    RandomWalkClockDriver,
    SawtoothClockDriver,
    SkewedClockDriver,
    SlowClockDriver,
    driver_factory,
)
from repro.sim.delay import (
    AlternatingExtremesDelay,
    ConstantFractionDelay,
    JitteredDelay,
    MaximalDelay,
    MinimalDelay,
    UniformDelay,
)
from repro.sim.engine import SimulationResult, Simulator
from repro.sim.scheduler import (
    DeterministicScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.traces.linearizability import (
    Operation,
    extract_operations,
    find_linearization,
    is_linearizable,
    is_superlinearizable,
)
from repro.traces.problems import PredicateProblem, Problem
from repro.traces.relations import (
    equivalent_eps,
    find_eps_matching,
    find_shift_matching,
    max_time_displacement,
    shifted_delta,
)

__version__ = "1.0.0"

__all__ = [
    # actions / traces
    "NU", "Action", "ActionPattern", "action_set", "Signature",
    "TimedEvent", "TimedSequence", "Execution",
    # components
    "Entity", "Process", "ProcessContext", "TimedNodeEntity",
    # core transformations
    "SendBuffer", "ReceiveBuffer", "ClockMachine", "ClockNodeEntity",
    "NativeClockNodeEntity", "MMTNodeEntity",
    "EagerStepPolicy", "LazyStepPolicy", "UniformStepPolicy",
    "SystemSpec", "build_timed_system", "build_clock_system",
    "build_native_clock_system", "build_mmt_system",
    "simulation1_delay_bounds", "simulation2_shift_bound",
    "check_output_rate", "max_outputs_in_window", "smallest_k",
    # network
    "Topology", "ChannelEntity",
    # registers
    "RegisterProcess", "AlgorithmLProcess", "AlgorithmSProcess",
    "NaiveSuperlinearizableProcess", "SlottedRegisterProcess",
    "linearizable_register_problem", "superlinearizable_register_problem",
    "RegisterWorkload", "ClientEntity", "CompletedOp", "RegisterRun",
    "timed_register_system", "clock_register_system",
    "baseline_register_system", "mmt_register_system",
    "run_register_experiment",
    # simulation substrate
    "ClockDriver", "PerfectClockDriver", "SkewedClockDriver",
    "FastClockDriver", "SlowClockDriver", "DriftingClockDriver",
    "SawtoothClockDriver", "RandomWalkClockDriver", "driver_factory",
    "DelayModel", "ConstantFractionDelay", "UniformDelay", "MinimalDelay",
    "MaximalDelay", "AlternatingExtremesDelay", "JitteredDelay",
    "Simulator", "SimulationResult",
    "DeterministicScheduler", "RandomScheduler", "RoundRobinScheduler",
    # checkers
    "Operation", "extract_operations", "find_linearization",
    "is_linearizable", "is_superlinearizable",
    "Problem", "PredicateProblem",
    "equivalent_eps", "shifted_delta", "find_eps_matching",
    "find_shift_matching", "max_time_displacement",
    # errors
    "ReproError", "AxiomViolation", "CompositionError", "SignatureError",
    "TransitionError", "TimelockError", "ScheduleError",
    "ClockEnvelopeError", "SimulationLimitError", "SpecificationError",
]

from repro.sim.delay import DelayModel  # noqa: E402  (re-export)

# Extensions (Sections 6 closing remark, 7.1, 7.3, intro motivations) —
# imported last to keep the core import graph acyclic.
from repro.broadcast import (  # noqa: E402
    FloodProcess,
    LeaderElectProcess,
    build_flood_system,
    build_leader_system,
)
from repro.detector import (  # noqa: E402
    DeadlineMonitor,
    HeartbeatSender,
    build_detector_system,
    detector_timeout,
)
from repro.faults import (  # noqa: E402
    BernoulliFaults,
    BurstFaults,
    CrashSchedule,
    CrashableEntity,
    LossyChannelEntity,
    NoFaults,
    ReliableAdapter,
    effective_delay_bounds,
)
from repro.objects import (  # noqa: E402
    BlindUpdateObjectProcess,
    CounterSpec,
    GrowSetSpec,
    LWWMapSpec,
    MaxRegisterSpec,
    ObjectWorkload,
    PNCounterSpec,
    RegisterSpec,
    SequentialSpec,
    clock_object_system,
    is_object_linearizable,
    run_object_experiment,
    timed_object_system,
)
from repro.tdma import (  # noqa: E402
    TDMAProcess,
    build_tdma_system,
    critical_intervals,
    max_overlap,
)
from repro.traces.sequential_consistency import (  # noqa: E402
    is_sequentially_consistent,
)

__all__ += [
    "FloodProcess", "LeaderElectProcess", "build_flood_system",
    "build_leader_system",
    "HeartbeatSender", "DeadlineMonitor", "build_detector_system",
    "detector_timeout",
    "NoFaults", "BernoulliFaults", "BurstFaults", "LossyChannelEntity",
    "ReliableAdapter", "effective_delay_bounds", "CrashableEntity",
    "CrashSchedule",
    "SequentialSpec", "RegisterSpec", "CounterSpec", "PNCounterSpec",
    "MaxRegisterSpec", "GrowSetSpec", "LWWMapSpec",
    "BlindUpdateObjectProcess", "ObjectWorkload", "timed_object_system",
    "clock_object_system", "run_object_experiment", "is_object_linearizable",
    "TDMAProcess", "build_tdma_system", "critical_intervals", "max_overlap",
    "is_sequentially_consistent",
]

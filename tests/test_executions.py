"""Unit tests for executions, timed sequences, schedules, and traces."""

import pytest

from repro.automata.actions import NU, Action, action_set
from repro.automata.executions import (
    Execution,
    TimedEvent,
    TimedSequence,
    timed_sequence,
)
from repro.automata.state import State
from repro.errors import ReproError

A = Action("A")
B = Action("B", (1,))
C = Action("C")


class TestTimedSequence:
    def test_construction_from_pairs(self):
        seq = timed_sequence((A, 0.0), (B, 1.0))
        assert len(seq) == 2
        assert seq[0] == TimedEvent(A, 0.0)

    def test_monotonicity_enforced(self):
        with pytest.raises(ReproError):
            timed_sequence((A, 1.0), (B, 0.5))

    def test_ties_allowed(self):
        seq = timed_sequence((A, 1.0), (B, 1.0))
        assert seq.times() == [1.0, 1.0]

    def test_restrict(self):
        seq = timed_sequence((A, 0.0), (B, 1.0), (C, 2.0))
        restricted = seq | action_set("A", "C")
        assert restricted.actions() == [A, C]

    def test_shift(self):
        seq = timed_sequence((A, 0.0), (B, 1.0)).shift(0.5)
        assert seq.times() == [0.5, 1.5]

    def test_equality_and_hash(self):
        assert timed_sequence((A, 0.0)) == timed_sequence((A, 0.0))
        assert hash(timed_sequence((A, 0.0))) == hash(timed_sequence((A, 0.0)))

    def test_slicing_returns_sequence(self):
        seq = timed_sequence((A, 0.0), (B, 1.0), (C, 2.0))
        assert isinstance(seq[1:], TimedSequence)
        assert seq[1:].actions() == [B, C]

    def test_stable_sort_preserves_tie_order(self):
        raw = TimedSequence.__new__(TimedSequence)
        object.__setattr__(
            raw,
            "_events",
            (TimedEvent(A, 2.0), TimedEvent(B, 1.0), TimedEvent(C, 1.0)),
        )
        ordered = raw.stable_sort_by_time()
        assert ordered.actions() == [B, C, A]

    def test_ltime(self):
        assert timed_sequence((A, 0.0), (B, 3.0)).ltime() == 3.0
        assert TimedSequence([]).ltime() == 0.0


class TestExecution:
    def make_execution(self):
        s0 = State(now=0.0, x=0)
        s1 = State(now=0.0, x=1)
        s2 = State(now=2.0, x=1)
        s3 = State(now=2.0, x=2)
        ex = Execution(s0)
        ex.append(A, s1)
        ex.append(NU, s2)
        ex.append(B, s3)
        return ex

    def test_timed_schedule_skips_nu(self):
        sched = self.make_execution().timed_schedule()
        assert sched.actions() == [A, B]

    def test_schedule_times_are_pre_state_now(self):
        sched = self.make_execution().timed_schedule()
        assert sched.times() == [0.0, 2.0]

    def test_timed_trace_restricts_to_visible(self):
        trace = self.make_execution().timed_trace(action_set("B"))
        assert trace.actions() == [B]

    def test_ltime_and_admissibility(self):
        ex = self.make_execution()
        assert ex.ltime() == 2.0
        assert ex.is_admissible_to(2.0)
        assert not ex.is_admissible_to(3.0)

    def test_states_and_last_state(self):
        ex = self.make_execution()
        assert len(ex.states()) == 4
        assert ex.last_state().x == 2

    def test_clock_stamped_schedule(self):
        s0 = State(now=0.0, clock=0.5, x=0)
        s1 = State(now=0.0, clock=0.5, x=1)
        ex = Execution(s0)
        ex.append(A, s1)
        stamped = ex.clock_stamped_schedule()
        assert stamped[0].time == 0.5

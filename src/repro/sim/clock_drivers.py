"""Clock drivers: adversaries for the ``C_eps`` envelope.

In the clock-automaton model, time passage is ``nu(Δt, Δc)`` — the
environment chooses how the local clock advances relative to real time,
subject to:

- the clock predicate ``C_eps``: ``|now - clock| <= eps`` after the step;
- monotonicity (C3);
- each component's clock deadline (the ``nu`` precondition of Figure 2
  forbids the clock from passing a pending message's stamp, which forces
  urgent deliveries).

A :class:`ClockDriver` encapsulates that choice. Theorems 4.7/5.1
quantify over *all* trajectories, so tests and benchmarks run the same
system under many drivers, including the adversarial extremes
(:class:`FastClockDriver`, :class:`SlowClockDriver`) that realize the
worst cases of the ``2*eps`` terms in the delay bounds.

Note on C3: the axiom requires the clock to *strictly* increase whenever
time passes. Drivers clamp to the envelope boundary, which can hold the
clock constant over an interval; this is the uniform limit of strictly
increasing trajectories and is indistinguishable at the level of timed
traces, so the executable layer permits it (the theory layer's axiom
checker still enforces strictness).
"""

from __future__ import annotations

import math
import random
from typing import Callable, Optional

from repro.errors import ClockEnvelopeError

INFINITY = float("inf")
_TOLERANCE = 1e-9


class ClockDriver:
    """Chooses a node's clock trajectory within the ``C_eps`` envelope.

    Subclasses override :meth:`desired` (a memoryless target trajectory)
    or :meth:`step` (for stateful trajectories). The base class clamps
    every proposal into the feasible window::

        max(clock, new_now - eps, 0) <= clock' <= min(cap, new_now + eps)

    where ``cap`` is the node's clock deadline.
    """

    def __init__(self, eps: float):
        if eps < 0:
            raise ValueError("eps must be non-negative")
        self.eps = eps

    # -- trajectory ------------------------------------------------------

    def desired(self, now: float, clock: float, new_now: float) -> float:
        """Unclamped target clock value at real time ``new_now``."""
        raise NotImplementedError

    def step(self, now: float, clock: float, new_now: float, cap: float) -> float:
        """The clock value after real time advances to ``new_now``."""
        lo = max(clock, new_now - self.eps, 0.0)
        hi = min(cap, new_now + self.eps)
        if lo > hi + _TOLERANCE:
            raise ClockEnvelopeError(
                f"no feasible clock value: window [{lo:g}, {hi:g}] is empty "
                f"(now {now:g} -> {new_now:g}, clock {clock:g}, cap {cap:g}, "
                f"eps {self.eps:g})"
            )
        proposal = self.desired(now, clock, new_now)
        return min(max(proposal, lo), hi)

    # -- deadline mapping -------------------------------------------------

    def max_now(self, now: float, clock: float, cap: float) -> float:
        """Latest real time reachable without the clock passing ``cap``.

        If the cap is already binding (``cap <= clock``), time cannot
        pass at all — some clock-urgent action must fire first.
        """
        if cap == INFINITY:
            return INFINITY
        if cap <= clock + _TOLERANCE:
            return now
        return cap + self.eps

    def solve_cap(self, now: float, clock: float, cap: float) -> float:
        """Real time at which the *desired* trajectory reaches ``cap``.

        Subclass hook for :meth:`target_now`; the default is the latest
        legal instant (riding the deadline, a legal adversary choice).
        """
        return cap + self.eps

    def target_now(self, now: float, clock: float, cap: float) -> float:
        """The real time the node should stop at so its clock hits ``cap``.

        Stopping earlier than :meth:`max_now` is always a legal ``nu``
        choice; drivers use it so clock-urgent actions fire when the
        driver's own trajectory reaches the cap (a perfect clock fires
        at ``now == cap``, not ``cap + eps``). The result is clamped
        into ``(now, cap + eps]`` — falling back to the latest legal
        instant when the solved time is degenerate — so the engine
        always makes progress.
        """
        if cap == INFINITY:
            return INFINITY
        if cap <= clock + _TOLERANCE:
            return now
        target = self.solve_cap(now, clock, cap)
        latest = cap + self.eps
        earliest = max(cap - self.eps, 0.0)
        target = min(max(target, earliest), latest)
        if target <= now + _TOLERANCE:
            target = latest
        return target

    def __repr__(self) -> str:
        return f"<{type(self).__name__} eps={self.eps:g}>"


class PerfectClockDriver(ClockDriver):
    """``clock == now``: the degenerate, perfectly synchronized clock."""

    def desired(self, now: float, clock: float, new_now: float) -> float:
        return new_now

    def solve_cap(self, now: float, clock: float, cap: float) -> float:
        return cap


class SkewedClockDriver(ClockDriver):
    """A constant offset ``beta`` from real time, ``|beta| <= eps``."""

    def __init__(self, eps: float, beta: float):
        super().__init__(eps)
        if abs(beta) > eps:
            raise ValueError(f"|beta|={abs(beta):g} exceeds eps={eps:g}")
        self.beta = beta

    def desired(self, now: float, clock: float, new_now: float) -> float:
        return new_now + self.beta

    def solve_cap(self, now: float, clock: float, cap: float) -> float:
        return cap - self.beta


class FastClockDriver(SkewedClockDriver):
    """The adversarial fast extreme: ``clock == now + eps``."""

    def __init__(self, eps: float):
        super().__init__(eps, eps)


class SlowClockDriver(SkewedClockDriver):
    """The adversarial slow extreme: ``clock == max(now - eps, 0)``."""

    def __init__(self, eps: float):
        super().__init__(eps, -eps)


class DriftingClockDriver(ClockDriver):
    """A clock running at a constant rate ``rho`` (1.0 = real time).

    The integrated drift is clamped to the envelope, so a fast clock
    (``rho > 1``) eventually rides the ``now + eps`` boundary and a slow
    one (``rho < 1``) the ``now - eps`` boundary — exactly the behavior
    of a hardware oscillator between synchronizations.
    """

    def __init__(self, eps: float, rho: float):
        super().__init__(eps)
        if rho <= 0:
            raise ValueError("drift rate must be positive")
        self.rho = rho

    def desired(self, now: float, clock: float, new_now: float) -> float:
        return clock + self.rho * (new_now - now)

    def solve_cap(self, now: float, clock: float, cap: float) -> float:
        return now + (cap - clock) / self.rho


class SawtoothClockDriver(ClockDriver):
    """Drift at rate ``rho``, resynchronize toward real time every ``period``.

    Models a clock disciplined by a synchronization service (e.g. NTP
    [12]): between syncs it drifts; at each sync boundary it slews
    rapidly back toward ``now`` (never backwards — monotonicity).
    """

    def __init__(self, eps: float, rho: float, period: float, slew: float = 4.0):
        super().__init__(eps)
        if period <= 0:
            raise ValueError("period must be positive")
        self.rho = rho
        self.period = period
        self.slew = slew

    def desired(self, now: float, clock: float, new_now: float) -> float:
        phase = math.fmod(new_now, self.period)
        drifting = clock + self.rho * (new_now - now)
        if phase < self.period * 0.25 and drifting < new_now:
            # Early in the period: slew back toward real time.
            return min(new_now, clock + self.slew * (new_now - now))
        return drifting

    def solve_cap(self, now: float, clock: float, cap: float) -> float:
        return now + (cap - clock) / self.rho


class RandomWalkClockDriver(ClockDriver):
    """A seeded random rate in ``[lo_rate, hi_rate]`` per step."""

    def __init__(
        self,
        eps: float,
        seed: int = 0,
        lo_rate: float = 0.5,
        hi_rate: float = 1.5,
    ):
        super().__init__(eps)
        self._rng = random.Random(seed)
        self.lo_rate = lo_rate
        self.hi_rate = hi_rate

    def desired(self, now: float, clock: float, new_now: float) -> float:
        rate = self._rng.uniform(self.lo_rate, self.hi_rate)
        return clock + rate * (new_now - now)

    def solve_cap(self, now: float, clock: float, cap: float) -> float:
        # Nominal rate 1.0; target_now re-solves if the sampled rate
        # undershoots, so convergence to the cap is still guaranteed.
        return now + (cap - clock)


DriverFactory = Callable[[int], ClockDriver]
"""A factory producing a fresh driver for node ``i`` (drivers may be
stateful, so each node of each run needs its own instance)."""


def driver_factory(
    kind: str, eps: float, seed: int = 0, **kwargs
) -> DriverFactory:
    """Build a per-node driver factory by name.

    ``kind`` is one of ``perfect``, ``fast``, ``slow``, ``skewed``,
    ``drift``, ``sawtooth``, ``random``, ``mixed``. ``mixed`` assigns
    alternating fast/slow/random drivers by node index — a convenient
    worst case where communicating nodes disagree by the full ``2*eps``.
    """

    def make(node: int) -> ClockDriver:
        if kind == "perfect":
            return PerfectClockDriver(eps)
        if kind == "fast":
            return FastClockDriver(eps)
        if kind == "slow":
            return SlowClockDriver(eps)
        if kind == "skewed":
            return SkewedClockDriver(eps, kwargs.get("beta", eps / 2.0))
        if kind == "drift":
            return DriftingClockDriver(eps, kwargs.get("rho", 1.0005))
        if kind == "sawtooth":
            return SawtoothClockDriver(
                eps,
                kwargs.get("rho", 1.001),
                kwargs.get("period", 10.0),
            )
        if kind == "random":
            return RandomWalkClockDriver(eps, seed + node * 7919)
        if kind == "mixed":
            cycle = node % 3
            if cycle == 0:
                return FastClockDriver(eps)
            if cycle == 1:
                return SlowClockDriver(eps)
            return RandomWalkClockDriver(eps, seed + node * 7919)
        raise ValueError(f"unknown clock driver kind: {kind!r}")

    return make

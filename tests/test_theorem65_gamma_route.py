"""Theorem 6.5 via its actual proof route (Lemma 6.3 + Lemma 6.4).

The proof of Theorem 6.5 goes: the clock-stamped schedule ``gamma`` of a
transformed-S run is an execution-trace of the *timed-model* S, hence
eps-superlinearizable with the Lemma 6.2 latencies (this is Lemma 6.3's
content); and superlinearizability of the witness implies plain
linearizability of the eps-perturbed real trace (Lemma 6.4). These
tests walk that exact route on recorded runs, complementing the direct
end-to-end checks in ``test_clock_register.py``.
"""

import pytest

from repro.registers.system import (
    INITIAL_VALUE,
    clock_register_system,
    run_register_experiment,
)
from repro.registers.workload import RegisterWorkload
from repro.sim.clock_drivers import driver_factory
from repro.sim.delay import UniformDelay
from repro.sim.scheduler import RandomScheduler
from repro.traces.linearizability import (
    extract_operations,
    is_linearizable,
    is_superlinearizable,
)
from repro.traces.relations import equivalent_eps

EPS, D1, D2, C = 0.15, 0.2, 1.0, 0.3
DELTA = 0.01
D2P = D2 + 2 * EPS


def run_transformed_s(seed):
    workload = RegisterWorkload(operations=5, read_fraction=0.5, seed=seed)
    spec = clock_register_system(
        n=3, d1=D1, d2=D2, c=C, eps=EPS, workload=workload,
        drivers=driver_factory("mixed", EPS, seed=seed),
        delta=DELTA, delay_model=UniformDelay(seed=seed),
    )
    return run_register_experiment(
        spec, 80.0, scheduler=RandomScheduler(seed=seed)
    )


class TestLemma63Route:
    @pytest.mark.parametrize("seed", range(4))
    def test_gamma_is_superlinearizable(self, seed):
        """gamma (clock stamps) is a timed-model S trace: in Q."""
        run = run_transformed_s(seed)
        gamma = run.result.clock_trace()
        assert is_superlinearizable(gamma, EPS, INITIAL_VALUE)

    @pytest.mark.parametrize("seed", range(4))
    def test_gamma_latencies_match_lemma62(self, seed):
        """Clock-time latencies obey the *unstretched* Lemma 6.2 bounds
        (stamps only perturb by invocation/response stamping at client
        vs node clocks: reads/writes at the node side are exact)."""
        run = run_transformed_s(seed)
        gamma = run.result.clock_trace()
        # client events are stamped with now (clients have no clock);
        # node responses with node clocks — latencies in gamma may thus
        # stretch by at most eps relative to pure clock time
        ops = extract_operations(gamma)
        for op in ops:
            if op.kind == "R":
                assert op.latency <= 2 * EPS + C + DELTA + EPS + 1e-9
            else:
                assert op.latency <= D2P - C + EPS + 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_lemma64_composition(self, seed):
        """The full chain: gamma in Q, real trace =_eps gamma, hence
        real trace in P."""
        run = run_transformed_s(seed)
        gamma = run.result.clock_trace()
        trace = run.result.trace
        from repro.registers.spec import register_problem_partition

        kappa = [sig.visible for sig in register_problem_partition(3)]
        assert is_superlinearizable(gamma, EPS, INITIAL_VALUE)
        assert equivalent_eps(gamma, trace, EPS, kappa)
        assert is_linearizable(trace, INITIAL_VALUE)

"""Fixture: pure_enabled=True but enabled() mutates state (one CON001)."""


class CountingEntity(Entity):  # noqa: F821 -- parsed, never imported
    """Claims a pure enabled() while counting calls in it."""

    pure_enabled = True

    def enabled(self, state, now):
        """Impure: bumps a state counter on every evaluation."""
        state.calls += 1
        return []

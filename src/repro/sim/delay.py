"""Message-delay models: adversaries for the ``[d1, d2]`` channels.

The channel automaton of Figure 1 delivers each message at some
nondeterministic time within ``[send + d1, send + d2]``. A
:class:`DelayModel` resolves that nondeterminism: the channel samples a
delivery time for each message on arrival. Correctness theorems quantify
over all resolutions, so tests exercise several models including the
extremes.
"""

from __future__ import annotations

import random
from typing import Tuple


class DelayModel:
    """Chooses per-message delays within ``[d1, d2]``."""

    #: a shard-safe model's sample for a message depends only on the
    #: edge and the per-edge message sequence, never on the global
    #: cross-edge sampling order. Models drawing from one shared RNG
    #: (UniformDelay, JitteredDelay) consume it in engine arrival order,
    #: which differs between serial and sharded runs.
    shard_safe = False

    def sample(
        self, edge: Tuple[int, int], message: object, send_time: float,
        d1: float, d2: float,
    ) -> float:
        """Return the chosen delay (must lie in ``[d1, d2]``)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class ConstantFractionDelay(DelayModel):
    """Every message takes ``d1 + fraction * (d2 - d1)``."""

    shard_safe = True  # stateless

    def __init__(self, fraction: float = 0.5):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        self.fraction = fraction

    def sample(self, edge, message, send_time, d1, d2) -> float:
        return d1 + self.fraction * (d2 - d1)


class MinimalDelay(ConstantFractionDelay):
    """Every message takes exactly ``d1`` (fastest network)."""

    def __init__(self):
        super().__init__(0.0)


class MaximalDelay(ConstantFractionDelay):
    """Every message takes exactly ``d2`` (slowest permitted network)."""

    def __init__(self):
        super().__init__(1.0)


class UniformDelay(DelayModel):
    """Seeded i.i.d. uniform delays over ``[d1, d2]``."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def sample(self, edge, message, send_time, d1, d2) -> float:
        return self._rng.uniform(d1, d2)


class AlternatingExtremesDelay(DelayModel):
    """Alternate ``d1`` and ``d2`` per message, per edge.

    A cheap adversary that maximizes reordering between consecutive
    messages on the same edge (the paper's channels may reorder).
    """

    shard_safe = True  # per-edge state only; edges never span shards twice

    def __init__(self):
        self._toggle = {}

    def sample(self, edge, message, send_time, d1, d2) -> float:
        flip = self._toggle.get(edge, False)
        self._toggle[edge] = not flip
        return d2 if flip else d1


class EdgeSeededDelay(DelayModel):
    """Seeded uniform delays from an independent RNG per edge.

    The sharded-mode replacement for :class:`UniformDelay`: each edge
    derives its own ``random.Random`` from the seed, so a message's
    delay depends only on the edge and its position in that edge's send
    sequence — the cross-edge interleaving (which differs between the
    serial engine and barrier-deferred sharded delivery) is irrelevant.
    """

    shard_safe = True  # per-edge RNG streams, no cross-edge coupling

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rngs = {}

    def _rng(self, edge) -> random.Random:
        rng = self._rngs.get(edge)
        if rng is None:
            src, dst = edge
            rng = random.Random(self.seed * 1_000_003 + src * 7919 + dst)
            self._rngs[edge] = rng
        return rng

    def sample(self, edge, message, send_time, d1, d2) -> float:
        return self._rng(edge).uniform(d1, d2)


class JitteredDelay(DelayModel):
    """Mostly-fast network with occasional near-``d2`` stragglers."""

    def __init__(self, seed: int = 0, straggler_probability: float = 0.1):
        if not 0.0 <= straggler_probability <= 1.0:
            raise ValueError("straggler_probability must be in [0, 1]")
        self._rng = random.Random(seed)
        self.straggler_probability = straggler_probability

    def sample(self, edge, message, send_time, d1, d2) -> float:
        if self._rng.random() < self.straggler_probability:
            return self._rng.uniform(d1 + 0.9 * (d2 - d1), d2)
        return self._rng.uniform(d1, d1 + 0.2 * (d2 - d1))

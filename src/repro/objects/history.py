"""Generic (spec-driven) linearizability of object histories.

Action conventions for generalized objects (distinct from the register
names so both can coexist in one system):

- ``DO_i(update)`` — blind-update invocation at node ``i``;
- ``DONE_i()`` — update response;
- ``ASK_i(query)`` — query invocation;
- ``REPLY_i(value)`` — query response carrying the returned value.

The checker generalizes :mod:`repro.traces.linearizability` from the
read/write register to any :class:`~repro.objects.specs.SequentialSpec`:
a history is linearizable iff there exist increasing representative
points, one inside each operation's window, such that replaying the
operations through the sequential spec in point order yields every
query's recorded response.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.automata.executions import TimedSequence
from repro.objects.specs import SequentialSpec
from repro.traces.linearizability import AlternationViolation

DO = "DO"
DONE = "DONE"
ASK = "ASK"
REPLY = "REPLY"


@dataclass(frozen=True)
class ObjOperation:
    """One complete operation on a generalized object."""

    op_id: int
    node: int
    kind: str            # "U" (blind update) or "Q" (query)
    payload: Tuple       # the update or the query
    response: object     # recorded response (None for updates)
    inv_time: float
    res_time: float

    def window(self, min_after_inv: float = 0.0) -> Tuple[float, float]:
        """The closed interval admissible for the linearization point."""
        return (self.inv_time + min_after_inv, self.res_time)

    @property
    def latency(self) -> float:
        return self.res_time - self.inv_time

    def __repr__(self) -> str:
        detail = f"{self.payload}"
        if self.kind == "Q":
            detail += f"->{self.response!r}"
        return (
            f"ObjOp#{self.op_id}({self.kind} {detail} @node{self.node} "
            f"[{self.inv_time:g},{self.res_time:g}])"
        )


def check_object_alternation(trace: TimedSequence) -> Optional[str]:
    """Alternation condition for DO/DONE/ASK/REPLY actions."""
    pending: Dict[int, Optional[str]] = {}
    for ev in trace:
        name = ev.action.name
        if name not in (DO, DONE, ASK, REPLY):
            continue
        node = ev.action.params[0]
        outstanding = pending.get(node)
        if name in (DO, ASK):
            if outstanding is not None:
                return "environment"
            pending[node] = name
        else:
            if outstanding is None:
                return "system"
            expected = DONE if outstanding == DO else REPLY
            if name != expected:
                return "system"
            pending[node] = None
    return None


def extract_object_operations(trace: TimedSequence) -> List[ObjOperation]:
    """Pair invocations with responses; drop pending tails.

    Raises :class:`AlternationViolation` (tagged with who violated
    first) when invocations and responses do not alternate per node.
    """
    verdict = check_object_alternation(trace)
    if verdict is not None:
        raise AlternationViolation(
            f"alternation condition violated by the {verdict}",
            by_environment=(verdict == "environment"),
        )
    ops: List[ObjOperation] = []
    pending: Dict[int, Tuple[str, Tuple, float]] = {}
    next_id = 0
    for ev in trace:
        name = ev.action.name
        if name == DO:
            node, payload = ev.action.params[0], ev.action.params[1]
            pending[node] = ("U", payload, ev.time)
        elif name == ASK:
            node, payload = ev.action.params[0], ev.action.params[1]
            pending[node] = ("Q", payload, ev.time)
        elif name == DONE:
            node = ev.action.params[0]
            kind, payload, inv_time = pending.pop(node)
            ops.append(
                ObjOperation(next_id, node, "U", payload, None, inv_time, ev.time)
            )
            next_id += 1
        elif name == REPLY:
            node, response = ev.action.params[0], ev.action.params[1]
            kind, payload, inv_time = pending.pop(node)
            ops.append(
                ObjOperation(
                    next_id, node, "Q", payload, response, inv_time, ev.time
                )
            )
            next_id += 1
    return ops


def find_object_linearization(
    ops: Sequence[ObjOperation],
    spec: SequentialSpec,
    min_after_inv: float = 0.0,
    tolerance: float = 1e-9,
) -> Optional[List[Tuple[int, float]]]:
    """Spec-driven linearization search.

    Same structure as the register search: depth-first over "which
    operation next", candidates restricted to windows opening before
    every other window closes, memoized on (remaining set, object state,
    time floor).
    """
    windows = {op.op_id: op.window(min_after_inv) for op in ops}
    for lo, hi in windows.values():
        if lo > hi + tolerance:
            return None
    by_id = {op.op_id: op for op in ops}
    memo: Dict[Tuple[FrozenSet[int], Hashable, float], bool] = {}
    order: List[Tuple[int, float]] = []

    def recurse(remaining: FrozenSet[int], state: Hashable, floor: float) -> bool:
        if not remaining:
            return True
        key = (remaining, state, round(floor, 9))
        if key in memo:
            return False
        min_hi = min(windows[i][1] for i in remaining)
        candidates = sorted(
            (i for i in remaining if windows[i][0] <= min_hi + tolerance),
            key=lambda i: windows[i][0],
        )
        for i in candidates:
            op = by_id[i]
            point = max(windows[i][0], floor)
            if point > windows[i][1] + tolerance:
                continue
            if op.kind == "Q":
                if spec.evaluate(state, op.payload) != op.response:
                    continue
                new_state = state
            else:
                new_state = spec.apply_update(state, op.payload)
            order.append((i, point))
            if recurse(remaining - {i}, new_state, point):
                return True
            order.pop()
        memo[key] = False
        return False

    if recurse(frozenset(by_id), spec.initial(), 0.0):
        return list(order)
    return None


def _coerce(history: Iterable, trace_ok: bool = True) -> Optional[List[ObjOperation]]:
    if isinstance(history, TimedSequence):
        try:
            return extract_object_operations(history)
        except AlternationViolation as violation:
            if violation.by_environment:
                return None
            raise
    return list(history)


def is_object_linearizable(
    history: Iterable, spec: SequentialSpec, tolerance: float = 1e-9
) -> bool:
    """Linearizability of a history against a sequential spec."""
    ops = _coerce(history)
    if ops is None:
        return True
    return find_object_linearization(ops, spec, 0.0, tolerance) is not None


def is_object_superlinearizable(
    history: Iterable,
    spec: SequentialSpec,
    eps: float,
    tolerance: float = 1e-9,
) -> bool:
    """eps-superlinearizability: points at least ``2*eps`` after inv."""
    ops = _coerce(history)
    if ops is None:
        return True
    return (
        find_object_linearization(ops, spec, 2.0 * eps, tolerance) is not None
    )

"""Tests for the observability layer (repro.obs) and its engine wiring."""

import io
import json

import pytest

from helpers import pinger_process_factory, pinger_topology

from repro.core.pipeline import build_clock_system
from repro.errors import SimulationLimitError
from repro.obs import (
    CANONICAL_STAT_KEYS,
    JsonlTracer,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_METRICS,
    NULL_TRACER,
    SKEW_BUCKETS,
    Tracer,
    read_trace,
    stats_from_metrics,
)
from repro.obs.schema import validate_metrics, validate_trace_lines
from repro.sim.clock_drivers import driver_factory
from repro.sim.delay import UniformDelay
from repro.sim.persistence import decode_action, encode_action
from repro.sim.recorder import Recorder
from repro.sim.scheduler import RandomScheduler


def _pinger_spec(eps=0.1, seed=5):
    return build_clock_system(
        pinger_topology(),
        pinger_process_factory(count=5, interval=2.0),
        eps, 0.2, 1.0,
        drivers=driver_factory("mixed", eps, seed=seed),
        delay_model=UniformDelay(seed=seed),
    )


# ---------------------------------------------------------------------------
# instrument semantics
# ---------------------------------------------------------------------------


class TestInstruments:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        # get-or-create returns the same instrument
        assert registry.counter("c") is counter

    def test_gauge(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(2.0)
        gauge.set(1.0)
        assert gauge.value == 1.0
        gauge.set_max(5.0)
        gauge.set_max(3.0)
        assert gauge.value == 5.0

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", bounds=(1.0, 2.0))
        for v in (0.5, 1.0, 1.5, 10.0):
            hist.observe(v)
        d = hist.to_dict()
        # le semantics: 0.5 and 1.0 in bucket <=1, 1.5 in <=2, 10 overflow
        assert d["counts"] == [2, 1, 1]
        assert d["count"] == 4
        assert d["min"] == 0.5
        assert d["max"] == 10.0
        assert d["sum"] == pytest.approx(13.0)

    def test_histogram_mean(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", bounds=(1.0,))
        hist.observe(1.0)
        hist.observe(3.0)
        assert hist.mean == pytest.approx(2.0)

    def test_mismatched_histogram_bounds_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", bounds=(5.0,))

    def test_merge(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.gauge("g").set(1.0)
        b.gauge("g").set(4.0)
        a.histogram("h", bounds=(1.0,)).observe(0.5)
        b.histogram("h", bounds=(1.0,)).observe(2.5)
        a.merge(b)
        assert a.counter("c").value == 5
        assert a.gauge("g").value == 4.0  # merge takes the max
        assert a.histogram("h", bounds=(1.0,)).to_dict()["counts"] == [1, 1]

    def test_volatile_excluded_from_snapshot(self):
        registry = MetricsRegistry()
        registry.gauge("wall", volatile=True).set(123.0)
        registry.gauge("det").set(1.0)
        snapshot = registry.snapshot()
        assert "wall" not in snapshot["gauges"]
        assert "det" in snapshot["gauges"]
        full = registry.snapshot(include_volatile=True)
        assert full["gauges"]["wall"] == 123.0

    def test_null_instruments_are_inert(self):
        NULL_COUNTER.inc()
        NULL_COUNTER.inc(10)
        NULL_GAUGE.set(1.0)
        NULL_GAUGE.set_max(2.0)
        NULL_HISTOGRAM.observe(3.0)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0.0
        assert NULL_METRICS.counter("anything") is NULL_COUNTER
        assert NULL_METRICS.gauge("anything") is NULL_GAUGE
        assert NULL_METRICS.histogram("anything") is NULL_HISTOGRAM


# ---------------------------------------------------------------------------
# determinism of the exported JSON
# ---------------------------------------------------------------------------


class TestDeterminism:
    def _run(self, seed=5):
        metrics = MetricsRegistry()
        result = _pinger_spec(seed=seed).run(
            30.0, scheduler=RandomScheduler(seed), metrics=metrics
        )
        return result, metrics

    def test_same_seed_byte_identical_json(self):
        _, m1 = self._run()
        _, m2 = self._run()
        assert m1.to_json() == m2.to_json()

    def test_volatile_wall_clock_present_but_not_exported(self):
        _, metrics = self._run()
        full = metrics.snapshot(include_volatile=True)
        assert "repro.engine.wall_seconds" in full["gauges"]
        assert "repro.engine.wall_seconds" not in metrics.snapshot()["gauges"]

    def test_stats_come_from_metrics(self):
        result, metrics = self._run()
        assert tuple(result.stats) == CANONICAL_STAT_KEYS
        assert result.stats == stats_from_metrics(metrics)
        assert result.stats["steps"] == metrics.counter("repro.engine.steps").value

    def test_metrics_snapshot_on_result(self):
        result, _ = self._run()
        assert result.metrics is not None
        assert validate_metrics(result.metrics) == []
        skew = result.metrics["histograms"]["repro.clock.skew"]
        assert skew["count"] > 0
        assert skew["max"] <= result.metrics["gauges"]["repro.clock.eps"]


# ---------------------------------------------------------------------------
# tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_base_tracer_is_null(self):
        tracer = Tracer()
        assert not tracer.enabled
        # every hook is a no-op; none may raise
        tracer.run_start(10.0)
        tracer.action(1.0, "e", None, None, True)
        tracer.injection(1.0, None)
        tracer.advance(1.0, 2.0, None)
        tracer.timelock(2.0, "e")
        tracer.run_end(2.0, 5)
        tracer.close()
        assert not NULL_TRACER.enabled

    def test_disabled_tracer_leaves_run_unchanged(self):
        spec = _pinger_spec()
        base = spec.run(30.0, scheduler=RandomScheduler(5))
        traced = _pinger_spec().run(
            30.0, scheduler=RandomScheduler(5), tracer=Tracer()
        )
        assert base.stats == traced.stats
        assert base.metrics == traced.metrics

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = JsonlTracer(str(path))
        assert tracer.enabled
        result = _pinger_spec().run(
            30.0, scheduler=RandomScheduler(5), tracer=tracer
        )
        tracer.close()
        lines = path.read_text().splitlines()
        assert validate_trace_lines(lines) == []
        records = read_trace(str(path))
        kinds = [r["k"] for r in records]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        actions = [r for r in records if r["k"] == "action"]
        assert len(actions) == result.stats["actions"]
        # decoded actions agree with the recorder, via the persistence codec
        recorded = result.recorder.events
        for record, event in zip(actions, recorded):
            assert record["action"] == event.action
            assert record["action"] == decode_action(encode_action(event.action))
            assert record["now"] == pytest.approx(event.now)

    def test_stream_target(self):
        buffer = io.StringIO()
        tracer = JsonlTracer(buffer)
        _pinger_spec().run(10.0, tracer=tracer)
        tracer.close()
        header = json.loads(buffer.getvalue().splitlines()[0])
        assert header["format"] == "repro-obs-trace"


# ---------------------------------------------------------------------------
# recorder cap / ring buffer (satellite)
# ---------------------------------------------------------------------------


class TestRecorderLimits:
    def test_cap_raises(self):
        recorder = Recorder(max_events=3)
        spec = _pinger_spec()
        with pytest.raises(SimulationLimitError):
            spec.run(30.0, recorder=recorder)

    def test_ring_keeps_tail(self):
        full = Recorder()
        _pinger_spec().run(30.0, recorder=full, scheduler=RandomScheduler(5))
        ring = Recorder(max_events=10, on_overflow="ring")
        result = _pinger_spec().run(
            30.0, recorder=ring, scheduler=RandomScheduler(5)
        )
        assert len(ring) == 10
        assert ring.dropped == len(full.events) - 10
        # the surviving window is exactly the chronological tail
        assert ring.events == full.events[-10:]
        # indices stay globally monotone across the wrap
        indices = [e.index for e in ring.events]
        assert indices == sorted(indices)
        assert result.metrics["gauges"]["repro.recorder.dropped"] == ring.dropped

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            Recorder(max_events=0)
        with pytest.raises(ValueError):
            Recorder(max_events=5, on_overflow="bogus")

    def test_events_setter_resets(self):
        ring = Recorder(max_events=2, on_overflow="ring")
        _pinger_spec().run(20.0, recorder=ring)
        ring.events = []
        assert len(ring) == 0
        assert ring.dropped == 0


# ---------------------------------------------------------------------------
# schema validators
# ---------------------------------------------------------------------------


class TestSchema:
    def test_valid_metrics(self):
        metrics = MetricsRegistry()
        metrics.counter("c").inc()
        metrics.histogram("h", bounds=SKEW_BUCKETS).observe(0.01)
        assert validate_metrics(json.loads(metrics.to_json())) == []

    def test_invalid_metrics(self):
        assert validate_metrics({"format": "nope"}) != []
        assert validate_metrics({"format": "repro-metrics", "version": 1}) != []

    def test_invalid_trace(self):
        assert validate_trace_lines(['{"format": "nope", "version": 1}']) != []
        good_header = '{"format": "repro-obs-trace", "version": 1}'
        assert validate_trace_lines([good_header, '{"k": "bogus"}']) != []

"""The channel automaton ``E_{ij,[d1,d2]}`` of Figure 1.

State: a buffer of in-transit messages, each remembering its send time.
Transitions (Figure 1):

- ``SENDMSG_i(j, m)`` (input) adds ``(m, now)`` to the buffer;
- ``RECVMSG_j(i, m)`` (output) removes a message, with precondition
  ``t + d1 <= now <= t + d2``;
- ``nu(Δt)`` is blocked from passing any message's latest delivery time
  ``t + d2`` — the operational deadline.

The *choice* of delivery time within the window belongs to the
environment; the executable channel resolves it by sampling a target
delivery time from a :class:`~repro.sim.delay.DelayModel` on arrival and
treating delivery as urgent at that instant. Every such resolution is a
legal behavior of the Figure 1 automaton, and delivery remains within
``[d1, d2]`` by construction.

The same class implements the clock-model channel ``E^c`` (Section 4.1):
only the action names change (``ESENDMSG``/``ERECVMSG``) and the message
domain becomes ``M x R+`` (payloads carry the sender's clock stamp) —
pass ``prefix="E"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.automata.actions import Action, ActionPattern, PatternActionSet
from repro.automata.signature import Signature
from repro.components.base import Entity
from repro.errors import TransitionError
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_SKETCH,
    OCCUPANCY_BUCKETS,
)
from repro.sim.delay import ConstantFractionDelay, DelayModel

INFINITY = float("inf")


@dataclass
class InTransit:
    """One message in flight."""

    message: object
    send_time: float
    deliver_at: float


@dataclass
class ChannelState:
    """Mutable channel state: the in-transit buffer and counters."""

    buffer: List[InTransit] = field(default_factory=list)
    sent: int = 0
    delivered: int = 0


class ChannelEntity(Entity):
    """Executable ``E_{ij,[d1,d2]}`` (or ``E^c`` with ``prefix="E"``)."""

    # deadline == min deliver_at over the buffer (state-only; delays are
    # sampled on apply_input, not in queries), and deliveries only become
    # enabled when time reaches that minimum.
    static_deadline = True
    wakes_at_deadline = True

    def __init__(
        self,
        src: int,
        dst: int,
        d1: float,
        d2: float,
        delay_model: Optional[DelayModel] = None,
        prefix: str = "",
    ):
        if d1 < 0 or d2 < d1:
            raise ValueError(f"invalid delay bounds [{d1}, {d2}]")
        self.src = src
        self.dst = dst
        self.d1 = d1
        self.d2 = d2
        self.delay_model = delay_model or ConstantFractionDelay(0.5)
        self.send_name = f"{prefix}SENDMSG"
        self.recv_name = f"{prefix}RECVMSG"
        signature = Signature(
            inputs=PatternActionSet([ActionPattern(self.send_name, (src, dst))]),
            outputs=PatternActionSet([ActionPattern(self.recv_name, (dst, src))]),
        )
        super().__init__(f"chan[{src}->{dst}]{prefix and '^c' or ''}", signature)
        self._sent = NULL_COUNTER
        self._delivered = NULL_COUNTER
        self._latency = NULL_HISTOGRAM
        self._latency_sketch = NULL_SKETCH
        self._occupancy = NULL_HISTOGRAM
        self._depth = NULL_GAUGE

    # -- observability -------------------------------------------------------

    def instrument(self, metrics) -> None:
        """Publish per-delivery latencies and in-transit queue depths."""
        self._sent = metrics.counter("repro.channel.sent")
        self._delivered = metrics.counter("repro.channel.delivered")
        self._latency = metrics.histogram(
            "repro.channel.delivery_latency", LATENCY_BUCKETS
        )
        self._latency_sketch = metrics.sketch("repro.phase.channel")
        self._occupancy = metrics.histogram(
            "repro.channel.occupancy", OCCUPANCY_BUCKETS
        )
        self._depth = metrics.gauge(
            f"repro.channel.queue_depth[{self.src}->{self.dst}]"
        )

    # -- entity interface ----------------------------------------------------

    def initial_state(self) -> ChannelState:
        return ChannelState()

    def apply_input(self, state: ChannelState, action: Action, now: float) -> None:
        # SENDMSG_src(dst, m): buffer (m, now) with a sampled delivery time.
        message = action.params[2]
        delay = self.delay_model.sample(
            (self.src, self.dst), message, now, self.d1, self.d2
        )
        if not (self.d1 - 1e-12 <= delay <= self.d2 + 1e-12):
            raise TransitionError(
                f"{self.name}: delay model produced {delay:g} outside "
                f"[{self.d1:g}, {self.d2:g}]"
            )
        # repro: lint-ignore[ISO003] -- ownership transfer: a SENDMSG
        # hands the message to the channel; the sender never reads or
        # mutates it afterwards (the lossy channel deep-copies when it
        # duplicates, which is the one case two aliases would coexist)
        state.buffer.append(InTransit(message, now, now + delay))
        state.sent += 1
        self._sent.inc()
        depth = float(len(state.buffer))
        self._occupancy.observe(depth)
        self._depth.set(depth)

    def enabled(self, state: ChannelState, now: float) -> List[Action]:
        ready = [
            item
            for item in state.buffer
            if item.deliver_at <= now + 1e-12 and item.send_time + self.d1 <= now + 1e-12
        ]
        return [
            Action(self.recv_name, (self.dst, self.src, item.message))
            for item in ready
        ]

    def fire(self, state: ChannelState, action: Action, now: float) -> None:
        message = action.params[2]
        for idx, item in enumerate(state.buffer):
            if item.message == message and item.deliver_at <= now + 1e-12:
                del state.buffer[idx]
                state.delivered += 1
                self._delivered.inc()
                self._latency.observe(now - item.send_time)
                self._latency_sketch.observe(now - item.send_time)
                self._depth.set(float(len(state.buffer)))
                return
        raise TransitionError(f"{self.name}: no deliverable message {message!r}")

    def deadline(self, state: ChannelState, now: float) -> float:
        if not state.buffer:
            return INFINITY
        return min(item.deliver_at for item in state.buffer)

    @property
    def shard_lookahead(self) -> float:
        """Conservative-PDES lookahead this entity grants a shard cut.

        A message handed to the channel at ``s`` is not deliverable
        before ``s + d1``, so when the sender and this channel live on
        different shards the receiver's shard may run ``d1`` ahead
        before it can possibly observe the send — the window width of
        :mod:`repro.sim.sharded`.
        """
        return self.d1

    def __repr__(self) -> str:
        return f"<ChannelEntity {self.name} [{self.d1:g},{self.d2:g}]>"


def channel_actions(prefix: str = "") -> PatternActionSet:
    """The action families of all channels with the given prefix.

    Used by system builders to hide the node/channel interface
    (Sections 3.3 and 4.1).
    """
    return PatternActionSet(
        [
            ActionPattern(f"{prefix}SENDMSG"),
            ActionPattern(f"{prefix}RECVMSG"),
        ]
    )

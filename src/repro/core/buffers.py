"""The send and receive buffer automata of Figure 2.

``S_{ij,eps}`` (Section 4.2.1) tags each outgoing message with the clock
time at which it was sent; its time-passage precondition pins the clock
until the tagged message leaves, so the tag equals the send clock time.

``R_{ji,eps}`` (Section 4.2.2) holds each incoming message ``(m, c)``
until the local clock is at least ``c``, guaranteeing that no message is
received at a clock time strictly less than the clock time at which it
was sent — the property identified by Lamport [5] and achieved through
buffering by Welch [17] and Neiger-Toueg [13].

One deliberate deviation from the letter of Figure 2: the paper stores
``R``'s contents in a FIFO queue and delivers from the front, while its
time-passage precondition quantifies over *all* buffered messages. With
reordering channels, a message stamped ``c=5`` can arrive before one
stamped ``c=3``; a literal FIFO then wedges (the ``c=3`` entry blocks the
clock while the ``c=5`` front is undeliverable). We keep the buffer
ordered by ``(stamp, arrival)`` so the front always carries the minimal
stamp; every delivery order this produces is one the paper's automaton
also allows whenever it is live.

These classes hold plain mutable state and are clock-parameterized; the
node composite (:class:`repro.core.clock_transform.ClockMachine`) owns
them and supplies the shared node clock (Definition 2.7).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from repro.errors import TransitionError
from repro.obs.metrics import (
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_SKETCH,
    OCCUPANCY_BUCKETS,
    SKEW_BUCKETS,
)

from repro.constants import INFINITY, TOLERANCE as _TOLERANCE

Stamped = Tuple[object, float]  # (message, clock stamp)


@dataclass
class SendBuffer:
    """``S_{ij,eps}``: tags outgoing messages with the send clock time."""

    src: int
    dst: int
    queue: List[Stamped] = field(default_factory=list)
    occupancy_hist: object = field(default=NULL_HISTOGRAM, repr=False, compare=False)
    occupancy_gauge: object = field(default=NULL_GAUGE, repr=False, compare=False)
    hold_sketch: object = field(default=NULL_SKETCH, repr=False, compare=False)
    # Monotonic min-deque over queued stamps: front always holds the
    # minimum, making clock_deadline O(1) instead of an O(n) scan on
    # the engine's time-advance hot path. Maintained by enqueue/emit;
    # valid for FIFO removal (emit only ever pops the queue front).
    # Derived from ``queue`` — excluded from crash-recovery snapshots
    # and rebuilt on restore (``__post_restore__``), so a stable-storage
    # image can never revive a deque that disagrees with the queue.
    _min_stamps: Deque[float] = field(
        default_factory=deque, repr=False, compare=False
    )

    _SNAPSHOT_DERIVED = ("_min_stamps",)

    def __post_restore__(self) -> None:
        """Rebuild the min-deque from the restored queue."""
        mins: Deque[float] = deque()
        for _message, stamp in self.queue:
            while mins and mins[-1] > stamp:
                mins.pop()
            mins.append(stamp)
        self._min_stamps = mins

    def bind_instruments(self, metrics) -> None:
        """Publish occupancy samples and a per-buffer depth gauge."""
        self.occupancy_hist = metrics.histogram(
            "repro.buffer.occupancy", OCCUPANCY_BUCKETS
        )
        self.occupancy_gauge = metrics.gauge(
            f"repro.buffer.occupancy[S:{self.src}->{self.dst}]"
        )
        self.hold_sketch = metrics.sketch("repro.phase.send_buffer")

    def enqueue(self, message: object, clock: float) -> None:
        """``SENDMSG_i(j, m)`` effect: remember ``(m, clock)``."""
        self.queue.append((message, clock))
        mins = self._min_stamps
        while mins and mins[-1] > clock:
            mins.pop()
        mins.append(clock)
        depth = float(len(self.queue))
        self.occupancy_hist.observe(depth)
        self.occupancy_gauge.set(depth)

    def front(self) -> Optional[Stamped]:
        """The next ``(message, stamp)`` to leave, if any."""
        return self.queue[0] if self.queue else None

    def can_emit(self, clock: float) -> bool:
        """``ESENDMSG`` precondition: the front's stamp equals the clock.

        Operationally the stamp can only be ``<= clock``, and the
        time-passage guard keeps it from falling behind, so emission is
        urgent: enabled as soon as the entry is buffered.
        """
        if not self.queue:
            return False
        return self.queue[0][1] <= clock + _TOLERANCE

    def emit(self, clock: float) -> Stamped:
        """``ESENDMSG_i(j, (m, c))`` effect: dequeue the front."""
        if not self.can_emit(clock):
            raise TransitionError(
                f"send buffer {self.src}->{self.dst}: nothing emittable at "
                f"clock {clock:g}"
            )
        entry = self.queue.pop(0)
        if self._min_stamps and self._min_stamps[0] == entry[1]:
            self._min_stamps.popleft()
        self.occupancy_gauge.set(float(len(self.queue)))
        # the clock-time hold between buffering and emission (the
        # time-passage guard makes this ~0 in a fault-free run)
        self.hold_sketch.observe(max(0.0, clock - entry[1]))
        return entry

    def clock_deadline(self) -> float:
        """``nu`` guard: the clock may not pass any queued stamp."""
        if not self.queue:
            return INFINITY
        return self._min_stamps[0]


@dataclass
class ReceiveBuffer:
    """``R_{ji,eps}``: holds ``(m, c)`` until the local clock reaches ``c``."""

    src: int
    dst: int
    queue: List[Stamped] = field(default_factory=list)
    held_count: int = 0
    total_hold_clock: float = 0.0
    occupancy_hist: object = field(default=NULL_HISTOGRAM, repr=False, compare=False)
    occupancy_gauge: object = field(default=NULL_GAUGE, repr=False, compare=False)
    hold_hist: object = field(default=NULL_HISTOGRAM, repr=False, compare=False)
    hold_sketch: object = field(default=NULL_SKETCH, repr=False, compare=False)

    def bind_instruments(self, metrics) -> None:
        """Publish occupancy samples, a depth gauge, and hold times."""
        self.occupancy_hist = metrics.histogram(
            "repro.buffer.occupancy", OCCUPANCY_BUCKETS
        )
        self.occupancy_gauge = metrics.gauge(
            f"repro.buffer.occupancy[R:{self.src}->{self.dst}]"
        )
        self.hold_hist = metrics.histogram(
            "repro.buffer.hold_time", SKEW_BUCKETS
        )
        self.hold_sketch = metrics.sketch("repro.phase.recv_buffer")

    def enqueue(self, message: object, stamp: float, clock: float) -> None:
        """``ERECVMSG_i(j, (m, c))`` effect: buffer, ordered by stamp.

        Also tracks whether the message actually had to wait (its stamp
        exceeded the clock on arrival) for the Section 7.2 statistics.
        """
        if stamp > clock + _TOLERANCE:
            self.held_count += 1
            self.total_hold_clock += stamp - clock
            self.hold_hist.observe(stamp - clock)
        # sketch the hold unconditionally (zeros included) so the phase
        # breakdown's quantiles reflect *all* arrivals, not just held ones
        self.hold_sketch.observe(max(0.0, stamp - clock))
        entry = (message, stamp)
        index = len(self.queue)
        while index > 0 and self.queue[index - 1][1] > stamp:
            index -= 1
        self.queue.insert(index, entry)
        depth = float(len(self.queue))
        self.occupancy_hist.observe(depth)
        self.occupancy_gauge.set(depth)

    def front(self) -> Optional[Stamped]:
        """The minimal-stamp ``(message, stamp)`` held, if any."""
        return self.queue[0] if self.queue else None

    def can_deliver(self, clock: float) -> bool:
        """``RECVMSG`` precondition: front stamp ``<=`` clock."""
        if not self.queue:
            return False
        return self.queue[0][1] <= clock + _TOLERANCE

    def deliver(self, clock: float) -> Stamped:
        """``RECVMSG_i(j, m)`` effect: dequeue the front."""
        if not self.can_deliver(clock):
            raise TransitionError(
                f"receive buffer {self.src}->{self.dst}: nothing deliverable "
                f"at clock {clock:g}"
            )
        entry = self.queue.pop(0)
        self.occupancy_gauge.set(float(len(self.queue)))
        return entry

    def clock_deadline(self) -> float:
        """``nu`` guard: the clock may not pass any buffered stamp.

        Forces delivery exactly when the clock reaches a stamp (or
        immediately, if the stamp is already in the past).
        """
        if not self.queue:
            return INFINITY
        return self.queue[0][1]

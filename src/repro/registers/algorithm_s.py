"""Algorithm S (Figure 3): the eps-superlinearizable register.

S is algorithm L with the read delayed an extra ``2*eps``
(``read := (active, now + c + 2*eps + delta)`` on ``READ_i``); writes are
unchanged. Lemma 6.2: in the timed model with delays ``[d1', d2']``, S
solves eps-superlinearizability ``Q`` with read time
``2*eps + c + delta`` and write time ``d2' - c``.

The point of the extra delay (Section 6.2): every operation is now
linearized at least ``2*eps`` *after* its invocation. When the clock
transformation perturbs each action's real time by up to ``eps``
(Theorem 4.7), the ``2*eps`` margin absorbs the perturbation — shifting
all linearization points ``eps`` earlier (Lemma 6.4) re-establishes
plain linearizability. That is how S solves the *unrelaxed* problem
``P`` in the clock model (Theorem 6.5) with read ``2*eps + delta + c``
and write ``d2 + 2*eps - c``.

Judicious placement matters: the naive transformation (Section 6.2's
remark) delays *every* operation by ``2*eps``; delaying only reads is
sufficient because a write is already linearized at its local update
time, exactly ``d2' + delta`` after invocation — far more than
``2*eps``. The ABL1 benchmark quantifies the saving.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.registers.algorithm_l import RegisterProcess


def theorem_bounds(
    model: str, eps: float, c: float, delta: float, d2: float,
) -> Dict[str, float]:
    """The paper's per-operation latency bounds, in clock and real time.

    - ``timed`` (algorithm L, Lemma 6.1, delays ``[d1', d2']``): read
      time ``c + delta``, write time ``d2' - c`` — exact in real time,
      there being no clocks to stretch (``d2`` here is the system's
      operative upper delay bound, i.e. ``d2'`` for an L system).
    - ``clock`` / ``mmt`` (algorithm S under the clock transformation,
      Theorem 6.5): read ``2*eps + delta + c``, write ``d2 + 2*eps - c``
      *in clock time*. A real-time observer sees each guarantee
      stretched by up to ``2*eps`` more (the ``C_eps`` envelope lets a
      clock interval of length ``T`` span up to ``T + 2*eps`` of real
      time) — the convention of the THM6.5 experiment table
      (:func:`repro.experiments.paper.exp_thm65`).

    Returns ``read_clock``/``write_clock`` (the paper's clock-time
    statements) and ``read_real``/``write_real`` (what a trace's real
    timestamps must obey). The ``baseline`` register has no bound to
    state — asking for one raises ``ValueError``.
    """
    if model == "timed":
        read = c + delta
        write = d2 - c
        return {
            "read_clock": read, "write_clock": write,
            "read_real": read, "write_real": write,
        }
    if model in ("clock", "mmt"):
        read = 2.0 * eps + delta + c
        write = d2 + 2.0 * eps - c
        stretch = 2.0 * eps
        return {
            "read_clock": read, "write_clock": write,
            "read_real": read + stretch, "write_real": write + stretch,
        }
    raise ValueError(
        f"no Theorem 6.5 bounds for model {model!r} "
        f"(expected 'timed', 'clock', or 'mmt')"
    )


class AlgorithmSProcess(RegisterProcess):
    """Algorithm S of Figure 3 (read delay ``c + 2*eps + delta``)."""

    def __init__(
        self,
        node: int,
        peers: Sequence[int],
        d2_prime: float,
        c: float,
        eps: float,
        delta: float = 0.01,
        initial_value: object = None,
    ):
        if eps < 0:
            raise ValueError("eps must be non-negative")
        super().__init__(
            node,
            peers,
            d2_prime,
            c,
            delta=delta,
            read_extra=2.0 * eps,
            initial_value=initial_value,
            name=f"S({node})",
        )
        self.eps = eps


class NaiveSuperlinearizableProcess(RegisterProcess):
    """The Section 6.2 remark's naive transformation (ablation ABL1).

    Delays *both* reads and writes by ``2*eps``: reads via the read
    timer, writes by postponing the send/ack schedule. Correct but
    strictly slower than S on writes; the ABL1 benchmark measures the
    gap.
    """

    def __init__(
        self,
        node: int,
        peers: Sequence[int],
        d2_prime: float,
        c: float,
        eps: float,
        delta: float = 0.01,
        initial_value: object = None,
    ):
        super().__init__(
            node,
            peers,
            d2_prime,
            c,
            delta=delta,
            read_extra=2.0 * eps,
            initial_value=initial_value,
            name=f"S-naive({node})",
        )
        self.eps = eps

    def apply_input(self, state, action, ctx) -> None:
        if action.name == "WRITE":
            # Delay the whole write pipeline by 2*eps: sends (and hence
            # the update time and the ack) start 2*eps late.
            super().apply_input(state, action, ctx)
            state.send_time += 2.0 * self.eps
            state.ack_time += 2.0 * self.eps
            return
        super().apply_input(state, action, ctx)

    @property
    def write_bound(self) -> float:
        return self.d2_prime - self.c + 2.0 * self.eps

"""Unit tests for the online safety monitors (synthetic event feeds)."""

from repro.automata.actions import Action
from repro.chaos.monitors import (
    ChannelBoundMonitor,
    ClockPredicateMonitor,
    HeartbeatMonitor,
    MonitorTracer,
    TeeTracer,
)
from repro.chaos.plan import FaultPlan, clock_fault, crash
from repro.faults.recovery import RecoverySchedule
from repro.obs.metrics import MetricsRegistry


def beat(node, k):
    return Action("SUSPECT", (node, k))


class TestClockPredicateMonitor:
    def test_within_envelope_is_silent(self):
        monitor = ClockPredicateMonitor(eps=0.1)
        assert monitor.on_action(5.0, "node", Action("X", (0,)), 5.05, True) == []
        assert monitor.on_action(5.0, "node", Action("X", (0,)), None, True) == []

    def test_flags_once_per_node(self):
        monitor = ClockPredicateMonitor(eps=0.1)
        first = monitor.on_action(5.0, "n", Action("X", (1,)), 5.5, True)
        assert len(first) == 1
        violation = first[0]
        assert violation.kind == "clock_predicate"
        assert violation.node == 1
        # repeated excursions of the same node are not re-reported
        assert monitor.on_action(5.1, "n", Action("X", (1,)), 5.7, True) == []
        # but a different node is
        assert len(monitor.on_action(5.2, "n", Action("X", (2,)), 5.9, True)) == 1


class TestChannelBoundMonitor:
    def send(self, monitor, t, payload="m"):
        return monitor.on_action(
            t, "hbsender(0)", Action("SENDMSG", (0, 1, payload)), None, False
        )

    def deliver(self, monitor, t, payload="m"):
        return monitor.on_action(
            t, "chan[0->1]", Action("RECVMSG", (1, 0, payload)), None, False
        )

    def test_delivery_within_bounds(self):
        monitor = ChannelBoundMonitor(0.1, 1.0)
        assert self.send(monitor, 0.0) == []
        assert self.deliver(monitor, 0.5) == []

    def test_late_delivery_flagged(self):
        monitor = ChannelBoundMonitor(0.1, 1.0)
        self.send(monitor, 0.0)
        (violation,) = self.deliver(monitor, 2.0)
        assert violation.kind == "channel_bound"
        assert violation.edge == (0, 1)

    def test_delivery_without_send_flagged(self):
        monitor = ChannelBoundMonitor(0.1, 1.0)
        (violation,) = self.deliver(monitor, 1.0)
        assert "no matching send" in violation.detail

    def test_retransmitted_payload_matches_any_candidate(self):
        # two identical sends outstanding: a delivery in bounds of either
        # is legal (ARQ retransmissions), and drops are never reported
        monitor = ChannelBoundMonitor(0.1, 1.0)
        self.send(monitor, 0.0)
        self.send(monitor, 2.0)
        assert self.deliver(monitor, 2.5) == []  # explained by the second
        assert monitor.on_run_end(10.0) == []  # unmatched first send: legal


class TestHeartbeatMonitor:
    def monitor(self, sender_windows=(), **kwargs):
        defaults = dict(
            sender=0, monitor_node=1, period=2.0, timeout=1.2, count=4,
            eps=0.1, sender_schedule=RecoverySchedule.of(sender_windows),
        )
        defaults.update(kwargs)
        return HeartbeatMonitor(**defaults)

    def test_suspecting_a_live_sender_is_inaccurate(self):
        monitor = self.monitor()
        (violation,) = monitor.on_action(2.5, "hbmonitor(1)^c", beat(1, 1),
                                         None, True)
        assert violation.kind == "heartbeat_accuracy"

    def test_suspecting_a_dead_sender_is_a_true_positive(self):
        monitor = self.monitor(sender_windows=[(1.0, 100.0)])
        assert monitor.on_action(3.5, "m", beat(1, 1), None, True) == []

    def test_completeness_violation(self):
        # sender down for beat 1 (due 2.0), never suspected, run outlives
        # the give-up deadline 1*2 + 1.2 + 2*0.1 = 3.4
        monitor = self.monitor(sender_windows=[(1.0, 100.0)])
        violations = monitor.on_run_end(10.0)
        kinds = {v.kind for v in violations}
        assert kinds == {"heartbeat_completeness"}

    def test_completeness_not_required_before_give_up(self):
        monitor = self.monitor(sender_windows=[(1.0, 100.0)])
        assert monitor.on_run_end(3.0) == []  # run ended too early to tell

    def test_suspicion_silences_completeness(self):
        monitor = self.monitor(sender_windows=[(1.0, 100.0)])
        monitor.on_action(3.4, "m", beat(1, 1), None, True)
        assert all(
            v.detail.find("beat 1 ") == -1 for v in monitor.on_run_end(10.0)
        )

    def test_other_nodes_suspicions_ignored(self):
        monitor = self.monitor()
        assert monitor.on_action(2.5, "m", beat(2, 1), None, True) == []


class TestMonitorTracer:
    def test_attributes_and_counts(self):
        plan = FaultPlan.of([clock_fault(1, 2.0, 6.0, 1.5), crash(0, 17.0)])
        tracer = MonitorTracer([ClockPredicateMonitor(eps=0.1)], plan)
        metrics = MetricsRegistry()
        tracer.bind_metrics(metrics)
        tracer.action(3.0, "n", Action("X", (1,)), 4.0, True)
        (violation,) = tracer.violations
        assert violation.event.kind == "clock_fault"
        assert violation.event_index == 0
        assert metrics.counter("repro.chaos.violations").value == 1

    def test_first_violation_is_earliest(self):
        tracer = MonitorTracer([ClockPredicateMonitor(eps=0.1)], None)
        tracer.action(5.0, "n", Action("X", (1,)), 6.0, True)
        tracer.action(3.0, "n", Action("X", (2,)), 4.0, True)
        assert tracer.first_violation.time == 3.0

    def test_tee_tracer_fans_out(self):
        inner_a = MonitorTracer([ClockPredicateMonitor(eps=0.1)], None)
        inner_b = MonitorTracer([ClockPredicateMonitor(eps=0.1)], None)
        tee = TeeTracer(inner_a, inner_b, None)
        tee.run_start(10.0)
        tee.action(5.0, "n", Action("X", (1,)), 6.0, True)
        tee.run_end(10.0, 1)
        tee.close()
        assert len(inner_a.violations) == len(inner_b.violations) == 1

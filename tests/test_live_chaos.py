"""Live chaos: fault-injected operation of the networked register service.

The acceptance gate of the live chaos layer: a seeded ``FaultPlan``
with a crash/recover, a partition/heal, and a drop burst runs against a
loopback ``LiveCluster`` to completion — no unhandled exceptions, every
client op ends in success / timeout / retried-success, the history
linearizes, and every monitor violation is attributed to a plan event.

Plus the satellite regressions: wire-garbage hardening, per-client
multi-connection alternation, timed-out (never hung) clients, and
crash-recovery snapshot round-trips of live ``AlgorithmSProcess`` state.
"""

import asyncio
import json
import subprocess
import sys
import unittest
from pathlib import Path

from repro.chaos.plan import (
    FaultPlan,
    clock_fault,
    crash,
    drop_burst,
    heal,
    partition,
    recover,
)
from repro.live import (
    LiveChaosController,
    LiveCluster,
    LiveLoadClient,
    LiveParams,
    run_live_chaos,
    run_load,
    validate_for_live,
)
from repro.live.chaos import chaos_params, demo_live_plan
from repro.live.load import build_operations, live_workload
from repro.live.wire import decode_frame, encode_frame
from repro.errors import LiveServiceError

ROOT = Path(__file__).resolve().parent.parent


def demo_plan_and_params(seed=7, n=3):
    return chaos_params(n=n, seed=seed), demo_live_plan(n)


class TestValidateForLive(unittest.TestCase):
    def test_demo_plan_is_lowerable(self):
        validate_for_live(demo_live_plan(3), 3)

    def test_refuses_unknown_nodes(self):
        plan = FaultPlan(events=(crash(5, 0.1),), name="bad")
        with self.assertRaises(LiveServiceError):
            validate_for_live(plan, 3)

    def test_refuses_unknown_edge_endpoints(self):
        plan = FaultPlan(events=(drop_burst((0, 9), 0.1, 0.2),), name="bad")
        with self.assertRaises(LiveServiceError):
            validate_for_live(plan, 3)

    def test_refuses_unknown_group_members(self):
        plan = FaultPlan(
            events=(partition([[0], [1, 7]], 0.1),), name="bad"
        )
        with self.assertRaises(LiveServiceError):
            validate_for_live(plan, 3)


class TestLiveChaosEndToEnd(unittest.TestCase):
    """The acceptance run: crash+recover, partition+heal, drop burst."""

    @classmethod
    def setUpClass(cls):
        params, plan = demo_plan_and_params(seed=7)
        cls.plan = plan
        cls.report = run_live_chaos(
            params, live_workload(operations=6, seed=7), plan
        )

    def test_every_op_accounted_for(self):
        outcomes = self.report.outcomes
        self.assertEqual(sum(outcomes.values()), 3 * 6)
        for record in self.report.records:
            self.assertIn(record.outcome, ("ok", "retried", "timeout"))

    def test_linearizable(self):
        self.assertTrue(self.report.linearization.ok)

    def test_faults_were_actually_applied(self):
        faults = self.report.faults
        self.assertGreaterEqual(faults["crashes"], 1)
        self.assertGreaterEqual(faults["recoveries"], 1)
        self.assertGreater(faults["dropped"], 0)
        self.assertGreater(faults["retransmits"], 0)

    def test_every_violation_attributed(self):
        self.assertEqual(self.report.unattributed, 0)
        for violation in self.report.violations:
            self.assertIsNotNone(violation.event)
            self.assertIsNotNone(violation.event_index)

    def test_degraded_gate_records_widened_bounds(self):
        widened = self.report.widened_bounds
        p = self.report.params
        eps_adj = self.report.eps_adjusted
        self.assertAlmostEqual(
            widened["d2_prime"], p.d2 + 2.0 * eps_adj
        )
        self.assertAlmostEqual(
            widened["d1_prime"], max(p.d1 - 2.0 * eps_adj, 0.0)
        )
        self.assertTrue(self.report.bounds_ok)

    def test_payload_schema(self):
        payload = self.report.to_payload()
        self.assertEqual(payload["format"], "repro-live-chaos-report")
        self.assertEqual(payload["unattributed"], 0)
        self.assertTrue(payload["linearizable"])
        self.assertEqual(
            sum(payload["outcomes"].values()), payload["operations"]
            + sum(1 for r in self.report.records
                  if not r.completed and r.kind == "R")
        )
        json.dumps(payload)  # must be JSON-serializable as-is


class TestClockFaultAttribution(unittest.TestCase):
    """A clock_fault window must surface as an attributed violation."""

    def test_clock_excursion_attributed(self):
        params = LiveParams(
            n=2, d2=0.1, eps=0.01, seed=3,
            op_timeout=2.0, retry_max=3, retry_base=0.05,
        )
        plan = FaultPlan(
            events=(clock_fault(1, 0.05, 0.35, excess=0.05),),
            name="clock-only",
        )
        report = run_live_chaos(
            params, live_workload(operations=4, seed=3), plan
        )
        clock_violations = [
            v for v in report.violations if v.kind == "clock_predicate"
        ]
        self.assertTrue(clock_violations)
        self.assertEqual(report.unattributed, 0)
        for violation in clock_violations:
            self.assertEqual(violation.node, 1)
            self.assertEqual(violation.event.kind, "clock_fault")
        # the degraded gate widened by what the clock actually did
        self.assertGreater(report.eps_adjusted, params.eps)


class TestTimeoutOutcome(unittest.TestCase):
    """Satellite: a dead node surfaces as timed-out records, not a hang."""

    def test_crash_without_recovery_times_out(self):
        params = LiveParams(
            n=2, d2=0.05, eps=0.01, seed=1,
            op_timeout=0.3, retry_max=2, retry_base=0.02,
        )
        plan = FaultPlan(events=(crash(1, 0.05),), name="crash-stop")
        report = run_live_chaos(
            params, live_workload(operations=3, seed=1, think_max=0.01),
            plan,
        )
        outcomes = report.outcomes
        self.assertEqual(sum(outcomes.values()), 2 * 3)
        self.assertGreater(outcomes["timeout"], 0)
        # node 0 kept serving; its client finished cleanly
        node0 = [r for r in report.records if r.node == 0]
        self.assertTrue(all(r.completed for r in node0))
        self.assertTrue(report.linearization.ok)

    def test_timed_out_reads_excluded_writes_kept_open(self):
        from repro.live.client import ClientRecord

        records = [
            ClientRecord(0, 0, "W", ("v", 0, 0), 0.0, 0.1),
            ClientRecord(0, 1, "R", None, 0.2, 0.5, "timeout", 2),
            ClientRecord(1, 0, "W", ("v", 1, 0), 0.3, 0.6, "timeout", 2),
        ]
        ops = build_operations(records, horizon=1.0)
        self.assertEqual(len(ops), 2)  # the timed-out read is gone
        phantom = [op for op in ops if op.node == 1][0]
        self.assertEqual(phantom.res_time, 1.0)  # window open to horizon


class TestWireGarbage(unittest.TestCase):
    """Satellite: garbage bytes must not kill a node's serve task."""

    def _run(self, coro):
        return asyncio.run(coro)

    def test_garbage_then_valid_frames(self):
        async def scenario():
            cluster = LiveCluster(LiveParams(n=1, seed=0))
            await cluster.start()
            try:
                host, port = cluster.addresses[0]
                reader, writer = await asyncio.open_connection(host, port)
                # malformed JSON, valid-JSON-untagged, wrong field types
                writer.write(b"\xff\xfe not json at all\n")
                writer.write(b'[1, 2, 3]\n')
                writer.write(b'{"t": "msg", "src": "zero"}\n')
                writer.write(b'{"t": "write"}\n')  # missing value
                await writer.drain()
                # the same connection still serves a valid invocation
                writer.write(encode_frame({"t": "read"}))
                line = await asyncio.wait_for(reader.readline(), 5.0)
                frame = decode_frame(line)
                self.assertEqual(frame["t"], "return")
                writer.close()
                stats = cluster.stats()[0]
                self.assertGreaterEqual(stats["wire_errors"], 4)
            finally:
                await cluster.stop()

        self._run(scenario())

    def test_oversized_line_drops_connection_not_node(self):
        async def scenario():
            cluster = LiveCluster(LiveParams(n=1, seed=0))
            await cluster.start()
            try:
                host, port = cluster.addresses[0]
                _, writer = await asyncio.open_connection(host, port)
                writer.write(b"x" * (1 << 20))  # no newline: limit overrun
                await writer.drain()
                await asyncio.sleep(0.05)
                writer.close()
                # the node survived and serves a fresh connection
                reader2, writer2 = await asyncio.open_connection(host, port)
                writer2.write(encode_frame({"t": "read"}))
                line = await asyncio.wait_for(reader2.readline(), 5.0)
                self.assertEqual(decode_frame(line)["t"], "return")
                writer2.close()
            finally:
                await cluster.stop()

        self._run(scenario())

    def test_abrupt_disconnect_mid_operation(self):
        async def scenario():
            cluster = LiveCluster(LiveParams(n=1, seed=0))
            await cluster.start()
            try:
                host, port = cluster.addresses[0]
                _, writer = await asyncio.open_connection(host, port)
                writer.write(encode_frame(
                    {"t": "write", "value": ["v", 9, 9]}
                ))
                await writer.drain()
                writer.transport.abort()  # RST mid-operation
                await asyncio.sleep(0.1)
                reader2, writer2 = await asyncio.open_connection(host, port)
                writer2.write(encode_frame({"t": "read"}))
                line = await asyncio.wait_for(reader2.readline(), 5.0)
                self.assertEqual(decode_frame(line)["t"], "return")
                writer2.close()
            finally:
                await cluster.stop()

        self._run(scenario())


class TestMultiClient(unittest.TestCase):
    """Satellite: one node, several concurrent cid-tagged connections."""

    def test_two_clients_per_node_linearize(self):
        params = LiveParams(n=2, seed=5)
        report = run_load(
            params,
            live_workload(operations=4, seed=5),
            clients_per_node=2,
        )
        self.assertEqual(len(report.operations), 2 * 2 * 4)
        self.assertTrue(report.linearization.ok)

    def test_per_client_alternation_enforced(self):
        async def scenario():
            cluster = LiveCluster(LiveParams(n=1, seed=0))
            await cluster.start()
            try:
                host, port = cluster.addresses[0]
                reader, writer = await asyncio.open_connection(host, port)
                # same cid, two overlapping invocations -> error frame
                writer.write(encode_frame({"t": "read", "cid": "a", "op": 0}))
                writer.write(encode_frame({"t": "read", "cid": "a", "op": 1}))
                first = decode_frame(
                    await asyncio.wait_for(reader.readline(), 5.0)
                )
                second = decode_frame(
                    await asyncio.wait_for(reader.readline(), 5.0)
                )
                kinds = {first["t"], second["t"]}
                self.assertIn("error", kinds)
                writer.close()
            finally:
                await cluster.stop()

        asyncio.run(scenario())

    def test_retry_replays_cached_response(self):
        async def scenario():
            cluster = LiveCluster(LiveParams(n=1, seed=0))
            await cluster.start()
            try:
                host, port = cluster.addresses[0]
                reader, writer = await asyncio.open_connection(host, port)
                request = {"t": "write", "value": ["v", 0, 1],
                           "cid": "c0", "op": 0}
                writer.write(encode_frame(request))
                ack = decode_frame(
                    await asyncio.wait_for(reader.readline(), 5.0)
                )
                self.assertEqual(ack["t"], "ack")
                # a duplicate of the same (cid, op) replays, not re-runs
                writer.write(encode_frame(request))
                replay = decode_frame(
                    await asyncio.wait_for(reader.readline(), 5.0)
                )
                self.assertEqual(replay["t"], "ack")
                writer.close()
            finally:
                await cluster.stop()

        asyncio.run(scenario())


class TestSnapshotRoundTrip(unittest.TestCase):
    """Satellite: crash/recover restores live AlgorithmSProcess state."""

    def test_mid_window_crash_recover_preserves_state(self):
        async def scenario():
            params = LiveParams(n=2, d2=0.2, eps=0.01, seed=2,
                                driver="slow", op_timeout=2.0,
                                retry_max=4, retry_base=0.05)
            plan = FaultPlan(events=(crash(0, 10.0),), name="arm-arq")
            cluster = LiveCluster(params)
            # a controller arms the ARQ layer; its (far-future) timeline
            # is never started, so we can crash/recover by hand
            LiveChaosController(plan, cluster)
            await cluster.start()
            try:
                node = cluster.nodes[0]
                host, port = cluster.addresses[0]
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(encode_frame(
                    {"t": "write", "value": ["v", 0, 1],
                     "cid": "c", "op": 0}
                ))
                ack = decode_frame(
                    await asyncio.wait_for(reader.readline(), 5.0)
                )
                self.assertEqual(ack["t"], "ack")
                writer.close()

                state_before = node.state
                value_before = state_before.value
                await node.crash()
                self.assertTrue(node.down)
                # volatile memory wiped while down
                self.assertIsNot(node.state, state_before)
                await node.recover()
                self.assertFalse(node.down)

                # restored copy of the written value survived the crash
                self.assertEqual(node.state.value, value_before)
                # __post_restore__ rebuilt the send buffers' min-deque:
                # clock_deadline never raises and agrees with a fresh poll
                for buf in node.send_bufs.values():
                    buf.clock_deadline()
                # the restored clock is back inside the C_eps envelope
                # on its first post-recovery read (slow driver jumps to
                # the envelope edge across the outage)
                real, clock = node.clock.read()
                self.assertLessEqual(
                    abs(real - clock), params.eps + 1e-3
                )
                # and the node still serves on the *same* port
                reader2, writer2 = await asyncio.open_connection(host, port)
                writer2.write(encode_frame({"t": "read"}))
                frame = decode_frame(
                    await asyncio.wait_for(reader2.readline(), 5.0)
                )
                self.assertEqual(frame["t"], "return")
                self.assertEqual(tuple(frame["value"]), ("v", 0, 1))
                writer2.close()
            finally:
                await cluster.stop()

        asyncio.run(scenario())


class TestFaultFreeUnchanged(unittest.TestCase):
    """Fault-free traffic and reports must be byte-compatible."""

    def test_single_client_requests_untagged(self):
        client = LiveLoadClient(
            0,
            __import__("repro.registers.opstream", fromlist=["OpSchedule"])
            .OpSchedule.generate(0, live_workload(operations=2, seed=0)),
            ("127.0.0.1", 1), 0.0,
        )
        op = client.schedule.ops[0]
        frame = client._request(op)
        self.assertNotIn("cid", frame)
        self.assertNotIn("op", frame)

    def test_fault_free_stats_have_no_fault_keys(self):
        params = LiveParams(n=2, seed=0)
        report = run_load(params, live_workload(operations=2, seed=0))
        self.assertTrue(report.linearization.ok)
        for stats in report.node_stats:
            for key in ("wire_errors", "crashes", "recoveries",
                        "retransmits", "inputs_lost", "seq"):
                self.assertNotIn(key, stats)

    def test_fault_free_peer_frames_carry_no_arq_fields(self):
        async def scenario():
            frames = []
            cluster = LiveCluster(LiveParams(n=2, seed=0))
            await cluster.start()
            try:
                node = cluster.nodes[0]
                original = node._wire_send

                def spy(dst, frame):
                    frames.append(dict(frame))
                    return original(dst, frame)

                node._wire_send = spy
                host, port = cluster.addresses[0]
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(encode_frame(
                    {"t": "write", "value": ["v", 0, 1]}
                ))
                await asyncio.wait_for(reader.readline(), 5.0)
                writer.close()
            finally:
                await cluster.stop()
            for frame in frames:
                if frame.get("t") == "msg":
                    self.assertNotIn("seq", frame)
                    self.assertNotIn("s0", frame)

        asyncio.run(scenario())


class TestChaosCli(unittest.TestCase):
    """``python -m repro chaos --live`` exit-code semantics."""

    def _run(self, *extra):
        return subprocess.run(
            [sys.executable, "-m", "repro", "chaos", "--live",
             "--seed", "7", "--ops", "4", *extra],
            capture_output=True, text=True, cwd=ROOT,
            env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"},
            timeout=300,
        )

    def test_expect_clean_demo(self):
        result = self._run("--expect", "clean")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("linearizable   : True", result.stdout)

    def test_sim_only_flags_refused(self):
        result = self._run("--shrink")
        self.assertEqual(result.returncode, 2)


if __name__ == "__main__":
    unittest.main()

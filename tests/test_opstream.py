"""Tests for the engine-agnostic seeded op-stream generator."""

import pytest

from repro.registers.opstream import OpSchedule, PlannedOp, client_rng
from repro.registers.system import (
    clock_register_system,
    run_register_experiment,
)
from repro.registers.workload import ClientEntity, RegisterWorkload
from repro.sim.clock_drivers import driver_factory


def workload(**overrides):
    base = dict(
        operations=8, read_fraction=0.5, seed=7,
        think_min=0.1, think_max=0.5,
    )
    base.update(overrides)
    return RegisterWorkload(**base)


class TestGeneration:
    def test_same_seed_same_schedule(self):
        a = OpSchedule.generate(2, workload())
        b = OpSchedule.generate(2, workload())
        assert a == b

    def test_different_nodes_differ(self):
        a = OpSchedule.generate(0, workload())
        b = OpSchedule.generate(1, workload())
        assert a.ops != b.ops

    def test_different_seeds_differ(self):
        a = OpSchedule.generate(0, workload(seed=1))
        b = OpSchedule.generate(0, workload(seed=2))
        assert a.ops != b.ops

    def test_counts_add_up(self):
        schedule = OpSchedule.generate(3, workload(operations=40))
        assert len(schedule) == 40
        assert schedule.reads + schedule.writes == 40

    def test_read_fraction_extremes(self):
        all_reads = OpSchedule.generate(0, workload(read_fraction=1.0))
        all_writes = OpSchedule.generate(0, workload(read_fraction=0.0))
        assert all_reads.writes == 0
        assert all_writes.reads == 0

    def test_write_values_unique_and_tagged(self):
        schedule = OpSchedule.generate(5, workload(read_fraction=0.0))
        values = [op.value for op in schedule.ops]
        assert values == [("v", 5, seq) for seq in range(len(values))]

    def test_reads_carry_no_value(self):
        schedule = OpSchedule.generate(0, workload(read_fraction=1.0))
        assert all(op.value is None for op in schedule.ops)

    def test_think_times_in_range(self):
        schedule = OpSchedule.generate(1, workload(operations=50))
        for op in schedule.ops:
            assert 0.1 <= op.think_after <= 0.5

    def test_start_delay_propagated(self):
        schedule = OpSchedule.generate(0, workload(start_delay=2.5))
        assert schedule.start_delay == 2.5

    def test_client_rng_matches_legacy_derivation(self):
        # the sim client and the schedule must share one RNG stream
        import random

        assert client_rng(7, 3).random() == \
            random.Random(7 * 1_000_003 + 3).random()


class TestReplayClient:
    def test_replay_mode_is_pure(self):
        w = workload()
        schedule = OpSchedule.generate(0, w)
        assert ClientEntity(0, w, schedule=schedule).pure_enabled
        assert not ClientEntity(0, w).pure_enabled

    def test_wrong_node_schedule_rejected(self):
        w = workload()
        with pytest.raises(ValueError):
            ClientEntity(0, w, schedule=OpSchedule.generate(1, w))

    def test_sim_replay_runs_exact_schedule(self):
        w = workload(operations=4, think_min=0.0, think_max=0.3, seed=11)
        schedules = [OpSchedule.generate(i, w) for i in range(3)]
        spec = clock_register_system(
            n=3, d1=0.1, d2=1.0, c=0.3, eps=0.1, workload=w,
            drivers=driver_factory("mixed", 0.1, seed=11),
            algorithm="S", delta=0.01, schedules=schedules,
        )
        run = run_register_experiment(spec, 60.0)
        assert len(run.operations) == 12
        assert run.linearizable()
        # the completed history matches the planned kinds, per node, in order
        for i, schedule in enumerate(schedules):
            completed = run.result.final_states[f"client({i})"].completed
            assert [op.kind for op in completed] == \
                [planned.kind for planned in schedule.ops]
            planned_writes = [p.value for p in schedule.ops if p.kind == "W"]
            completed_writes = [o.value for o in completed if o.kind == "W"]
            assert completed_writes == planned_writes

    def test_repr_is_informative(self):
        schedule = OpSchedule.generate(2, workload())
        assert "node=2" in repr(schedule)
        assert isinstance(schedule.ops[0], PlannedOp)
        assert schedule.ops[0].kind in repr(schedule.ops[0])

"""Fixture: determinism-clean counterparts for every ``DET*`` rule."""

import random


def pick(items, seed):
    """Seeded instance RNG — the repo-wide discipline (no DET001)."""
    return items[random.Random(seed).randrange(len(items))]


def stamp(event, now):
    """Model time is handed in, never read from the host (no DET002)."""
    event.at = now
    return event


def dedupe(items):
    """Value ordering, not memory-address ordering (no DET003)."""
    return sorted(set(items))


def emit_all(sink, names):
    """Sorted before iterating (no DET004); dict iteration is exempt."""
    for name in sorted(set(names)):
        sink.emit(name)
    table = {"a": 1, "b": 2}
    for key in table:
        sink.emit(key)
    return min({len(name) for name in names} or {0})

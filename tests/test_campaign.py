"""Tests for the repro.campaign subsystem.

The load-bearing claims: grid expansion is canonical and stable; the
runner survives crashed/hung/failing workers with bounded retry; the
checkpoint makes interrupted campaigns resume **byte-identically**; and
the aggregate is byte-identical across worker counts. Plus the schema
checkers, the snapshot-merge API, and the ``python -m repro sweep`` CLI.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.campaign import (
    Aggregator,
    CampaignRunner,
    Checkpoint,
    Grid,
    point_key,
)
from repro.campaign.schema import (
    validate_aggregate_file,
    validate_checkpoint_file,
)
from repro.errors import CampaignError
from repro.obs import MetricsRegistry, merge_snapshots, registry_from_snapshot

SMALL_RUN = {"horizon": 30.0}


def small_grid(**axes):
    axes = axes or {"eps": [0.05, 0.1]}
    return Grid(axes, run=SMALL_RUN, seeds=2)


def aggregate_text(grid, outcomes):
    payload = Aggregator(grid.grid_id()).build(outcomes)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# -- grid ---------------------------------------------------------------------


def test_grid_expansion_is_canonical_and_stable():
    grid = Grid({"d2": [1.0, 0.8], "eps": [0.1, 0.05]}, seeds=2)
    points = grid.points()
    assert len(points) == 8 == grid.size
    # canonical axis order: eps varies slower than d2, d2 slower than seed
    assert [p["config"]["eps"] for p in points[:4]] == [0.1] * 4
    assert [p["config"]["d2"] for p in points[:4]] == [1.0, 1.0, 0.8, 0.8]
    assert [p["config"]["seed"] for p in points[:2]] == [0, 1]
    assert [p["index"] for p in points] == list(range(8))
    # keys identify configs byte-stably and uniquely
    assert len({p["key"] for p in points}) == 8
    assert points[0]["key"] == point_key(points[0]["config"])
    # same spec, axes given in another order -> same id and keys
    again = Grid({"eps": [0.1, 0.05], "d2": [1.0, 0.8], "seed": [0, 1]})
    assert again.grid_id() == grid.grid_id()
    assert [p["key"] for p in again.points()] == [p["key"] for p in points]


def test_grid_rejects_bad_specs():
    with pytest.raises(CampaignError):
        Grid({"epsilon": [0.1]})  # unknown axis
    with pytest.raises(CampaignError):
        Grid({"eps": []})  # empty axis
    with pytest.raises(CampaignError):
        Grid({"eps": [0.1, 0.1]})  # duplicate values
    with pytest.raises(CampaignError):
        Grid({"seed": [0]}, seeds=2)  # both seed axis and seeds=
    with pytest.raises(CampaignError):
        Grid({"model": ["quantum"]})  # unknown model
    with pytest.raises(CampaignError):
        Grid({"c": ["x"]})  # c must be a number or "u"
    with pytest.raises(CampaignError):
        Grid({}, run={"warmup": 1.0})  # unknown run parameter


def test_sharded_points_need_a_granularity_free_driver():
    # the default driver is "mixed" (random-walk): caught at spec time,
    # not as N runtime ShardingError point failures
    with pytest.raises(CampaignError, match="granularity-free"):
        Grid({"shards": [1, 2]}, run=SMALL_RUN)
    # timed-model points never touch a clock driver, so no constraint
    Grid({"shards": [2], "model": ["timed"]}, run=SMALL_RUN)
    # and a granularity-free driver sweeps cleanly through both values
    grid = Grid(
        {"shards": [1, 2], "driver": ["skewed"], "ops": [4]},
        run=SMALL_RUN,
    )
    outcomes = CampaignRunner(workers=1).run(grid.points())
    assert outcomes and all(o.ok for o in outcomes)


def test_grid_from_json_spec_file(tmp_path):
    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps({
        "grid": {"eps": [0.05, 0.1], "c": "u"},
        "seeds": 2,
        "run": {"horizon": 30.0},
    }))
    grid = Grid.from_file(str(spec))
    assert grid.size == 4
    assert grid.axes["c"] == ["u"]  # scalar promoted to a one-element axis
    assert grid.run["horizon"] == 30.0
    assert grid.grid_id() == Grid(
        {"eps": [0.05, 0.1], "c": ["u"]}, run=SMALL_RUN, seeds=2
    ).grid_id()


def test_grid_from_toml_spec_file(tmp_path):
    pytest.importorskip("tomllib")
    spec = tmp_path / "spec.toml"
    spec.write_text(
        'seeds = 2\n[grid]\neps = [0.05, 0.1]\n[run]\nhorizon = 30.0\n'
    )
    grid = Grid.from_file(str(spec))
    assert grid.size == 4
    assert grid.grid_id() == small_grid().grid_id()


# -- runner -------------------------------------------------------------------


def test_serial_and_parallel_aggregates_are_byte_identical():
    grid = small_grid()
    serial = CampaignRunner(workers=1).run(grid.points())
    parallel = CampaignRunner(workers=2).run(grid.points())
    assert all(o.ok for o in serial) and all(o.ok for o in parallel)
    assert aggregate_text(grid, serial) == aggregate_text(grid, parallel)


def test_parallel_crash_is_retried():
    grid = small_grid()
    points = grid.points()
    points[0]["chaos"] = {"crash_attempts": 1}
    logs = []
    outcomes = CampaignRunner(workers=2, retries=2, log=logs.append).run(points)
    assert all(o.ok for o in outcomes)
    assert outcomes[0].attempts == 2
    assert any("crashed" in line for line in logs)
    # the crash never leaks into the aggregate: still byte-identical
    clean = CampaignRunner(workers=1).run(grid.points())
    assert aggregate_text(grid, outcomes) == aggregate_text(grid, clean)


def test_serial_crash_is_retried_without_killing_the_process():
    grid = small_grid()
    points = grid.points()
    points[0]["chaos"] = {"crash_attempts": 1}
    outcomes = CampaignRunner(workers=1, retries=1).run(points)
    assert all(o.ok for o in outcomes)
    assert outcomes[0].attempts == 2


def test_crash_beyond_retry_budget_fails_the_point():
    grid = small_grid()
    points = grid.points()
    points[1]["chaos"] = {"crash_attempts": 99}
    outcomes = CampaignRunner(workers=1, retries=1).run(points)
    assert outcomes[1].status == "failed"
    assert outcomes[1].attempts == 2
    payload = Aggregator(grid.grid_id()).build(outcomes)
    assert payload["summary"]["failed"] == 1
    assert payload["failures"][0]["index"] == 1


def test_hung_worker_is_killed_on_timeout():
    grid = small_grid()
    points = grid.points()
    points[1]["chaos"] = {"sleep": 30.0}
    outcomes = CampaignRunner(workers=2, retries=0, timeout=1.0).run(points)
    assert outcomes[0].ok
    assert outcomes[1].status == "failed"
    assert "timed out" in outcomes[1].error


def test_duplicate_point_keys_are_rejected():
    grid = small_grid()
    points = grid.points()
    with pytest.raises(CampaignError):
        CampaignRunner(workers=1).run(points + [points[0]])


# -- checkpoint / resume ------------------------------------------------------


def test_resume_after_partial_run_is_byte_identical(tmp_path):
    grid = small_grid()
    full = CampaignRunner(workers=1).run(grid.points())
    path = str(tmp_path / "checkpoint.jsonl")

    # first run: one point exhausts its retries, the rest complete
    points = grid.points()
    points[1]["chaos"] = {"crash_attempts": 99}
    with Checkpoint(path, grid.grid_id(), grid.size) as checkpoint:
        partial = CampaignRunner(
            workers=1, retries=0, checkpoint=checkpoint
        ).run(points)
    assert [o.status for o in partial].count("failed") == 1

    # simulate a kill mid-write: torn final line is tolerated on load
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"k":"point","key":"tru')

    with Checkpoint(path, grid.grid_id(), grid.size) as checkpoint:
        resumed = CampaignRunner(workers=1, checkpoint=checkpoint).run(
            grid.points()
        )
    statuses = [o.status for o in resumed]
    assert statuses.count("cached") == grid.size - 1
    assert statuses.count("done") == 1
    assert aggregate_text(grid, resumed) == aggregate_text(grid, full)


def test_checkpoint_refuses_a_different_grid(tmp_path):
    grid = small_grid()
    path = str(tmp_path / "checkpoint.jsonl")
    with Checkpoint(path, grid.grid_id(), grid.size):
        pass
    with pytest.raises(CampaignError):
        Checkpoint(path, "0123456789ab", grid.size)


def test_checkpoint_rejects_midfile_corruption(tmp_path):
    grid = small_grid()
    path = str(tmp_path / "checkpoint.jsonl")
    with Checkpoint(path, grid.grid_id(), grid.size) as checkpoint:
        checkpoint.append("k1", {"x": 1}, 0.1, 1)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("garbage not json\n")          # corrupt, NOT final...
        handle.write('{"k":"point","key":"k2","result":{},'
                     '"wall":0.1,"attempts":1}\n')  # ...a real row follows
    with pytest.raises(CampaignError):
        Checkpoint(path, grid.grid_id(), grid.size)


# -- aggregation / obs merge --------------------------------------------------


def test_merge_snapshots_roundtrip_and_order_independence():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("ops").inc(3)
    b.counter("ops").inc(4)
    a.gauge("skew").set(0.2)
    b.gauge("skew").set(0.5)
    for registry, values in ((a, (0.05, 0.4)), (b, (0.2,))):
        histogram = registry.histogram("lat", [0.1, 0.5])
        for value in values:
            histogram.observe(value)
    snap_a, snap_b = a.snapshot(), b.snapshot()
    merged = merge_snapshots([snap_a, snap_b])
    assert merged["counters"]["ops"] == 7
    assert merged["gauges"]["skew"] == 0.5
    assert merged == merge_snapshots([snap_b, snap_a])
    # rebuild -> snapshot is lossless for deterministic fields
    assert registry_from_snapshot(snap_a).snapshot() == snap_a


def test_aggregate_exports_conform_to_schema(tmp_path):
    grid = small_grid()
    path = str(tmp_path / "checkpoint.jsonl")
    with Checkpoint(path, grid.grid_id(), grid.size) as checkpoint:
        outcomes = CampaignRunner(workers=1, checkpoint=checkpoint).run(
            grid.points()
        )
    aggregator = Aggregator(grid.grid_id())
    payload = aggregator.build(outcomes)
    jsonl = str(tmp_path / "aggregate.jsonl")
    csv_path = str(tmp_path / "aggregate.csv")
    aggregator.write_jsonl(jsonl, payload)
    aggregator.write_csv(csv_path, payload)
    assert validate_aggregate_file(jsonl) == []
    assert validate_checkpoint_file(path) == []
    with open(csv_path, encoding="utf-8") as handle:
        rows = handle.read().splitlines()
    assert len(rows) == 1 + grid.size  # header + one row per point
    # curves cover the swept eps values in order
    assert [c["eps"] for c in payload["curves"]] == [0.05, 0.1]
    assert payload["metrics"] is not None


def test_schema_flags_broken_aggregates(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"k":"header","format":"nope","version":1,'
                   '"campaign":"x","points":0}\n')
    problems = validate_aggregate_file(str(bad))
    assert any("format" in p for p in problems)
    assert any("summary" in p for p in problems)


# -- CLI ----------------------------------------------------------------------


def run_cli(tmp_path, *extra):
    command = [
        sys.executable, "-m", "repro", "sweep",
        "--eps", "0.05,0.1", "--seeds", "2", "--horizon", "30",
        "--out", str(tmp_path / "out"), *extra,
    ]
    return subprocess.run(command, capture_output=True, text=True, timeout=600)


def test_cli_sweep_with_crash_resume_and_validation(tmp_path):
    first = run_cli(tmp_path, "--workers", "2", "--chaos-crash", "1")
    assert first.returncode == 0, first.stdout + first.stderr
    assert "retrying" in first.stdout
    out = tmp_path / "out"
    baseline = (out / "aggregate.jsonl").read_bytes()

    resumed = run_cli(tmp_path, "--workers", "2", "--resume")
    assert resumed.returncode == 0, resumed.stdout + resumed.stderr
    assert "resuming: 4 points already done" in resumed.stdout
    assert (out / "aggregate.jsonl").read_bytes() == baseline

    assert validate_aggregate_file(str(out / "aggregate.jsonl")) == []
    assert validate_checkpoint_file(str(out / "checkpoint.jsonl")) == []


def test_cli_sweep_rejects_spec_plus_axis_flags(tmp_path):
    spec = tmp_path / "spec.json"
    spec.write_text('{"grid": {"eps": [0.1]}}')
    completed = run_cli(tmp_path, "--spec", str(spec))
    assert completed.returncode == 2
    assert "not both" in completed.stderr


def test_plan_fault_axis_runs_and_is_deterministic():
    from repro.campaign.worker import run_point

    grid = Grid(
        {"fault": ["plan"], "plan_seed": [0], "n": [2], "ops": [4]},
        run={"horizon": 30.0},
        seeds=1,
    )
    (point,) = grid.points()
    assert '"fault":"plan"' in point["key"]
    first = run_point(point)["result"]
    again = run_point(point)["result"]
    # the seeded plan is part of the config, so the point is exactly as
    # deterministic as a fault-free one
    assert json.dumps(first, sort_keys=True) == json.dumps(again, sort_keys=True)
    assert first["config"]["plan_seed"] == 0
    assert first["operations"] > 0


# -- experiments as campaign tasks -------------------------------------------


def test_run_experiment_task_matches_the_runner_contract():
    from repro.experiments import run_experiment_task

    payload = run_experiment_task({"index": 0, "key": "FIG3", "exp": "FIG3"})
    result = payload["result"]
    assert result["format"] == "repro-bench-result"
    assert result["exp_id"] == "FIG3"
    assert result["ok"] is True
    assert result["table"]["rows"]
    assert payload["wall"] == result["wall_seconds"] > 0

    with pytest.raises(CampaignError):
        run_experiment_task({"index": 0, "key": "NOPE", "exp": "NOPE"})

"""Tests for generic latency extraction and engine early stopping."""

import pytest

from repro.analysis.latency import (
    OBJECT_RULES,
    PINGER_RULES,
    REGISTER_RULES,
    PairingRule,
    extract_latencies,
    latency_summaries,
)
from repro.automata.actions import Action
from repro.automata.executions import timed_sequence
from repro.errors import SpecificationError
from repro.registers.system import run_register_experiment, timed_register_system
from repro.registers.workload import RegisterWorkload
from repro.sim.delay import UniformDelay

from helpers import pinger_process_factory, pinger_topology
from repro.core.pipeline import build_timed_system


class TestExtraction:
    def register_trace(self):
        return timed_sequence(
            (Action("WRITE", (0, "v")), 0.0),
            (Action("READ", (1,)), 0.5),
            (Action("ACK", (0,)), 1.0),
            (Action("RETURN", (1, "v")), 1.5),
        )

    def test_pairs_by_node(self):
        samples = extract_latencies(self.register_trace())
        by_label = {s.label: s for s in samples}
        assert by_label["write"].latency == pytest.approx(1.0)
        assert by_label["read"].latency == pytest.approx(1.0)

    def test_unanswered_invocation_dropped(self):
        trace = timed_sequence((Action("READ", (0,)), 0.0))
        assert extract_latencies(trace) == []

    def test_unmatched_response_skipped_or_strict(self):
        trace = timed_sequence((Action("ACK", (0,)), 0.0))
        assert extract_latencies(trace) == []
        with pytest.raises(SpecificationError):
            extract_latencies(trace, strict=True)

    def test_pinger_rules_key_by_sequence(self):
        trace = timed_sequence(
            (Action("PING", (0, 1)), 0.0),
            (Action("PING", (0, 2)), 0.5),
            (Action("GOTPONG", (0, 2)), 1.0),
            (Action("GOTPONG", (0, 1)), 2.0),
        )
        samples = extract_latencies(trace, PINGER_RULES)
        latencies = {s.key: s.latency for s in samples}
        assert latencies[(0, 1)] == pytest.approx(2.0)
        assert latencies[(0, 2)] == pytest.approx(0.5)

    def test_custom_rule(self):
        rule = PairingRule("beat-gap", ("BEAT",), ("BEAT",))
        # pathological rule: same name in both roles — invocation wins
        trace = timed_sequence((Action("BEAT", (0, 1)), 0.0))
        samples = extract_latencies(trace, (rule,))
        assert samples == []

    def test_agrees_with_client_side_measurement(self):
        workload = RegisterWorkload(operations=5, read_fraction=0.5, seed=6)
        spec = timed_register_system(
            n=3, d1_prime=0.2, d2_prime=1.0, c=0.3, workload=workload,
            delay_model=UniformDelay(seed=6),
        )
        run = run_register_experiment(spec, 50.0)
        samples = extract_latencies(run.result.trace, REGISTER_RULES)
        trace_reads = sorted(
            s.latency for s in samples if s.label == "read"
        )
        client_reads = sorted(op.latency for op in run.reads)
        assert trace_reads == pytest.approx(client_reads)

    def test_summaries(self):
        samples = extract_latencies(self.register_trace())
        summaries = latency_summaries(samples)
        assert summaries["read"].count == 1
        assert summaries["write"].mean == pytest.approx(1.0)


class TestEarlyStop:
    def test_stop_when_ends_run_early(self):
        spec = build_timed_system(
            pinger_topology(), pinger_process_factory(10, 1.0), 0.1, 0.5,
        )
        sim = spec.simulator()
        result = sim.run(
            100.0,
            stop_when=lambda recorder, now: recorder.count("GOTPONG") >= 3,
        )
        assert result.recorder.count("GOTPONG") == 3
        assert not result.completed()
        assert result.now < 100.0

    def test_no_stop_when_runs_to_horizon(self):
        spec = build_timed_system(
            pinger_topology(), pinger_process_factory(2, 1.0), 0.1, 0.5,
        )
        result = spec.simulator().run(10.0)
        assert result.completed()

"""Tests for trace persistence and the ASCII timeline renderer."""

import io

import pytest

from repro.automata.actions import Action
from repro.automata.executions import timed_sequence
from repro.errors import ReproError
from repro.registers.system import (
    run_register_experiment,
    timed_register_system,
)
from repro.registers.workload import RegisterWorkload
from repro.sim.delay import UniformDelay
from repro.sim.persistence import (
    dump_events,
    dumps_timed_sequence,
    load_events,
    load_recorder,
    loads_timed_sequence,
    save_recorder,
)
from repro.analysis.timeline import render_timeline
from repro.traces.linearizability import is_linearizable


def sample_run():
    workload = RegisterWorkload(operations=4, read_fraction=0.5, seed=5)
    spec = timed_register_system(
        n=2, d1_prime=0.2, d2_prime=1.0, c=0.3, workload=workload,
        delay_model=UniformDelay(seed=5),
    )
    return run_register_experiment(spec, 40.0)


class TestPersistence:
    def test_roundtrip_preserves_events(self, tmp_path):
        run = sample_run()
        path = tmp_path / "trace.jsonl"
        count = save_recorder(run.result.recorder, str(path))
        assert count == len(run.result.recorder)
        reloaded = load_recorder(str(path))
        assert reloaded.events == run.result.recorder.events

    def test_reloaded_trace_rechecks(self, tmp_path):
        run = sample_run()
        path = tmp_path / "trace.jsonl"
        save_recorder(run.result.recorder, str(path))
        reloaded = load_recorder(str(path))
        assert reloaded.timed_trace() == run.result.trace
        assert is_linearizable(reloaded.timed_trace(), run.initial_value)

    def test_tuple_list_distinction_roundtrips(self):
        seq = timed_sequence(
            (Action("X", ((1, 2), [3, 4], "s", None, True)), 0.0)
        )
        text = dumps_timed_sequence(seq)
        back = loads_timed_sequence(text)
        params = back[0].action.params
        assert params[0] == (1, 2) and isinstance(params[0], tuple)
        assert params[1] == [3, 4] and isinstance(params[1], list)
        assert params[3] is None and params[4] is True

    def test_unserializable_payload_rejected(self):
        seq = timed_sequence((Action("X", (object(),)), 0.0))
        with pytest.raises(ReproError):
            dumps_timed_sequence(seq)

    def test_empty_file_rejected(self):
        with pytest.raises(ReproError):
            load_events(io.StringIO(""))

    def test_wrong_format_rejected(self):
        with pytest.raises(ReproError):
            load_events(io.StringIO('{"format": "other"}\n'))

    def test_wrong_version_rejected(self):
        with pytest.raises(ReproError):
            load_events(
                io.StringIO('{"format": "repro-trace", "version": 999}\n')
            )

    def test_blank_lines_tolerated(self):
        buffer = io.StringIO()
        run = sample_run()
        dump_events(run.result.recorder.events[:2], buffer)
        text = buffer.getvalue() + "\n\n"
        events = load_events(io.StringIO(text))
        assert len(events) == 2


class TestTimeline:
    def test_empty_trace(self):
        assert render_timeline(timed_sequence()) == "(empty trace)"

    def test_lanes_per_node(self):
        trace = timed_sequence(
            (Action("WRITE", (0, "v")), 0.0),
            (Action("READ", (1,)), 1.0),
            (Action("ACK", (0,)), 2.0),
            (Action("RETURN", (1, "v")), 3.0),
        )
        text = render_timeline(trace, width=40)
        assert "node 0" in text and "node 1" in text
        node0_line = [l for l in text.splitlines() if l.startswith("node 0")][0]
        assert "W" in node0_line and "A" in node0_line
        assert "R" not in node0_line.split("|", 1)[1]

    def test_glyph_override_and_legend(self):
        trace = timed_sequence((Action("CUSTOM", (0,)), 0.0))
        text = render_timeline(trace, width=20, glyphs={"CUSTOM": "#"})
        assert "#" in text
        assert "#=CUSTOM" in text

    def test_unknown_action_uses_star(self):
        trace = timed_sequence((Action("MYSTERY", (0,)), 0.0))
        assert "*" in render_timeline(trace, width=20)

    def test_width_validated(self):
        with pytest.raises(ValueError):
            render_timeline(timed_sequence((Action("A", (0,)), 0.0)), width=5)

    def test_events_positioned_proportionally(self):
        trace = timed_sequence(
            (Action("WRITE", (0, "v")), 0.0),
            (Action("ACK", (0,)), 10.0),
        )
        line = [
            l for l in render_timeline(trace, width=50).splitlines()
            if l.startswith("node 0")
        ][0]
        lane = line.split("|")[1]
        assert lane[0] == "W" and lane[-1] == "A"

    def test_real_run_renders(self):
        run = sample_run()
        text = render_timeline(run.result.trace)
        assert "node 0" in text and "legend:" in text

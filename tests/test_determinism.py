"""Reproducibility: identical configurations yield identical traces.

Every source of nondeterminism in the simulator is seeded (schedulers,
delay models, clock drivers, workloads, step policies), so two runs of
the same configuration must produce byte-identical event sequences —
the property that makes archived traces and regression comparisons
meaningful.
"""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.registers.opstream import OpSchedule
from repro.registers.system import (
    baseline_register_system,
    clock_register_system,
    run_register_experiment,
    timed_register_system,
)
from repro.registers.workload import RegisterWorkload
from repro.sim.clock_drivers import driver_factory
from repro.sim.delay import EdgeSeededDelay, UniformDelay
from repro.sim.scheduler import RandomScheduler


def run_twice(build):
    results = []
    for _ in range(2):
        spec = build()
        run = run_register_experiment(
            spec, 60.0, scheduler=RandomScheduler(seed=3)
        )
        results.append(run)
    return results


class TestDeterminism:
    def test_timed_model_deterministic(self):
        def build():
            return timed_register_system(
                n=3, d1_prime=0.2, d2_prime=1.0, c=0.3,
                workload=RegisterWorkload(operations=5, seed=4),
                delay_model=UniformDelay(seed=4),
            )

        a, b = run_twice(build)
        assert a.result.recorder.events == b.result.recorder.events

    def test_clock_model_deterministic(self):
        def build():
            return clock_register_system(
                n=3, d1=0.2, d2=1.0, c=0.3, eps=0.1,
                workload=RegisterWorkload(operations=5, seed=5),
                drivers=driver_factory("random", 0.1, seed=5),
                delay_model=UniformDelay(seed=5),
            )

        a, b = run_twice(build)
        assert a.result.recorder.events == b.result.recorder.events

    def test_baseline_deterministic(self):
        def build():
            return baseline_register_system(
                n=3, d1=0.2, d2=1.0, eps=0.1,
                workload=RegisterWorkload(operations=4, seed=6),
                drivers=driver_factory("mixed", 0.1, seed=6),
                delay_model=UniformDelay(seed=6),
            )

        a, b = run_twice(build)
        assert a.result.recorder.events == b.result.recorder.events

    def test_different_seeds_differ(self):
        def build(seed):
            return clock_register_system(
                n=3, d1=0.2, d2=1.0, c=0.3, eps=0.1,
                workload=RegisterWorkload(operations=5, seed=seed),
                drivers=driver_factory("random", 0.1, seed=seed),
                delay_model=UniformDelay(seed=seed),
            )

        a = run_register_experiment(build(1), 60.0, scheduler=RandomScheduler(seed=1))
        b = run_register_experiment(build(2), 60.0, scheduler=RandomScheduler(seed=2))
        assert a.result.recorder.events != b.result.recorder.events

    def test_latency_metrics_stable(self):
        def build():
            return clock_register_system(
                n=3, d1=0.2, d2=1.0, c=0.3, eps=0.1,
                workload=RegisterWorkload(operations=5, seed=7),
                drivers=driver_factory("mixed", 0.1, seed=7),
                delay_model=UniformDelay(seed=7),
            )

        a, b = run_twice(build)
        assert a.max_read_latency() == b.max_read_latency()
        assert a.max_write_latency() == b.max_write_latency()


class TestShardCountInvariance:
    """The sharded engine's reproducibility bar (see repro.sim.sharded).

    The trace — and the merged, volatile-excluded metrics snapshot —
    must be byte-identical across shard counts and across repeated runs
    at the same shard count. The system must be shard-safe: replay
    (pure) clients, per-edge seeded delays, granularity-free drivers.
    """

    HORIZON = 40.0
    SHARD_COUNTS = (1, 2, 4)

    @staticmethod
    def _build(model):
        n, seed = 4, 11
        workload = RegisterWorkload(operations=6, seed=seed)
        schedules = [OpSchedule.generate(i, workload) for i in range(n)]
        delay = EdgeSeededDelay(seed=seed)
        if model == "clock":
            return clock_register_system(
                n=n, d1=0.2, d2=1.0, c=0.3, eps=0.1, workload=workload,
                drivers=driver_factory("skewed", 0.1, seed=seed),
                delay_model=delay, schedules=schedules,
            )
        return timed_register_system(
            n=n, d1_prime=0.2, d2_prime=1.0, c=0.3, workload=workload,
            delay_model=delay, schedules=schedules,
        )

    @classmethod
    def _run(cls, model, shards):
        metrics = MetricsRegistry()
        run = run_register_experiment(
            cls._build(model), cls.HORIZON, metrics=metrics, shards=shards
        )
        return run, metrics

    @pytest.mark.parametrize("model", ["clock", "timed"])
    def test_trace_and_metrics_invariant_across_shard_counts(self, model):
        traces, snapshots, operations = [], [], []
        for shards in self.SHARD_COUNTS:
            run, metrics = self._run(model, shards)
            traces.append(run.result.recorder.events)
            snapshots.append(
                json.dumps(metrics.snapshot(), sort_keys=True)
            )
            operations.append(
                [(op.kind, op.value, op.inv_time, op.res_time)
                 for op in run.operations]
            )
        for shards, trace in zip(self.SHARD_COUNTS[1:], traces[1:]):
            assert trace == traces[0], f"trace diverges at shards={shards}"
        assert len(set(snapshots)) == 1, "metrics diverge across shard counts"
        assert all(ops == operations[0] for ops in operations[1:])

    @pytest.mark.parametrize("model", ["clock", "timed"])
    def test_repeated_runs_at_same_shard_count_identical(self, model):
        for shards in (1, 4):
            (run_a, metrics_a) = self._run(model, shards)
            (run_b, metrics_b) = self._run(model, shards)
            assert run_a.result.recorder.events == run_b.result.recorder.events
            assert json.dumps(metrics_a.snapshot(), sort_keys=True) == (
                json.dumps(metrics_b.snapshot(), sort_keys=True)
            )

    def test_sharded_trace_matches_serial_engine(self):
        # shards=1 still routes through the barrier machinery; the
        # events it records must equal the plain serial engine's
        serial = run_register_experiment(self._build("clock"), self.HORIZON)
        sharded, _ = self._run("clock", 1)
        assert sharded.result.recorder.events == serial.result.recorder.events


class TestLintDeterminism:
    """The static analyzer is itself subject to the reproducibility bar.

    CI compares lint JSON byte-for-byte (and the committed isolation
    report is regenerated and diffed), so two runs over the same tree
    must serialize identically — no set-ordered walks, no timestamps,
    no hash-seed-dependent output.
    """

    def test_lint_json_is_byte_identical_across_runs(self):
        import os

        from repro.lint import render_json, run_lint

        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        src = os.path.join(root, "src")
        reports = [
            render_json(run_lint([src], root=root)) for _ in range(2)
        ]
        assert reports[0] == reports[1]

    def test_isolation_report_is_byte_identical_across_runs(self):
        import json
        import os

        from repro.lint import (
            ProjectIndex, build_isolation_report, load_modules, run_lint,
        )

        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        src = os.path.join(root, "src")

        def build():
            result = run_lint([src], root=root)
            index = ProjectIndex(load_modules([src], root=root))
            report = build_isolation_report(index, result)
            return json.dumps(report, indent=2, sort_keys=True)

        assert build() == build()

"""The paper's primary contribution: the two simulations.

- :mod:`repro.core.clock_transform` — Simulation 1 (Section 4): the
  transformation ``C(A_i, eps)`` (Definition 4.1) plus the send and
  receive buffers of Figure 2, packaged as a clock-model node.
- :mod:`repro.core.buffers` — the buffer automata themselves.
- :mod:`repro.core.mmt_transform` — Simulation 2 (Section 5): the
  transformation ``M(A^c, l)`` (Definition 5.1): delayed simulation with
  a pending-output buffer, driven by ``TICK`` inputs.
- :mod:`repro.core.rate` — the output-rate ``(k, l)`` restriction of
  Lemma 4.3 / Section 5.3, checked on recorded executions.
- :mod:`repro.core.pipeline` — system builders assembling ``D_T``,
  ``D_C``, and ``D_M`` per Theorems 4.7, 5.1, and 5.2.
"""

from repro.core.buffers import ReceiveBuffer, SendBuffer
from repro.core.clock_transform import (
    ClockMachine,
    ClockNodeEntity,
    NativeClockNodeEntity,
)
from repro.core.mmt_transform import MMTNodeEntity, StepPolicy, UniformStepPolicy
from repro.core.pipeline import (
    SystemSpec,
    build_clock_system,
    build_mmt_system,
    build_native_clock_system,
    build_timed_system,
    simulation1_delay_bounds,
    simulation2_shift_bound,
)
from repro.core.rate import check_output_rate, max_outputs_in_window

__all__ = [
    "SendBuffer",
    "ReceiveBuffer",
    "ClockMachine",
    "ClockNodeEntity",
    "NativeClockNodeEntity",
    "MMTNodeEntity",
    "StepPolicy",
    "UniformStepPolicy",
    "SystemSpec",
    "build_timed_system",
    "build_clock_system",
    "build_native_clock_system",
    "build_mmt_system",
    "simulation1_delay_bounds",
    "simulation2_shift_bound",
    "check_output_rate",
    "max_outputs_in_window",
]

"""The TDMA slot scheduler and its trace analysis.

:class:`TDMAProcess` is a message-free algorithm in the paper's
programming model: it reads only its notion of time, so it is eps-time
independent and transforms with Simulation 1 unchanged. Node ``i``
emits, for each owned slot ``k`` (``k mod n == i``):

- ``ENTER_i(k)`` at ``k*W + guard``;
- ``EXIT_i(k)``  at ``(k+1)*W - guard``.

Analysis helpers extract critical-section intervals from a visible
trace, measure the worst overlap between different nodes' sections (the
mutual-exclusion violation magnitude), the smallest inter-section gap,
and the achieved utilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.automata.actions import Action, ActionPattern, PatternActionSet
from repro.automata.signature import Signature
from repro.components.base import Process, ProcessContext
from repro.core.pipeline import SystemSpec, build_clock_system, build_timed_system
from repro.errors import SpecificationError, TransitionError
from repro.network.topology import Topology

from repro.constants import INFINITY, TOLERANCE as _TOLERANCE


@dataclass
class TDMAState:
    in_critical: bool = False
    current_slot: Optional[int] = None
    next_owned_slot: int = 0
    sections_done: int = 0


class TDMAProcess(Process):
    """Slot-owner process for node ``i`` of ``n``."""

    def __init__(
        self,
        node: int,
        n: int,
        slot_width: float,
        guard: float,
        sections: int = 4,
    ):
        if slot_width <= 0:
            raise SpecificationError("slot width must be positive")
        if not 0 <= guard * 2 < slot_width:
            raise SpecificationError(
                f"guard {guard:g} must satisfy 0 <= 2*guard < W={slot_width:g}"
            )
        signature = Signature(
            outputs=PatternActionSet(
                [ActionPattern("ENTER", (node,)), ActionPattern("EXIT", (node,))]
            ),
        )
        super().__init__(node, signature, name=f"tdma({node})")
        self.n = n
        self.slot_width = slot_width
        self.guard = guard
        self.sections = sections

    def initial_state(self) -> TDMAState:
        state = TDMAState()
        state.next_owned_slot = self.node
        return state

    def apply_input(self, state, action, ctx):
        raise AssertionError("tdma processes have no inputs")

    def _enter_time(self, slot: int) -> float:
        return slot * self.slot_width + self.guard

    def _exit_time(self, slot: int) -> float:
        return (slot + 1) * self.slot_width - self.guard

    def enabled(self, state: TDMAState, ctx: ProcessContext) -> List[Action]:
        now = ctx.time
        if state.in_critical:
            if abs(now - self._exit_time(state.current_slot)) <= _TOLERANCE:
                return [Action("EXIT", (self.node, state.current_slot))]
            return []
        if state.sections_done >= self.sections:
            return []
        if abs(now - self._enter_time(state.next_owned_slot)) <= _TOLERANCE:
            return [Action("ENTER", (self.node, state.next_owned_slot))]
        return []

    def fire(self, state: TDMAState, action: Action, ctx) -> None:
        if action.name == "ENTER":
            state.in_critical = True
            state.current_slot = action.params[1]
        elif action.name == "EXIT":
            state.in_critical = False
            state.current_slot = None
            state.sections_done += 1
            state.next_owned_slot += self.n
        else:
            raise TransitionError(f"{self.name}: cannot fire {action}")

    def deadline(self, state: TDMAState, ctx) -> float:
        if state.in_critical:
            return self._exit_time(state.current_slot)
        if state.sections_done >= self.sections:
            return INFINITY
        return self._enter_time(state.next_owned_slot)


def build_tdma_system(
    model: str,
    n: int,
    slot_width: float,
    guard: float,
    sections: int = 4,
    eps: float = 0.0,
    drivers=None,
) -> SystemSpec:
    """A message-free TDMA system in the timed or clock model."""
    topology = Topology(n, [])  # no links: coordination is purely temporal

    def processes(i: int) -> Process:
        return TDMAProcess(i, n, slot_width, guard, sections)

    if model == "timed":
        return build_timed_system(topology, processes, 0.0, 1.0)
    if model == "clock":
        if drivers is None:
            raise SpecificationError("clock model needs a driver factory")
        return build_clock_system(topology, processes, eps, 0.0, 1.0, drivers)
    raise SpecificationError(f"unknown model {model!r}")


# ---------------------------------------------------------------------------
# trace analysis
# ---------------------------------------------------------------------------

Interval = Tuple[int, int, float, float]  # (node, slot, enter, exit)


def critical_intervals(trace) -> List[Interval]:
    """Extract completed critical sections from a visible trace."""
    open_sections: Dict[int, Tuple[int, float]] = {}
    intervals: List[Interval] = []
    for ev in trace:
        if ev.action.name == "ENTER":
            node, slot = ev.action.params
            open_sections[node] = (slot, ev.time)
        elif ev.action.name == "EXIT":
            node, slot = ev.action.params
            opened = open_sections.pop(node, None)
            if opened is None or opened[0] != slot:
                raise SpecificationError(
                    f"EXIT without matching ENTER: node {node}, slot {slot}"
                )
            intervals.append((node, slot, opened[1], ev.time))
    intervals.sort(key=lambda iv: iv[2])
    return intervals


def max_overlap(intervals: List[Interval]) -> float:
    """The largest overlap between sections of *different* nodes.

    Zero (or negative: the smallest gap, negated) means mutual exclusion
    held.
    """
    worst = -INFINITY
    for a in range(len(intervals)):
        for b in range(a + 1, len(intervals)):
            n1, _, s1, e1 = intervals[a]
            n2, _, s2, e2 = intervals[b]
            if n1 == n2:
                continue
            worst = max(worst, min(e1, e2) - max(s1, s2))
    return worst if worst != -INFINITY else 0.0


def min_gap(intervals: List[Interval]) -> float:
    """The smallest gap between consecutive sections (any nodes)."""
    best = INFINITY
    for (_, _, _, e1), (_, _, s2, _) in zip(intervals, intervals[1:]):
        best = min(best, s2 - e1)
    return best


def utilization(intervals: List[Interval], horizon: float) -> float:
    """Fraction of the horizon covered by critical sections."""
    if horizon <= 0:
        return 0.0
    covered = sum(e - s for _, _, s, e in intervals)
    return covered / horizon

"""The register problems ``P`` and ``Q`` (Sections 6.1, 6.2).

``P`` — linearizable read-write object: the allowed timed traces are
those where either the environment is first to violate the alternation
condition, or the trace alternates correctly and is linearizable.

``Q`` — the eps-superlinearizable variant, with every linearization
point at least ``2*eps`` after its invocation.

Both are :class:`~repro.traces.problems.Problem` instances whose
membership predicates delegate to the analytic checkers of
:mod:`repro.traces.linearizability`; Lemma 6.4's inclusion
``Q_eps ⊆ P`` is exercised by tests through these objects.
"""

from __future__ import annotations

from typing import List

from repro.automata.actions import ActionPattern, PatternActionSet
from repro.automata.signature import Signature
from repro.traces.linearizability import is_linearizable, is_superlinearizable
from repro.traces.problems import PredicateProblem


def register_problem_partition(n: int) -> List[Signature]:
    """Per-node external signatures of the register problem."""
    partition = []
    for i in range(n):
        partition.append(
            Signature(
                inputs=PatternActionSet(
                    [ActionPattern("READ", (i,)), ActionPattern("WRITE", (i,))]
                ),
                outputs=PatternActionSet(
                    [ActionPattern("RETURN", (i,)), ActionPattern("ACK", (i,))]
                ),
            )
        )
    return partition


def linearizable_register_problem(
    n: int, initial_value: object = None
) -> PredicateProblem:
    """The problem ``P`` of a linearizable read-write object."""
    return PredicateProblem(
        register_problem_partition(n),
        lambda trace: is_linearizable(trace, initial_value),
        name="P(linearizable)",
    )


def superlinearizable_register_problem(
    n: int, eps: float, initial_value: object = None
) -> PredicateProblem:
    """The problem ``Q`` of an eps-superlinearizable read-write object."""
    return PredicateProblem(
        register_problem_partition(n),
        lambda trace: is_superlinearizable(trace, eps, initial_value),
        name=f"Q(superlinearizable, eps={eps:g})",
    )

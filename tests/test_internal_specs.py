"""End-to-end: internal vs real-time specifications (Section 4.3).

Sequential consistency never mentions real time, so ``P_eps = P`` and
the bare clock transformation preserves it (the Lamport [5] /
Neiger-Toueg [13] regime). Linearizability references real time, so the
bare transformation loses it and algorithm S's ``2*eps`` margin is
needed (the paper's contribution)."""

import pytest

from repro.registers.system import (
    INITIAL_VALUE,
    clock_register_system,
    run_register_experiment,
)
from repro.registers.workload import RegisterWorkload
from repro.sim.clock_drivers import driver_factory
from repro.sim.delay import MaximalDelay
from repro.sim.scheduler import RandomScheduler
from repro.traces.sequential_consistency import is_sequentially_consistent

EPS, D1, D2 = 0.3, 0.1, 1.0


def run_algorithm(algorithm, seed):
    workload = RegisterWorkload(
        operations=6, read_fraction=0.6, seed=seed,
        think_min=0.05, think_max=0.6,
    )
    spec = clock_register_system(
        n=3, d1=D1, d2=D2, c=0.0, eps=EPS, workload=workload,
        drivers=driver_factory("mixed", EPS, seed=seed),
        delay_model=MaximalDelay(), algorithm=algorithm,
    )
    return run_register_experiment(
        spec, 80.0, scheduler=RandomScheduler(seed=seed)
    )


class TestInternalVsRealTime:
    @pytest.mark.parametrize("seed", range(6))
    def test_sequential_consistency_survives_bare_transformation(self, seed):
        run = run_algorithm("L", seed)
        assert is_sequentially_consistent(run.result.trace, INITIAL_VALUE)

    def test_linearizability_lost_without_margin(self):
        violations = sum(
            1 for seed in range(8) if not run_algorithm("L", seed).linearizable()
        )
        assert violations >= 1

    @pytest.mark.parametrize("seed", range(6))
    def test_s_margin_restores_linearizability(self, seed):
        assert run_algorithm("S", seed).linearizable()

    def test_margin_costs_exactly_two_eps_on_reads(self):
        fast = run_algorithm("L", 3)
        safe = run_algorithm("S", 3)
        # clock-time read latencies: delta vs 2*eps + delta
        assert safe.max_read_latency() - fast.max_read_latency() == pytest.approx(
            2 * EPS, abs=2 * EPS * 0.35  # modulo real-time stretch
        )

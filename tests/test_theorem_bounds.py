"""Edge cases for the Theorem 6.5 latency-bound table.

``theorem_bounds(model, eps, c, delta, d2)`` states the paper's
per-operation costs: Lemma 6.1 for the timed model (read ``c + delta``,
write ``d2 - c``, exact in real time) and Theorem 6.5 for the clock
model (read ``2*eps + delta + c``, write ``d2 + 2*eps - c`` in clock
time, each stretched by up to ``2*eps`` more in real time).
"""

import pytest

from repro.core.pipeline import simulation1_delay_bounds
from repro.registers.algorithm_s import theorem_bounds

D2, DELTA = 1.0, 0.01


class TestClockModel:
    def test_zero_eps_collapses_to_timed(self):
        """With perfect clocks Algorithm S *is* Algorithm L: clock and
        real bounds coincide and match the timed-model table."""
        clock = theorem_bounds("clock", 0.0, 0.3, DELTA, D2)
        timed = theorem_bounds("timed", 0.0, 0.3, DELTA, D2)
        assert clock == timed
        assert clock["read_real"] == clock["read_clock"] == 0.3 + DELTA
        assert clock["write_real"] == clock["write_clock"] == D2 - 0.3

    def test_real_bounds_stretch_by_two_eps(self):
        eps = 0.2
        bounds = theorem_bounds("clock", eps, 0.3, DELTA, D2)
        assert bounds["read_real"] == bounds["read_clock"] + 2 * eps
        assert bounds["write_real"] == bounds["write_clock"] + 2 * eps

    def test_c_at_zero(self):
        """c = 0: reads are as fast as the model allows, writes pay the
        full d2 + 2*eps."""
        eps = 0.1
        bounds = theorem_bounds("clock", eps, 0.0, DELTA, D2)
        assert bounds["read_clock"] == pytest.approx(2 * eps + DELTA)
        assert bounds["write_clock"] == pytest.approx(D2 + 2 * eps)

    def test_c_at_upper_admissible_end(self):
        """c = d2' = d2 + 2*eps, the largest value RegisterProcess
        admits: writes become free in clock time."""
        eps = 0.1
        _, d2_prime = simulation1_delay_bounds(0.0, D2, eps)
        bounds = theorem_bounds("clock", eps, d2_prime, DELTA, D2)
        assert bounds["write_clock"] == pytest.approx(0.0)
        assert bounds["read_clock"] == pytest.approx(2 * eps + DELTA + d2_prime)

    def test_read_write_tradeoff_is_conserved(self):
        """Sliding c moves cost between reads and writes; the sum is the
        c-independent constant d2 + 4*eps + delta."""
        eps = 0.15
        total = D2 + 4 * eps + DELTA
        for c in (0.0, 0.2, 0.7, D2 + 2 * eps):
            bounds = theorem_bounds("clock", eps, c, DELTA, D2)
            assert bounds["read_clock"] + bounds["write_clock"] == \
                pytest.approx(total)

    def test_mmt_alias(self):
        assert theorem_bounds("mmt", 0.1, 0.3, DELTA, D2) == \
            theorem_bounds("clock", 0.1, 0.3, DELTA, D2)


class TestTimedModel:
    def test_real_equals_clock(self):
        bounds = theorem_bounds("timed", 0.0, 0.3, DELTA, D2)
        assert bounds["read_real"] == bounds["read_clock"]
        assert bounds["write_real"] == bounds["write_clock"]

    def test_eps_is_ignored(self):
        """The timed model has no clocks; eps cannot enter its bounds."""
        assert theorem_bounds("timed", 0.0, 0.3, DELTA, D2) == \
            theorem_bounds("timed", 0.5, 0.3, DELTA, D2)

    def test_c_equals_d2_makes_writes_free(self):
        bounds = theorem_bounds("timed", 0.0, D2, DELTA, D2)
        assert bounds["write_real"] == pytest.approx(0.0)


class TestDegenerateDelays:
    def test_d1_equals_d2(self):
        """A fixed-delay network (d1 = d2) changes nothing in the table:
        only the upper bound d2 appears in the costs."""
        bounds = theorem_bounds("clock", 0.1, 0.3, DELTA, 0.5)
        assert bounds["write_clock"] == pytest.approx(0.5 + 0.2 - 0.3)
        d1p, d2p = simulation1_delay_bounds(0.5, 0.5, 0.1)
        assert d1p == pytest.approx(0.3)
        assert d2p == pytest.approx(0.7)

    def test_zero_delta(self):
        bounds = theorem_bounds("clock", 0.1, 0.3, 0.0, D2)
        assert bounds["read_clock"] == pytest.approx(0.2 + 0.3)


class TestBaseline:
    def test_baseline_has_no_bounds(self):
        with pytest.raises(ValueError):
            theorem_bounds("baseline", 0.1, 0.3, DELTA, D2)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            theorem_bounds("quantum", 0.1, 0.3, DELTA, D2)

"""Sharded windowed execution: planning, validation, trace identity.

The correctness bar (see ``repro.sim.sharded`` and
``docs/performance.md``): a sharded run's merged trace is byte-identical
to the serial engine's at every shard count, and systems the window math
cannot reproduce exactly are rejected up front with
:class:`~repro.errors.ShardingError`.
"""

import pytest

from repro.components.pinger import EchoProcess, PingerProcess
from repro.core.pipeline import build_clock_system, build_timed_system
from repro.errors import ShardingError
from repro.network.topology import Topology
from repro.obs.metrics import MetricsRegistry
from repro.registers.opstream import OpSchedule
from repro.registers.system import clock_register_system
from repro.registers.workload import RegisterWorkload
from repro.sim.clock_drivers import driver_factory
from repro.sim.delay import EdgeSeededDelay, UniformDelay
from repro.sim.engine import Simulator
from repro.sim.recorder import Recorder
from repro.sim.scheduler import RandomScheduler
from repro.sim.sharded import plan_shards

D1, D2, EPS = 0.2, 0.6, 0.05
HORIZON = 6.0


def _pair_topology(n):
    edges = []
    for k in range(0, n, 2):
        edges.append((k, k + 1))
        edges.append((k + 1, k))
    return Topology(n, edges)


def _pair_processes(count=4, interval=0.5):
    def make(i):
        if i % 2 == 0:
            return PingerProcess(i, i + 1, count, interval)
        return EchoProcess(i, i - 1)

    return make


def _pairs_spec(n=8, pipeline="clock"):
    topo = _pair_topology(n)
    procs = _pair_processes()
    if pipeline == "timed":
        return build_timed_system(topo, procs, D1, D2)
    return build_clock_system(
        topo, procs, EPS, D1, D2, driver_factory("skewed", EPS)
    )


def _register_spec(n=4, seed=13):
    """A fully-connected (barrier-exercising) shard-safe system."""
    workload = RegisterWorkload(operations=4, seed=seed)
    return clock_register_system(
        n=n, d1=D1, d2=1.0, c=0.3, eps=0.1, workload=workload,
        drivers=driver_factory("skewed", 0.1, seed=seed),
        delay_model=EdgeSeededDelay(seed=seed),
        schedules=[OpSchedule.generate(i, workload) for i in range(n)],
    )


class TestPlanning:
    def test_single_shard_has_no_cut_edges(self):
        spec = _pairs_spec(n=8)
        sim = Simulator(spec.entities, hidden=spec.hidden)
        plan = plan_shards(sim, 1)
        assert len(plan.shards) == 1
        assert plan.cut_edges == []
        assert plan.window == float("inf")

    def test_pairs_split_along_channel_lookahead_edges(self):
        # a channel fuses with its *receiver*; the sender->channel edge
        # carries the channel's d1 lookahead and becomes the cut
        spec = _pairs_spec(n=8)
        sim = Simulator(spec.entities, hidden=spec.hidden)
        plan = plan_shards(sim, 4)
        assert len(plan.shards) == 4
        assert plan.cut_edges
        assert plan.window == pytest.approx(D1)
        # every entity is owned by exactly one shard
        assert sorted(i for s in plan.shards for i in s) == list(
            range(len(spec.entities))
        )

    def test_coupled_register_system_window_is_min_cut_d1(self):
        spec = _register_spec()
        sim = Simulator(spec.entities, hidden=spec.hidden)
        plan = plan_shards(sim, 2)
        assert plan.cut_edges  # complete topology must cross shards
        assert plan.window == pytest.approx(D1)

    def test_more_shards_than_clusters_collapses(self):
        # n=4 -> two pairs -> four {node, incoming-channel} clusters
        spec = _pairs_spec(n=4)
        sim = Simulator(spec.entities, hidden=spec.hidden)
        plan = plan_shards(sim, 16)
        assert len(plan.shards) == 4

    def test_window_override_must_fit_under_the_safe_width(self):
        spec = _register_spec()
        sim = Simulator(spec.entities, hidden=spec.hidden)
        assert plan_shards(sim, 2, window=D1 / 2).window == D1 / 2
        with pytest.raises(ShardingError, match="window"):
            plan_shards(sim, 2, window=D1 * 3)
        with pytest.raises(ShardingError, match="window"):
            plan_shards(sim, 2, window=0.0)


class TestValidation:
    def test_rejects_shared_rng_delay_model(self):
        workload = RegisterWorkload(operations=3, seed=1)
        spec = clock_register_system(
            n=2, d1=D1, d2=1.0, c=0.3, eps=0.1, workload=workload,
            drivers=driver_factory("skewed", 0.1, seed=1),
            delay_model=UniformDelay(seed=1),
            schedules=[OpSchedule.generate(i, workload) for i in range(2)],
        )
        sim = Simulator(spec.entities, hidden=spec.hidden)
        with pytest.raises(ShardingError, match="delay model"):
            plan_shards(sim, 2)

    def test_rejects_impure_online_clients(self):
        spec = clock_register_system(
            n=2, d1=D1, d2=1.0, c=0.3, eps=0.1,
            workload=RegisterWorkload(operations=3, seed=1),
            drivers=driver_factory("skewed", 0.1, seed=1),
            delay_model=EdgeSeededDelay(seed=1),
        )  # no schedules: clients draw their workload online
        sim = Simulator(spec.entities, hidden=spec.hidden)
        with pytest.raises(ShardingError, match="pure"):
            plan_shards(sim, 2)

    def test_rejects_granularity_sensitive_drivers(self):
        spec = build_clock_system(
            _pair_topology(4), _pair_processes(), EPS, D1, D2,
            driver_factory("mixed", EPS, seed=3),  # random-walk advances
        )
        sim = Simulator(spec.entities, hidden=spec.hidden)
        with pytest.raises(ShardingError, match="granularity"):
            plan_shards(sim, 2)

    def test_rejects_stateful_scheduler(self):
        spec = _pairs_spec(n=4)
        sim = Simulator(
            spec.entities, hidden=spec.hidden,
            scheduler=RandomScheduler(seed=2),
        )
        with pytest.raises(ShardingError, match="shard-safe"):
            plan_shards(sim, 2)

    def test_rejects_bad_shard_counts(self):
        spec = _pairs_spec(n=4)
        sim = Simulator(spec.entities, hidden=spec.hidden)
        for bad in (0, -1, True, 1.5):
            with pytest.raises(ShardingError):
                plan_shards(sim, bad)

    def test_rejects_stop_when(self):
        spec = _pairs_spec(n=4)
        sim = Simulator(spec.entities, hidden=spec.hidden)
        with pytest.raises(ShardingError, match="stop_when"):
            sim.run(
                HORIZON, shards=2,
                stop_when=lambda recorder, now: False,
            )


class TestTraceIdentity:
    @pytest.mark.parametrize("pipeline", ["timed", "clock"])
    def test_independent_pairs_identical_across_shard_counts(self, pipeline):
        serial = Recorder()
        spec = _pairs_spec(n=8, pipeline=pipeline)
        Simulator(spec.entities, hidden=spec.hidden).run(
            HORIZON, recorder=serial
        )
        assert serial.events
        for shards in (1, 2, 4):
            spec = _pairs_spec(n=8, pipeline=pipeline)
            recorder = Recorder()
            Simulator(spec.entities, hidden=spec.hidden).run(
                HORIZON, recorder=recorder, shards=shards
            )
            assert recorder.events == serial.events, f"shards={shards}"

    def test_coupled_system_with_barriers_identical(self):
        # complete topology: every window barrier exchanges messages
        serial = Recorder()
        spec = _register_spec()
        Simulator(spec.entities, hidden=spec.hidden).run(
            HORIZON, recorder=serial
        )
        assert serial.events
        for shards in (2, 4):
            spec = _register_spec()
            recorder = Recorder()
            Simulator(spec.entities, hidden=spec.hidden).run(
                HORIZON, recorder=recorder, shards=shards
            )
            assert recorder.events == serial.events, f"shards={shards}"

    def test_narrower_window_same_trace(self):
        # more barriers never change the trace, only the cost
        spec = _register_spec()
        wide = Recorder()
        Simulator(spec.entities, hidden=spec.hidden).run(
            HORIZON, recorder=wide, shards=2
        )
        spec = _register_spec()
        narrow = Recorder()
        Simulator(spec.entities, hidden=spec.hidden).run(
            HORIZON, recorder=narrow, shards=2, window=D1 / 3
        )
        assert narrow.events == wide.events


class TestShardedMetrics:
    def test_phase_gauges_present_and_volatile(self):
        spec = _register_spec()
        metrics = MetricsRegistry()
        Simulator(spec.entities, hidden=spec.hidden).run(
            HORIZON, metrics=metrics, shards=2
        )
        volatile = metrics.snapshot(include_volatile=True)["gauges"]
        assert volatile["repro.phase.shards"] == 2.0
        assert volatile["repro.phase.windows"] >= 1.0
        assert volatile["repro.phase.window_width"] == pytest.approx(D1)
        for sid in (0, 1):
            assert volatile[f"repro.phase.shard{sid}.steps"] > 0
            assert volatile[f"repro.phase.shard{sid}.entities"] > 0
        # none of the per-shard phase figures leak into the
        # deterministic export
        deterministic = metrics.snapshot()["gauges"]
        assert not any(k.startswith("repro.phase.") for k in deterministic)

    def test_time_advances_zeroed_and_histograms_volatile(self):
        spec = _register_spec()
        metrics = MetricsRegistry()
        Simulator(spec.entities, hidden=spec.hidden).run(
            HORIZON, metrics=metrics, shards=2
        )
        snapshot = metrics.snapshot()
        # granularity-dependent: zeroed and kept out of the
        # deterministic export entirely
        assert "repro.engine.time_advances" not in snapshot["counters"]
        full = metrics.snapshot(include_volatile=True)
        assert full["counters"]["repro.engine.time_advances"] == 0
        assert snapshot["histograms"] == {}
        assert snapshot["sketches"]  # canonical exports survive

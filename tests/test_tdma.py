"""Tests for the TDMA scheduler (Section 7.1's second design technique)."""

import pytest

from repro.errors import SpecificationError
from repro.sim.clock_drivers import (
    FastClockDriver,
    PerfectClockDriver,
    RandomWalkClockDriver,
    SlowClockDriver,
)
from repro.tdma import (
    TDMAProcess,
    build_tdma_system,
    critical_intervals,
    max_overlap,
    min_gap,
    utilization,
)

EPS = 0.1


def adversarial(i):
    """Neighboring nodes disagree by the full 2*eps."""
    return FastClockDriver(EPS) if i % 2 == 0 else SlowClockDriver(EPS)


class TestProcess:
    def test_parameter_validation(self):
        with pytest.raises(SpecificationError):
            TDMAProcess(0, 3, slot_width=0.0, guard=0.0)
        with pytest.raises(SpecificationError):
            TDMAProcess(0, 3, slot_width=1.0, guard=0.5)  # 2g == W
        with pytest.raises(SpecificationError):
            TDMAProcess(0, 3, slot_width=1.0, guard=-0.1)

    def test_owns_every_nth_slot(self):
        spec = build_tdma_system("timed", n=3, slot_width=1.0, guard=0.1,
                                 sections=3)
        intervals = critical_intervals(spec.run(12.0).trace)
        for node, slot, _, __ in intervals:
            assert slot % 3 == node

    def test_enter_exit_times(self):
        spec = build_tdma_system("timed", n=2, slot_width=2.0, guard=0.25,
                                 sections=2)
        intervals = critical_intervals(spec.run(10.0).trace)
        node0 = [iv for iv in intervals if iv[0] == 0]
        assert node0[0][2] == pytest.approx(0.25)
        assert node0[0][3] == pytest.approx(1.75)


class TestTimedModel:
    @pytest.mark.parametrize("guard", [0.0, 0.1, 0.3])
    def test_mutual_exclusion_any_guard(self, guard):
        spec = build_tdma_system("timed", n=3, slot_width=1.0, guard=guard,
                                 sections=3)
        intervals = critical_intervals(spec.run(12.0).trace)
        assert max_overlap(intervals) <= 1e-9

    def test_gap_is_twice_guard(self):
        spec = build_tdma_system("timed", n=3, slot_width=1.0, guard=0.2,
                                 sections=3)
        intervals = critical_intervals(spec.run(12.0).trace)
        assert min_gap(intervals) == pytest.approx(0.4)


class TestClockModel:
    def run_clock(self, guard, drivers=adversarial, sections=3):
        spec = build_tdma_system(
            "clock", n=3, slot_width=1.0, guard=guard, sections=sections,
            eps=EPS, drivers=drivers,
        )
        return critical_intervals(spec.run(15.0).trace)

    def test_sufficient_guard_preserves_exclusion(self):
        intervals = self.run_clock(guard=EPS)
        assert max_overlap(intervals) <= 1e-9

    def test_generous_guard_leaves_margin(self):
        intervals = self.run_clock(guard=2 * EPS)
        assert min_gap(intervals) >= 2 * EPS - 1e-9

    def test_insufficient_guard_violates_exclusion(self):
        intervals = self.run_clock(guard=EPS / 2)
        assert max_overlap(intervals) > 1e-9

    def test_overlap_magnitude_is_two_eps_minus_two_guard(self):
        guard = 0.03
        intervals = self.run_clock(guard=guard)
        assert max_overlap(intervals) == pytest.approx(
            2 * (EPS - guard), abs=1e-6
        )

    def test_perfect_clocks_need_no_guard(self):
        intervals = self.run_clock(
            guard=0.0, drivers=lambda i: PerfectClockDriver(EPS)
        )
        assert max_overlap(intervals) <= 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_random_drivers_within_guard(self, seed):
        intervals = self.run_clock(
            guard=EPS,
            drivers=lambda i: RandomWalkClockDriver(EPS, seed=seed * 31 + i),
        )
        assert max_overlap(intervals) <= 1e-9

    def test_utilization_cost(self):
        tight = self.run_clock(guard=EPS)
        loose = self.run_clock(guard=3 * EPS)
        horizon = 9.0
        assert utilization(tight, horizon) > utilization(loose, horizon)
        assert utilization(tight, horizon) == pytest.approx(
            (1.0 - 2 * EPS) / 1.0, abs=0.05
        )

"""Multi-hop algorithms: flooding broadcast and leader election.

Two more algorithms in the paper's programming model, exercising
multi-hop topologies (rings, stars, chains) where the register
application only needed complete graphs:

- :class:`~repro.broadcast.flood.FloodProcess` — reliable flooding:
  a message injected at any node reaches every node within
  ``eccentricity * d2'`` (a *real-time* delivery guarantee, the
  "estimate the time at which events occur" motivation);
- :class:`~repro.broadcast.flood.LeaderElectProcess` — timeout-based
  leader election: every node floods its identifier at time 0 and
  announces the smallest identifier seen at time
  ``T = diameter * d2'``; all nodes agree, and announcements are
  simultaneous in the timed model — hence within ``2*eps`` of each
  other after the clock transformation (the "synchronize activities"
  motivation, and another instance of a real-time specification
  surviving as ``P_eps``).
"""

from repro.broadcast.flood import (
    FloodProcess,
    LeaderElectProcess,
    build_flood_system,
    build_leader_system,
    deliveries,
    election_outcomes,
)

__all__ = [
    "FloodProcess",
    "LeaderElectProcess",
    "build_flood_system",
    "build_leader_system",
    "deliveries",
    "election_outcomes",
]

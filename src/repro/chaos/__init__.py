"""``repro.chaos``: declarative fault plans, online monitors, shrinking.

The robustness layer over the simulator: script a timeline of faults
(:mod:`~repro.chaos.plan`), lower it onto any built system
(:mod:`~repro.chaos.apply`), watch the paper's guarantees break in real
time (:mod:`~repro.chaos.monitors`), attribute the first violation to
the responsible plan event, and delta-debug the plan down to a smallest
witness (:mod:`~repro.chaos.shrink`). ``python -m repro chaos`` drives
the whole loop from the command line; :mod:`repro.campaign` sweeps
seeded random plans in parallel.
"""

from repro.chaos.apply import apply_plan
from repro.chaos.monitors import (
    ChannelBoundMonitor,
    ChaosMonitor,
    ClockPredicateMonitor,
    HeartbeatMonitor,
    LinearizabilityMonitor,
    MonitorTracer,
    TeeTracer,
    Violation,
)
from repro.chaos.plan import (
    FaultEvent,
    FaultPlan,
    clock_fault,
    crash,
    drop_burst,
    heal,
    partition,
    recover,
)
from repro.chaos.runner import (
    ChaosResult,
    causal_attribution,
    conformance_check,
    conformance_corpus,
    demo_builder,
    demo_monitors,
    demo_plan,
    run_chaos,
    run_demo,
    shrink_chaos,
    violation_oracle,
)
from repro.chaos.shrink import ShrinkResult, shrink_plan

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "crash",
    "recover",
    "partition",
    "heal",
    "clock_fault",
    "drop_burst",
    "apply_plan",
    "ChaosMonitor",
    "ClockPredicateMonitor",
    "ChannelBoundMonitor",
    "HeartbeatMonitor",
    "LinearizabilityMonitor",
    "MonitorTracer",
    "TeeTracer",
    "Violation",
    "ChaosResult",
    "causal_attribution",
    "run_chaos",
    "run_demo",
    "shrink_chaos",
    "shrink_plan",
    "ShrinkResult",
    "violation_oracle",
    "conformance_check",
    "conformance_corpus",
    "demo_builder",
    "demo_plan",
    "demo_monitors",
]

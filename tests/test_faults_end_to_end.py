"""End-to-end fault tolerance: the register over lossy channels, and
crash-stop completeness for the heartbeat detector (Section 7.3)."""

import pytest

from repro.core.pipeline import SystemSpec, build_clock_system, simulation1_delay_bounds
from repro.detector import build_detector_system, detector_timeout
from repro.faults import (
    BernoulliFaults,
    BurstFaults,
    CrashSchedule,
    CrashableEntity,
    ReliableAdapter,
    effective_delay_bounds,
)
from repro.network.topology import Topology
from repro.registers.algorithm_s import AlgorithmSProcess
from repro.registers.system import INITIAL_VALUE, run_register_experiment
from repro.registers.workload import ClientEntity, RegisterWorkload
from repro.sim.clock_drivers import FastClockDriver, SlowClockDriver, driver_factory
from repro.sim.delay import MaximalDelay, UniformDelay
from repro.sim.scheduler import RandomScheduler


def lossy_register_spec(seed, fault_model, retx=0.5, max_drops=3,
                        n=3, d1=0.2, d2=1.0, eps=0.1, c=0.3):
    d1e, d2e = effective_delay_bounds(d1, d2, retx, max_drops)
    _, d2p = simulation1_delay_bounds(d1e, d2e, eps)

    def processes(i):
        inner = AlgorithmSProcess(
            i, list(range(n)), d2p, c, eps, delta=0.01,
            initial_value=INITIAL_VALUE,
        )
        return ReliableAdapter(inner, retransmit_interval=retx)

    spec = build_clock_system(
        Topology.complete(n, True), processes, eps, d1, d2,
        driver_factory("mixed", eps, seed=seed), UniformDelay(seed=seed),
        fault_model=fault_model,
    )
    workload = RegisterWorkload(operations=4, read_fraction=0.5, seed=seed)
    return spec.add(*[ClientEntity(i, workload) for i in range(n)])


class TestRegisterOverLossyChannels:
    @pytest.mark.parametrize("seed", range(3))
    def test_linearizable_despite_loss_and_duplication(self, seed):
        faults = BernoulliFaults(
            seed=seed, p_drop=0.3, p_duplicate=0.15, max_consecutive_drops=3
        )
        spec = lossy_register_spec(seed, faults)
        run = run_register_experiment(
            spec, 120.0, scheduler=RandomScheduler(seed=seed),
            max_steps=3_000_000,
        )
        assert len(run.operations) >= 8
        assert run.linearizable()
        dropped = sum(
            state.dropped
            for name, state in run.result.final_states.items()
            if name.startswith("lossychan")
        )
        assert dropped > 0, "the fault model should actually drop messages"

    def test_latencies_respect_effective_bounds(self):
        retx, max_drops, eps, c, d2 = 0.5, 3, 0.1, 0.3, 1.0
        faults = BernoulliFaults(
            seed=9, p_drop=0.4, p_duplicate=0.1, max_consecutive_drops=max_drops
        )
        spec = lossy_register_spec(9, faults, retx=retx, max_drops=max_drops)
        run = run_register_experiment(
            spec, 120.0, scheduler=RandomScheduler(seed=9), max_steps=3_000_000
        )
        _, d2e = effective_delay_bounds(0.2, d2, retx, max_drops)
        write_bound = (d2e + 2 * eps - c) + 2 * eps
        read_bound = (2 * eps + 0.01 + c) + 2 * eps
        assert run.max_write_latency() <= write_bound + 1e-9
        assert run.max_read_latency() <= read_bound + 1e-9

    def test_burst_faults(self):
        faults = BurstFaults(good_duration=4.0, bad_duration=1.0,
                             max_consecutive_drops=3)
        spec = lossy_register_spec(4, faults)
        run = run_register_experiment(
            spec, 120.0, scheduler=RandomScheduler(seed=4), max_steps=3_000_000
        )
        assert run.linearizable()


class TestCrashStopDetector:
    def drivers(self, eps):
        return lambda i: SlowClockDriver(eps) if i == 0 else FastClockDriver(eps)

    def build(self, eps=0.15, d1=0.1, d2=1.0, crash_time=None):
        spec = build_detector_system(
            "clock", 2.0, detector_timeout(d2, eps), 8, d1, d2, eps=eps,
            drivers=self.drivers(eps), delay_model=MaximalDelay(),
        )
        if crash_time is None:
            return spec
        entities = [
            CrashableEntity(e, CrashSchedule(crash_time))
            if e.name.startswith("hbsender") else e
            for e in spec.entities
        ]
        return SystemSpec(entities=entities, hidden=spec.hidden)

    def test_accuracy_without_crash(self):
        result = self.build().run(30.0)
        assert not [e for e in result.trace if e.action.name == "SUSPECT"]

    def test_completeness_with_crash(self):
        eps, d2, period = 0.15, 1.0, 2.0
        crash_time = 7.0
        result = self.build(crash_time=crash_time).run(30.0)
        suspicions = [e for e in result.trace if e.action.name == "SUSPECT"]
        assert suspicions, "crashed sender must be suspected"
        first = suspicions[0].time
        # detection latency: at most one period + timeout + clock slack
        bound = crash_time + period + detector_timeout(d2, eps) + 2 * eps
        assert first <= bound + 1e-9
        # and never before the crash (accuracy preserved)
        assert first >= crash_time - 1e-9

    def test_crashed_sender_stops_beating(self):
        result = self.build(crash_time=7.0).run(30.0)
        beats = [e for e in result.trace if e.action.name == "BEAT"]
        assert all(e.time <= 7.0 + 1e-9 for e in beats)
        assert 0 < len(beats) < 8

    def test_crash_at_zero_means_silence(self):
        result = self.build(crash_time=0.0).run(20.0)
        beats = [e for e in result.trace if e.action.name == "BEAT"]
        suspicions = [e for e in result.trace if e.action.name == "SUSPECT"]
        assert not beats
        assert suspicions
